// Differential suite: streaming online checkers vs the post-hoc oracles.
//
// The streaming checkers (analysis/streaming.hpp) watch the node pipeline
// live and claim to emit the SAME violations — byte-identical messages,
// same transaction indices — that the post-hoc oracles produce from the
// assembled execution. This suite holds them to it: every chaos,
// crash-chaos and correlated-fault seed from the existing tiers is
// replayed with a streaming checker attached, and the violation sets are
// compared report by report. The comparison is as sets, not sequences —
// the oracles emit condition (4) messages in a second pass over the
// actual states while the streaming checker interleaves them per
// finalized transaction.
//
// The Byzantine tier then arms the payload adversary
// (sim::FaultPlan::byzantine_payload) on the same seeds: corrupted
// replicas stop converging, decisions made on poisoned states draw real
// condition-(3) violations, and streaming and post-hoc must STILL agree
// byte for byte — the oracles replay the true originated records, the
// streaming checker shadows them live, and both see the same poisoned
// decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/streaming.hpp"
#include "analysis/trace_dump.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using Checker = analysis::StreamingChecker<Air>;

// The streaming checker cannot measure the run's max missing count before
// the run ends, so theorem 7 runs in the hypothesis-verifying mode with an
// explicit k on both sides of the comparison.
constexpr std::size_t kTheorem7K = 2;

bool air_preserves(const al::Request& r, int c) {
  return Air::Theory::preserves_cost(r, c);
}
bool air_unsafe(const al::Request& r, int c) {
  return !Air::Theory::safe_for(r, c);
}
double air_f(int c, std::size_t k) { return Air::Theory::f_bound(c, k); }

Checker::Options full_options(obs::TraceSource* tracer = nullptr,
                              bool bounded = false) {
  Checker::Options o;
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    o.theorem5.push_back({c, air_preserves, air_f});
  }
  o.theorem7.push_back({Air::kOverbooking, air_unsafe, air_f, kTheorem7K});
  o.bounded_memory = bounded;
  o.tracer = tracer;
  return o;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// The differential heart: every oracle report and its streaming
/// counterpart agree as violation multisets (byte-identical messages) and
/// on the violating transaction indices. The streaming-only divergence
/// report is deliberately excluded — the oracles never see replica states,
/// so it has no post-hoc analogue.
void expect_matches_oracles(shard::Cluster<Air>& cluster, const Checker& ck) {
  const auto exec = cluster.execution();
  ASSERT_EQ(ck.txs_finalized(), exec.size());
  EXPECT_EQ(ck.order_violations(), 0u);

  const analysis::CheckReport oracle =
      analysis::check_prefix_subsequence_condition(exec);
  EXPECT_EQ(oracle.title(), ck.prefix_report().title());
  EXPECT_EQ(sorted(oracle.violations()),
            sorted(ck.prefix_report().violations()));
  EXPECT_EQ(oracle.violating_txs(), ck.prefix_report().violating_txs());

  ASSERT_EQ(ck.theorem5_reports().size(),
            static_cast<std::size_t>(Air::kNumConstraints));
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    const analysis::CheckReport t5 =
        analysis::check_theorem5(exec, c, air_preserves, air_f);
    EXPECT_EQ(sorted(t5.violations()),
              sorted(ck.theorem5_reports()[static_cast<std::size_t>(c)]
                         .violations()))
        << "theorem 5, constraint " << c;
  }
  const analysis::CheckReport t7 = analysis::check_theorem7(
      exec, Air::kOverbooking, air_unsafe, air_f, kTheorem7K);
  ASSERT_EQ(ck.theorem7_reports().size(), 1u);
  EXPECT_EQ(sorted(t7.violations()),
            sorted(ck.theorem7_reports()[0].violations()));
}

// --- Clean tiers: the chaos seeds, replayed with the checker attached ----
//
// The scenario recipes below are copied verbatim from test_chaos.cpp (same
// seeds, same rng draw order) so the executions are the exact ones the
// chaos tiers already certify — the streaming checker must reproduce the
// oracles' clean bill of health on each, and its per-delivery divergence
// check must never fire without an adversary.

class StreamingChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingChaos, MatchesOraclesUnderRandomFailures) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "streaming-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.3);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a0));
  Checker ck(nodes, full_options());
  cluster.set_stream_observer(&ck);

  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  ck.finish(cluster.scheduler().now());

  EXPECT_EQ(ck.divergence_events(), 0u);
  expect_matches_oracles(cluster, ck);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingChaos,
                         ::testing::Range<std::uint64_t>(1000, 1012));

class StreamingCrashChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingCrashChaos, MatchesOraclesUnderCrashesAndPartitions) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "streaming-crash-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x37c1);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.faults.random_crashes(nodes, horizon,
                           static_cast<int>(rng.uniform_int(1, 4)),
                           /*min_down=*/1.0, /*max_down=*/6.0,
                           /*amnesia_probability=*/0.5);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a5));
  Checker ck(nodes, full_options());
  cluster.set_stream_observer(&ck);

  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  ck.finish(cluster.scheduler().now());

  // Amnesia restarts rewind shadows and re-deliver history; the checker
  // must track the rewind, not mistake replays for divergence.
  EXPECT_EQ(ck.divergence_events(), 0u);
  expect_matches_oracles(cluster, ck);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingCrashChaos,
                         ::testing::Range<std::uint64_t>(3000, 3012));

class StreamingCorrelatedChaos
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingCorrelatedChaos, MatchesOraclesUnderCorrelatedFaults) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(3, 6));
  const double horizon = 25.0;

  sim::ChaosOptions opt;
  opt.partition_events = static_cast<int>(rng.uniform_int(1, 3));
  opt.crash_events = static_cast<int>(rng.uniform_int(1, 3));
  opt.rack_loss_probability = 0.6;
  opt.disk_failure_probability = 0.4;
  opt.amnesia_probability = 0.3;

  harness::Scenario sc;
  sc.name = "streaming-correlated-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan::chaos(GetParam() ^ 0xc0fa, nodes, horizon, opt);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a7));
  Checker ck(nodes, full_options());
  cluster.set_stream_observer(&ck);

  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  ck.finish(cluster.scheduler().now());

  // Stale-disk restarts truncate shadows; replays must not read as
  // divergence here either.
  EXPECT_EQ(ck.divergence_events(), 0u);
  expect_matches_oracles(cluster, ck);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingCorrelatedChaos,
                         ::testing::Range<std::uint64_t>(5000, 5010));

// --- Serializable mixed mode ---------------------------------------------
//
// Serializable submissions reserve a timestamp before deciding, which is
// the one case where the finalization watermark must stall on a
// reservation rather than on observed traffic. Mix both modes and demand
// oracle identity.
TEST(StreamingSerializable, MixedModeMatchesOracles) {
  harness::Scenario sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(0x5e41));
  Checker ck(3, full_options());
  cluster.set_stream_observer(&ck);

  sim::Rng rng(0x5e42);
  for (int i = 0; i < 80; ++i) {
    const double t = rng.uniform(0.0, 15.0);
    const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 2));
    const auto person = static_cast<al::Person>(rng.uniform_int(1, 60));
    al::Request req = al::Request::request(person);
    const double roll = rng.uniform01();
    if (roll < 0.25) {
      req = al::Request::move_up();
    } else if (roll < 0.4) {
      req = al::Request::move_down();
    } else if (roll < 0.5) {
      req = al::Request::cancel(person);
    }
    if (rng.bernoulli(0.3)) {
      cluster.submit_serializable_at(t, node, req);
    } else {
      cluster.submit_at(t, node, req);
    }
  }
  cluster.run_until(15.0);
  cluster.settle();
  ck.finish(cluster.scheduler().now());

  EXPECT_EQ(ck.divergence_events(), 0u);
  expect_matches_oracles(cluster, ck);
}

// --- Byzantine tier -------------------------------------------------------

class StreamingByzantine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingByzantine, MatchesOraclesUnderPayloadCorruption) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "streaming-byzantine";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.3);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.faults.byzantine_payload(/*corrupt=*/0.08, /*duplicate=*/0.05,
                              /*reorder=*/0.05, /*start=*/0.0,
                              /*end=*/horizon);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a0));
  Checker ck(nodes, full_options());
  cluster.set_stream_observer(&ck);

  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  // No settle(): corrupted replicas never converge. Run the horizon, then
  // a drain window so in-flight wires land.
  cluster.run_until(horizon);
  cluster.run_until(horizon + 20.0);
  ck.finish(cluster.scheduler().now());

  // Streaming and post-hoc agree even on poisoned executions.
  expect_matches_oracles(cluster, ck);

  // An applied corruption changes some replica's merged state; the
  // untrusting per-delivery check must see it the moment it lands.
  const obs::MetricsRegistry reg = cluster.metrics();
  const std::uint64_t corrupted = reg.counters().at("broadcast.byz_corrupted");
  if (corrupted > 0) {
    EXPECT_GT(ck.divergence_events(), 0u) << "silent corruption";
  }

  RecordProperty("byz_corrupted", static_cast<int>(corrupted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingByzantine,
                         ::testing::Range<std::uint64_t>(1000, 1012));

// Across the Byzantine seed sweep the adversary must actually land hits
// and the checkers must actually report: a sweep where nothing fired
// would make the differential identity above vacuous.
TEST(StreamingByzantine, AdversaryAndDetectorBothFireAcrossSweep) {
  std::uint64_t total_corrupted = 0;
  std::uint64_t total_divergence = 0;
  std::size_t total_violations = 0;
  for (std::uint64_t seed = 1000; seed < 1012; ++seed) {
    sim::Rng rng(seed);
    const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const double horizon = 25.0;

    harness::Scenario sc;
    sc.num_nodes = nodes;
    sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                       rng.uniform(0.05, 0.3), 5.0);
    sc.drop_probability = rng.uniform(0.0, 0.3);
    sc.faults = sim::FaultPlan(seed ^ 0x9afb);
    sc.faults.random_partitions(nodes, horizon,
                                static_cast<int>(rng.uniform_int(0, 3)));
    sc.faults.byzantine_payload(0.08, 0.05, 0.05, 0.0, horizon);
    sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed ^ 0xc4a0));
    Checker ck(nodes, full_options());
    cluster.set_stream_observer(&ck);

    harness::AirlineWorkload w;
    w.duration = horizon;
    w.request_rate = rng.uniform(1.0, 5.0);
    w.mover_rate = rng.uniform(1.0, 6.0);
    w.move_down_fraction = rng.uniform(0.1, 0.5);
    w.cancel_fraction = rng.uniform(0.0, 0.3);
    w.max_persons = 200;
    harness::drive_airline(cluster, w, seed ^ 0x5eed);

    cluster.run_until(horizon);
    cluster.run_until(horizon + 20.0);
    ck.finish(cluster.scheduler().now());

    const obs::MetricsRegistry reg = cluster.metrics();
    total_corrupted += reg.counters().at("broadcast.byz_corrupted");
    total_divergence += ck.divergence_events();
    total_violations += ck.violation_count();
  }
  EXPECT_GT(total_corrupted, 0u);
  EXPECT_GT(total_divergence, 0u);
  EXPECT_GT(total_violations, 0u);
}

// --- Bounded memory -------------------------------------------------------
//
// With Options::bounded_memory on a rewind-free plan, the checker's
// retained footprint (pending + ledgers + shadows) tracks the delivery
// window, not the history: pruning must neither change any report nor
// leave more than a window's worth of entries once the cluster settles.
TEST(StreamingBoundedMemory, RetainedFootprintIsWindowSized) {
  harness::Scenario sc = harness::wan(4);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(0xb0b0));
  Checker ck(4, full_options(nullptr, /*bounded=*/true));
  cluster.set_stream_observer(&ck);

  harness::AirlineWorkload w;
  w.duration = 40.0;
  w.request_rate = 5.0;
  w.mover_rate = 4.0;
  harness::drive_airline(cluster, w, 0xb0b1);

  cluster.run_until(w.duration);
  cluster.settle();
  ck.finish(cluster.scheduler().now());

  // Pruning is an optimization, never a semantic change.
  EXPECT_EQ(ck.divergence_events(), 0u);
  expect_matches_oracles(cluster, ck);

  const std::size_t history = cluster.execution().size();
  ASSERT_GT(history, 150u) << "run too small to distinguish window from history";
  // Once settled, every update is globally delivered: ledgers prune to
  // empty, shadows fold, pending drains.
  EXPECT_LT(ck.retained_entries(), 64u);
  // And the running peaks stayed window-sized too — the unbounded
  // footprint would be ~nodes * history for the shadows alone.
  const obs::MetricsRegistry reg = cluster.metrics();
  EXPECT_LT(reg.counters().at("checker.peak_ledger_entries"), history);
  EXPECT_LT(reg.counters().at("checker.peak_shadow_entries"), 4 * history / 2);
  EXPECT_EQ(reg.counters().at("checker.txs_finalized"), history);
}

// --- Trace pinning --------------------------------------------------------

// The latent trace_dump flaw this guards against: by the time a post-run
// dump asks the ring for a violation's context, a busy run has wrapped the
// ring past the offending update and the window silently comes back empty.
// Windows pinned at detection time must survive the wrap.
TEST(StreamingTracePinning, PinnedWindowsSurviveRingWrap) {
  harness::Scenario sc = harness::lan(3);
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 64;  // tiny: guarantee eviction
  sc.faults.byzantine_payload(/*corrupt=*/1.0, 0.0, 0.0, 0.0, 1e18);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(0x71a5));
  Checker ck(3, full_options(cluster.tracer()));
  cluster.set_stream_observer(&ck);

  harness::AirlineWorkload w;
  w.duration = 20.0;
  w.request_rate = 4.0;
  w.mover_rate = 4.0;
  harness::drive_airline(cluster, w, 0x71a6);

  cluster.run_until(w.duration);
  cluster.run_until(w.duration + 10.0);
  ck.finish(cluster.scheduler().now());

  ASSERT_GT(ck.divergence_events(), 0u);
  ASSERT_FALSE(ck.pinned_windows().empty());
  ASSERT_GT(cluster.tracer()->evicted(), 0u);

  // At least one pinned window captured context that the live ring has
  // since wrapped past — exactly the case the pre-pinning dump lost.
  bool survived_wrap = false;
  for (const obs::PinnedWindow& pw : ck.pinned_windows()) {
    if (!pw.events.empty() &&
        cluster.tracer()->slice_around(pw.ts_logical, pw.ts_node).empty()) {
      survived_wrap = true;
      break;
    }
  }
  EXPECT_TRUE(survived_wrap);
}

// The pinned-window trace_dump overload renders from pins, never from the
// live ring: a report whose tx has a pinned window prints it; one without
// says so instead of coming back empty.
TEST(StreamingTracePinning, TraceDumpRendersFromPinnedWindows) {
  harness::Scenario sc = harness::lan(2);
  sc.trace.enabled = true;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(0x71b0));
  cluster.submit_at(0.1, 0, al::Request::request(1));
  cluster.submit_at(0.2, 1, al::Request::request(2));
  cluster.run_until(1.0);
  cluster.settle();
  const auto exec = cluster.execution();
  ASSERT_EQ(exec.size(), 2u);

  analysis::CheckReport report("pinning self-test");
  report.add_violation("synthetic violation at tx 0", 0);
  report.add_violation("synthetic violation at tx 1", 1);

  std::vector<obs::PinnedWindow> pinned;
  obs::PinnedWindow pw;
  pw.ts_logical = exec.tx(0).ts.logical;
  pw.ts_node = exec.tx(0).ts.node;
  pw.events = cluster.tracer()->slice_around(pw.ts_logical, pw.ts_node, 4);
  ASSERT_FALSE(pw.events.empty());
  pinned.push_back(pw);

  const std::string dump = analysis::trace_dump(report, exec, pinned);
  EXPECT_NE(dump.find("pinned trace context"), std::string::npos);
  EXPECT_NE(dump.find("pinned window:"), std::string::npos);
  EXPECT_NE(dump.find("(no window pinned for this update)"),
            std::string::npos);  // tx 1 has no pin
}

}  // namespace
