// Crash/recovery fault injection (sim/fault_plan.hpp + Node::crash/restart).
//
// The paper's availability claim (section 1.2) is continued operation
// "barring permanent communication failures" — a crashed node is a
// transient communication failure plus (in amnesia mode) loss of volatile
// state. These tests exercise both recovery modes end-to-end and verify the
// section 3 guarantee stack survives: replicas converge, executions satisfy
// the prefix-subsequence condition, decisions are never re-run, external
// actions never re-fire, and runs stay bit-for-bit deterministic.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using Cluster = shard::Cluster<Air>;

/// Canonical byte serialization of an execution trace, for the determinism
/// regression: two runs agree iff these strings are identical.
template <class App>
std::string trace_bytes(const core::Execution<App>& exec) {
  std::ostringstream os;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    os << tx.ts.logical << ':' << tx.ts.node << " origin=" << tx.origin
       << " t=" << tx.real_time << " prefix[";
    for (std::size_t j : tx.prefix) os << j << ',';
    os << "] ext[";
    for (const auto& a : tx.external_actions) {
      os << a.kind << '=' << a.subject << ',';
    }
    os << "]\n";
  }
  return os.str();
}

/// The full section 3 stack every crash-recovery run must pass.
void expect_guarantees(Cluster& cluster) {
  ASSERT_TRUE(cluster.converged());
  const auto exec = cluster.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
  EXPECT_EQ(cluster.node(0).state(), exec.final_state());
  // Decisions ran exactly once each: every decision produced exactly one
  // recorded transaction, and no crash/recovery path re-ran any.
  EXPECT_EQ(cluster.aggregate_engine_stats().decisions_run, exec.size());
}

TEST(FaultPlanCrashes, DownWindowsAndQueries) {
  sim::FaultPlan plan;
  plan.crash(1, 2.0, 5.0).crash(0, 4.0, 6.0, sim::RecoveryMode::kAmnesia);
  EXPECT_FALSE(plan.down(1, 1.9));
  EXPECT_TRUE(plan.down(1, 2.0));
  EXPECT_TRUE(plan.down(1, 4.9));
  EXPECT_FALSE(plan.down(1, 5.0));
  EXPECT_TRUE(plan.down(0, 4.5));
  EXPECT_FALSE(plan.down(2, 4.5));
  EXPECT_DOUBLE_EQ(plan.last_restart_time(), 6.0);
  EXPECT_DOUBLE_EQ(plan.total_downtime(), 5.0);
  EXPECT_NE(plan.describe().find("2 crash event(s)"), std::string::npos);
}

TEST(FaultPlanCrashes, RejectsEmptyAndOverlappingWindows) {
  sim::FaultPlan plan;
  plan.crash(0, 1.0, 2.0);
  EXPECT_THROW(plan.crash(0, 1.5, 3.0), std::invalid_argument);
  EXPECT_THROW(plan.crash(1, 2.0, 2.0), std::invalid_argument);
  // A different node may overlap in time.
  EXPECT_NO_THROW(plan.crash(1, 1.5, 3.0));
}

TEST(FaultPlanCrashes, RandomGeneratorProducesValidSchedules) {
  sim::FaultPlan plan(7);
  plan.random_crashes(4, 30.0, 12, 1.0, 4.0, 0.5);
  const auto& events = plan.crashes().events();
  for (const auto& ev : events) {
    EXPECT_LT(ev.node, 4u);
    EXPECT_LT(ev.start, ev.end);
    for (const auto& other : events) {
      if (&ev == &other || ev.node != other.node) continue;
      EXPECT_TRUE(ev.end <= other.start || other.end <= ev.start)
          << "overlapping windows for node " << ev.node;
    }
  }
  // Determinism of the generator itself: same plan seed, same schedule.
  sim::FaultPlan plan2(7);
  plan2.random_crashes(4, 30.0, 12, 1.0, 4.0, 0.5);
  const auto& events2 = plan2.crashes().events();
  ASSERT_EQ(events.size(), events2.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].node, events2[i].node);
    EXPECT_DOUBLE_EQ(events[i].start, events2[i].start);
    EXPECT_EQ(static_cast<int>(events[i].mode),
              static_cast<int>(events2[i].mode));
  }
}

/// Node 2 crashes mid-run and recovers durably: its log survives, it only
/// catches up on what it missed, and the whole stack still holds.
TEST(CrashRecovery, DurableRecoveryConvergesAndCatchesUp) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash(2, 5.0, 10.0, sim::RecoveryMode::kDurable);
  Cluster cluster(sc.cluster_config<Air>(42));
  harness::AirlineWorkload w;
  w.duration = 15.0;
  w.request_rate = 4.0;
  w.mover_rate = 2.0;
  harness::drive_airline(cluster, w, 43);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_guarantees(cluster);

  const shard::EngineStats& s2 = cluster.node(2).engine_stats();
  EXPECT_EQ(s2.crashes, 1u);
  EXPECT_EQ(s2.recoveries, 1u);
  EXPECT_DOUBLE_EQ(s2.downtime, 5.0);
  EXPECT_GT(s2.catch_up_updates, 0u);  // it missed traffic while down
  EXPECT_GE(s2.recovery_lag, 0.0);
  EXPECT_FALSE(cluster.node(2).down());
  EXPECT_FALSE(cluster.node(2).catching_up());
  // Down-node message loss was actually exercised.
  EXPECT_GT(cluster.network().stats().dropped_crashed, 0u);
  // Durable recovery keeps the pre-crash log: no amnesia machinery ran.
  EXPECT_EQ(cluster.node(2).broadcast_stats().amnesia_resets, 0u);
}

/// Node 2 loses everything (amnesia) and resynchronizes from its stable
/// outbox plus peer repair.
TEST(CrashRecovery, AmnesiaRecoveryConverges) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash(2, 5.0, 8.0, sim::RecoveryMode::kAmnesia);
  Cluster cluster(sc.cluster_config<Air>(42));
  // Ensure node 2 originated transactions before the crash, so the stable
  // outbox replay has something to do.
  for (double t : {0.5, 1.0, 1.5, 2.0}) {
    cluster.submit_at(t, 2, al::Request::move_up());
  }
  harness::AirlineWorkload w;
  w.duration = 15.0;
  w.request_rate = 4.0;
  harness::drive_airline(cluster, w, 43);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_guarantees(cluster);

  const shard::EngineStats& s2 = cluster.node(2).engine_stats();
  EXPECT_EQ(s2.crashes, 1u);
  EXPECT_EQ(s2.recoveries, 1u);
  EXPECT_GT(s2.catch_up_updates, 0u);
  const net::BroadcastStats& b2 = cluster.node(2).broadcast_stats();
  EXPECT_EQ(b2.amnesia_resets, 1u);
  EXPECT_GE(b2.outbox_replays, 4u);  // its own pre-crash transactions
}

/// With identical seed/workload and no post-crash submissions at the
/// crashed node, durable and amnesia recovery must reach the identical
/// final state: recovery mode changes how node 2 rebuilds, never what the
/// cluster decided.
TEST(CrashRecovery, DurableAndAmnesiaReachIdenticalFinalState) {
  const auto run = [](sim::RecoveryMode mode) {
    harness::Scenario sc = harness::lan(3);
    sc.faults.crash(2, 4.0, 9.0, mode);
    Cluster cluster(sc.cluster_config<Air>(77));
    // Node 2 participates before its crash...
    for (double t : {0.5, 1.5, 2.5}) {
      cluster.submit_at(t, 2, al::Request::move_up());
    }
    // ...but all later traffic goes to the survivors, so both modes accept
    // exactly the same transactions.
    sim::Rng rng(78);
    for (int i = 1; i <= 40; ++i) {
      const double t = 0.25 * i;
      const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 1));
      cluster.submit_at(t, node, al::Request::request(
                                     static_cast<al::Person>(i)));
    }
    cluster.run_until(12.0);
    cluster.settle();
    expect_guarantees(cluster);
    return trace_bytes(cluster.execution());
  };
  EXPECT_EQ(run(sim::RecoveryMode::kDurable),
            run(sim::RecoveryMode::kAmnesia));
}

/// A node crashes while a partition is open; both failures must heal
/// independently and the run still converges checker-clean.
TEST(CrashRecovery, CrashDuringOpenPartitionHealsAfterBothEnd) {
  harness::Scenario sc = harness::lan(4);
  sc.faults.split_halves(4, 2, 3.0, 12.0)  // {0,1} | {2,3}
      .crash(1, 5.0, 9.0, sim::RecoveryMode::kAmnesia);  // inside the cut
  Cluster cluster(sc.cluster_config<Air>(11));
  harness::AirlineWorkload w;
  w.duration = 15.0;
  w.request_rate = 3.0;
  w.mover_rate = 2.0;
  harness::drive_airline(cluster, w, 12);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_guarantees(cluster);
  EXPECT_EQ(cluster.node(1).engine_stats().crashes, 1u);
  EXPECT_GT(cluster.network().stats().dropped_partition, 0u);
  EXPECT_GT(cluster.network().stats().dropped_crashed, 0u);
}

/// Submissions reaching a down origin are rejected and counted — never
/// silently executed, never resurrected after the restart.
TEST(CrashRecovery, DownNodeRejectsSubmissionsNeverExecutesThem) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash(0, 5.0, 10.0);
  Cluster cluster(sc.cluster_config<Air>(5));
  // Three accepted before the crash, four rejected during, two after.
  for (double t : {1.0, 2.0, 3.0}) {
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  for (double t : {6.0, 7.0, 8.0, 9.0}) {
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  for (double t : {11.0, 12.0}) {
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  cluster.run_until(13.0);
  cluster.settle();
  expect_guarantees(cluster);
  EXPECT_EQ(cluster.scheduled_submissions(), 9u);
  EXPECT_EQ(cluster.node(0).engine_stats().rejected_submissions, 4u);
  EXPECT_EQ(cluster.execution().size(), 5u);
  EXPECT_EQ(cluster.node(0).originated().size(), 5u);
}

/// A crash kills pending serializable reservations: the client observes
/// unavailability (counted as a rejection) and the waiting protocol stays
/// live for transactions submitted after the restart.
TEST(CrashRecovery, CrashDropsPendingSerializableReservations) {
  harness::Scenario sc = harness::lan(3);
  Cluster cluster(sc.cluster_config<Air>(9));
  cluster.submit_serializable_at(0.05, 0, al::Request::move_up());
  cluster.run_until(0.06);  // reservation made, promises not yet gathered
  ASSERT_EQ(cluster.pending_serializable(), 1u);
  cluster.node(0).crash(0.06);
  EXPECT_EQ(cluster.pending_serializable(), 0u);
  EXPECT_EQ(cluster.node(0).engine_stats().rejected_submissions, 1u);
  cluster.node(0).restart(sim::RecoveryMode::kDurable, 0.5);
  // Post-restart serializable work completes normally.
  cluster.submit_serializable_at(1.0, 0, al::Request::move_up());
  cluster.run_until(1.0);
  cluster.settle();
  expect_guarantees(cluster);
  EXPECT_EQ(cluster.execution().size(), 1u);
}

/// External actions fire exactly once per decision, even when the origin
/// subsequently loses all volatile state and replays its outbox.
TEST(CrashRecovery, ExternalActionsFireExactlyOnceAcrossCrash) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash(0, 4.0, 7.0, sim::RecoveryMode::kAmnesia);
  Cluster cluster(sc.cluster_config<Air>(21));
  // All MOVE-UPs centralized at node 0 — the node that later loses all
  // volatile state. Sequential grants at one origin touch each person at
  // most once, so any decision re-fired by the outbox replay would show as
  // a duplicate grant-seat action.
  for (int i = 1; i <= 8; ++i) {
    cluster.submit_at(0.2 * i, 0,
                      al::Request::request(static_cast<al::Person>(i)));
  }
  for (double t : {2.0, 2.2, 2.4}) {          // grants before the crash
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  for (double t : {8.0, 8.2, 8.4}) {          // grants after amnesia restart
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  cluster.run_until(10.0);
  cluster.settle();
  expect_guarantees(cluster);
  const auto exec = cluster.execution();
  std::map<std::string, int> grants;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const auto& a : exec.tx(i).external_actions) {
      if (a.kind == "grant-seat") ++grants[a.subject];
    }
  }
  EXPECT_EQ(grants.size(), 6u);  // three grants each side of the crash
  for (const auto& [subject, count] : grants) {
    EXPECT_EQ(count, 1) << "duplicate grant for " << subject;
  }
}

/// Manual crash()/restart() are idempotent, and direct submission on a
/// down node is an error (scheduled submissions are rejected instead).
TEST(CrashRecovery, CrashAndRestartAreIdempotent) {
  harness::Scenario sc = harness::lan(2);
  Cluster cluster(sc.cluster_config<Air>(3));
  auto& node = cluster.node(0);
  node.crash(1.0);
  node.crash(2.0);  // no-op
  EXPECT_EQ(node.engine_stats().crashes, 1u);
  EXPECT_THROW(node.submit(al::Request::move_up(), 2.5), std::logic_error);
  EXPECT_FALSE(node.try_submit(al::Request::move_up(), 2.5).has_value());
  EXPECT_EQ(node.engine_stats().rejected_submissions, 1u);
  node.restart(sim::RecoveryMode::kDurable, 3.0);
  node.restart(sim::RecoveryMode::kAmnesia, 4.0);  // no-op
  EXPECT_EQ(node.engine_stats().recoveries, 1u);
  EXPECT_EQ(node.broadcast_stats().amnesia_resets, 0u);
  EXPECT_DOUBLE_EQ(node.engine_stats().downtime, 2.0);
  EXPECT_TRUE(node.try_submit(al::Request::move_up(), 4.5).has_value());
}

/// Determinism regression: with crashes (both modes), a partition, and
/// random drops all enabled, the same Cluster::Config::seed must produce a
/// byte-identical execution trace across two fresh runs.
TEST(CrashRecovery, SameSeedWithCrashesIsByteIdentical) {
  const auto run = [] {
    harness::Scenario sc = harness::wan(4);
    sc.faults.split_halves(4, 2, 6.0, 10.0)
        .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
        .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia);
    // Tracing on: the serialized event stream (every scheduler dispatch,
    // message fate, merge, crash...) joins the compared bytes, so any
    // nondeterminism anywhere in the stack fails this test — and any
    // behavior change *caused by* enabling tracing would show up as a
    // diff in the execution trace the other tiers capture untraced.
    sc.trace.enabled = true;
    Cluster cluster(sc.cluster_config<Air>(0xD37E));
    obs::VectorSink events;
    cluster.tracer()->add_sink(&events);
    harness::AirlineWorkload w;
    w.duration = 14.0;
    w.request_rate = 5.0;
    w.mover_rate = 3.0;
    w.cancel_fraction = 0.2;
    harness::drive_airline(cluster, w, 0x5EED);
    cluster.run_until(w.duration);
    cluster.settle();
    std::ostringstream os;
    os << trace_bytes(cluster.execution());
    os << cluster.aggregate_engine_stats().summary() << '\n';
    for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
      os << cluster.node(n).broadcast_stats().summary() << '\n';
    }
    os << obs::serialize(events.events());
    os << cluster.metrics().to_json() << '\n';
    return os.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("crashes=2"), std::string::npos);
  EXPECT_NE(a.find("node.crash"), std::string::npos);
  EXPECT_NE(a.find("node.restart"), std::string::npos);
}

/// Disk failure (stale-disk recovery): node 2 restarts from a checkpoint
/// that lost the most recent 60% of its merged log. The truncated suffix
/// is re-merged through undo/redo plus anti-entropy repair, and the full
/// guarantee stack holds afterwards.
TEST(StaleCheckpointRecovery, RecoversFromTruncatedLog) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.disk_failure(2, 8.0, 12.0, /*keep_fraction=*/0.4);
  Cluster cluster(sc.cluster_config<Air>(42));
  // Node 2 originates before the failure so its own outbox tail is part of
  // what the stale restart must re-accept.
  for (double t : {0.5, 1.0, 1.5, 2.0}) {
    cluster.submit_at(t, 2, al::Request::move_up());
  }
  harness::AirlineWorkload w;
  w.duration = 16.0;
  w.request_rate = 4.0;
  w.mover_rate = 2.0;
  harness::drive_airline(cluster, w, 43);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_guarantees(cluster);

  const shard::EngineStats& s2 = cluster.node(2).engine_stats();
  EXPECT_EQ(s2.crashes, 1u);
  EXPECT_EQ(s2.recoveries, 1u);
  EXPECT_GT(s2.catch_up_updates, 0u);  // the lost suffix plus downtime traffic
  const net::BroadcastStats& b2 = cluster.node(2).broadcast_stats();
  EXPECT_EQ(b2.stale_resets, 1u);
  EXPECT_EQ(b2.amnesia_resets, 0u);
  EXPECT_GE(b2.outbox_replays, 0u);
  EXPECT_FALSE(cluster.node(2).down());
}

/// keep_fraction edge cases: 1.0 degenerates to a durable restart (nothing
/// truncated), 0.0 is a full rewind — strictly worse than amnesia's stable
/// log, yet still recoverable from peers.
TEST(StaleCheckpointRecovery, KeepFractionEdgeCases) {
  for (const double keep : {1.0, 0.0}) {
    harness::Scenario sc = harness::lan(3);
    sc.faults.disk_failure(1, 6.0, 9.0, keep);
    Cluster cluster(sc.cluster_config<Air>(7));
    harness::AirlineWorkload w;
    w.duration = 12.0;
    w.request_rate = 3.0;
    w.mover_rate = 2.0;
    harness::drive_airline(cluster, w, 8);
    cluster.run_until(w.duration);
    cluster.settle();
    expect_guarantees(cluster);
    EXPECT_EQ(cluster.node(1).broadcast_stats().stale_resets, 1u)
        << "keep=" << keep;
  }
}

/// Determinism regression for the new fault modes: a run mixing stale-disk
/// recovery, a rack power loss, and a mid-broadcast crash must be
/// byte-identical across two fresh runs with the same seed — execution
/// trace, stats, serialized event stream, and metrics alike.
TEST(StaleCheckpointRecovery, SameSeedIsByteIdentical) {
  const auto run = [] {
    harness::Scenario sc = harness::wan(4);
    sc.faults = sim::FaultPlan(0xFA17);
    sc.faults.disk_failure(1, 3.0, 6.5)  // seeded keep_fraction draw
        .rack_power_loss({2, 3}, 4, 8.0, 11.0)
        .crash_mid_broadcast(0, 3, /*down_for=*/2.0);
    sc.trace.enabled = true;
    Cluster cluster(sc.cluster_config<Air>(0xD37E));
    obs::VectorSink events;
    cluster.tracer()->add_sink(&events);
    harness::AirlineWorkload w;
    w.duration = 14.0;
    w.request_rate = 5.0;
    w.mover_rate = 3.0;
    w.cancel_fraction = 0.2;
    harness::drive_airline(cluster, w, 0x5EED);
    cluster.run_until(w.duration);
    cluster.settle();
    std::ostringstream os;
    os << trace_bytes(cluster.execution());
    os << cluster.aggregate_engine_stats().summary() << '\n';
    for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
      os << cluster.node(n).broadcast_stats().summary() << '\n';
    }
    os << obs::serialize(events.events());
    os << cluster.metrics().to_json() << '\n';
    return os.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("stale_resets=1"), std::string::npos);
  EXPECT_NE(a.find("mid_broadcast_crashes=1"), std::string::npos);
}

/// The write-ahead intention-log boundary: node 0 crashes after appending
/// its 3rd originated update to the stable outbox but before the first
/// flood send. The decision has run and its external actions have fired,
/// so the update must eventually merge everywhere, exactly once — it is
/// either never visible anywhere or visible everywhere; no third outcome.
TEST(MidBroadcastCrash, DurableButUnsentUpdateMergesExactlyOnce) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash_mid_broadcast(0, 3, /*down_for=*/3.0);
  Cluster cluster(sc.cluster_config<Air>(17));
  // Five sequential requests at node 0; the third trips the armed crash
  // (the interrupted update is durable but unsent), and the remaining two
  // arrive while the node is down, so they are rejected. The grants are
  // submitted after the restart.
  for (int i = 1; i <= 5; ++i) {
    cluster.submit_at(0.2 * i, 0,
                      al::Request::request(static_cast<al::Person>(i)));
  }
  for (double t : {4.5, 5.0, 5.5}) {
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  cluster.run_until(10.0);
  cluster.settle();
  expect_guarantees(cluster);

  EXPECT_EQ(cluster.node(0).broadcast_stats().mid_broadcast_crashes, 1u);
  EXPECT_EQ(cluster.node(0).engine_stats().crashes, 1u);
  EXPECT_EQ(cluster.node(0).engine_stats().recoveries, 1u);
  // The interrupted update is visible at every replica exactly once: all
  // replicas converged (checked above) and the trace holds each decision
  // exactly once, so it suffices that node 0's origin log made it into the
  // shared execution — and no grant fired twice.
  const auto exec = cluster.execution();
  std::map<std::string, int> grants;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const auto& a : exec.tx(i).external_actions) {
      if (a.kind == "grant-seat") ++grants[a.subject];
    }
  }
  EXPECT_EQ(grants.size(), 3u);
  for (const auto& [subject, count] : grants) {
    EXPECT_EQ(count, 1) << "duplicate grant for " << subject;
  }
  // 3 requests (the interrupted third included) + 3 grants; the two
  // requests that reached a down node were rejected, not deferred.
  EXPECT_EQ(cluster.node(0).originated().size(), 6u);
  EXPECT_EQ(cluster.node(0).engine_stats().rejected_submissions, 2u);
}

/// A mid-broadcast crash whose trigger never happens (the node never
/// reaches that origin seq) is a no-op: no crash, clean run.
TEST(MidBroadcastCrash, UnreachedTriggerNeverFires) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash_mid_broadcast(1, 1000);
  Cluster cluster(sc.cluster_config<Air>(23));
  harness::AirlineWorkload w;
  w.duration = 6.0;
  w.request_rate = 2.0;
  harness::drive_airline(cluster, w, 24);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_guarantees(cluster);
  EXPECT_EQ(cluster.aggregate_engine_stats().crashes, 0u);
  EXPECT_EQ(cluster.node(1).broadcast_stats().mid_broadcast_crashes, 0u);
}

/// Mid-broadcast crash followed by amnesia recovery: the stable outbox
/// (which already holds the interrupted record) is replayed, and the
/// update still merges exactly once everywhere.
TEST(MidBroadcastCrash, AmnesiaRestartReplaysInterruptedRecord) {
  harness::Scenario sc = harness::lan(3);
  sc.faults.crash_mid_broadcast(0, 2, /*down_for=*/2.0,
                                sim::RecoveryMode::kAmnesia);
  Cluster cluster(sc.cluster_config<Air>(29));
  for (double t : {0.5, 1.0}) {
    cluster.submit_at(t, 0, al::Request::move_up());
  }
  harness::AirlineWorkload w;
  w.duration = 8.0;
  w.request_rate = 2.0;
  harness::drive_airline(cluster, w, 30);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_guarantees(cluster);
  const net::BroadcastStats& b0 = cluster.node(0).broadcast_stats();
  EXPECT_EQ(b0.mid_broadcast_crashes, 1u);
  EXPECT_EQ(b0.amnesia_resets, 1u);
  EXPECT_GE(b0.outbox_replays, 2u);  // both pre-crash records, incl. the
                                     // interrupted one
}

}  // namespace
