// Grapevine-style name service (paper section 6): update/decision
// semantics, the dangling-membership integrity constraint, the SCRUB
// compensator (including the stale-scrub-vs-re-registration policy), and
// cluster runs through partitions — "interesting but nonserializable
// behavior ... described within our framework".
#include <gtest/gtest.h>

#include "analysis/compensation.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/tx_conditions.hpp"
#include "apps/grapevine/grapevine.hpp"
#include "harness/scenario.hpp"
#include "shard/cluster.hpp"
#include "sim/rng.hpp"

namespace {

namespace gv = apps::grapevine;
using gv::Grapevine;
using gv::Request;
using gv::Update;

TEST(Grapevine, RegisterAndDeregister) {
  gv::State s;
  Grapevine::apply({Update::Kind::kRegister, 1, 0, "siteA", {}}, s);
  EXPECT_TRUE(s.is_registered(1));
  EXPECT_EQ(s.individuals.at(1), "siteA");
  Grapevine::apply({Update::Kind::kRegister, 1, 0, "siteB", {}}, s);
  EXPECT_EQ(s.individuals.at(1), "siteB");  // later update wins
  Grapevine::apply({Update::Kind::kDeregister, 1, 0, "", {}}, s);
  EXPECT_FALSE(s.is_registered(1));
}

TEST(Grapevine, MembershipIsIdempotentAndSorted) {
  gv::State s;
  Grapevine::apply({Update::Kind::kAddMember, 10, 3, "", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 1, "", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 3, "", {}}, s);  // dup
  EXPECT_EQ(s.groups.at(10), (std::vector<gv::Name>{1, 3}));
  EXPECT_TRUE(Grapevine::well_formed(s));
  Grapevine::apply({Update::Kind::kRemoveMember, 10, 1, "", {}}, s);
  EXPECT_EQ(s.groups.at(10), (std::vector<gv::Name>{3}));
  Grapevine::apply({Update::Kind::kRemoveMember, 10, 3, "", {}}, s);
  EXPECT_FALSE(s.groups.contains(10));  // empty groups disappear
}

TEST(Grapevine, DeregisterLeavesDanglingMembership) {
  gv::State s;
  Grapevine::apply({Update::Kind::kRegister, 1, 0, "a", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 1, "", {}}, s);
  EXPECT_DOUBLE_EQ(Grapevine::cost(s, 0), 0.0);
  Grapevine::apply({Update::Kind::kDeregister, 1, 0, "", {}}, s);
  EXPECT_EQ(s.dangling().size(), 1u);
  EXPECT_DOUBLE_EQ(Grapevine::cost(s, 0), Grapevine::kDanglingCost);
}

TEST(Grapevine, AddMemberDecisionRefusesVisiblyUnknownMembers) {
  gv::State s;
  const auto d = Grapevine::decide(Request::add_member(10, 7), s);
  ASSERT_EQ(d.external_actions.size(), 1u);
  EXPECT_EQ(d.external_actions[0].kind, "membership-refused");
  EXPECT_EQ(d.update, Update{});  // refused: no update
  // With the member registered: proceeds silently.
  Grapevine::apply({Update::Kind::kRegister, 7, 0, "a", {}}, s);
  const auto ok = Grapevine::decide(Request::add_member(10, 7), s);
  EXPECT_TRUE(ok.external_actions.empty());
  EXPECT_EQ(ok.update.kind, Update::Kind::kAddMember);
}

TEST(Grapevine, ResolveReportsObservedExpansion) {
  gv::State s;
  Grapevine::apply({Update::Kind::kRegister, 1, 0, "mx1", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 1, "", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 2, "", {}}, s);  // dangling
  const auto d = Grapevine::decide(Request::resolve(10), s);
  EXPECT_EQ(d.update, Update{});
  EXPECT_EQ(d.external_actions[0].subject, "R10={R1:mx1,R2:<dangling>}");
}

TEST(Grapevine, ScrubRemovesExactlyObservedDangling) {
  gv::State s;
  Grapevine::apply({Update::Kind::kRegister, 1, 0, "a", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 1, "", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 10, 2, "", {}}, s);
  Grapevine::apply({Update::Kind::kAddMember, 11, 2, "", {}}, s);
  const auto d = Grapevine::decide(Request::scrub(), s);
  EXPECT_EQ(d.update.scrub.size(), 2u);
  gv::State t = s;
  Grapevine::apply(d.update, t);
  EXPECT_TRUE(t.dangling().empty());
  EXPECT_TRUE(t.is_member(10, 1));  // healthy membership untouched
  // From a clean state, SCRUB is a no-op decision.
  EXPECT_EQ(Grapevine::decide(Request::scrub(), t).update, Update{});
}

TEST(Grapevine, StaleScrubSparesReRegisteredMembers) {
  // The scrub update re-checks at apply time: if the member was
  // re-registered by a transaction the scrubber hadn't seen, the
  // membership survives (the paper's duplicate-request policy style).
  gv::State observed;
  Grapevine::apply({Update::Kind::kAddMember, 10, 2, "", {}}, observed);
  const auto d = Grapevine::decide(Request::scrub(), observed);
  ASSERT_EQ(d.update.scrub.size(), 1u);
  // Actual state: R2 re-registered before the scrub applies.
  gv::State actual = observed;
  Grapevine::apply({Update::Kind::kRegister, 2, 0, "back", {}}, actual);
  Grapevine::apply(d.update, actual);
  EXPECT_TRUE(actual.is_member(10, 2));
  EXPECT_TRUE(actual.dangling().empty());
}

TEST(Grapevine, ScrubCompensatesLemma1) {
  // Iterating SCRUB from any state drives the referential-integrity cost
  // to zero (in one step — its decision sees all dangling pairs).
  sim::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    gv::State s;
    for (int i = 0; i < 25; ++i) {
      const auto n = static_cast<gv::Name>(rng.uniform_int(1, 6));
      const auto g = static_cast<gv::Name>(rng.uniform_int(10, 13));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          Grapevine::apply({Update::Kind::kRegister, n, 0, "s", {}}, s);
          break;
        case 1:
          Grapevine::apply({Update::Kind::kDeregister, n, 0, "", {}}, s);
          break;
        case 2:
          Grapevine::apply({Update::Kind::kAddMember, g, n, "", {}}, s);
          break;
        default:
          Grapevine::apply({Update::Kind::kRemoveMember, g, n, "", {}}, s);
          break;
      }
    }
    const auto run = analysis::iterate_compensator<Grapevine>(
        s, Request::scrub(), Grapevine::kReferentialIntegrity);
    EXPECT_TRUE(run.reached_zero);
    EXPECT_LE(run.updates.size(), 1u);
  }
}

TEST(Grapevine, SafetyClassification) {
  sim::Rng rng(6);
  std::vector<gv::State> sample;
  for (int i = 0; i < 200; ++i) {
    gv::State s;
    for (int j = 0; j < 15; ++j) {
      const auto n = static_cast<gv::Name>(rng.uniform_int(1, 5));
      const auto g = static_cast<gv::Name>(rng.uniform_int(10, 12));
      switch (rng.uniform_int(0, 3)) {
        case 0: Grapevine::apply({Update::Kind::kRegister, n, 0, "s", {}}, s); break;
        case 1: Grapevine::apply({Update::Kind::kDeregister, n, 0, "", {}}, s); break;
        case 2: Grapevine::apply({Update::Kind::kAddMember, g, n, "", {}}, s); break;
        default: Grapevine::apply({Update::Kind::kRemoveMember, g, n, "", {}}, s); break;
      }
    }
    sample.push_back(std::move(s));
  }
  // DEREGISTER and ADD-MEMBER are unsafe for referential integrity.
  EXPECT_FALSE(
      analysis::check_safe_for<Grapevine>(sample, sample,
                                          Request::deregister(1), 0)
          .ok());
  EXPECT_FALSE(analysis::check_safe_for<Grapevine>(
                   sample, sample, Request::add_member(10, 1), 0)
                   .ok());
  // REGISTER, REMOVE-MEMBER, RESOLVE, SCRUB are safe.
  for (const Request& r :
       {Request::register_individual(1, "s"), Request::remove_member(10, 1),
        Request::resolve(10), Request::scrub()}) {
    EXPECT_TRUE(
        analysis::check_safe_for<Grapevine>(sample, sample, r, 0).ok())
        << r.to_string();
  }
  // SCRUB compensates.
  EXPECT_TRUE(
      analysis::check_compensates<Grapevine>(sample, Request::scrub(), 0)
          .ok());
}

class GrapevineCluster : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrapevineCluster, ConvergesWithValidTraceUnderPartition) {
  auto sc = harness::partitioned_wan(4, 3.0, 12.0);
  shard::Cluster<Grapevine> cluster(
      sc.cluster_config<Grapevine>(GetParam()));
  sim::Rng rng((GetParam() ^ 0x60) + 7);
  for (int i = 0; i < 120; ++i) {
    const double t = rng.uniform(0.0, 15.0);
    const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 3));
    const auto n = static_cast<gv::Name>(rng.uniform_int(1, 10));
    const auto g = static_cast<gv::Name>(rng.uniform_int(20, 23));
    switch (rng.uniform_int(0, 5)) {
      case 0:
        cluster.submit_at(t, node,
                          Request::register_individual(n, "mx" +
                                                              std::to_string(node)));
        break;
      case 1:
        cluster.submit_at(t, node, Request::deregister(n));
        break;
      case 2:
      case 3:
        cluster.submit_at(t, node, Request::add_member(g, n));
        break;
      case 4:
        cluster.submit_at(t, node, Request::remove_member(g, n));
        break;
      default:
        cluster.submit_at(t, node, Request::resolve(g));
        break;
    }
  }
  cluster.run_until(15.0);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  const auto exec = cluster.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
  // Post-heal scrub restores referential integrity everywhere.
  cluster.submit_now(0, Request::scrub());
  cluster.settle();
  EXPECT_DOUBLE_EQ(Grapevine::cost(cluster.node(0).state(), 0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrapevineCluster,
                         ::testing::Values(701u, 702u, 703u));

TEST(Grapevine, StringsAreReadable) {
  EXPECT_EQ(Request::add_member(10, 2).to_string(), "ADD-MEMBER(R10,R2)");
  EXPECT_EQ((Update{Update::Kind::kDeregister, 3, 0, "", {}}).to_string(),
            "deregister(R3)");
}

}  // namespace
