// Literal reproduction of the paper's worked executions:
//  * the section 3.1 overbooking example (206 transactions),
//  * its section 3.2 transitivity repair,
//  * the section 5.4 counterexample (duplicate requests defeat Theorem 23's
//    weakening).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analysis/airline_theorems.hpp"
#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"

namespace {

namespace al = apps::airline;
using al::Airline;
using al::Request;
using al::Update;
using core::ScriptedExecution;

/// Build the section 3.1 execution. 0-based indices; the paper's
/// transaction #n is index n-1.
///
///   REQUEST(P1), MOVE-UP, REQUEST(P2), MOVE-UP, ..., REQUEST(P102),
///   MOVE-UP, MOVE-DOWN, CANCEL(P1)
///
/// "all the requests, the first 100 MOVE-UP transactions, and the
/// cancellation operate seeing complete prefixes. The next two MOVE-UP
/// transactions operate with incomplete prefixes. The first sees the
/// results of the first 99 REQUESTs and MOVE-UPs, plus the REQUEST for
/// P101, while the second sees the results of the first 99 REQUESTs and
/// MOVE-UPs, plus the REQUEST for P102. ... the MOVE-DOWN ... sees the
/// results of the first 202 transactions only."
ScriptedExecution<Airline> build_section31_example() {
  ScriptedExecution<Airline> sx;
  // First 100 pairs: complete prefixes.
  for (al::Person p = 1; p <= 100; ++p) {
    sx.run_complete(Request::request(p));
    sx.run_complete(Request::move_up());
  }
  // Pair 101: REQUEST complete; MOVE-UP sees txs 0..197 + REQUEST(P101).
  const std::size_t req101 = sx.run_complete(Request::request(101));
  {
    std::vector<std::size_t> prefix(198);
    std::iota(prefix.begin(), prefix.end(), 0);
    prefix.push_back(req101);
    sx.run(Request::move_up(), std::move(prefix));
  }
  // Pair 102: likewise with REQUEST(P102).
  const std::size_t req102 = sx.run_complete(Request::request(102));
  {
    std::vector<std::size_t> prefix(198);
    std::iota(prefix.begin(), prefix.end(), 0);
    prefix.push_back(req102);
    sx.run(Request::move_up(), std::move(prefix));
  }
  // MOVE-DOWN sees the first 202 transactions only.
  {
    std::vector<std::size_t> prefix(202);
    std::iota(prefix.begin(), prefix.end(), 0);
    sx.run(Request::move_down(), std::move(prefix));
  }
  // CANCEL(P1) with complete prefix.
  sx.run_complete(Request::cancel(1));
  return sx;
}

TEST(PaperExample31, GeneratedUpdatesMatchThePapersTable) {
  const auto sx = build_section31_example();
  const auto& exec = sx.execution();
  ASSERT_EQ(exec.size(), 206u);
  // Spot-check the right-hand column of the paper's table.
  EXPECT_EQ(exec.tx(0).update, (Update{Update::Kind::kRequest, 1}));
  EXPECT_EQ(exec.tx(1).update, (Update{Update::Kind::kMoveUp, 1}));
  EXPECT_EQ(exec.tx(2).update, (Update{Update::Kind::kRequest, 2}));
  EXPECT_EQ(exec.tx(3).update, (Update{Update::Kind::kMoveUp, 2}));
  EXPECT_EQ(exec.tx(202).update, (Update{Update::Kind::kRequest, 102}));
  EXPECT_EQ(exec.tx(203).update, (Update{Update::Kind::kMoveUp, 102}));
  // "it sees the assigned list with 101 people, and moves P101, the person
  // it observes to be last, down."
  EXPECT_EQ(exec.tx(204).update, (Update{Update::Kind::kMoveDown, 101}));
  EXPECT_EQ(exec.tx(205).update, (Update{Update::Kind::kCancel, 1}));
}

TEST(PaperExample31, SatisfiesPrefixSubsequenceCondition) {
  const auto sx = build_section31_example();
  const auto report =
      analysis::check_prefix_subsequence_condition(sx.execution());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(PaperExample31, State204HasOverbookingCost1800) {
  // "The state after the first 204 transactions, s204, has 102 people on
  // the assigned list in numerical order, and no one on the waiting list."
  const auto sx = build_section31_example();
  const auto s204 = sx.execution().actual_state_before(204);
  ASSERT_EQ(s204.assigned.size(), 102u);
  for (al::Person p = 1; p <= 102; ++p) {
    EXPECT_EQ(s204.assigned[p - 1], p);
  }
  EXPECT_TRUE(s204.waiting.empty());
  // "there is a reachable state (s204) for which the overbooking cost is
  // nonzero" — two over capacity at $900.
  EXPECT_DOUBLE_EQ(Airline::cost(s204, Airline::kOverbooking), 1800.0);
}

TEST(PaperExample31, MoveDownLeavesP101Waiting) {
  // "After the MOVE-DOWN, s205 has P101 on the waiting list and
  // P1, P2, ..., P100, P102 in order on the assigned list."
  const auto sx = build_section31_example();
  const auto s205 = sx.execution().actual_state_before(205);
  EXPECT_EQ(s205.waiting, (std::vector<al::Person>{101}));
  ASSERT_EQ(s205.assigned.size(), 101u);
  for (al::Person p = 1; p <= 100; ++p) EXPECT_EQ(s205.assigned[p - 1], p);
  EXPECT_EQ(s205.assigned[100], 102u);
}

TEST(PaperExample31, FinalStateHasExactly100Passengers) {
  // "The final cancellation then leaves the assigned list with exactly 100
  // passengers: P2, ..., P100, P102."
  const auto sx = build_section31_example();
  const auto final = sx.execution().final_state();
  ASSERT_EQ(final.assigned.size(), 100u);
  EXPECT_EQ(final.assigned.front(), 2u);
  EXPECT_EQ(final.assigned[98], 100u);
  EXPECT_EQ(final.assigned.back(), 102u);
  EXPECT_EQ(final.waiting, (std::vector<al::Person>{101}));
  EXPECT_DOUBLE_EQ(Airline::cost(final, Airline::kOverbooking), 0.0);
}

TEST(PaperExample31, UnfairToP101) {
  // "the execution is not entirely 'fair' in that P102 requests a seat
  // after P101 ... but P102 is allowed to remain on the assigned list while
  // P101 is moved down."
  const auto sx = build_section31_example();
  const auto final = sx.execution().final_state();
  EXPECT_TRUE(final.is_assigned(102));
  EXPECT_FALSE(final.is_assigned(101));
}

TEST(PaperExample31, ExternalActionsFiredOnceIncludingConflicts) {
  // P101 was granted a seat (by the incomplete MOVE-UP) and later
  // rescinded — the irreversible external-action conflict that motivates
  // the decision/update split.
  const auto sx = build_section31_example();
  const auto& exec = sx.execution();
  int grants_p101 = 0, rescinds_p101 = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const auto& a : exec.tx(i).external_actions) {
      if (a.subject == "P101") {
        if (a.kind == "grant-seat") ++grants_p101;
        if (a.kind == "rescind-seat") ++rescinds_p101;
      }
    }
  }
  EXPECT_EQ(grants_p101, 1);
  EXPECT_EQ(rescinds_p101, 1);
}

TEST(PaperExample32, NaiveVersionNotTransitiveButRepairable) {
  // Section 3.2 example: "The execution in the previous example fails to be
  // transitive, but for a trivial reason ... we can modify the execution
  // slightly, assigning each of REQUEST(P101) and REQUEST(P102) the prefix
  // subsequence consisting of the first 198 transactions, without changing
  // the updates generated. The resulting modified execution is transitive."
  auto sx = build_section31_example();
  EXPECT_FALSE(analysis::is_transitive(sx.execution()));
  std::vector<std::size_t> first198(198);
  std::iota(first198.begin(), first198.end(), 0);
  sx.reassign_prefix(200, first198);  // REQUEST(P101)
  sx.reassign_prefix(202, first198);  // REQUEST(P102)
  EXPECT_TRUE(analysis::is_transitive(sx.execution()));
  // Updates unchanged and condition (3) still holds (REQUEST decisions are
  // prefix-independent).
  const auto report =
      analysis::check_prefix_subsequence_condition(sx.execution());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(sx.execution().tx(200).update,
            (Update{Update::Kind::kRequest, 101}));
}

TEST(PaperExample31, MeasuredMissingCounts) {
  // The two incomplete MOVE-UPs miss (201-199)=2 and (203-199)=4 of their
  // predecessors; the MOVE-DOWN misses 2.
  const auto sx = build_section31_example();
  const auto& exec = sx.execution();
  EXPECT_EQ(exec.missing_count(201), 201u - 199u);
  EXPECT_EQ(exec.missing_count(203), 203u - 199u);
  EXPECT_EQ(exec.missing_count(204), 204u - 202u);
  EXPECT_EQ(exec.missing_count(0), 0u);
  EXPECT_EQ(exec.missing_count(205), 0u);
  EXPECT_EQ(exec.max_missing(), 4u);
}

/// The section 5.4 counterexample: blocks of REQUEST(Pi), CANCEL(Pi),
/// REQUEST(Pi), MOVE-UP for i = 1..101. MOVE-UPs are centralized and the
/// execution is transitive, yet the final state is overbooked — showing
/// Theorem 22's per-person hypothesis (or Theorem 23's unique-request
/// hypothesis) cannot be dropped.
ScriptedExecution<Airline> build_section54_counterexample() {
  ScriptedExecution<Airline> sx;
  std::vector<std::size_t> prior_moveups;
  std::vector<std::size_t> seen_first_requests;
  std::vector<std::size_t> all_cancels;
  std::vector<std::size_t> all_first_requests;
  for (al::Person p = 1; p <= 101; ++p) {
    const std::size_t r1 = sx.run(Request::request(p), {});
    const std::size_t c = sx.run(Request::cancel(p), {});
    const std::size_t r2 = sx.run(Request::request(p), {});
    all_first_requests.push_back(r1);
    all_cancels.push_back(c);
    if (p <= 100) {
      // "each of the first 100 MOVE-UP transactions sees the first request
      // in the same block, but not the cancel or the second request"
      // (plus, for transitivity/centralization, the earlier MOVE-UPs and
      // what they saw).
      std::vector<std::size_t> prefix = prior_moveups;
      prefix.insert(prefix.end(), seen_first_requests.begin(),
                    seen_first_requests.end());
      prefix.push_back(r1);
      const std::size_t m = sx.run(Request::move_up(), std::move(prefix));
      prior_moveups.push_back(m);
      seen_first_requests.push_back(r1);
    } else {
      // "The last MOVE-UP sees all the previous MOVE-UPs and the requests
      // that they see, plus the cancels" — and P101's second request, so
      // it observes P101 waiting and an empty assigned list.
      std::vector<std::size_t> prefix = prior_moveups;
      prefix.insert(prefix.end(), seen_first_requests.begin(),
                    seen_first_requests.end());
      prefix.insert(prefix.end(), all_cancels.begin(), all_cancels.end());
      prefix.push_back(r1);
      prefix.push_back(r2);
      sx.run(Request::move_up(), std::move(prefix));
    }
  }
  return sx;
}

TEST(PaperExample54, CounterexampleIsTransitiveWithCentralizedMoveUps) {
  const auto sx = build_section54_counterexample();
  const auto& exec = sx.execution();
  ASSERT_EQ(exec.size(), 101u * 4u);
  EXPECT_TRUE(analysis::is_transitive(exec));
  EXPECT_TRUE(analysis::is_centralized<Airline>(
      exec, [](const Request& r) { return r.kind == Request::Kind::kMoveUp; }));
  const auto report = analysis::check_prefix_subsequence_condition(exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(PaperExample54, SuccessiveMoveUpsPickSuccessivePersons) {
  // "The successive MOVE-UP transactions produce updates move-up(P1), ...,
  // move-up(P101)."
  const auto sx = build_section54_counterexample();
  const auto& exec = sx.execution();
  for (al::Person p = 1; p <= 101; ++p) {
    const std::size_t idx = (p - 1) * 4 + 3;
    EXPECT_EQ(exec.tx(idx).update, (Update{Update::Kind::kMoveUp, p}))
        << "block " << p;
  }
}

TEST(PaperExample54, FinalCostNonzeroDespiteCentralization) {
  // "The cost after this execution is non zero."
  const auto sx = build_section54_counterexample();
  const auto final = sx.execution().final_state();
  EXPECT_EQ(final.assigned.size(), 101u);
  EXPECT_DOUBLE_EQ(Airline::cost(final, Airline::kOverbooking), 900.0);
}

TEST(PaperExample54, Theorem22And23CheckersFlagTheFailedHypotheses) {
  const auto sx = build_section54_counterexample();
  // Theorem 22's checker must report that per-person centralization fails
  // (NOT that the theorem itself is violated).
  const auto r22 = analysis::check_theorem22(sx.execution());
  EXPECT_FALSE(r22.ok());
  bool hypothesis_flagged = false;
  for (const auto& v : r22.violations()) {
    if (v.find("hypothesis fails") != std::string::npos) {
      hypothesis_flagged = true;
    }
  }
  EXPECT_TRUE(hypothesis_flagged);
  // Theorem 23's checker likewise reports the duplicate REQUESTs.
  const auto r23 = analysis::check_theorem23(sx.execution());
  EXPECT_FALSE(r23.ok());
}

}  // namespace
