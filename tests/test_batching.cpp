// Batched floods and the group-commit outbox (net::BroadcastOptions::
// max_batch).
//
// Two claims under test. Equivalence: batching is a constant-factor
// transport optimization — under workloads whose submissions never share a
// scheduler dispatch, a batched config produces a byte-identical trace
// stream (and so identical delivery order, states, and checker verdicts) to
// the unbatched one, across the chaos and crash-chaos seed tiers; and under
// genuine bursts it still yields the same converged states and clean
// checker reports, just with fewer packets and outbox syncs. Boundary
// semantics: the write-ahead intention-log guarantee pinned by
// mid-broadcast crash injection holds per batch — records staged before the
// crash are durable and re-merge everywhere, never lost, never re-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;

// ---------------------------------------------------------------------------
// Byte-identity across the chaos seed tiers
// ---------------------------------------------------------------------------

harness::Scenario chaos_scenario(std::uint64_t seed, bool with_crashes,
                                 std::size_t* nodes_out) {
  sim::Rng rng(seed);
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;
  harness::Scenario sc;
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(seed ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  if (with_crashes) {
    sc.faults.random_crashes(nodes, horizon,
                             static_cast<int>(rng.uniform_int(1, 4)),
                             /*min_down=*/1.0, /*max_down=*/6.0,
                             /*amnesia_probability=*/0.5);
  }
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  *nodes_out = nodes;
  return sc;
}

struct ChaosRun {
  std::string trace;
  std::vector<Air::State> states;
  bool checker_clean = false;
  std::uint64_t flood_batches = 0;
};

ChaosRun run_chaos(harness::Scenario sc, std::uint64_t seed,
                   std::size_t max_batch) {
  sc.trace.enabled = true;
  shard::ClusterConfig cfg = sc.cluster_config<Air>(seed);
  cfg.broadcast.max_batch = max_batch;
  shard::Cluster<Air> cluster(cfg);
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 3.0;
  w.mover_rate = 2.0;
  w.cancel_fraction = 0.1;
  w.max_persons = 150;
  harness::drive_airline(cluster, w, seed ^ 0x5eed);
  cluster.run_until(25.0);
  cluster.settle();
  ChaosRun r;
  r.trace = obs::serialize(capture.events());
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    r.states.push_back(cluster.node(static_cast<core::NodeId>(n)).state());
    r.flood_batches += cluster.node(static_cast<core::NodeId>(n))
                           .broadcast_stats()
                           .flood_batches;
  }
  const core::Execution<Air> exec = cluster.execution();
  r.checker_clean = analysis::check_prefix_subsequence_condition(exec).ok() &&
                    analysis::is_transitive(exec) && cluster.converged();
  return r;
}

void expect_batched_byte_identity(std::uint64_t seed, bool with_crashes) {
  std::size_t nodes = 0;
  const harness::Scenario sc = chaos_scenario(seed, with_crashes, &nodes);
  const ChaosRun unbatched = run_chaos(sc, seed ^ 0xba7c, 0);
  const ChaosRun batched = run_chaos(sc, seed ^ 0xba7c, 8);
  // Poisson arrivals land one submission per scheduler dispatch, so no
  // burst ever forms: the batched config must degrade to the EXACT legacy
  // behavior — packets, RNG draws, trace record order, byte for byte.
  EXPECT_EQ(batched.flood_batches, 0u) << "seed " << seed;
  ASSERT_EQ(batched.trace, unbatched.trace) << "seed " << seed;
  ASSERT_EQ(batched.states.size(), unbatched.states.size());
  for (std::size_t n = 0; n < batched.states.size(); ++n) {
    EXPECT_EQ(batched.states[n], unbatched.states[n]) << "seed " << seed;
  }
  EXPECT_TRUE(unbatched.checker_clean) << "seed " << seed;
  EXPECT_TRUE(batched.checker_clean) << "seed " << seed;
}

class BatchingChaosTier : public ::testing::TestWithParam<std::uint64_t> {};
class BatchingCrashChaosTier : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatchingChaosTier, ByteIdenticalToUnbatched) {
  expect_batched_byte_identity(GetParam(), /*with_crashes=*/false);
}

TEST_P(BatchingCrashChaosTier, ByteIdenticalToUnbatched) {
  expect_batched_byte_identity(GetParam(), /*with_crashes=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchingChaosTier,
                         ::testing::Range<std::uint64_t>(1000, 1012));
INSTANTIATE_TEST_SUITE_P(Seeds, BatchingCrashChaosTier,
                         ::testing::Range<std::uint64_t>(3000, 3012));

// ---------------------------------------------------------------------------
// Coalescing and group commit under genuine bursts
// ---------------------------------------------------------------------------

template <shard::LogLayout Layout = shard::LogLayout::kSoA>
shard::Cluster<Air, Layout> make_burst_cluster(std::size_t max_batch) {
  harness::Scenario sc = harness::wan(4);
  shard::ClusterConfig cfg = sc.cluster_config<Air>(0xb0b);
  cfg.broadcast.max_batch = max_batch;
  return shard::Cluster<Air, Layout>(cfg);
}

/// Submit `burst` requests inside ONE scheduler dispatch (the shape an
/// open-loop tick driver produces), once per simulated second.
template <class Cluster>
void drive_bursts(Cluster& cluster, std::size_t bursts, std::size_t burst) {
  for (std::size_t k = 0; k < bursts; ++k) {
    cluster.scheduler().schedule_at(
        0.5 + static_cast<double>(k), [&cluster, k, burst] {
          for (std::size_t i = 0; i < burst; ++i) {
            const auto p =
                static_cast<al::Person>(1 + (k * burst + i) % 200);
            cluster.node(static_cast<core::NodeId>(k % cluster.num_nodes()))
                .try_submit(al::Request::request(p), cluster.scheduler().now());
          }
        });
  }
  cluster.run_until(1.0 + static_cast<double>(bursts));
  cluster.settle();
}

TEST(Batching, BurstsCoalesceAndReducePackets) {
  const std::size_t bursts = 10, burst = 12;
  auto batched = make_burst_cluster(8);
  drive_bursts(batched, bursts, burst);
  auto unbatched = make_burst_cluster(0);
  drive_bursts(unbatched, bursts, burst);

  std::uint64_t flood_batches = 0, batched_wires = 0;
  for (std::size_t n = 0; n < batched.num_nodes(); ++n) {
    const net::BroadcastStats& s =
        batched.node(static_cast<core::NodeId>(n)).broadcast_stats();
    flood_batches += s.flood_batches;
    batched_wires += s.flood_batched_wires;
  }
  // A 12-submission burst with max_batch 8 floods as chunks of 8 + 4: two
  // batch packets per burst, all twelve wires coalesced.
  EXPECT_EQ(flood_batches, 2 * bursts);
  EXPECT_EQ(batched_wires, burst * bursts);
  // Fewer wire packets on the network than one-per-broadcast flooding.
  EXPECT_LT(batched.network().stats().sent, unbatched.network().stats().sent);

  // Same converged outcome either way.
  EXPECT_TRUE(batched.converged());
  EXPECT_TRUE(unbatched.converged());
  for (std::size_t n = 0; n < batched.num_nodes(); ++n) {
    EXPECT_EQ(batched.node(static_cast<core::NodeId>(n)).state(),
              unbatched.node(static_cast<core::NodeId>(n)).state());
  }
  const core::Execution<Air> exec = batched.execution();
  EXPECT_EQ(exec.size(), bursts * burst);
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
}

TEST(Batching, GroupCommitAmortizesOutboxSyncs) {
  const std::size_t bursts = 8, burst = 10;
  auto batched = make_burst_cluster(8);
  drive_bursts(batched, bursts, burst);
  auto unbatched = make_burst_cluster(0);
  drive_bursts(unbatched, bursts, burst);

  const auto sum = [](auto& cluster, auto field) {
    std::uint64_t total = 0;
    for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
      total += cluster.node(static_cast<core::NodeId>(n)).broadcast_stats() .*
               field;
    }
    return total;
  };
  // Unbatched: one sync per record. Batched: one sync per burst — but every
  // record is still covered by a sync before its first flood send.
  EXPECT_EQ(sum(unbatched, &net::BroadcastStats::outbox_commits),
            bursts * burst);
  EXPECT_EQ(sum(batched, &net::BroadcastStats::outbox_commits), bursts);
  EXPECT_EQ(sum(batched, &net::BroadcastStats::outbox_records_synced),
            bursts * burst);
  EXPECT_EQ(sum(unbatched, &net::BroadcastStats::outbox_records_synced),
            bursts * burst);
}

TEST(Batching, AoSLayoutConvergesIdenticallyUnderBursts) {
  // The ablation instantiation (AoS log + batched floods) must be
  // observationally identical to the default SoA one.
  const std::size_t bursts = 6, burst = 9;
  auto soa = make_burst_cluster<shard::LogLayout::kSoA>(4);
  drive_bursts(soa, bursts, burst);
  auto aos = make_burst_cluster<shard::LogLayout::kAoS>(4);
  drive_bursts(aos, bursts, burst);
  EXPECT_TRUE(soa.converged());
  EXPECT_TRUE(aos.converged());
  for (std::size_t n = 0; n < soa.num_nodes(); ++n) {
    EXPECT_EQ(soa.node(static_cast<core::NodeId>(n)).state(),
              aos.node(static_cast<core::NodeId>(n)).state());
    EXPECT_EQ(soa.node(static_cast<core::NodeId>(n)).log().known_timestamps(),
              aos.node(static_cast<core::NodeId>(n)).log().known_timestamps());
  }
}

// ---------------------------------------------------------------------------
// Mid-broadcast crash at the batch boundary
// ---------------------------------------------------------------------------

TEST(Batching, MidBroadcastCrashPreservesWriteAheadGuaranteePerBatch) {
  // Node 0 crashes at its 3rd broadcast — in batched mode that boundary now
  // sits inside a flush: records 1–2 flooded, record 3 (and the rest of the
  // staged burst) durable-but-unsent. All five staged records must survive,
  // merge everywhere exactly once, and never re-run their decisions.
  harness::Scenario sc = harness::wan(4);
  sc.faults.crash_mid_broadcast(/*node=*/0, /*broadcast_seq=*/3,
                                /*down_for=*/3.0,
                                sim::RecoveryMode::kDurable);
  shard::ClusterConfig cfg = sc.cluster_config<Air>(0x51u);
  cfg.broadcast.max_batch = 8;
  shard::Cluster<Air> cluster(cfg);
  const std::size_t burst = 5;
  cluster.scheduler().schedule_at(1.0, [&cluster, burst] {
    for (std::size_t i = 0; i < burst; ++i) {
      cluster.node(0).try_submit(al::Request::request(static_cast<al::Person>(i + 1)),
                                 cluster.scheduler().now());
    }
  });
  // Traffic elsewhere keeps anti-entropy busy while node 0 is down.
  for (std::size_t k = 0; k < 10; ++k) {
    cluster.submit_at(1.5 + 0.5 * static_cast<double>(k), 1 + (k % 3),
                      al::Request::request(static_cast<al::Person>(100 + k)));
  }
  cluster.run_until(8.0);
  cluster.settle();

  const net::BroadcastStats& s0 = cluster.node(0).broadcast_stats();
  EXPECT_EQ(s0.mid_broadcast_crashes, 1u);
  EXPECT_EQ(s0.originated, burst);
  // The whole staged burst was covered by its group commit before the
  // crash...
  EXPECT_EQ(s0.outbox_records_synced, burst);
  EXPECT_EQ(s0.outbox_commits, 1u);
  // ...so every record re-merged cluster-wide (write-ahead guarantee) and
  // the execution is exactly the 5 + 10 submitted transactions, each run
  // once.
  EXPECT_TRUE(cluster.converged());
  const core::Execution<Air> exec = cluster.execution();
  EXPECT_EQ(exec.size(), burst + 10);
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_EQ(cluster.aggregate_engine_stats().decisions_run, burst + 10);
}

}  // namespace
