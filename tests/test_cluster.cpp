// SHARD cluster integration tests: mutual consistency under partitions and
// loss, execution-trace validity, transitivity under causal broadcast (and
// its possible absence without), determinism, and engine stats.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "analysis/thrashing.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using al::Request;

harness::AirlineWorkload small_workload() {
  harness::AirlineWorkload w;
  w.duration = 15.0;
  w.request_rate = 2.0;
  w.mover_rate = 2.0;
  w.max_persons = 60;
  return w;
}

TEST(Cluster, ConvergesOnLan) {
  auto sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(1));
  harness::drive_airline(cluster, small_workload(), 2);
  cluster.run_until(15.0);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  for (std::size_t i = 1; i < cluster.num_nodes(); ++i) {
    EXPECT_EQ(cluster.node(0).state(), cluster.node(i).state());
  }
}

TEST(Cluster, ConvergesAfterHardPartition) {
  // The headline SHARD property: both sides keep processing during the
  // partition, and merge to identical states after the heal.
  auto sc = harness::partitioned_wan(4, 3.0, 12.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(3));
  harness::drive_airline(cluster, small_workload(), 4);
  cluster.run_until(15.0);
  // During the partition both halves originated transactions.
  EXPECT_GT(cluster.node(0).originated().size() +
                cluster.node(1).originated().size(),
            0u);
  EXPECT_GT(cluster.node(2).originated().size() +
                cluster.node(3).originated().size(),
            0u);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
}

TEST(Cluster, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    auto sc = harness::wan(3);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::drive_airline(cluster, small_workload(), 99);
    cluster.run_until(15.0);
    cluster.settle();
    return cluster.node(0).state();
  };
  EXPECT_EQ(run(7), run(7));
  // (Different seeds usually differ, but that is not guaranteed; don't
  // assert it.)
}

TEST(Cluster, ExecutionTraceValidUnderLoss) {
  auto sc = harness::wan(4);
  sc.drop_probability = 0.2;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(5));
  harness::drive_airline(cluster, small_workload(), 6);
  cluster.run_until(15.0);
  cluster.settle();
  const auto exec = cluster.execution();
  const auto report = analysis::check_prefix_subsequence_condition(exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Serial order == timestamp order, strictly increasing.
  for (std::size_t i = 1; i < exec.size(); ++i) {
    EXPECT_LT(exec.tx(i - 1).ts, exec.tx(i).ts);
  }
}

TEST(Cluster, CausalBroadcastYieldsTransitiveExecutions) {
  // Section 3.3: "an appropriate distributed communication protocol could
  // guarantee transitivity, perhaps by piggybacking information about known
  // transactions on messages." Our causal mode is that protocol.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    auto sc = harness::partitioned_wan(4, 3.0, 10.0);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::drive_airline(cluster, small_workload(), seed);
    cluster.run_until(15.0);
    cluster.settle();
    EXPECT_TRUE(analysis::is_transitive(cluster.execution()))
        << "seed " << seed;
  }
}

TEST(Cluster, FinalStateEqualsExecutionReplay) {
  // The replicas' converged state must equal the formal execution's final
  // actual state — the engine really implements the model.
  auto sc = harness::wan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(21));
  harness::drive_airline(cluster, small_workload(), 22);
  cluster.run_until(15.0);
  cluster.settle();
  const auto exec = cluster.execution();
  EXPECT_EQ(cluster.node(0).state(), exec.final_state());
}

TEST(Cluster, NodeSubmitRecordsPrefixAndExternalActions) {
  auto sc = harness::lan(2);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(31));
  const auto& rec1 = cluster.submit_now(0, Request::request(1));
  EXPECT_EQ(rec1.prefix.count(), 0u);
  EXPECT_TRUE(rec1.external_actions.empty());
  const auto& rec2 = cluster.submit_now(0, Request::move_up());
  ASSERT_EQ(rec2.prefix.count(), 1u);
  const auto pts = rec2.prefix.expand(cluster.prefix_resolver());
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0], rec1.ts);
  ASSERT_EQ(rec2.external_actions.size(), 1u);
  EXPECT_EQ(rec2.external_actions[0].kind, "grant-seat");
  EXPECT_LT(rec1.ts, rec2.ts);
}

TEST(Cluster, PruneRepairStoreRejectsAmnesiaRecovery) {
  // Pruning discards wire messages every peer acknowledged; an amnesiac
  // restart relies on peers (and its own outbox) retaining everything, so
  // the combination is rejected at construction.
  auto bad = harness::crashy_node(3, 2.0, 4.0, sim::RecoveryMode::kAmnesia);
  bad.prune_repair_store = true;
  EXPECT_THROW(shard::Cluster<Air>(bad.cluster_config<Air>(7)),
               std::invalid_argument);
  // Durable recovery keeps its log; pruning remains safe.
  auto ok = harness::crashy_node(3, 2.0, 4.0, sim::RecoveryMode::kDurable);
  ok.prune_repair_store = true;
  EXPECT_NO_THROW(shard::Cluster<Air>(ok.cluster_config<Air>(7)));
}

TEST(Cluster, IsolatedNodeStillServesLocally) {
  // Availability: the isolated node keeps initiating transactions against
  // its own replica (stale but live), and reconciles afterwards.
  auto sc = harness::flaky_node(3, 1.0, 10.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(41));
  cluster.submit_at(2.0, 2, Request::request(1));
  cluster.submit_at(3.0, 2, Request::move_up());
  cluster.submit_at(4.0, 0, Request::request(2));
  cluster.run_until(5.0);
  // Node 2 processed its own, knows nothing of node 0's.
  EXPECT_EQ(cluster.node(2).originated().size(), 2u);
  EXPECT_EQ(cluster.node(2).updates_known(), 2u);
  EXPECT_EQ(cluster.node(0).updates_known(), 1u);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.node(0).updates_known(), 3u);
}

TEST(Cluster, EngineStatsShowUndoRedoUnderReordering) {
  auto sc = harness::wan(4);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(51));
  auto w = small_workload();
  w.duration = 20.0;
  w.request_rate = 4.0;
  w.mover_rate = 4.0;
  harness::drive_airline(cluster, w, 52);
  cluster.run_until(20.0);
  cluster.settle();
  const auto stats = cluster.aggregate_engine_stats();
  EXPECT_GT(stats.decisions_run, 0u);
  EXPECT_GT(stats.mid_inserts, 0u);   // WAN delays reorder arrivals
  EXPECT_GT(stats.undone_updates, 0u);
  EXPECT_FALSE(stats.summary().empty());
}

TEST(Cluster, ExternalActionConflictsDetectable) {
  // Drive hard enough (capacity 20, many movers, partition) that some
  // passenger gets granted and rescinded — the thrashing the paper warns
  // about; the analysis counts it.
  auto sc = harness::partitioned_wan(4, 2.0, 18.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(61));
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 4.0;
  w.mover_rate = 6.0;
  w.move_down_fraction = 0.4;
  w.max_persons = 100;
  harness::drive_airline(cluster, w, 62);
  cluster.run_until(25.0);
  cluster.settle();
  const auto exec = cluster.execution();
  const auto thrash = analysis::count_external_oscillations(
      exec, "grant-seat", "rescind-seat");
  EXPECT_GT(thrash.external_actions, 0u);
  // Oscillations may or may not occur for a given seed; the metric must at
  // least be consistent.
  EXPECT_LE(thrash.subjects_affected, thrash.oscillations);
}

TEST(Cluster, SubmitToUnknownNodeThrows) {
  auto sc = harness::lan(2);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(71));
  EXPECT_THROW(cluster.submit_at(1.0, 9, Request::move_up()),
               std::out_of_range);
}

}  // namespace
