// Banking application: decision/update semantics, overdraft cost model,
// the k-bounded overdraft claim (section 6's conjecture that the airline
// results carry over), and the audit-with-complete-prefix property of
// section 3.2.
#include <gtest/gtest.h>

#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/tx_conditions.hpp"
#include "apps/banking/banking.hpp"
#include "harness/scenario.hpp"
#include "harness/state_samples.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace bk = apps::banking;
using bk::Banking;
using bk::Request;
using bk::Update;

TEST(Banking, DepositAlwaysApplies) {
  bk::State s;
  Banking::apply({Update::Kind::kDeposit, 2, 0, 150}, s);
  EXPECT_EQ(s.balance(2), 150);
  EXPECT_EQ(s.balance(0), 0);
  EXPECT_EQ(s.total(), 150);
}

TEST(Banking, WithdrawDecisionChecksObservedBalance) {
  bk::State s;
  s.slot(1) = 100;
  const auto ok = Banking::decide(Request::withdraw(1, 60), s);
  EXPECT_EQ(ok.update.kind, Update::Kind::kWithdraw);
  ASSERT_EQ(ok.external_actions.size(), 1u);
  EXPECT_EQ(ok.external_actions[0].kind, "dispense-cash");
  const auto declined = Banking::decide(Request::withdraw(1, 160), s);
  EXPECT_EQ(declined.update, Update{});  // no-op
  ASSERT_EQ(declined.external_actions.size(), 1u);
  EXPECT_EQ(declined.external_actions[0].kind, "decline");
}

TEST(Banking, WithdrawUpdateIsUnconditional) {
  // The cash already left the machine: applied to a staler state, the
  // debit can overdraw — the integrity violation the cost measures.
  bk::State s;
  s.slot(1) = 30;
  Banking::apply({Update::Kind::kWithdraw, 1, 0, 100}, s);
  EXPECT_EQ(s.balance(1), -70);
  EXPECT_EQ(s.total_overdraft(), 70);
  EXPECT_DOUBLE_EQ(Banking::cost(s, Banking::kNoOverdraft), 70.0);
}

TEST(Banking, TransferMovesFundsUnconditionally) {
  bk::State s;
  s.slot(0) = 50;
  Banking::apply({Update::Kind::kTransfer, 0, 1, 80}, s);
  EXPECT_EQ(s.balance(0), -30);
  EXPECT_EQ(s.balance(1), 80);
  EXPECT_EQ(s.total(), 50);  // conservation
}

TEST(Banking, AuditIsPureDecision) {
  bk::State s;
  s.slot(0) = 10;
  s.slot(1) = 20;
  const auto d = Banking::decide(Request::audit(), s);
  EXPECT_EQ(d.update, Update{});
  ASSERT_EQ(d.external_actions.size(), 1u);
  EXPECT_EQ(d.external_actions[0].kind, "audit-report");
  EXPECT_EQ(d.external_actions[0].subject, "30");
}

TEST(Banking, CoverForgivesMostOverdrawnAccount) {
  bk::State s;
  s.slot(0) = -10;
  s.slot(1) = -50;
  s.slot(2) = 100;
  const auto d = Banking::decide(Request::cover(), s);
  EXPECT_EQ(d.update.kind, Update::Kind::kCover);
  EXPECT_EQ(d.update.a, 1u);
  bk::State t = s;
  Banking::apply(d.update, t);
  EXPECT_EQ(t.balance(1), 0);
  EXPECT_EQ(t.total_overdraft(), 10);
  // From a clean state, COVER is a no-op decision.
  bk::State clean;
  clean.slot(0) = 5;
  EXPECT_EQ(Banking::decide(Request::cover(), clean).update, Update{});
}

TEST(Banking, CoverCompensatesForOverdraft) {
  const auto states = harness::random_banking_states(17, 300, 6, 25);
  const auto report = analysis::check_compensates<Banking>(
      states, Request::cover(), Banking::kNoOverdraft);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Banking, DepositsAndAuditsSafeDebitsUnsafe) {
  const auto states = harness::random_banking_states(18, 300, 6, 25);
  EXPECT_TRUE(analysis::check_safe_for<Banking>(states, states,
                                                Request::deposit(1, 50), 0)
                  .ok());
  EXPECT_TRUE(
      analysis::check_safe_for<Banking>(states, states, Request::audit(), 0)
          .ok());
  EXPECT_FALSE(analysis::check_safe_for<Banking>(states, states,
                                                 Request::withdraw(1, 50), 0)
                   .ok());
  EXPECT_FALSE(analysis::check_safe_for<Banking>(
                   states, states, Request::transfer(1, 2, 50), 0)
                   .ok());
}

class BankingCluster : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BankingCluster, ConvergesAndOverdraftBoundedByKTimesMaxAmount) {
  auto sc = harness::partitioned_wan(4, 5.0, 15.0);
  shard::Cluster<Banking> cluster(sc.cluster_config<Banking>(GetParam()));
  harness::BankingWorkload w;
  w.duration = 25.0;
  w.max_amount = 100;
  harness::drive_banking(cluster, w, GetParam() ^ 0x77);
  cluster.run_until(w.duration);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  const auto exec = cluster.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  // The banking analogue of Corollary 8. A debit that saw a complete
  // prefix cannot create overdraft (its decision checked the true
  // balance); an incomplete debit adds at most its own amount. Hence:
  // total overdraft <= sum of amounts over debits with missing info.
  // (A per-account version of the airline's 900k bound; the bank-wide cost
  // needs the sum because independent accounts can overdraw concurrently.)
  double bound = 0.0;
  std::size_t incomplete_debits = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& r = exec.tx(i).request;
    const bool debit = r.kind == Request::Kind::kWithdraw ||
                       r.kind == Request::Kind::kTransfer;
    if (debit && exec.missing_count(i) > 0) {
      bound += static_cast<double>(r.amount);
      ++incomplete_debits;
    }
  }
  EXPECT_LE(bound, Banking::Theory::f_bound_amount(
                       w.max_amount, incomplete_debits) +
                       1e-9);  // coarse form used in EXPERIMENTS.md
  for (const auto& s : exec.actual_states()) {
    EXPECT_LE(Banking::cost(s, 0), bound + 1e-9);
  }
}

TEST_P(BankingCluster, AuditAtQuiescenceSeesTrueTotal) {
  // Section 3.2: "it might be desirable for audits to see the effects of
  // all the preceding ... transactions." At quiescence (complete prefix),
  // the audit's report equals the true total.
  auto sc = harness::wan(3);
  shard::Cluster<Banking> cluster(sc.cluster_config<Banking>(GetParam()));
  harness::BankingWorkload w;
  w.duration = 10.0;
  harness::drive_banking(cluster, w, GetParam());
  cluster.run_until(w.duration);
  cluster.settle();
  const auto& rec = cluster.submit_now(0, Request::audit());
  EXPECT_EQ(rec.prefix.count(), cluster.total_originated() - 1);
  EXPECT_EQ(rec.external_actions[0].subject,
            std::to_string(cluster.node(0).state().total()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BankingCluster,
                         ::testing::Values(401u, 402u, 403u));

TEST(Banking, StringsAreReadable) {
  EXPECT_EQ(Request::transfer(1, 2, 30).to_string(), "TRANSFER(A1->A2,30)");
  EXPECT_EQ((Update{Update::Kind::kCover, 4, 0, 0}).to_string(), "cover(A4)");
  bk::State s;
  s.slot(0) = 7;
  EXPECT_EQ(s.to_string(), "{A0=7}");
}

}  // namespace
