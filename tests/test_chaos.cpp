// Chaos suite: randomized partition schedules, crash/restart schedules,
// topologies, and workloads.
//
// Every run, whatever the failure pattern, must end with: converged
// replicas, a trace satisfying the section 3.1 conditions, transitivity
// (causal broadcast), Theorem 5 and Theorem 7 bounds, and the final state
// equal to the execution replay — the full guarantee stack under random
// fire. The crash tier adds node death and both recovery modes (durable /
// amnesia) on top of the link failures, and additionally demands that no
// decision ever re-ran (external actions fired exactly once).
#include <gtest/gtest.h>

#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "apps/banking/sharded.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"
#include "shard/partial.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, FullGuaranteeStackUnderRandomFailures) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.3);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a0));
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();

  // 1. Mutual consistency.
  ASSERT_TRUE(cluster.converged());
  // 2. The trace is a valid §3.1 execution.
  const auto exec = cluster.execution();
  ASSERT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  // 3. Transitivity (causal broadcast).
  EXPECT_TRUE(analysis::is_transitive(exec));
  // 4. Replica state == formal replay.
  EXPECT_EQ(cluster.node(0).state(), exec.final_state());
  // 5. Cost-bound theorems.
  const auto preserves = [](const al::Request& r, int c) {
    return Air::Theory::preserves_cost(r, c);
  };
  const auto unsafe = [](const al::Request& r, int c) {
    return !Air::Theory::safe_for(r, c);
  };
  const auto f = [](int c, std::size_t k) {
    return Air::Theory::f_bound(c, k);
  };
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    EXPECT_TRUE(analysis::check_theorem5(exec, c, preserves, f).ok());
  }
  EXPECT_TRUE(
      analysis::check_theorem7(exec, Air::kOverbooking, unsafe, f).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos,
                         ::testing::Range<std::uint64_t>(1000, 1012));

/// The §3 guarantee stack an airline run must satisfy after any failure
/// pattern, plus the crash-specific demand: decisions ran exactly once
/// (zero re-fired external actions), which follows from every decision
/// producing exactly one recorded transaction.
void expect_full_stack(shard::Cluster<Air>& cluster) {
  ASSERT_TRUE(cluster.converged());
  const auto exec = cluster.execution();
  ASSERT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
  EXPECT_EQ(cluster.node(0).state(), exec.final_state());
  EXPECT_EQ(cluster.aggregate_engine_stats().decisions_run, exec.size());
  const auto preserves = [](const al::Request& r, int c) {
    return Air::Theory::preserves_cost(r, c);
  };
  const auto unsafe = [](const al::Request& r, int c) {
    return !Air::Theory::safe_for(r, c);
  };
  const auto f = [](int c, std::size_t k) { return Air::Theory::f_bound(c, k); };
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    EXPECT_TRUE(analysis::check_theorem5(exec, c, preserves, f).ok());
  }
  EXPECT_TRUE(analysis::check_theorem7(exec, Air::kOverbooking, unsafe, f).ok());
}

/// Crash-chaos tier: random crash/restart schedules (both recovery modes)
/// interleaved with random partition schedules and random drops; the full
/// checker stack must hold after every run.
class CrashChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashChaos, FullGuaranteeStackUnderCrashesAndPartitions) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "crash-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x37c1);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.faults.random_crashes(nodes, horizon,
                           static_cast<int>(rng.uniform_int(1, 4)),
                           /*min_down=*/1.0, /*max_down=*/6.0,
                           /*amnesia_probability=*/0.5);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a5));
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  expect_full_stack(cluster);
  // Crashes really happened and every crashed node came back.
  const shard::EngineStats agg = cluster.aggregate_engine_stats();
  EXPECT_EQ(agg.crashes, sc.faults.crashes().events().size());
  EXPECT_EQ(agg.recoveries, agg.crashes);
  EXPECT_GT(agg.crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashChaos,
                         ::testing::Range<std::uint64_t>(3000, 3012));

/// Acceptance pin: a run with >= 3 crash/restart events (both recovery
/// modes) and >= 2 partition windows ends converged, checker-clean, with
/// zero re-fired external actions and a nonzero catch-up.
TEST(CrashChaos, ThreeCrashesTwoPartitionsFullStack) {
  harness::Scenario sc = harness::wan(5);
  sc.faults.split_halves(5, 2, 4.0, 9.0)
      .isolate(4, 5, 12.0, 16.0)
      .crash(0, 3.0, 7.0, sim::RecoveryMode::kDurable)
      .crash(2, 6.0, 11.0, sim::RecoveryMode::kAmnesia)
      .crash(4, 14.0, 18.0, sim::RecoveryMode::kAmnesia);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(0xACCE));
  harness::AirlineWorkload w;
  w.duration = 22.0;
  w.request_rate = 4.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.15;
  harness::drive_airline(cluster, w, 0xACC5);
  cluster.run_until(w.duration);
  cluster.settle();
  expect_full_stack(cluster);
  const shard::EngineStats agg = cluster.aggregate_engine_stats();
  EXPECT_EQ(agg.crashes, 3u);
  EXPECT_EQ(agg.recoveries, 3u);
  EXPECT_GT(agg.catch_up_updates, 0u);
  EXPECT_GT(cluster.network().stats().dropped_crashed, 0u);
  EXPECT_GT(cluster.network().stats().dropped_partition, 0u);
}

class PartialChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartialChaos, ShardedBankingSurvivesRandomFailures) {
  namespace bk = apps::banking;
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(3, 6));
  const auto groups = static_cast<std::size_t>(rng.uniform_int(4, 12));
  const auto r = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(nodes)));
  shard::PartialCluster<bk::ShardedBanking>::Config cfg;
  cfg.num_nodes = nodes;
  cfg.num_groups = groups;
  cfg.replication_factor = r;
  cfg.network.delay = sim::Delay::exponential(0.01, rng.uniform(0.02, 0.2), 3.0);
  cfg.network.drop_probability = rng.uniform(0.0, 0.25);
  cfg.network.partitions =
      sim::FaultPlan(GetParam() ^ 0x9a28)
          .random_partitions(nodes, 20.0,
                             static_cast<int>(rng.uniform_int(0, 2)))
          .partitions();
  cfg.anti_entropy_interval = 0.3;
  cfg.seed = GetParam() ^ 0x9a27;
  shard::PartialCluster<bk::ShardedBanking> cluster(cfg);
  for (int i = 0; i < 150; ++i) {
    const double t = rng.uniform(0.0, 20.0);
    const auto a = static_cast<bk::AccountId>(
        rng.uniform_int(0, static_cast<std::int64_t>(groups) - 1));
    const double roll = rng.uniform01();
    if (roll < 0.45) {
      cluster.submit_at(t, bk::ShardedRequest::deposit(a, rng.uniform_int(1, 80)));
    } else if (roll < 0.85) {
      cluster.submit_at(t, bk::ShardedRequest::withdraw(a, rng.uniform_int(1, 80)));
    } else {
      auto b = static_cast<bk::AccountId>(
          rng.uniform_int(0, static_cast<std::int64_t>(groups) - 1));
      if (b == a) b = static_cast<bk::AccountId>((b + 1) % groups);
      cluster.submit_at(t, bk::ShardedRequest::transfer(a, b, rng.uniform_int(1, 60)));
    }
  }
  cluster.run_until(20.0);
  cluster.settle();
  ASSERT_TRUE(cluster.converged());
  for (shard::GroupId g = 0; g < groups; ++g) {
    const auto exec = cluster.group_execution(g);
    ASSERT_EQ(exec.final_state(), cluster.group_state(g)) << "group " << g;
    for (std::size_t i = 1; i < exec.size(); ++i) {
      ASSERT_LT(exec.tx(i - 1).ts, exec.tx(i).ts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialChaos,
                         ::testing::Range<std::uint64_t>(2000, 2008));

/// Rolling-restart tier (upgrade simulation): every node of a lossy WAN
/// cluster is restarted once, one at a time, while traffic keeps flowing.
/// Each node catches up on what it missed before the next goes down; the
/// full guarantee stack holds and every node crashed and recovered exactly
/// once.
class RollingRestartChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RollingRestartChaos, EveryNodeRestartsOnceFullStack) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(3, 6));
  const bool amnesia = rng.bernoulli(0.5);
  harness::Scenario sc = harness::rolling_restart(
      nodes, /*t0=*/4.0, /*down_for=*/rng.uniform(1.5, 3.0),
      /*gap=*/rng.uniform(0.5, 1.5),
      amnesia ? sim::RecoveryMode::kAmnesia : sim::RecoveryMode::kDurable);
  const double horizon = sc.faults.last_restart_time() + 4.0;

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0x5c40));
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 4.0);
  w.mover_rate = rng.uniform(1.0, 5.0);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  expect_full_stack(cluster);
  const shard::EngineStats agg = cluster.aggregate_engine_stats();
  EXPECT_EQ(agg.crashes, nodes);
  EXPECT_EQ(agg.recoveries, nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    EXPECT_EQ(cluster.node(n).engine_stats().crashes, 1u) << "node " << n;
    EXPECT_FALSE(cluster.node(n).down());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollingRestartChaos,
                         ::testing::Range<std::uint64_t>(4000, 4008));

/// Correlated-fault tier: FaultPlan::chaos with rack power losses (a cut
/// whose smaller side also crashes for the window) and disk failures
/// (stale-checkpoint restarts) mixed into the random crash schedule. The
/// full stack must hold, and the crash count must match the plan exactly
/// (the generators never produce overlapping per-node windows).
class CorrelatedChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorrelatedChaos, RackLossesAndDiskFailuresFullStack) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(3, 6));
  const double horizon = 25.0;

  sim::ChaosOptions opt;
  opt.partition_events = static_cast<int>(rng.uniform_int(1, 3));
  opt.crash_events = static_cast<int>(rng.uniform_int(1, 3));
  opt.rack_loss_probability = 0.6;
  opt.disk_failure_probability = 0.4;
  opt.amnesia_probability = 0.3;

  harness::Scenario sc;
  sc.name = "correlated-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan::chaos(GetParam() ^ 0xc0fa, nodes, horizon, opt);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a7));
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  expect_full_stack(cluster);
  const shard::EngineStats agg = cluster.aggregate_engine_stats();
  EXPECT_EQ(agg.crashes, sc.faults.crashes().events().size());
  EXPECT_EQ(agg.recoveries, agg.crashes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelatedChaos,
                         ::testing::Range<std::uint64_t>(5000, 5010));

TEST(ChaosEdge, TwoNodeTotalIsolationRecovers) {
  // The extreme: two nodes fully isolated for almost the whole run.
  harness::Scenario sc;
  sc.num_nodes = 2;
  sc.delay = sim::Delay::constant(0.01);
  sc.faults.split_halves(2, 1, 0.5, 30.0);
  sc.anti_entropy_interval = 0.4;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(1));
  harness::AirlineWorkload w;
  w.duration = 28.0;
  w.request_rate = 2.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, 2);
  cluster.run_until(w.duration);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(
                  cluster.execution())
                  .ok());
}

TEST(ChaosEdge, SingleNodeClusterIsTriviallySerial) {
  harness::Scenario sc = harness::lan(1);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(3));
  harness::AirlineWorkload w;
  w.duration = 10.0;
  harness::drive_airline(cluster, w, 4);
  cluster.run_until(w.duration);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.execution().max_missing(), 0u);
}

TEST(ChaosEdge, EmptyWorkloadIsFine) {
  harness::Scenario sc = harness::wan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(5));
  cluster.run_until(5.0);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_TRUE(cluster.execution().empty());
}

}  // namespace
