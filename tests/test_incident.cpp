// Violation forensics: incident bundles, metric-name drift guards, the
// metrics time-series, and flame-diff triage.
//
// Four layers under test. obs/metric_names.hpp: the hoisted name table
// must stay pairwise-unique and survive a registry JSON round trip (the
// same drift guard the EventType name table carries). MetricsRegistry::
// delta_from + Cluster::metrics_series: boundary snapshots must land on
// the fault plan's instants and their deltas must re-sum to the cumulative
// totals. obs::IncidentReport: epoch attribution by ADMISSION (originate
// event), not detection; contributors from the causal ancestry; byte-
// deterministic exporters — pinned on hand-built chains with known times
// and on full chaos/crash-chaos streams (the same seed tiers the sharded-
// tracer differential uses). obs::FlameDiff: identical profiles diff
// empty, a perturbed stage is ranked first, structural mismatches are
// noted.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/incident.hpp"
#include "analysis/report.hpp"
#include "analysis/trace_dump.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/flame_diff.hpp"
#include "obs/incident.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
namespace mn = obs::metric_names;
using Air = al::BasicAirline<15, 900, 300>;
using obs::EventType;

obs::Event ev(EventType type, double time, sim::NodeId node,
              std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t ts_logical = 0, sim::NodeId ts_node = 0) {
  return obs::Event{type, time, node, ts_logical, ts_node, a, b};
}

// ---------------------------------------------------------------------------
// Metric-name drift guards
// ---------------------------------------------------------------------------

TEST(MetricNames, NamesAreUniqueAndDottedFamilies) {
  std::set<std::string> seen;
  for (const char* name : mn::kAllMetricNames) {
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name: " << name;
    EXPECT_NE(std::string(name).find('.'), std::string::npos)
        << "not a dotted path: " << name;
  }
  EXPECT_EQ(seen.size(), mn::kAllMetricNames.size());
}

TEST(MetricNames, EveryNameSurvivesRegistryRoundTrip) {
  obs::MetricsRegistry reg;
  std::uint64_t v = 1;
  for (const char* name : mn::kAllMetricNames) reg.set_counter(name, v++);
  const obs::MetricsRegistry back =
      obs::MetricsRegistry::from_json(reg.to_json());
  EXPECT_EQ(back, reg);
  v = 1;
  for (const char* name : mn::kAllMetricNames) {
    ASSERT_TRUE(back.counters().count(name)) << name;
    EXPECT_EQ(back.counters().at(name), v++) << name;
  }
}

TEST(MetricNames, ExportersWriteTheHoistedNames) {
  // A traced cluster run must populate the families the constants name —
  // the drift guard that catches an exporter renaming a key while the
  // constant (and every reader) keeps the old spelling.
  auto sc = harness::lan(3);
  sc.trace.enabled = true;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(11));
  harness::AirlineWorkload w;
  w.duration = 4.0;
  w.request_rate = 3.0;
  harness::drive_airline(cluster, w, 11 ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();
  const obs::MetricsRegistry reg = cluster.metrics();
  EXPECT_TRUE(reg.counters().count(mn::kBroadcastOriginated));
  EXPECT_TRUE(reg.counters().count(mn::kBroadcastDelivered));
  EXPECT_TRUE(reg.counters().count(mn::kEpochCount));
  EXPECT_TRUE(reg.counters().count(mn::kLifecycleUpdatesOriginated));
  EXPECT_TRUE(reg.gauges().count(mn::kEpochQuietSeconds));
  EXPECT_TRUE(reg.histograms().count(mn::kEpochCriticalPathSeconds));
  EXPECT_TRUE(reg.histograms().count(mn::kCausalDeliverLatency));
  EXPECT_TRUE(reg.histograms().count(mn::kLifecycleReplicationLatency));
}

// ---------------------------------------------------------------------------
// MetricsRegistry::delta_from
// ---------------------------------------------------------------------------

TEST(MetricsDelta, CountersSubtractAndSaturate) {
  obs::MetricsRegistry earlier, later;
  earlier.set_counter("a", 10);
  later.set_counter("a", 25);
  later.set_counter("b", 7);       // missing earlier: reads as 0
  earlier.set_counter("gone", 3);  // missing later: not in the delta
  later.set_counter("shrank", 1);
  earlier.set_counter("shrank", 5);  // derived counter went down: clamp to 0
  const obs::MetricsRegistry d = later.delta_from(earlier);
  EXPECT_EQ(d.counters().at("a"), 15u);
  EXPECT_EQ(d.counters().at("b"), 7u);
  EXPECT_EQ(d.counters().at("shrank"), 0u);
  EXPECT_EQ(d.counters().count("gone"), 0u);
}

TEST(MetricsDelta, GaugesKeepPointInTimeValue) {
  obs::MetricsRegistry earlier, later;
  earlier.set_gauge("t", 5.0);
  later.set_gauge("t", 12.5);
  const obs::MetricsRegistry d = later.delta_from(earlier);
  EXPECT_DOUBLE_EQ(d.gauges().at("t"), 12.5);
}

TEST(MetricsDelta, HistogramsSubtractBucketwise) {
  obs::MetricsRegistry earlier, later;
  obs::Histogram& ha = earlier.histogram("h", obs::Histogram::counts());
  obs::Histogram& hb = later.histogram("h", obs::Histogram::counts());
  ha.add(1.0);
  hb.add(1.0);
  hb.add(2.0);
  hb.add(100.0);
  const obs::MetricsRegistry d = later.delta_from(earlier);
  const obs::Histogram& dh = d.histograms().at("h");
  EXPECT_EQ(dh.count(), 2u);
  EXPECT_DOUBLE_EQ(dh.sum(), 102.0);
  // min/max are the later snapshot's (interval extremes unrecoverable).
  EXPECT_DOUBLE_EQ(dh.min(), 1.0);
  EXPECT_DOUBLE_EQ(dh.max(), 100.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : dh.bucket_counts()) total += c;
  EXPECT_EQ(total, 2u);
}

TEST(MetricsDelta, HistogramBoundsMismatchCopiesLater) {
  obs::MetricsRegistry earlier, later;
  earlier.histogram("h", obs::Histogram::latency()).add(0.5);
  later.histogram("h", obs::Histogram::counts()).add(3.0);
  const obs::MetricsRegistry d = later.delta_from(earlier);
  EXPECT_EQ(d.histograms().at("h"), later.histograms().at("h"));
}

// ---------------------------------------------------------------------------
// CheckReport message<->tx pairing
// ---------------------------------------------------------------------------

TEST(CheckReport, ViolationTxPairingSurvivesMixedAdds) {
  analysis::CheckReport r("t");
  r.add_violation("no tx");
  r.add_violation("tx three", 3);
  r.add_violation("tx one", 1);
  analysis::CheckReport other("o");
  other.add_violation("tx three again", 3);
  r.absorb(other);
  ASSERT_EQ(r.violations().size(), 4u);
  EXPECT_EQ(r.violation_tx(0), analysis::CheckReport::kNoTx);
  EXPECT_EQ(r.violation_tx(1), 3u);
  EXPECT_EQ(r.violation_tx(2), 1u);
  EXPECT_EQ(r.violation_tx(3), 3u);
  const std::vector<std::size_t> txs = r.violating_txs();
  ASSERT_EQ(txs.size(), 2u);  // sorted, deduplicated, kNoTx dropped
  EXPECT_EQ(txs[0], 1u);
  EXPECT_EQ(txs[1], 3u);
}

// ---------------------------------------------------------------------------
// IncidentReport: attribution on a hand-built stream
// ---------------------------------------------------------------------------

/// Two updates with a causal dependency spanning an epoch boundary:
/// update A (7:0) originates and replicates to node 1 during the quiet
/// epoch; node 1 then originates update B (9:1) — still quiet — which
/// reaches node 0 only after cut 0 opens at t=2.
std::vector<obs::Event> forensic_stream() {
  std::vector<obs::Event> events;
  events.push_back(ev(EventType::kSchedulerDispatch, 0.0, obs::kControlNode));
  events.push_back(
      ev(EventType::kBroadcastOriginate, 1.0, 0, /*a=*/1, 0, /*ts=*/7, 0));
  events.push_back(ev(EventType::kBroadcastSend, 1.0, 0, /*a=*/1, /*b=*/2));
  events.push_back(ev(EventType::kMergeTailAppend, 1.0, 0, 0, 0, /*ts=*/7, 0));
  events.push_back(ev(EventType::kBroadcastDeliver, 1.2, 1, /*a=*/0, /*b=*/1));
  events.push_back(ev(EventType::kMergeTailAppend, 1.2, 1, 0, 0, /*ts=*/7, 0));
  events.push_back(
      ev(EventType::kBroadcastOriginate, 1.5, 1, /*a=*/1, 0, /*ts=*/9, 1));
  events.push_back(ev(EventType::kBroadcastSend, 1.5, 1, /*a=*/1, /*b=*/2));
  events.push_back(ev(EventType::kMergeTailAppend, 1.5, 1, 0, 0, /*ts=*/9, 1));
  events.push_back(ev(EventType::kPartitionOpen, 2.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kBroadcastDeliver, 2.6, 0, /*a=*/1, /*b=*/1));
  events.push_back(ev(EventType::kMergeMidInsert, 2.7, 0, 0, 0, /*ts=*/9, 1));
  events.push_back(ev(EventType::kPartitionHeal, 4.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kSchedulerDispatch, 5.0, obs::kControlNode));
  return events;
}

TEST(IncidentReport, AttributesAdmissionEpochNotDetectionEpoch) {
  const std::vector<obs::Event> events = forensic_stream();
  obs::IncidentSeed seed;
  seed.message = "divergence at node 0";
  seed.tx_index = 4;
  seed.ts_logical = 9;
  seed.ts_node = 1;
  seed.detected_at = 3.0;  // detection fires while the cut is open
  const obs::IncidentReport report =
      obs::IncidentReport::build("streaming checker", events, {seed});

  ASSERT_EQ(report.incidents().size(), 1u);
  const obs::Incident& inc = report.incidents()[0];
  EXPECT_TRUE(inc.in_stream);
  // Admission: B originated at t=1.5, BEFORE the cut — epoch 0, quiet.
  EXPECT_EQ(inc.admitted_epoch, 0u);
  EXPECT_EQ(inc.admitted_label, "quiet");
  // Detection: t=3.0 falls inside the cut epoch — deliberately different.
  EXPECT_EQ(inc.detected_epoch, 1u);
  EXPECT_EQ(report.epochs().epoch(inc.detected_epoch).label(), "cut{0}");
  ASSERT_FALSE(inc.chain.empty());
  EXPECT_EQ(inc.chain.front().type, EventType::kBroadcastOriginate);
  ASSERT_FALSE(inc.window.empty());
  // Flame row: one remote replica (node 0), mid-insert merge.
  ASSERT_TRUE(inc.timing_known);
  EXPECT_TRUE(inc.timing.complete);
  EXPECT_EQ(inc.timing.replicas, 1u);
  EXPECT_EQ(inc.timing.crit_deliver_us, 1100000);
  EXPECT_EQ(inc.timing.crit_merge_us, 100000);
}

TEST(IncidentReport, ContributorsComeFromCausalAncestry) {
  const std::vector<obs::Event> events = forensic_stream();
  obs::IncidentSeed seed;
  seed.message = "m";
  seed.ts_logical = 9;
  seed.ts_node = 1;
  const obs::IncidentReport report =
      obs::IncidentReport::build("check", events, {seed});
  ASSERT_EQ(report.incidents().size(), 1u);
  const obs::Incident& inc = report.incidents()[0];
  // B's origination causally follows A's delivery at node 1: A must appear
  // as a contributing update, attributed to ITS admission epoch (quiet).
  bool found_a = false;
  for (const obs::IncidentContributor& c : inc.contributors) {
    EXPECT_FALSE(c.ts_logical == 9 && c.ts_node == 1)
        << "the violating update must not contribute to itself";
    if (c.ts_logical == 7 && c.ts_node == 0) {
      found_a = true;
      EXPECT_EQ(c.admitted_epoch, 0u);
      EXPECT_EQ(c.epoch_label, "quiet");
      EXPECT_EQ(c.originate_us, 1000000);
    }
  }
  EXPECT_TRUE(found_a);
  // No detection instant (post-hoc): detected epoch falls back to the last
  // chain event — the mid-insert at t=2.7, inside the cut.
  EXPECT_EQ(inc.detected_epoch, 1u);
}

TEST(IncidentReport, UnknownUpdateStaysOutOfStream) {
  const std::vector<obs::Event> events = forensic_stream();
  obs::IncidentSeed seed;
  seed.message = "phantom";
  seed.ts_logical = 424242;
  seed.ts_node = 3;
  const obs::IncidentReport report =
      obs::IncidentReport::build("check", events, {seed});
  ASSERT_EQ(report.incidents().size(), 1u);
  const obs::Incident& inc = report.incidents()[0];
  EXPECT_FALSE(inc.in_stream);
  EXPECT_TRUE(inc.chain.empty());
  EXPECT_FALSE(inc.timing_known);
  EXPECT_TRUE(inc.contributors.empty());
  // Render and JSON still work and say so.
  EXPECT_NE(report.render().find("not in the supplied stream"),
            std::string::npos);
}

TEST(IncidentReport, PinnedWindowWinsOverLiveSlice) {
  const std::vector<obs::Event> events = forensic_stream();
  obs::PinnedWindow w;
  w.ts_logical = 9;
  w.ts_node = 1;
  w.events = {events[10], events[11]};
  obs::IncidentSeed seed;
  seed.message = "m";
  seed.ts_logical = 9;
  seed.ts_node = 1;
  const obs::IncidentReport report =
      obs::IncidentReport::build("check", events, {seed}, {w});
  ASSERT_EQ(report.incidents().size(), 1u);
  ASSERT_EQ(report.incidents()[0].window.size(), 2u);
  EXPECT_TRUE(report.incidents()[0].window[0] == events[10]);
}

TEST(IncidentReport, MetricsFilterKeepsForensicFamiliesOnly) {
  obs::MetricsRegistry reg;
  reg.set_counter(mn::kCheckerViolations, 2);
  reg.set_counter(mn::kEpochCount, 3);
  reg.set_counter(mn::kBroadcastOriginated, 99);  // not forensic
  reg.set_gauge(mn::kEpochQuietSeconds, 1.5);
  reg.histogram(mn::kEpochCriticalPathSeconds).add(0.25);
  reg.histogram(mn::kLifecycleReplicationLatency).add(0.5);  // not forensic
  obs::IncidentSeed seed;
  seed.message = "m";
  seed.ts_logical = 9;
  seed.ts_node = 1;
  const obs::IncidentReport report = obs::IncidentReport::build(
      "check", forensic_stream(), {seed}, {}, &reg);
  EXPECT_EQ(report.metrics().counters().count(mn::kCheckerViolations), 1u);
  EXPECT_EQ(report.metrics().counters().count(mn::kEpochCount), 1u);
  EXPECT_EQ(report.metrics().counters().count(mn::kBroadcastOriginated), 0u);
  EXPECT_EQ(report.metrics().gauges().count(mn::kEpochQuietSeconds), 1u);
  EXPECT_EQ(
      report.metrics().histograms().count(mn::kEpochCriticalPathSeconds), 1u);
  EXPECT_EQ(
      report.metrics().histograms().count(mn::kLifecycleReplicationLatency),
      0u);
}

TEST(IncidentReport, ExportersAreByteDeterministicAndFoldedIsTagged) {
  const std::vector<obs::Event> events = forensic_stream();
  obs::IncidentSeed seed;
  seed.message = "m";
  seed.ts_logical = 9;
  seed.ts_node = 1;
  seed.detected_at = 3.0;
  const obs::IncidentReport a =
      obs::IncidentReport::build("check", events, {seed});
  const obs::IncidentReport b =
      obs::IncidentReport::build("check", events, {seed});
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.folded(), b.folded());
  EXPECT_EQ(a.render(), b.render());
  // Folded stacks carry the incident + admission-epoch prefix.
  EXPECT_NE(a.folded().find("incident0:epoch0:quiet;deliver 1100000\n"),
            std::string::npos);
  EXPECT_NE(a.folded().find("incident0:epoch0:quiet;merge 100000\n"),
            std::string::npos);
  // Empty bundle: empty exporters, and trace_dump prints nothing.
  const obs::IncidentReport empty =
      obs::IncidentReport::build("check", events, {});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(analysis::trace_dump(empty), "");
  EXPECT_EQ(empty.folded(), "");
  // Non-empty bundle renders through the trace_dump overload.
  EXPECT_EQ(analysis::trace_dump(a), a.render());
  EXPECT_NE(a.render().find("admitted in epoch 0 [quiet]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlameDiff
// ---------------------------------------------------------------------------

obs::FlameProfile profile_of(const std::vector<obs::Event>& events) {
  const obs::EpochIndex epochs = obs::EpochIndex::build(events);
  const obs::CausalGraph graph = obs::CausalGraph::build(events);
  return obs::FlameProfile::build(events, graph, epochs);
}

TEST(FlameDiff, IdenticalProfilesDiffEmpty) {
  const std::vector<obs::Event> events = forensic_stream();
  const obs::FlameDiff d =
      obs::FlameDiff::build(profile_of(events), profile_of(events));
  EXPECT_FALSE(d.differs());
  EXPECT_TRUE(d.deltas().empty());
  EXPECT_TRUE(d.notes().empty());
  EXPECT_NE(d.to_json().find("\"differs\":false"), std::string::npos);
  EXPECT_NE(d.markdown().find("no stage-weight changes"), std::string::npos);
  // Byte-deterministic.
  const obs::FlameDiff d2 =
      obs::FlameDiff::build(profile_of(events), profile_of(events));
  EXPECT_EQ(d.to_json(), d2.to_json());
  EXPECT_EQ(d.markdown(), d2.markdown());
}

TEST(FlameDiff, PerturbedStageIsRankedFirst) {
  const std::vector<obs::Event> base = forensic_stream();
  std::vector<obs::Event> slow = base;
  // Delay B's mid-insert at node 0 by 300 ms: merge weight 100ms -> 400ms.
  ASSERT_EQ(slow[11].type, EventType::kMergeMidInsert);
  slow[11].time = 3.0;
  const obs::FlameDiff d =
      obs::FlameDiff::build(profile_of(base), profile_of(slow));
  ASSERT_TRUE(d.differs());
  ASSERT_FALSE(d.deltas().empty());
  const obs::StageDelta& top = d.deltas()[0];
  EXPECT_EQ(top.stage, "merge;mid_insert");
  EXPECT_EQ(top.delta_us, 300000);
  EXPECT_EQ(top.us_a, 100000);
  EXPECT_EQ(top.us_b, 400000);
  // Ranking is by absolute delta, descending.
  for (std::size_t i = 1; i < d.deltas().size(); ++i) {
    const std::int64_t prev = d.deltas()[i - 1].delta_us;
    const std::int64_t cur = d.deltas()[i].delta_us;
    EXPECT_GE(prev < 0 ? -prev : prev, cur < 0 ? -cur : cur);
  }
  EXPECT_NE(d.markdown().find("merge;mid_insert"), std::string::npos);
  EXPECT_NE(d.to_json().find("\"differs\":true"), std::string::npos);
}

TEST(FlameDiff, EpochStructureChangesAreNoted) {
  const std::vector<obs::Event> base = forensic_stream();
  std::vector<obs::Event> extra = base;
  // A second cut opens late: one more epoch in the candidate run.
  extra.push_back(ev(EventType::kPartitionOpen, 4.5, obs::kControlNode, 1));
  extra.push_back(ev(EventType::kPartitionHeal, 4.8, obs::kControlNode, 1));
  extra.push_back(ev(EventType::kSchedulerDispatch, 5.0, obs::kControlNode));
  const obs::FlameDiff d =
      obs::FlameDiff::build(profile_of(base), profile_of(extra));
  EXPECT_TRUE(d.differs());
  ASSERT_FALSE(d.notes().empty());
  EXPECT_NE(d.notes()[0].find("epoch count changed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cluster::metrics_series
// ---------------------------------------------------------------------------

TEST(MetricsSeries, SamplesLandOnFaultBoundariesAndDeltasResum) {
  harness::Scenario sc = harness::wan(4);
  sc.faults.split_halves(4, 2, 6.0, 10.0)
      .crash(1, 3.0, 8.0, sim::RecoveryMode::kDurable);
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 1 << 15;  // retain the whole run for EpochIndex
  sc.metrics_series = true;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(21));
  harness::AirlineWorkload w;
  w.duration = 14.0;
  w.request_rate = 4.0;
  w.mover_rate = 2.0;
  harness::drive_airline(cluster, w, 21 ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();

  const std::vector<shard::MetricsSample> series = cluster.metrics_series();
  // Boundaries: cut open 6.0 / heal 10.0, crash 3.0 / restart 8.0 — four
  // distinct instants, plus the tail sample at now.
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[0].time, 3.0);
  EXPECT_DOUBLE_EQ(series[1].time, 6.0);
  EXPECT_DOUBLE_EQ(series[2].time, 8.0);
  EXPECT_DOUBLE_EQ(series[3].time, 10.0);
  EXPECT_GT(series[4].time, 10.0);

  // One sample per epoch: the boundary instants are exactly the epoch
  // transitions the trace-derived EpochIndex reports.
  const obs::EpochIndex epochs =
      obs::EpochIndex::build(cluster.tracer()->ring());
  EXPECT_EQ(series.size(), epochs.size());

  // Counter deltas re-sum to the cumulative totals.
  const obs::MetricsRegistry cum = cluster.metrics();
  for (const char* name :
       {mn::kBroadcastOriginated, mn::kBroadcastDelivered, "net.sent"}) {
    std::uint64_t sum = 0;
    for (const shard::MetricsSample& s : series) {
      sum += s.metrics.counters().at(name);
    }
    EXPECT_EQ(sum, cum.counters().at(name)) << name;
  }
  // Gauges are point-in-time: the tail sample carries the final sim time.
  EXPECT_DOUBLE_EQ(series.back().metrics.gauges().at("cluster.sim_time"),
                   cluster.scheduler().now());
  // The crash epoch [3.0, 6.0) delta must show the crash where it happened:
  // submissions to the down node were rejected only after t=3.
  EXPECT_EQ(series[0].metrics.counters().at("engine.rejected_submissions"),
            0u);
}

TEST(MetricsSeries, DisabledSeriesYieldsOneTailSample) {
  harness::Scenario sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(5));
  harness::AirlineWorkload w;
  w.duration = 4.0;
  w.request_rate = 2.0;
  harness::drive_airline(cluster, w, 5 ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();
  const std::vector<shard::MetricsSample> series = cluster.metrics_series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].time, cluster.scheduler().now());
  EXPECT_EQ(series[0].metrics.counters().at("cluster.updates_originated"),
            cluster.metrics().counters().at("cluster.updates_originated"));
}

// ---------------------------------------------------------------------------
// Bundle determinism over the chaos seed tiers
// ---------------------------------------------------------------------------

harness::Scenario chaos_scenario(std::uint64_t seed, bool with_crashes) {
  sim::Rng rng(seed);
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;
  harness::Scenario sc;
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(seed ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  if (with_crashes) {
    sc.faults.random_crashes(nodes, horizon,
                             static_cast<int>(rng.uniform_int(1, 4)),
                             /*min_down=*/1.0, /*max_down=*/6.0,
                             /*amnesia_probability=*/0.5);
  }
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  return sc;
}

/// Run the chaos scenario once, fabricate incident seeds from real updates
/// in the stream (chaos runs are correct, so the checkers stay clean — the
/// property under test is bundle ASSEMBLY determinism over real epochal
/// streams), and return the bundle's full byte image.
std::string chaos_bundle_bytes(std::uint64_t seed, bool with_crashes) {
  const harness::Scenario sc = chaos_scenario(seed, with_crashes);
  harness::Scenario traced = sc;
  traced.trace.enabled = true;
  shard::Cluster<Air> cluster(traced.cluster_config<Air>(seed ^ 0xc4a0));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 3.0;
  w.mover_rate = 2.0;
  w.cancel_fraction = 0.1;
  w.max_persons = 150;
  harness::drive_airline(cluster, w, (seed ^ 0xc4a0) ^ 0x5eed);
  cluster.run_until(25.0);
  cluster.settle();

  const std::vector<obs::Event>& events = capture.events();
  const obs::CausalGraph graph = obs::CausalGraph::build(events);
  const std::vector<obs::CausalGraph::UpdateKey> keys = graph.update_keys();
  std::vector<obs::IncidentSeed> seeds;
  for (std::size_t i = 0; i < keys.size() && seeds.size() < 3;
       i += 1 + keys.size() / 4) {
    obs::IncidentSeed s;
    s.message = "synthetic violation " + std::to_string(seeds.size());
    s.ts_logical = keys[i].first;
    s.ts_node = keys[i].second;
    s.detected_at = 12.5;
    seeds.push_back(std::move(s));
  }
  const obs::MetricsRegistry reg = cluster.metrics();
  const obs::IncidentReport report =
      obs::IncidentReport::build("chaos", events, seeds, {}, &reg);
  return report.to_json() + "\n===\n" + report.folded() + "\n===\n" +
         report.render();
}

class IncidentChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncidentChaos, BundleBytesAreSeedDeterministic) {
  const std::string a = chaos_bundle_bytes(GetParam(), /*with_crashes=*/false);
  const std::string b = chaos_bundle_bytes(GetParam(), /*with_crashes=*/false);
  ASSERT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidentChaos,
                         ::testing::Range<std::uint64_t>(1000, 1012));

class IncidentCrashChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncidentCrashChaos, BundleBytesAreSeedDeterministic) {
  const std::string a = chaos_bundle_bytes(GetParam(), /*with_crashes=*/true);
  const std::string b = chaos_bundle_bytes(GetParam(), /*with_crashes=*/true);
  ASSERT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidentCrashChaos,
                         ::testing::Range<std::uint64_t>(3000, 3012));

}  // namespace
