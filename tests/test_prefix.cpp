// Interned prefix references (core/prefix.hpp): the O(#nodes) PrefixRef a
// Record carries must denote EXACTLY the timestamp set the old explicit
// vectors recorded — every update merged at the origin at decision time,
// filtered to ts < cut for serializable decisions.
//
// The property tests verify this against an independent oracle rebuilt from
// the execution trace: kBroadcastDeliver events say precisely which
// (origin, seq) pairs each node had delivered at any point, kRestart events
// with amnesia recovery reset that knowledge, and the snapshot at each
// kBroadcastOriginate is the delivered set the decision saw. Expanding the
// interned reference must reproduce that snapshot across seeded chaos
// (partitions, drops, non-causal delivery), crash-chaos (durable and
// amnesia recovery), and compaction-enabled runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "apps/airline/airline.hpp"
#include "core/prefix.hpp"
#include "core/timestamp.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using core::PrefixRef;
using core::Timestamp;

/// Synthetic resolver: origin o's s-th broadcast carries ts (10s + o, o).
Timestamp fake_ts(core::NodeId o, std::uint64_t s) {
  return Timestamp{10 * s + o, o};
}

TEST(PrefixRef, CountSlotsAndExpand) {
  PrefixRef p;
  p.contiguous = {2, 1};
  p.extras = {{1, 3}};
  EXPECT_EQ(p.count(), 4u);
  EXPECT_EQ(p.slots(), 3u);
  const std::vector<Timestamp> got = p.expand(fake_ts);
  const std::vector<Timestamp> want = {
      Timestamp{10, 0}, Timestamp{11, 1}, Timestamp{20, 0}, Timestamp{31, 1}};
  EXPECT_EQ(got, want);
}

TEST(PrefixRef, CutFiltersStrictlyBelow) {
  PrefixRef p;
  p.contiguous = {2, 1};
  p.extras = {{1, 3}};
  p.cut = Timestamp{20, 0};
  // Only timestamps strictly below the cut survive expansion; count() still
  // reports the recorded (pre-cut) deliveries.
  const std::vector<Timestamp> want = {Timestamp{10, 0}, Timestamp{11, 1}};
  EXPECT_EQ(p.expand(fake_ts), want);
  EXPECT_EQ(p.count(), 4u);
}

TEST(PrefixRef, EqualityIsStructural) {
  PrefixRef a;
  a.contiguous = {1, 2};
  PrefixRef b = a;
  EXPECT_EQ(a, b);
  b.extras.emplace_back(0, 5);
  EXPECT_FALSE(a == b);
  b = a;
  b.cut = Timestamp{3, 0};
  EXPECT_FALSE(a == b);
}

/// The trace-based oracle: replay delivery/restart events into per-node
/// delivered sets, snapshot at each origination, and demand that expanding
/// the interned prefix reproduces the snapshot (cut applied). Also checks
/// the engine-state oracle on every node: the incrementally maintained
/// state equals a from-scratch replay.
void verify_interned_prefixes(shard::Cluster<Air>& cluster,
                              const obs::VectorSink& sink) {
  const auto amnesia =
      static_cast<std::uint64_t>(sim::RecoveryMode::kAmnesia);
  std::vector<std::set<std::pair<core::NodeId, std::uint64_t>>> have(
      cluster.num_nodes());
  std::map<Timestamp, std::vector<std::pair<core::NodeId, std::uint64_t>>>
      snapshot;
  for (const obs::Event& e : sink.events()) {
    switch (e.type) {
      case obs::EventType::kBroadcastDeliver:
        have[e.node].insert({static_cast<core::NodeId>(e.a), e.b});
        break;
      case obs::EventType::kRestart:
        // Amnesia loses the delivery vectors; the outbox replay and repair
        // re-deliveries that rebuild them are traced like any delivery.
        if (e.a == amnesia) have[e.node].clear();
        break;
      case obs::EventType::kBroadcastOriginate:
        snapshot.emplace(
            Timestamp{e.ts_logical, e.ts_node},
            std::vector<std::pair<core::NodeId, std::uint64_t>>(
                have[e.node].begin(), have[e.node].end()));
        break;
      default:
        break;
    }
  }

  const PrefixRef::Resolver resolve = cluster.prefix_resolver();
  std::size_t checked = 0;
  for (core::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (const auto& rec : cluster.node(n).originated()) {
      const auto it = snapshot.find(rec.ts);
      ASSERT_NE(it, snapshot.end())
          << "no originate event for ts " << rec.ts.to_string();
      std::vector<Timestamp> expect;
      expect.reserve(it->second.size());
      for (const auto& [o, s] : it->second) {
        const Timestamp t = resolve(o, s);
        if (rec.prefix.cut && !(t < *rec.prefix.cut)) continue;
        expect.push_back(t);
      }
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(rec.prefix.expand(resolve), expect)
          << "node " << n << " ts " << rec.ts.to_string();
      ++checked;
    }
    EXPECT_EQ(cluster.node(n).state(),
              cluster.node(n).log().recompute_naive())
        << "node " << n;
  }
  EXPECT_GT(checked, 0u);
}

class PrefixChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixChaos, InternedPrefixMatchesTraceOracle) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 5));
  const double horizon = 20.0;

  harness::Scenario sc;
  sc.name = "prefix-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  // Both delivery modes: non-causal runs exercise the out-of-order extras
  // path of PrefixRef; compaction runs prove folding never corrupts the
  // recorded knowledge; bounded repair must not change what is delivered.
  sc.causal_broadcast = rng.bernoulli(0.5);
  sc.compaction = rng.bernoulli(0.5);
  sc.max_repairs_per_message = rng.bernoulli(0.5) ? 4 : 0;
  sc.trace.enabled = true;

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0x9f17));
  obs::VectorSink sink;
  cluster.tracer()->add_sink(&sink);

  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 4.0);
  w.mover_rate = rng.uniform(1.0, 5.0);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 120;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);
  if (sc.causal_broadcast) {
    // A few serializable submissions exercise the reserved-cut path. Node 0
    // originates them: its reserved (L, 0) position is covered by any
    // peer's (L, m > 0) promise, so the reservations stay live even if the
    // cluster goes quiescent right after (the node-id tiebreak would let a
    // lower-id peer's promise tie below a higher-id origin's reservation).
    for (int i = 0; i < 4; ++i) {
      cluster.submit_serializable_at(
          rng.uniform(1.0, horizon - 2.0), 0,
          al::Request::request(static_cast<al::Person>(100 + i)));
    }
  }

  cluster.run_until(horizon);
  cluster.settle();
  ASSERT_TRUE(cluster.converged());
  verify_interned_prefixes(cluster, sink);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixChaos,
                         ::testing::Range<std::uint64_t>(7000, 7010));

class PrefixCrashChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixCrashChaos, InternedPrefixSurvivesCrashRecovery) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(3, 6));
  const double horizon = 20.0;

  harness::Scenario sc;
  sc.name = "prefix-crash-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.2), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.2);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x37c1);
  sc.faults.random_crashes(nodes, horizon,
                           static_cast<int>(rng.uniform_int(1, 4)),
                           /*min_down=*/1.0, /*max_down=*/5.0,
                           /*amnesia_probability=*/0.5);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.6);
  sc.compaction = rng.bernoulli(0.5);
  sc.trace.enabled = true;

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a7));
  obs::VectorSink sink;
  cluster.tracer()->add_sink(&sink);

  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 4.0);
  w.mover_rate = rng.uniform(1.0, 5.0);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 120;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  ASSERT_TRUE(cluster.converged());
  verify_interned_prefixes(cluster, sink);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixCrashChaos,
                         ::testing::Range<std::uint64_t>(8000, 8008));

TEST(Prefix, SerializableRecordsCarryTheReservedCut) {
  auto sc = harness::lan(3);
  sc.trace.enabled = true;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(61));
  obs::VectorSink sink;
  cluster.tracer()->add_sink(&sink);
  cluster.submit_at(0.5, 1, al::Request::request(1));
  cluster.submit_at(0.6, 2, al::Request::request(2));
  cluster.submit_serializable_at(1.0, 0, al::Request::request(3));
  cluster.run_until(5.0);
  cluster.settle();
  ASSERT_TRUE(cluster.converged());
  const auto& recs = cluster.node(0).originated();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].serializable);
  ASSERT_TRUE(recs[0].prefix.cut.has_value());
  EXPECT_EQ(*recs[0].prefix.cut, recs[0].ts);
  // The complete prefix of the reserved position: both earlier requests.
  EXPECT_EQ(recs[0].prefix.expand(cluster.prefix_resolver()).size(), 2u);
  verify_interned_prefixes(cluster, sink);
}

TEST(Prefix, SlotsStayFlatWhileHistoryGrows) {
  // The tentpole claim in miniature: per-record retained slots are bounded
  // by #nodes (+ rare holes), independent of how much history the prefix
  // denotes.
  auto sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(62));
  for (int i = 0; i < 100; ++i) {
    cluster.submit_now(static_cast<core::NodeId>(i % 3),
                       al::Request::request(static_cast<al::Person>(i + 1)));
    cluster.run_until(cluster.scheduler().now() + 0.1);
  }
  cluster.settle();
  const auto& recs = cluster.node(0).originated();
  ASSERT_GT(recs.size(), 10u);
  // The last record's prefix denotes ~100 transactions but retains 3 slots.
  EXPECT_GT(recs.back().prefix.count(), 50u);
  EXPECT_EQ(recs.back().prefix.slots(), 3u);
}

}  // namespace
