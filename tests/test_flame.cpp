// Epoch segmentation, flame attribution, and sharded-tracer determinism.
//
// Three layers under test. EpochIndex: boundary detection from cut/crash
// control events, same-instant coalescing (rack power loss, back-to-back
// rolling-restart seams), and the absence of zero-length interior epochs.
// FlameProfile: exact stage weights on a hand-built chain, plus structural
// invariants and byte-determinism of the exporters under chaos.
// ShardedTracer: the per-node-rings representation must be invisible — the
// sharded stream byte-identical to the legacy global tracer's on every
// chaos and crash-chaos seed, and the k-way (time, seq) ring merge must
// reconstruct the capture exactly.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/sharded_tracer.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using obs::EventType;

obs::Event ev(EventType type, double time, sim::NodeId node,
              std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t ts_logical = 0, sim::NodeId ts_node = 0) {
  return obs::Event{type, time, node, ts_logical, ts_node, a, b};
}

// ---------------------------------------------------------------------------
// EpochIndex unit tests
// ---------------------------------------------------------------------------

TEST(EpochIndex, EmptyStreamIsOneQuietEpoch) {
  const obs::EpochIndex idx = obs::EpochIndex::build({});
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.epoch(0).quiet());
  EXPECT_EQ(idx.epoch(0).label(), "quiet");
  EXPECT_EQ(idx.transitions(), 0u);
  EXPECT_EQ(idx.epoch_at(42.0), 0u);
  EXPECT_EQ(idx.epoch_of_event(0), 0u);
}

TEST(EpochIndex, PartitionOpenHealSegments) {
  std::vector<obs::Event> events;
  events.push_back(ev(EventType::kSchedulerDispatch, 0.5, obs::kControlNode));
  events.push_back(ev(EventType::kPartitionOpen, 2.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kSchedulerDispatch, 3.0, obs::kControlNode));
  events.push_back(ev(EventType::kPartitionHeal, 5.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kSchedulerDispatch, 8.0, obs::kControlNode));

  const obs::EpochIndex idx = obs::EpochIndex::build(events);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.transitions(), 2u);
  EXPECT_EQ(idx.coalesced(), 0u);

  EXPECT_EQ(idx.epoch(0).label(), "quiet");
  EXPECT_DOUBLE_EQ(idx.epoch(0).start, 0.5);
  EXPECT_DOUBLE_EQ(idx.epoch(0).end, 2.0);
  EXPECT_EQ(idx.epoch(1).label(), "cut{0}");
  ASSERT_EQ(idx.epoch(1).active_cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(idx.epoch(1).start, 2.0);
  EXPECT_DOUBLE_EQ(idx.epoch(1).end, 5.0);
  EXPECT_EQ(idx.epoch(2).label(), "quiet");
  EXPECT_DOUBLE_EQ(idx.epoch(2).end, 8.0);

  // Event-index attribution: [begin_event, end_event) partitions the stream.
  EXPECT_EQ(idx.epoch_of_event(0), 0u);
  EXPECT_EQ(idx.epoch_of_event(1), 1u);  // the open itself: incoming epoch
  EXPECT_EQ(idx.epoch_of_event(2), 1u);
  EXPECT_EQ(idx.epoch_of_event(3), 2u);
  EXPECT_EQ(idx.epoch_of_event(4), 2u);
  for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
    EXPECT_EQ(idx.epoch(i).end_event, idx.epoch(i + 1).begin_event);
  }

  // Time attribution: boundary instants belong to the incoming epoch.
  EXPECT_EQ(idx.epoch_at(0.0), 0u);
  EXPECT_EQ(idx.epoch_at(2.0), 1u);
  EXPECT_EQ(idx.epoch_at(4.9), 1u);
  EXPECT_EQ(idx.epoch_at(5.0), 2u);
}

TEST(EpochIndex, SameInstantTransitionsCoalesce) {
  // A rack power loss records one partition.open plus one crash per rack
  // node at the same instant: ONE epoch boundary, not three (which would
  // manufacture two zero-length epochs between the control events).
  std::vector<obs::Event> events;
  events.push_back(ev(EventType::kSchedulerDispatch, 0.0, obs::kControlNode));
  events.push_back(ev(EventType::kPartitionOpen, 3.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kCrash, 3.0, 1));
  events.push_back(ev(EventType::kCrash, 3.0, 2));
  events.push_back(ev(EventType::kSchedulerDispatch, 4.0, obs::kControlNode));

  const obs::EpochIndex idx = obs::EpochIndex::build(events);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.transitions(), 3u);
  EXPECT_EQ(idx.coalesced(), 2u);
  EXPECT_EQ(idx.epoch(1).label(), "cut{0}+down{1,2}");
  EXPECT_DOUBLE_EQ(idx.epoch(1).start, 3.0);
}

TEST(EpochIndex, OverlappingCutsTrackActiveSets) {
  std::vector<obs::Event> events;
  events.push_back(ev(EventType::kSchedulerDispatch, 0.0, obs::kControlNode));
  events.push_back(ev(EventType::kPartitionOpen, 1.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kPartitionOpen, 2.0, obs::kControlNode, 1));
  events.push_back(ev(EventType::kPartitionHeal, 3.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kPartitionHeal, 4.0, obs::kControlNode, 1));
  events.push_back(ev(EventType::kSchedulerDispatch, 5.0, obs::kControlNode));

  const obs::EpochIndex idx = obs::EpochIndex::build(events);
  ASSERT_EQ(idx.size(), 5u);
  EXPECT_EQ(idx.epoch(0).label(), "quiet");
  EXPECT_EQ(idx.epoch(1).label(), "cut{0}");
  EXPECT_EQ(idx.epoch(2).label(), "cut{0,1}");
  EXPECT_EQ(idx.epoch(3).label(), "cut{1}");
  EXPECT_EQ(idx.epoch(4).label(), "quiet");
  // No zero-length interior epochs.
  for (std::size_t i = 1; i + 1 < idx.size(); ++i) {
    EXPECT_GT(idx.epoch(i).end, idx.epoch(i).start);
  }
}

TEST(EpochIndex, CrashRestartLifecycle) {
  std::vector<obs::Event> events;
  events.push_back(ev(EventType::kSchedulerDispatch, 0.0, obs::kControlNode));
  events.push_back(ev(EventType::kCrash, 1.0, 2));
  events.push_back(ev(EventType::kRestart, 4.0, 2));
  events.push_back(ev(EventType::kSchedulerDispatch, 6.0, obs::kControlNode));

  const obs::EpochIndex idx = obs::EpochIndex::build(events);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.epoch(1).label(), "down{2}");
  ASSERT_EQ(idx.epoch(1).down_nodes.size(), 1u);
  EXPECT_EQ(idx.epoch(1).down_nodes[0], 2u);
  EXPECT_TRUE(idx.epoch(2).quiet());
}

TEST(EpochIndex, EpochAtOutsideControlSchedule) {
  // The edges the incident attribution leans on: a detection instant can
  // precede the first control event (streaming checker fires before any
  // fault) or trail the last heal (post-settle finalize) — both must map
  // to a valid epoch, never out of range.
  std::vector<obs::Event> events;
  events.push_back(ev(EventType::kSchedulerDispatch, 1.0, obs::kControlNode));
  events.push_back(ev(EventType::kPartitionOpen, 2.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kPartitionHeal, 5.0, obs::kControlNode, 0));
  events.push_back(ev(EventType::kCrash, 6.0, 1));
  events.push_back(ev(EventType::kRestart, 8.0, 1));
  events.push_back(ev(EventType::kSchedulerDispatch, 9.0, obs::kControlNode));

  const obs::EpochIndex idx = obs::EpochIndex::build(events);
  ASSERT_EQ(idx.size(), 5u);
  // Before the first control event — and before the stream starts at all.
  EXPECT_EQ(idx.epoch_at(-100.0), 0u);
  EXPECT_EQ(idx.epoch_at(0.0), 0u);
  EXPECT_EQ(idx.epoch_at(0.999), 0u);
  // The final restart opens the last quiet epoch; every later instant —
  // including times far past the recorded stream — belongs to it.
  EXPECT_EQ(idx.epoch_at(8.0), idx.size() - 1);
  EXPECT_TRUE(idx.epoch(idx.epoch_at(8.0)).quiet());
  EXPECT_EQ(idx.epoch_at(9.5), idx.size() - 1);
  EXPECT_EQ(idx.epoch_at(1e12), idx.size() - 1);
}

// ---------------------------------------------------------------------------
// FlameProfile unit tests
// ---------------------------------------------------------------------------

/// A complete two-replica chain with known times: originate at node 0
/// (t=1.0), flood send, deliver at node 1 (t=1.2) merged in-order at once,
/// deliver at node 2 (t=1.5) merged out-of-order at t=1.6.
std::vector<obs::Event> hand_built_chain() {
  std::vector<obs::Event> events;
  events.push_back(
      ev(EventType::kBroadcastOriginate, 1.0, 0, /*a=*/1, 0, /*ts=*/7, 0));
  events.push_back(ev(EventType::kBroadcastSend, 1.0, 0, /*a=*/1, /*b=*/2));
  events.push_back(
      ev(EventType::kMergeTailAppend, 1.0, 0, 0, 0, /*ts=*/7, 0));
  events.push_back(
      ev(EventType::kBroadcastDeliver, 1.2, 1, /*a=*/0, /*b=*/1));
  events.push_back(
      ev(EventType::kMergeTailAppend, 1.2, 1, 0, 0, /*ts=*/7, 0));
  events.push_back(
      ev(EventType::kBroadcastDeliver, 1.5, 2, /*a=*/0, /*b=*/1));
  events.push_back(
      ev(EventType::kMergeMidInsert, 1.6, 2, 0, 0, /*ts=*/7, 0));
  return events;
}

TEST(FlameProfile, HandBuiltChainAttribution) {
  const std::vector<obs::Event> events = hand_built_chain();
  const obs::EpochIndex epochs = obs::EpochIndex::build(events);
  const obs::CausalGraph graph = obs::CausalGraph::build(events);
  const obs::FlameProfile flame =
      obs::FlameProfile::build(events, graph, epochs);

  ASSERT_EQ(flame.timings().size(), 1u);
  const obs::UpdateTiming& ut = flame.timings()[0];
  EXPECT_EQ(ut.key.first, 7u);
  EXPECT_TRUE(ut.complete);
  EXPECT_EQ(ut.replicas, 2u);
  EXPECT_EQ(ut.critical_node, 2u);
  EXPECT_EQ(ut.crit_flood_us, 0);
  EXPECT_EQ(ut.crit_deliver_us, 500000);
  EXPECT_EQ(ut.crit_merge_us, 100000);
  EXPECT_EQ(ut.critical_us(), 600000);
  EXPECT_EQ(ut.dominant, "deliver");

  ASSERT_EQ(flame.epochs().size(), 1u);
  const obs::EpochProfile& ep = flame.epochs()[0];
  EXPECT_EQ(ep.updates, 1u);
  EXPECT_EQ(ep.incomplete, 0u);
  EXPECT_EQ(ep.critical_max_us, 600000);
  EXPECT_EQ(ep.dominant_counts.at("deliver"), 1u);

  // Exact stage weights: deliver;first = node 1 (200 ms), deliver;last =
  // node 2 (500 ms), merge split by kind (0 / 100 ms).
  const std::string folded = flame.folded();
  EXPECT_NE(folded.find("epoch0:quiet;deliver;first 200000\n"),
            std::string::npos);
  EXPECT_NE(folded.find("epoch0:quiet;deliver;last 500000\n"),
            std::string::npos);
  EXPECT_NE(folded.find("epoch0:quiet;merge;tail_append 0\n"),
            std::string::npos);
  EXPECT_NE(folded.find("epoch0:quiet;merge;mid_insert 100000\n"),
            std::string::npos);
  EXPECT_NE(folded.find("epoch0:quiet;flood_wait 0\n"), std::string::npos);

  const std::vector<obs::StageShare> top = flame.top_stages(0);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].stage, "deliver;last");
  EXPECT_EQ(top[0].us, 500000);
}

TEST(FlameProfile, ExportersAreByteDeterministic) {
  const std::vector<obs::Event> events = hand_built_chain();
  const obs::EpochIndex epochs = obs::EpochIndex::build(events);
  const obs::CausalGraph graph = obs::CausalGraph::build(events);
  const obs::FlameProfile a = obs::FlameProfile::build(events, graph, epochs);
  const obs::FlameProfile b = obs::FlameProfile::build(events, graph, epochs);
  EXPECT_EQ(a.folded(), b.folded());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.perfetto_json(), b.perfetto_json());
}

// ---------------------------------------------------------------------------
// Epoch segmentation on real fault plans
// ---------------------------------------------------------------------------

struct ClusterRun {
  std::vector<obs::Event> capture;
  std::vector<obs::Event> merged;
  std::uint64_t evicted = 0;
};

ClusterRun run_scenario(harness::Scenario sc, std::uint64_t seed,
                        bool sharded, double horizon) {
  sc.trace.enabled = true;
  sc.trace.sharded = sharded;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = 3.0;
  w.mover_rate = 2.0;
  w.cancel_fraction = 0.1;
  w.max_persons = 150;
  harness::drive_airline(cluster, w, seed ^ 0x5eed);
  cluster.run_until(horizon);
  cluster.settle();
  ClusterRun r;
  r.capture = capture.events();
  r.merged = cluster.tracer()->ring();
  r.evicted = cluster.tracer()->evicted();
  return r;
}

TEST(EpochIndex, RollingRestartWithZeroGapCoalescesSeams) {
  // gap = 0 lands node i's restart and node i+1's crash on the same
  // instant: each seam must coalesce into one boundary, never a
  // zero-length epoch.
  const std::size_t nodes = 4;
  harness::Scenario sc;
  sc.num_nodes = nodes;
  sc.faults.rolling_restart(nodes, /*start=*/4.0, /*down_for=*/2.0,
                            /*gap=*/0.0);
  const ClusterRun r = run_scenario(sc, 0x0117, true, 16.0);

  const obs::EpochIndex idx = obs::EpochIndex::build(r.capture);
  EXPECT_EQ(idx.transitions(), 2 * nodes);
  EXPECT_EQ(idx.coalesced(), nodes - 1);
  // N distinct boundary instants split the run into N + 1 epochs.
  ASSERT_EQ(idx.size(), 2 * nodes - idx.coalesced() + 1);
  EXPECT_TRUE(idx.epoch(0).quiet());
  EXPECT_TRUE(idx.epoch(idx.size() - 1).quiet());
  // One node down at a time, in order, and no zero-length interior epoch.
  for (std::size_t i = 1; i + 1 < idx.size(); ++i) {
    const obs::Epoch& e = idx.epoch(i);
    ASSERT_EQ(e.down_nodes.size(), 1u) << "epoch " << i;
    EXPECT_EQ(e.down_nodes[0], i - 1);
    EXPECT_GT(e.end, e.start);
  }
}

TEST(EpochIndex, RackPowerLossCoalescesCorrelatedBoundary) {
  const std::size_t nodes = 4;
  harness::Scenario sc;
  sc.num_nodes = nodes;
  sc.faults.rack_power_loss({0, 1}, nodes, /*start=*/5.0, /*end=*/9.0);
  const ClusterRun r = run_scenario(sc, 0xACDC, true, 16.0);

  const obs::EpochIndex idx = obs::EpochIndex::build(r.capture);
  // open + 2 crashes at t=5, heal + 2 restarts at t=9: 6 transitions, 2
  // boundaries.
  EXPECT_EQ(idx.transitions(), 6u);
  EXPECT_EQ(idx.coalesced(), 4u);
  ASSERT_EQ(idx.size(), 3u);
  const obs::Epoch& outage = idx.epoch(1);
  EXPECT_DOUBLE_EQ(outage.start, 5.0);
  EXPECT_DOUBLE_EQ(outage.end, 9.0);
  ASSERT_EQ(outage.active_cuts.size(), 1u);
  ASSERT_EQ(outage.down_nodes.size(), 2u);
  EXPECT_EQ(outage.down_nodes[0], 0u);
  EXPECT_EQ(outage.down_nodes[1], 1u);
  EXPECT_TRUE(idx.epoch(2).quiet());
}

// ---------------------------------------------------------------------------
// Sharded-tracer determinism and flame invariants under chaos
// ---------------------------------------------------------------------------

harness::Scenario chaos_scenario(std::uint64_t seed, bool with_crashes,
                                 std::size_t* nodes_out) {
  sim::Rng rng(seed);
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;
  harness::Scenario sc;
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(seed ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  if (with_crashes) {
    sc.faults.random_crashes(nodes, horizon,
                             static_cast<int>(rng.uniform_int(1, 4)),
                             /*min_down=*/1.0, /*max_down=*/6.0,
                             /*amnesia_probability=*/0.5);
  }
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  *nodes_out = nodes;
  return sc;
}

void expect_sharded_equivalence_and_flame_invariants(std::uint64_t seed,
                                                     bool with_crashes) {
  std::size_t nodes = 0;
  const harness::Scenario sc = chaos_scenario(seed, with_crashes, &nodes);
  const ClusterRun sharded = run_scenario(sc, seed ^ 0xc4a0, true, 25.0);
  const ClusterRun legacy = run_scenario(sc, seed ^ 0xc4a0, false, 25.0);

  // The representation must be invisible: same seed, same stream, byte for
  // byte, whether events went through one global ring or per-node shards.
  ASSERT_EQ(obs::serialize(sharded.capture), obs::serialize(legacy.capture));
  // And the k-way (time, seq) merge of the shard rings must reconstruct
  // the exact global record order (complete when nothing was evicted).
  if (sharded.evicted == 0) {
    ASSERT_EQ(obs::serialize(sharded.merged), obs::serialize(sharded.capture));
  } else {
    // Ring-truncated: still a subsequence of the capture, in order.
    std::size_t at = 0;
    for (const obs::Event& e : sharded.merged) {
      while (at < sharded.capture.size() && !(sharded.capture[at] == e)) ++at;
      ASSERT_LT(at, sharded.capture.size())
          << "merged ring event not found in capture order";
      ++at;
    }
  }

  // Flame structural invariants on the complete stream.
  const obs::EpochIndex epochs = obs::EpochIndex::build(sharded.capture);
  const obs::CausalGraph graph = obs::CausalGraph::build(sharded.capture);
  const obs::FlameProfile flame =
      obs::FlameProfile::build(sharded.capture, graph, epochs);
  ASSERT_EQ(flame.epochs().size(), epochs.size());
  std::uint64_t updates = 0, incomplete = 0;
  for (const obs::EpochProfile& ep : flame.epochs()) {
    updates += ep.updates;
    incomplete += ep.incomplete;
    EXPECT_GE(ep.root.total_us, 0);
    EXPECT_GE(ep.critical_max_us, 0);
  }
  EXPECT_EQ(updates, flame.timings().size());
  std::uint64_t complete = 0;
  for (const obs::UpdateTiming& ut : flame.timings()) {
    EXPECT_LT(ut.epoch, epochs.size());
    EXPECT_GE(ut.send, ut.originate);
    if (!ut.complete) continue;
    ++complete;
    EXPECT_GE(ut.crit_flood_us, 0);
    EXPECT_GE(ut.crit_deliver_us, 0);
    EXPECT_GE(ut.crit_merge_us, 0);
    EXPECT_FALSE(ut.dominant.empty());
  }
  EXPECT_EQ(complete + incomplete, updates);
}

class ShardedChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedChaos, ShardedStreamMatchesLegacyByteForByte) {
  expect_sharded_equivalence_and_flame_invariants(GetParam(),
                                                  /*with_crashes=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedChaos,
                         ::testing::Range<std::uint64_t>(1000, 1012));

class ShardedCrashChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedCrashChaos, ShardedStreamMatchesLegacyByteForByte) {
  expect_sharded_equivalence_and_flame_invariants(GetParam(),
                                                  /*with_crashes=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedCrashChaos,
                         ::testing::Range<std::uint64_t>(3000, 3012));

// ---------------------------------------------------------------------------
// ShardedTracer mechanics
// ---------------------------------------------------------------------------

TEST(ShardedTracer, MergeReconstructsInterleavedRecordOrder) {
  obs::ShardedTracer st(/*num_nodes=*/3, /*ring_capacity=*/16);
  // Interleave records across shards with equal and distinct times; the
  // merge must return them in exact record order (seq breaks time ties).
  st.shard(1).record(ev(EventType::kNetSend, 1.0, 1));
  st.shard(0).record(ev(EventType::kNetDeliver, 1.0, 0));
  st.control_shard().record(
      ev(EventType::kSchedulerDispatch, 1.0, obs::kControlNode));
  st.shard(2).record(ev(EventType::kNetSend, 2.0, 2));
  st.shard(0).record(ev(EventType::kNetSend, 3.0, 0));

  EXPECT_EQ(st.recorded(), 5u);
  EXPECT_EQ(st.next_seq(), 5u);
  const std::vector<obs::Event> merged = st.ring();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].node, 1u);
  EXPECT_EQ(merged[1].node, 0u);
  EXPECT_EQ(merged[2].node, obs::kControlNode);
  EXPECT_EQ(merged[3].node, 2u);
  EXPECT_EQ(merged[4].node, 0u);
}

TEST(ShardedTracer, ControlShardIsolatesControlTraffic) {
  obs::ShardedTracer st(/*num_nodes=*/2, /*ring_capacity=*/4);
  // A chatty node wraps its own ring; the control shard's history survives.
  st.control_shard().record(
      ev(EventType::kPartitionOpen, 0.5, obs::kControlNode, 0));
  for (int i = 0; i < 100; ++i) {
    st.shard(0).record(ev(EventType::kNetSend, 1.0 + i, 0));
  }
  EXPECT_GT(st.evicted(), 0u);
  const std::vector<obs::Event> merged = st.ring();
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.front().type, EventType::kPartitionOpen);
  // kControlNode (and any out-of-range id) maps to the control shard.
  EXPECT_EQ(&st.shard(obs::kControlNode), &st.control_shard());
}

TEST(ShardedTracer, SinksObserveGlobalRecordOrder) {
  obs::ShardedTracer st(/*num_nodes=*/2, /*ring_capacity=*/8);
  obs::VectorSink sink;
  st.add_sink(&sink);
  st.shard(1).record(ev(EventType::kNetSend, 1.0, 1));
  st.shard(0).record(ev(EventType::kNetDeliver, 1.1, 0));
  st.shard(1).record(ev(EventType::kNetSend, 1.2, 1));
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(obs::serialize(sink.events()), obs::serialize(st.ring()));
}

}  // namespace
