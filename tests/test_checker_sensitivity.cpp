// Checker sensitivity: a verification tool is only trustworthy if it
// REJECTS bad executions. Each test takes a valid execution, injects a
// specific violation (forged update, dropped prefix entry, wrong external
// action, broken bound...), and asserts the corresponding checker flags it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "analysis/airline_theorems.hpp"
#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/fairness.hpp"
#include "analysis/incident.hpp"
#include "analysis/streaming.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using al::Request;
using al::Update;

/// A mid-sized valid execution to mutate.
core::Execution<Air> valid_execution(std::uint64_t seed) {
  auto sc = harness::wan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::AirlineWorkload w;
  w.duration = 12.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, seed ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();
  return cluster.execution();
}

TEST(CheckerSensitivity, BaselineIsClean) {
  const auto exec = valid_execution(1);
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
}

TEST(CheckerSensitivity, ForgedUpdateDetected) {
  auto txs = valid_execution(2).transactions();
  // Find a MOVE-UP that chose someone and forge the person.
  for (auto& tx : txs) {
    if (tx.update.kind == Update::Kind::kMoveUp) {
      tx.update.person += 1000;
      break;
    }
  }
  const core::Execution<Air> forged(std::move(txs));
  EXPECT_FALSE(analysis::check_prefix_subsequence_condition(forged).ok());
}

TEST(CheckerSensitivity, DroppedPrefixEntryChangesDecisionDetected) {
  auto txs = valid_execution(3).transactions();
  // Remove the first prefix entry of a mover whose decision depends on it.
  bool mutated = false;
  for (auto& tx : txs) {
    if (!mutated && tx.update.kind == Update::Kind::kMoveUp &&
        !tx.prefix.empty()) {
      tx.prefix.erase(tx.prefix.begin());
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  const core::Execution<Air> forged(std::move(txs));
  // Either the decision re-run differs (condition (3)) or — if the dropped
  // entry was irrelevant — the execution may legitimately pass; use a
  // request-bearing prefix to make it relevant: accept either a flagged
  // report or unchanged decision, but SOME mutation must be caught across
  // seeds.
  const bool caught =
      !analysis::check_prefix_subsequence_condition(forged).ok();
  // Try more seeds if the first mutation was benign.
  if (!caught) {
    auto txs2 = valid_execution(13).transactions();
    for (auto& tx : txs2) {
      if (tx.update.kind == Update::Kind::kMoveUp && tx.prefix.size() > 2) {
        tx.prefix.clear();  // nuking the whole prefix is never benign for a
                            // mover that granted a seat
        break;
      }
    }
    EXPECT_FALSE(analysis::check_prefix_subsequence_condition(
                     core::Execution<Air>(std::move(txs2)))
                     .ok());
  }
}

TEST(CheckerSensitivity, ForgedExternalActionDetected) {
  auto txs = valid_execution(4).transactions();
  for (auto& tx : txs) {
    if (!tx.external_actions.empty()) {
      tx.external_actions[0].subject = "P31337";
      break;
    }
  }
  const core::Execution<Air> forged(std::move(txs));
  EXPECT_FALSE(analysis::check_prefix_subsequence_condition(forged).ok());
}

TEST(CheckerSensitivity, TransitivityHoleDetected) {
  // Build tx2 seeing tx1 but not tx0, where tx1 saw tx0.
  core::ScriptedExecution<Air> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {0});
  sx.run(Request::request(3), {1});  // sees 1 but not 0: not transitive
  EXPECT_FALSE(analysis::is_transitive(sx.execution()));
  EXPECT_FALSE(analysis::check_transitive(sx.execution()).ok());
}

TEST(CheckerSensitivity, Theorem5CheckerRejectsWrongBound) {
  // With f == 0 the step-bound check must fail on any run where
  // overbooking ever increased.
  for (std::uint64_t seed = 5; seed < 15; ++seed) {
    auto sc = harness::partitioned_wan(4, 3.0, 15.0);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::AirlineWorkload w;
    w.duration = 20.0;
    w.request_rate = 3.0;
    w.mover_rate = 4.0;
    harness::drive_airline(cluster, w, seed);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    double worst = 0.0;
    for (const auto& s : exec.actual_states()) {
      worst = std::max(worst, Air::cost(s, Air::kOverbooking));
    }
    if (worst == 0.0) continue;  // need a run with actual damage
    const auto report = analysis::check_theorem5(
        exec, Air::kOverbooking,
        [](const Request&, int) { return true; },
        [](int, std::size_t) { return 0.0; });
    EXPECT_FALSE(report.ok());
    return;
  }
  FAIL() << "no seed produced overbooking damage to test against";
}

TEST(CheckerSensitivity, Theorem20CheckerRejectsSpoofedPrefixes) {
  // Take a real partitioned run with an overbooking step and FORGE that
  // transaction's prefix to the complete one: now the prefix contains an
  // assignment witness for every assigned person (witness-k = 0), so the
  // refined bound is 0 while the jump is 900 — the checker must flag it.
  for (std::uint64_t seed = 301; seed <= 320; ++seed) {
    auto sc = harness::partitioned_wan(4, 3.0, 15.0);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::AirlineWorkload w;
    w.duration = 20.0;
    w.request_rate = 3.0;
    w.mover_rate = 4.0;
    w.cancel_fraction = 0.0;
    harness::drive_airline(cluster, w, seed);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    auto txs = exec.transactions();
    const auto states = exec.actual_states();
    bool forged_one = false;
    for (std::size_t i = 0; i < txs.size() && !forged_one; ++i) {
      if (Air::cost(states[i + 1], Air::kOverbooking) >
          Air::cost(states[i], Air::kOverbooking)) {
        std::vector<std::size_t> complete(i);
        std::iota(complete.begin(), complete.end(), 0);
        txs[i].prefix = std::move(complete);
        forged_one = true;
      }
    }
    if (!forged_one) continue;  // this seed never overbooked
    const auto report =
        analysis::check_theorem20(core::Execution<Air>(std::move(txs)));
    EXPECT_FALSE(report.ok());
    return;
  }
  FAIL() << "no seed produced an overbooking step to forge";
}

TEST(CheckerSensitivity, FairnessCheckerDetectsPriorityRewrite) {
  // A scripted execution where a mover saw both requests with P<Q, then a
  // forged CANCEL+re-add flips them: Theorem 25's checker must flag it.
  core::ScriptedExecution<Air> sx;
  const auto r1 = sx.run(Request::request(1), {});
  const auto r2 = sx.run(Request::request(2), {r1});
  sx.run(Request::move_up(), {r1, r2});  // sees both, P1 < P2
  auto txs = sx.execution().transactions();
  // Forge a 4th transaction whose update erases P1 — the frozen P1 < P2
  // ordering no longer holds in the final state, which the checker must
  // flag. (The request/update mismatch also breaks condition (3), but we
  // exercise the fairness checker specifically.)
  core::TxInstance<Air> evil;
  evil.ts = core::Timestamp{99, 0};
  evil.request = Request::move_up();
  evil.prefix = {0, 1, 2};
  evil.update = Update{Update::Kind::kCancel, 1};
  txs.push_back(evil);
  const core::Execution<Air> forged(std::move(txs));
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_theorem25(forged, cls);
  EXPECT_FALSE(report.ok());
}

TEST(CheckerSensitivity, GroupingRejectsOverclaimedK) {
  const auto preserves = [](const Request& r, int c) {
    return Air::Theory::preserves_cost(r, c);
  };
  for (std::uint64_t seed = 6; seed < 30; ++seed) {
    const auto exec = valid_execution(seed);
    const auto grouping =
        analysis::find_grouping(exec, Air::kUnderbooking, preserves);
    if (!grouping.has_value()) continue;
    const std::size_t k = analysis::grouping_hypothesis_k(
        exec, *grouping, Air::kUnderbooking, preserves);
    if (k == 0) continue;
    // Claiming a smaller k must be reported as a failed hypothesis.
    const auto report = analysis::check_theorem9(
        exec, *grouping, Air::kUnderbooking, preserves,
        [](int c, std::size_t kk) { return Air::Theory::f_bound(c, kk); },
        k - 1);
    EXPECT_FALSE(report.ok());
    return;
  }
  FAIL() << "no seed produced an incomplete execution with a grouping";
}

// --- Byzantine payload sensitivity ---------------------------------------
//
// The byzantine_payload fault mode corrupts, duplicates, and reorders
// update payloads at the broadcast receive path. The sensitivity demand:
// every seeded fault is either provably masked (dedup swallowed the
// duplicate, causal delivery absorbed the reorder, the substituted update
// folded to the same state) or reported by the streaming checker — never
// silently accepted into a replica.

/// Canonical byte serialization of an execution trace: two runs agree iff
/// these strings are identical (same idiom as the crash-recovery
/// determinism regression).
std::string execution_bytes(const core::Execution<Air>& exec) {
  std::ostringstream os;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    os << tx.ts.logical << ':' << tx.ts.node << " origin=" << tx.origin
       << " t=" << tx.real_time << " prefix[";
    for (std::size_t j : tx.prefix) os << j << ',';
    os << "] ext[";
    for (const auto& a : tx.external_actions) {
      os << a.kind << '=' << a.subject << ',';
    }
    os << "]\n";
  }
  return os.str();
}

TEST(ByzantineSensitivity, EveryAppliedCorruptionCaughtOrMasked) {
  std::uint64_t total_applied = 0;
  std::uint64_t runs_caught = 0;
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    auto sc = harness::wan(3);
    sc.faults.byzantine_payload(/*corrupt=*/0.2, 0.0, 0.0, 0.0, 1e18);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    analysis::StreamingChecker<Air> ck(3);
    cluster.set_stream_observer(&ck);
    harness::AirlineWorkload w;
    w.duration = 12.0;
    w.request_rate = 3.0;
    w.mover_rate = 3.0;
    harness::drive_airline(cluster, w, seed ^ 0xf);
    // No settle(): corrupted replicas may never converge.
    cluster.run_until(w.duration);
    cluster.run_until(w.duration + 8.0);
    ck.finish(cluster.scheduler().now());

    const obs::MetricsRegistry reg = cluster.metrics();
    const std::uint64_t applied = reg.counters().at("broadcast.byz_corrupted");
    total_applied += applied;
    if (ck.divergence_events() > 0) {
      ++runs_caught;
    } else {
      // Zero divergence reported despite `applied` substitutions: each one
      // must have been effect-masked. Prove it — every replica's state
      // equals the clean replay of the true updates it merged.
      for (core::NodeId n = 0; n < 3; ++n) {
        EXPECT_EQ(cluster.node(n).state(), ck.shadow_state(n))
            << "seed " << seed << ": corruption silently accepted at node "
            << n;
      }
    }
  }
  // The sweep is only meaningful if the adversary landed hits and the
  // checker actually caught some.
  EXPECT_GT(total_applied, 0u);
  EXPECT_GT(runs_caught, 0u);
}

TEST(ByzantineSensitivity, DuplicatesAreMaskedByBroadcastDedup) {
  auto sc = harness::wan(3);
  sc.faults.byzantine_payload(0.0, /*duplicate=*/0.4, 0.0, 0.0, 1e18);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(77));
  analysis::StreamingChecker<Air> ck(3);
  cluster.set_stream_observer(&ck);
  harness::AirlineWorkload w;
  w.duration = 12.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, 77 ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();  // duplication alone must not block convergence
  ck.finish(cluster.scheduler().now());

  const obs::MetricsRegistry reg = cluster.metrics();
  EXPECT_GT(reg.counters().at("broadcast.byz_duplicated"), 0u);
  // Every injected duplicate was swallowed by the accept-path dedup...
  EXPECT_GE(reg.counters().at("broadcast.duplicates_dropped"),
            reg.counters().at("broadcast.byz_duplicated"));
  // ...so nothing reached a replica twice: clean replays everywhere and a
  // clean oracle.
  EXPECT_EQ(ck.divergence_events(), 0u);
  EXPECT_EQ(ck.violation_count(), 0u);
  EXPECT_TRUE(
      analysis::check_prefix_subsequence_condition(cluster.execution()).ok());
}

TEST(ByzantineSensitivity, ReordersAreMaskedByCausalDelivery) {
  auto sc = harness::wan(3);
  sc.faults.byzantine_payload(0.0, 0.0, /*reorder=*/0.5, 0.0, 1e18);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(78));
  analysis::StreamingChecker<Air> ck(3);
  cluster.set_stream_observer(&ck);
  harness::AirlineWorkload w;
  w.duration = 12.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, 78 ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();  // anti-entropy traffic flushes any held wire
  ck.finish(cluster.scheduler().now());

  const obs::MetricsRegistry reg = cluster.metrics();
  EXPECT_GT(reg.counters().at("broadcast.byz_reordered"), 0u);
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(ck.divergence_events(), 0u);
  EXPECT_EQ(ck.violation_count(), 0u);
  EXPECT_TRUE(
      analysis::check_prefix_subsequence_condition(cluster.execution()).ok());
}

/// Determinism regression for the new fault mode: same seed, same plan →
/// byte-identical execution and metrics, divergence counts included.
TEST(ByzantineSensitivity, SameSeedRunsAreByteIdentical) {
  auto run = [](std::string* bytes, std::string* metrics_json) {
    auto sc = harness::wan(3);
    sc.faults.byzantine_payload(0.15, 0.1, 0.1, 0.0, 1e18);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(79));
    analysis::StreamingChecker<Air> ck(3);
    cluster.set_stream_observer(&ck);
    harness::AirlineWorkload w;
    w.duration = 12.0;
    w.request_rate = 3.0;
    w.mover_rate = 3.0;
    harness::drive_airline(cluster, w, 79 ^ 0xf);
    cluster.run_until(w.duration);
    cluster.run_until(w.duration + 8.0);
    ck.finish(cluster.scheduler().now());
    *bytes = execution_bytes(cluster.execution());
    *metrics_json = cluster.metrics().to_json();
  };
  std::string b1, m1, b2, m2;
  run(&b1, &m1);
  run(&b2, &m2);
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(m1, m2);
}

/// An armed-but-dormant adversary (active window entirely after the run)
/// must not perturb the execution at all — the corruption draws are gated
/// on the window, not merely discarded.
TEST(ByzantineSensitivity, DormantWindowLeavesRunUntouched) {
  auto run = [](bool armed) {
    auto sc = harness::wan(3);
    if (armed) {
      sc.faults.byzantine_payload(0.5, 0.5, 0.5, /*start=*/1e6, /*end=*/2e6);
    }
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(80));
    harness::AirlineWorkload w;
    w.duration = 12.0;
    w.request_rate = 3.0;
    w.mover_rate = 3.0;
    harness::drive_airline(cluster, w, 80 ^ 0xf);
    cluster.run_until(w.duration);
    cluster.settle();
    return execution_bytes(cluster.execution());
  };
  EXPECT_EQ(run(false), run(true));
}

/// Every seeded corruption the streaming checker catches must yield a
/// forensic bundle whose ATTRIBUTED epoch contains the faulty admission:
/// the violating update's originate event falls inside the span of the
/// epoch the bundle blames. A partition window overlaps the run so the
/// admission/detection distinction is live — damage admitted while the
/// cut is open is frequently detected only after the heal.
///
/// When INCIDENT_ARTIFACT_DIR is set (the CI sensitivity job sets it),
/// every bundle is also written as JSON — uploaded as the debugging
/// artifact when the job fails.
TEST(ByzantineSensitivity, IncidentBundlesAttributeAdmissionEpochs) {
  std::size_t bundles = 0, attributed = 0;
  const char* artifact_dir = std::getenv("INCIDENT_ARTIFACT_DIR");
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    auto sc = harness::wan(3);
    sc.faults.byzantine_payload(/*corrupt=*/0.2, 0.0, 0.0, 0.0, 1e18);
    sc.faults.split_halves(3, 1, 4.0, 8.0);
    sc.trace.enabled = true;
    sc.trace.ring_capacity = 1 << 15;
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    obs::VectorSink capture;
    cluster.tracer()->add_sink(&capture);
    analysis::StreamingChecker<Air> ck(3);
    cluster.set_stream_observer(&ck);
    harness::AirlineWorkload w;
    w.duration = 12.0;
    w.request_rate = 3.0;
    w.mover_rate = 3.0;
    harness::drive_airline(cluster, w, seed ^ 0xf);
    cluster.run_until(w.duration);
    cluster.run_until(w.duration + 8.0);
    ck.finish(cluster.scheduler().now());
    if (ck.incident_seeds().empty()) continue;

    const obs::MetricsRegistry reg = cluster.metrics();
    const obs::IncidentReport bundle =
        analysis::build_incident_report(ck, capture.events(), &reg);
    ASSERT_FALSE(bundle.empty()) << "seed " << seed;
    ++bundles;
    if (artifact_dir != nullptr) {
      std::ofstream out(std::string(artifact_dir) + "/incident_seed" +
                        std::to_string(seed) + ".json");
      out << bundle.to_json();
    }
    for (const obs::Incident& inc : bundle.incidents()) {
      if (!inc.in_stream) continue;
      // The admission anchor: the chain's originate event, else (ring
      // truncation) its earliest retained event — same rule the builder
      // applies.
      const obs::Event* anchor = &inc.chain.front();
      for (const obs::Event& e : inc.chain) {
        if (e.type == obs::EventType::kBroadcastOriginate) {
          anchor = &e;
          break;
        }
      }
      const obs::Epoch& adm = bundle.epochs().epoch(inc.admitted_epoch);
      EXPECT_GE(anchor->time, adm.start) << "seed " << seed;
      if (inc.admitted_epoch + 1 < bundle.epochs().size()) {
        EXPECT_LE(anchor->time, adm.end) << "seed " << seed;
      }
      // Detection never precedes admission.
      EXPECT_GE(inc.detected_epoch, inc.admitted_epoch) << "seed " << seed;
      ++attributed;
    }
    // The checker's own counter rode along in the bundle and carries the
    // TRUE total — at least the retained (possibly capped) seed rows.
    EXPECT_EQ(bundle.metrics().counters().at("checker.incident_seeds"),
              ck.incident_seeds_total())
        << "seed " << seed;
    EXPECT_GE(ck.incident_seeds_total(), ck.incident_seeds().size());
  }
  // The sweep is only meaningful if violations fired and were attributed.
  EXPECT_GT(bundles, 0u);
  EXPECT_GT(attributed, 0u);
}

TEST(CheckerSensitivity, AtomicityCheckerRejectsInterlopers) {
  core::ScriptedExecution<Air> sx;
  sx.run(Request::request(1), {});
  const auto m0 = sx.run(Request::move_up(), {0});
  sx.run(Request::request(2), {0, m0});
  // Range [1,2]: tx2 sees tx1, but gained NEW outside info (tx0 vs tx1's
  // base {0}) — wait, tx1's base is {0} and tx2's below-range part is also
  // {0}: atomic. Now a genuinely different base:
  sx.run(Request::move_up(), {2});  // tx3: base {2} excludes 0
  EXPECT_FALSE(analysis::is_atomic(sx.execution(), 1, 3));
}

}  // namespace
