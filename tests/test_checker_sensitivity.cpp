// Checker sensitivity: a verification tool is only trustworthy if it
// REJECTS bad executions. Each test takes a valid execution, injects a
// specific violation (forged update, dropped prefix entry, wrong external
// action, broken bound...), and asserts the corresponding checker flags it.
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/airline_theorems.hpp"
#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/fairness.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using al::Request;
using al::Update;

/// A mid-sized valid execution to mutate.
core::Execution<Air> valid_execution(std::uint64_t seed) {
  auto sc = harness::wan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::AirlineWorkload w;
  w.duration = 12.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, seed ^ 0xf);
  cluster.run_until(w.duration);
  cluster.settle();
  return cluster.execution();
}

TEST(CheckerSensitivity, BaselineIsClean) {
  const auto exec = valid_execution(1);
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
}

TEST(CheckerSensitivity, ForgedUpdateDetected) {
  auto txs = valid_execution(2).transactions();
  // Find a MOVE-UP that chose someone and forge the person.
  for (auto& tx : txs) {
    if (tx.update.kind == Update::Kind::kMoveUp) {
      tx.update.person += 1000;
      break;
    }
  }
  const core::Execution<Air> forged(std::move(txs));
  EXPECT_FALSE(analysis::check_prefix_subsequence_condition(forged).ok());
}

TEST(CheckerSensitivity, DroppedPrefixEntryChangesDecisionDetected) {
  auto txs = valid_execution(3).transactions();
  // Remove the first prefix entry of a mover whose decision depends on it.
  bool mutated = false;
  for (auto& tx : txs) {
    if (!mutated && tx.update.kind == Update::Kind::kMoveUp &&
        !tx.prefix.empty()) {
      tx.prefix.erase(tx.prefix.begin());
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  const core::Execution<Air> forged(std::move(txs));
  // Either the decision re-run differs (condition (3)) or — if the dropped
  // entry was irrelevant — the execution may legitimately pass; use a
  // request-bearing prefix to make it relevant: accept either a flagged
  // report or unchanged decision, but SOME mutation must be caught across
  // seeds.
  const bool caught =
      !analysis::check_prefix_subsequence_condition(forged).ok();
  // Try more seeds if the first mutation was benign.
  if (!caught) {
    auto txs2 = valid_execution(13).transactions();
    for (auto& tx : txs2) {
      if (tx.update.kind == Update::Kind::kMoveUp && tx.prefix.size() > 2) {
        tx.prefix.clear();  // nuking the whole prefix is never benign for a
                            // mover that granted a seat
        break;
      }
    }
    EXPECT_FALSE(analysis::check_prefix_subsequence_condition(
                     core::Execution<Air>(std::move(txs2)))
                     .ok());
  }
}

TEST(CheckerSensitivity, ForgedExternalActionDetected) {
  auto txs = valid_execution(4).transactions();
  for (auto& tx : txs) {
    if (!tx.external_actions.empty()) {
      tx.external_actions[0].subject = "P31337";
      break;
    }
  }
  const core::Execution<Air> forged(std::move(txs));
  EXPECT_FALSE(analysis::check_prefix_subsequence_condition(forged).ok());
}

TEST(CheckerSensitivity, TransitivityHoleDetected) {
  // Build tx2 seeing tx1 but not tx0, where tx1 saw tx0.
  core::ScriptedExecution<Air> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {0});
  sx.run(Request::request(3), {1});  // sees 1 but not 0: not transitive
  EXPECT_FALSE(analysis::is_transitive(sx.execution()));
  EXPECT_FALSE(analysis::check_transitive(sx.execution()).ok());
}

TEST(CheckerSensitivity, Theorem5CheckerRejectsWrongBound) {
  // With f == 0 the step-bound check must fail on any run where
  // overbooking ever increased.
  for (std::uint64_t seed = 5; seed < 15; ++seed) {
    auto sc = harness::partitioned_wan(4, 3.0, 15.0);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::AirlineWorkload w;
    w.duration = 20.0;
    w.request_rate = 3.0;
    w.mover_rate = 4.0;
    harness::drive_airline(cluster, w, seed);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    double worst = 0.0;
    for (const auto& s : exec.actual_states()) {
      worst = std::max(worst, Air::cost(s, Air::kOverbooking));
    }
    if (worst == 0.0) continue;  // need a run with actual damage
    const auto report = analysis::check_theorem5(
        exec, Air::kOverbooking,
        [](const Request&, int) { return true; },
        [](int, std::size_t) { return 0.0; });
    EXPECT_FALSE(report.ok());
    return;
  }
  FAIL() << "no seed produced overbooking damage to test against";
}

TEST(CheckerSensitivity, Theorem20CheckerRejectsSpoofedPrefixes) {
  // Take a real partitioned run with an overbooking step and FORGE that
  // transaction's prefix to the complete one: now the prefix contains an
  // assignment witness for every assigned person (witness-k = 0), so the
  // refined bound is 0 while the jump is 900 — the checker must flag it.
  for (std::uint64_t seed = 301; seed <= 320; ++seed) {
    auto sc = harness::partitioned_wan(4, 3.0, 15.0);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::AirlineWorkload w;
    w.duration = 20.0;
    w.request_rate = 3.0;
    w.mover_rate = 4.0;
    w.cancel_fraction = 0.0;
    harness::drive_airline(cluster, w, seed);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    auto txs = exec.transactions();
    const auto states = exec.actual_states();
    bool forged_one = false;
    for (std::size_t i = 0; i < txs.size() && !forged_one; ++i) {
      if (Air::cost(states[i + 1], Air::kOverbooking) >
          Air::cost(states[i], Air::kOverbooking)) {
        std::vector<std::size_t> complete(i);
        std::iota(complete.begin(), complete.end(), 0);
        txs[i].prefix = std::move(complete);
        forged_one = true;
      }
    }
    if (!forged_one) continue;  // this seed never overbooked
    const auto report =
        analysis::check_theorem20(core::Execution<Air>(std::move(txs)));
    EXPECT_FALSE(report.ok());
    return;
  }
  FAIL() << "no seed produced an overbooking step to forge";
}

TEST(CheckerSensitivity, FairnessCheckerDetectsPriorityRewrite) {
  // A scripted execution where a mover saw both requests with P<Q, then a
  // forged CANCEL+re-add flips them: Theorem 25's checker must flag it.
  core::ScriptedExecution<Air> sx;
  const auto r1 = sx.run(Request::request(1), {});
  const auto r2 = sx.run(Request::request(2), {r1});
  sx.run(Request::move_up(), {r1, r2});  // sees both, P1 < P2
  auto txs = sx.execution().transactions();
  // Forge a 4th transaction whose update erases P1 — the frozen P1 < P2
  // ordering no longer holds in the final state, which the checker must
  // flag. (The request/update mismatch also breaks condition (3), but we
  // exercise the fairness checker specifically.)
  core::TxInstance<Air> evil;
  evil.ts = core::Timestamp{99, 0};
  evil.request = Request::move_up();
  evil.prefix = {0, 1, 2};
  evil.update = Update{Update::Kind::kCancel, 1};
  txs.push_back(evil);
  const core::Execution<Air> forged(std::move(txs));
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_theorem25(forged, cls);
  EXPECT_FALSE(report.ok());
}

TEST(CheckerSensitivity, GroupingRejectsOverclaimedK) {
  const auto preserves = [](const Request& r, int c) {
    return Air::Theory::preserves_cost(r, c);
  };
  for (std::uint64_t seed = 6; seed < 30; ++seed) {
    const auto exec = valid_execution(seed);
    const auto grouping =
        analysis::find_grouping(exec, Air::kUnderbooking, preserves);
    if (!grouping.has_value()) continue;
    const std::size_t k = analysis::grouping_hypothesis_k(
        exec, *grouping, Air::kUnderbooking, preserves);
    if (k == 0) continue;
    // Claiming a smaller k must be reported as a failed hypothesis.
    const auto report = analysis::check_theorem9(
        exec, *grouping, Air::kUnderbooking, preserves,
        [](int c, std::size_t kk) { return Air::Theory::f_bound(c, kk); },
        k - 1);
    EXPECT_FALSE(report.ok());
    return;
  }
  FAIL() << "no seed produced an incomplete execution with a grouping";
}

TEST(CheckerSensitivity, AtomicityCheckerRejectsInterlopers) {
  core::ScriptedExecution<Air> sx;
  sx.run(Request::request(1), {});
  const auto m0 = sx.run(Request::move_up(), {0});
  sx.run(Request::request(2), {0, m0});
  // Range [1,2]: tx2 sees tx1, but gained NEW outside info (tx0 vs tx1's
  // base {0}) — wait, tx1's base is {0} and tx2's below-range part is also
  // {0}: atomic. Now a genuinely different base:
  sx.run(Request::move_up(), {2});  // tx3: base {2} excludes 0
  EXPECT_FALSE(analysis::is_atomic(sx.execution(), 1, 3));
}

}  // namespace
