// The section 1.3 probabilistic layer: k-distribution bookkeeping and the
// composition of (1) conditional bounds with (2) measured probabilities,
// plus table rendering used by the bench binaries.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/probabilistic.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

TEST(KDistribution, BasicStatistics) {
  harness::KDistribution d;
  for (std::size_t k : {0u, 0u, 0u, 1u, 1u, 2u, 5u}) d.observe(k);
  EXPECT_EQ(d.total(), 7u);
  EXPECT_EQ(d.max_k(), 5u);
  EXPECT_NEAR(d.mean(), 9.0 / 7.0, 1e-12);
  EXPECT_NEAR(d.cdf(0), 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(d.cdf(1), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(d.cdf(5), 1.0, 1e-12);
  EXPECT_EQ(d.quantile(0.5), 1u);
  EXPECT_EQ(d.quantile(0.99), 5u);
  EXPECT_EQ(d.quantile(0.2), 0u);
}

TEST(KDistribution, EmptyIsBenign) {
  harness::KDistribution d;
  EXPECT_EQ(d.total(), 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(3), 1.0);
  EXPECT_EQ(d.quantile(0.9), 0u);
}

TEST(KDistribution, ComposedBoundUsesQuantile) {
  harness::KDistribution d;
  for (int i = 0; i < 90; ++i) d.observe(0);
  for (int i = 0; i < 9; ++i) d.observe(2);
  d.observe(7);
  const auto b = harness::probabilistic_cost_bound(
      d, /*constraint=*/0,
      [](int, std::size_t k) { return 900.0 * static_cast<double>(k); },
      /*target_probability=*/0.95);
  EXPECT_EQ(b.K, 2u);
  EXPECT_NEAR(b.probability, 0.99, 1e-12);
  EXPECT_DOUBLE_EQ(b.cost_bound, 1800.0);
}

TEST(KDistribution, MeasuredFromClusterShrinksWithBetterNetwork) {
  // The whole point of the section 1.3 program: better delay
  // characteristics => stochastically smaller k.
  using Air = apps::airline::BasicAirline<20, 900, 300>;
  const auto measure = [](harness::Scenario sc) {
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(91));
    harness::AirlineWorkload w;
    w.duration = 20.0;
    w.request_rate = 3.0;
    w.mover_rate = 3.0;
    harness::drive_airline(cluster, w, 92);
    cluster.run_until(w.duration);
    cluster.settle();
    harness::KDistribution d;
    d.observe_all(analysis::missing_counts(cluster.execution()));
    return d;
  };
  const auto lan = measure(harness::lan(4));
  const auto part = measure(harness::partitioned_wan(4, 3.0, 15.0));
  EXPECT_LE(lan.mean(), part.mean());
  EXPECT_LE(lan.quantile(0.9), part.quantile(0.9));
  EXPECT_EQ(lan.quantile(0.5), 0u);  // LAN: nearly serializable
}

TEST(Table, RendersAlignedColumns) {
  harness::Table t("demo", {"a", "bb", "ccc"});
  t.add_row({"1", "22", "333"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| a | bb | ccc |"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 22 | 333 |"), std::string::npos);
  // Short rows are padded to the header width.
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(harness::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(harness::Table::num(std::size_t{42}), "42");
  EXPECT_EQ(harness::Table::pct(0.1234, 1), "12.3%");
}

}  // namespace
