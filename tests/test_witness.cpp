// Witness machinery property tests (paper section 5.3, Lemmas 14–19).
//
// Lemma 14 characterizes list membership by witness existence; Lemmas 15–19
// relate membership in the state of a full sequence vs a subsequence. All
// are checked over thousands of random update sequences against the ground
// truth of actually replaying the updates.
#include <gtest/gtest.h>

#include <vector>

#include "apps/airline/airline.hpp"
#include "apps/airline/witness.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using al::SmallAirline;
using al::Update;

/// Random update sequence under the paper's implicit section 5.3
/// hypothesis: at most one REQUEST(P) *ever* per person (the same shape as
/// Theorem 23's hypothesis and every worked example in the paper). Without
/// it, Lemma 14's witness characterization is genuinely false — e.g. in
/// [request(P), move-up(P), request(P)] the trailing no-op request is a
/// form-1 waiting witness while P is assigned — and Lemmas 16/19 fail even
/// for duplicate-free-per-window sequences, because a SUBSEQUENCE that
/// drops a cancel(P) merges two windows and recreates the duplicate
/// pathology inside S. See the note in witness.hpp.
std::vector<Update> random_sequence(sim::Rng& rng, std::size_t len,
                                    std::uint32_t persons) {
  std::vector<Update> seq;
  seq.reserve(len);
  std::vector<bool> requested(persons + 1, false);
  for (std::size_t i = 0; i < len; ++i) {
    const auto p =
        static_cast<al::Person>(rng.uniform_int(1, persons));
    Update u;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        if (requested[p]) {
          u = {Update::Kind::kMoveUp, p};  // substitute
        } else {
          u = {Update::Kind::kRequest, p};
          requested[p] = true;
        }
        break;
      case 1: u = {Update::Kind::kCancel, p}; break;
      case 2: u = {Update::Kind::kMoveUp, p}; break;
      default: u = {Update::Kind::kMoveDown, p}; break;
    }
    seq.push_back(u);
  }
  return seq;
}

al::State replay(const std::vector<Update>& seq) {
  al::State s = SmallAirline::initial();
  for (const auto& u : seq) SmallAirline::apply(u, s);
  return s;
}

/// Keep positions where keep[i] is true.
std::vector<Update> subsequence(const std::vector<Update>& seq,
                                const std::vector<bool>& keep) {
  std::vector<Update> out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (keep[i]) out.push_back(seq[i]);
  }
  return out;
}

// --- hand-built sanity cases ---

TEST(Witness, AssignmentWitnessBasic) {
  const std::vector<Update> seq = {{Update::Kind::kRequest, 1},
                                   {Update::Kind::kMoveUp, 1}};
  const auto w = al::find_assignment_witness(seq, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->request_index, 0u);
  EXPECT_EQ(w->move_up_index, 1u);
}

TEST(Witness, CancelAfterRequestKillsAssignmentWitness) {
  const std::vector<Update> seq = {{Update::Kind::kRequest, 1},
                                   {Update::Kind::kCancel, 1},
                                   {Update::Kind::kMoveUp, 1}};
  EXPECT_FALSE(al::find_assignment_witness(seq, 1).has_value());
}

TEST(Witness, MoveDownAfterMoveUpKillsAssignmentWitness) {
  const std::vector<Update> seq = {{Update::Kind::kRequest, 1},
                                   {Update::Kind::kMoveUp, 1},
                                   {Update::Kind::kMoveDown, 1}};
  EXPECT_FALSE(al::find_assignment_witness(seq, 1).has_value());
}

TEST(Witness, ReRequestAfterCancelRestoresWitness) {
  const std::vector<Update> seq = {
      {Update::Kind::kRequest, 1}, {Update::Kind::kCancel, 1},
      {Update::Kind::kRequest, 1}, {Update::Kind::kMoveUp, 1}};
  const auto w = al::find_assignment_witness(seq, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->request_index, 2u);
  EXPECT_EQ(w->move_up_index, 3u);
}

TEST(Witness, WaitingWitnessForm1) {
  const std::vector<Update> seq = {{Update::Kind::kRequest, 1}};
  const auto w = al::find_waiting_witness(seq, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->move_down_index.has_value());
}

TEST(Witness, WaitingWitnessForm2) {
  const std::vector<Update> seq = {{Update::Kind::kRequest, 1},
                                   {Update::Kind::kMoveUp, 1},
                                   {Update::Kind::kMoveDown, 1}};
  const auto w = al::find_waiting_witness(seq, 1);
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(w->move_down_index.has_value());
  EXPECT_EQ(*w->move_down_index, 2u);
}

TEST(Witness, KnownInRequiresUncancelledRequest) {
  EXPECT_TRUE(al::known_in({{Update::Kind::kRequest, 1}}, 1));
  EXPECT_FALSE(al::known_in(
      {{Update::Kind::kRequest, 1}, {Update::Kind::kCancel, 1}}, 1));
  EXPECT_FALSE(al::known_in({{Update::Kind::kMoveUp, 1}}, 1));
  EXPECT_FALSE(al::known_in({}, 1));
}

TEST(Witness, LastIndexOfFindsRightmost) {
  const std::vector<Update> seq = {{Update::Kind::kCancel, 1},
                                   {Update::Kind::kRequest, 1},
                                   {Update::Kind::kCancel, 1}};
  EXPECT_EQ(al::last_index_of(seq, Update::Kind::kCancel, 1), 2u);
  EXPECT_EQ(al::last_index_of(seq, Update::Kind::kRequest, 1), 1u);
  EXPECT_FALSE(al::last_index_of(seq, Update::Kind::kMoveUp, 1).has_value());
}

TEST(Witness, PersonsMentionedDedups) {
  const std::vector<Update> seq = {{Update::Kind::kRequest, 2},
                                   {Update::Kind::kCancel, 2},
                                   {Update::Kind::kRequest, 1},
                                   Update{}};
  EXPECT_EQ(al::persons_mentioned(seq), (std::vector<al::Person>{1, 2}));
}

// --- Lemma 14 property: witnesses exactly characterize membership ---

class WitnessLemma14 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessLemma14, WitnessesCharacterizeMembership) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const auto seq = random_sequence(rng, 40, 6);
    const al::State s = replay(seq);
    for (al::Person p = 1; p <= 6; ++p) {
      // (a) known <-> request not followed by cancel.
      EXPECT_EQ(s.is_known(p), al::known_in(seq, p))
          << "person " << p << " trial " << trial;
      // (b) assigned <-> assignment witness.
      EXPECT_EQ(s.is_assigned(p),
                al::find_assignment_witness(seq, p).has_value())
          << "person " << p << " trial " << trial;
      // (c) waiting <-> waiting witness.
      EXPECT_EQ(s.is_waiting(p),
                al::find_waiting_witness(seq, p).has_value())
          << "person " << p << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessLemma14,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Lemmas 15–19 properties over (sequence, random subsequence) pairs ---

class WitnessSubsequenceLemmas
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessSubsequenceLemmas, Lemmas15Through19) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const auto seq = random_sequence(rng, 30, 5);
    std::vector<bool> keep(seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) keep[i] = rng.bernoulli(0.7);
    const auto sub = subsequence(seq, keep);
    const al::State s = replay(seq);   // full state
    const al::State t = replay(sub);   // subsequence state
    // Map from full-sequence index to whether kept; find kept-index of a
    // full-sequence position.
    const auto kept = [&](std::size_t idx) { return keep[idx]; };

    for (al::Person p = 1; p <= 5; ++p) {
      // Lemma 15: if P assigned in s with witness (A,B) both kept, then P
      // assigned in t.
      if (s.is_assigned(p)) {
        const auto w = al::find_assignment_witness(seq, p);
        ASSERT_TRUE(w.has_value());  // Lemma 14
        if (kept(w->request_index) && kept(w->move_up_index)) {
          EXPECT_TRUE(t.is_assigned(p)) << "Lemma 15, person " << p;
        }
      }
      // Lemma 16: if P waiting in s and witness kept, P waiting in t.
      if (s.is_waiting(p)) {
        const auto w = al::find_waiting_witness(seq, p);
        ASSERT_TRUE(w.has_value());
        const bool witness_kept =
            kept(w->request_index) &&
            (!w->move_down_index.has_value() || kept(*w->move_down_index));
        if (witness_kept) {
          EXPECT_TRUE(t.is_waiting(p)) << "Lemma 16, person " << p;
        }
      }
      const auto last_cancel =
          al::last_index_of(seq, Update::Kind::kCancel, p);
      const auto last_up = al::last_index_of(seq, Update::Kind::kMoveUp, p);
      const auto last_down =
          al::last_index_of(seq, Update::Kind::kMoveDown, p);
      const bool has_last_cancel =
          !last_cancel.has_value() || kept(*last_cancel);
      // Lemma 17: if sub contains the last cancel(P) (if any), then
      // P known in t => P known in s.
      if (has_last_cancel && t.is_known(p)) {
        EXPECT_TRUE(s.is_known(p)) << "Lemma 17, person " << p;
      }
      // Lemma 18: + last move-down kept: assigned in t => assigned in s.
      const bool has_last_down = !last_down.has_value() || kept(*last_down);
      if (has_last_cancel && has_last_down && t.is_assigned(p)) {
        EXPECT_TRUE(s.is_assigned(p)) << "Lemma 18, person " << p;
      }
      // Lemma 19: + last move-up kept: waiting in t => waiting in s.
      const bool has_last_up = !last_up.has_value() || kept(*last_up);
      if (has_last_cancel && has_last_up && t.is_waiting(p)) {
        EXPECT_TRUE(s.is_waiting(p)) << "Lemma 19, person " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessSubsequenceLemmas,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

}  // namespace
