// Fly-by-Night airline semantics (paper section 2): the four transaction
// programs, the section 5.1 policy decisions, the cost functions with the
// paper's exact dollar figures, well-formedness, and the monus operator.
#include <gtest/gtest.h>

#include "apps/airline/airline.hpp"
#include "core/model.hpp"
#include "core/monus.hpp"

namespace {

namespace al = apps::airline;
using al::Airline;
using al::Request;
using al::SmallAirline;
using al::Update;
using State = al::State;

State state_with(std::vector<al::Person> assigned,
                 std::vector<al::Person> waiting) {
  State s;
  s.assigned = std::move(assigned);
  s.waiting = std::move(waiting);
  return s;
}

TEST(Monus, TruncatedSubtraction) {
  EXPECT_EQ(core::monus<std::int64_t>(5, 3), 2);
  EXPECT_EQ(core::monus<std::int64_t>(3, 5), 0);
  EXPECT_EQ(core::monus<std::int64_t>(4, 4), 0);
  EXPECT_DOUBLE_EQ(core::monus(2.5, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(core::monus(1.0, 2.5), 0.0);
}

TEST(AirlineState, InitialIsEmptyAndWellFormed) {
  const State s = Airline::initial();
  EXPECT_TRUE(s.assigned.empty());
  EXPECT_TRUE(s.waiting.empty());
  EXPECT_TRUE(Airline::well_formed(s));
  EXPECT_DOUBLE_EQ(core::total_cost<Airline>(s), 0.0);  // initially zero cost
}

TEST(AirlineState, WellFormednessRejectsOverlapAndDuplicates) {
  EXPECT_FALSE(Airline::well_formed(state_with({1}, {1})));
  EXPECT_FALSE(Airline::well_formed(state_with({1, 1}, {})));
  EXPECT_FALSE(Airline::well_formed(state_with({}, {2, 2})));
  EXPECT_TRUE(Airline::well_formed(state_with({1, 2}, {3, 4})));
}

// --- request(P) update semantics ---

TEST(AirlineUpdate, RequestAddsToEndOfWaitList) {
  State s = state_with({}, {1});
  Airline::apply({Update::Kind::kRequest, 2}, s);
  EXPECT_EQ(s.waiting, (std::vector<al::Person>{1, 2}));
}

TEST(AirlineUpdate, DuplicateRequestIsNoopWhileWaiting) {
  // Section 5.1 policy: "if a person P is already on the WAIT-LIST or
  // ASSIGNED-LIST, and makes a duplicate request, the new request does not
  // change P's original priority."
  State s = state_with({}, {1, 2});
  Airline::apply({Update::Kind::kRequest, 1}, s);
  EXPECT_EQ(s.waiting, (std::vector<al::Person>{1, 2}));
}

TEST(AirlineUpdate, DuplicateRequestIsNoopWhileAssigned) {
  State s = state_with({1}, {2});
  Airline::apply({Update::Kind::kRequest, 1}, s);
  EXPECT_EQ(s.assigned, (std::vector<al::Person>{1}));
  EXPECT_EQ(s.waiting, (std::vector<al::Person>{2}));
}

// --- cancel(P) update semantics ---

TEST(AirlineUpdate, CancelRemovesFromEitherList) {
  State s = state_with({1, 2}, {3});
  Airline::apply({Update::Kind::kCancel, 1}, s);
  EXPECT_EQ(s.assigned, (std::vector<al::Person>{2}));
  Airline::apply({Update::Kind::kCancel, 3}, s);
  EXPECT_TRUE(s.waiting.empty());
}

TEST(AirlineUpdate, CancelOfUnknownPersonIsNoop) {
  State s = state_with({1}, {2});
  const State before = s;
  Airline::apply({Update::Kind::kCancel, 9}, s);
  EXPECT_EQ(s, before);
}

// --- move-up(P) update semantics ---

TEST(AirlineUpdate, MoveUpMovesWaiterToEndOfAssigned) {
  State s = state_with({1}, {2, 3});
  Airline::apply({Update::Kind::kMoveUp, 2}, s);
  EXPECT_EQ(s.assigned, (std::vector<al::Person>{1, 2}));
  EXPECT_EQ(s.waiting, (std::vector<al::Person>{3}));
}

TEST(AirlineUpdate, MoveUpOfAssignedPersonIsNoop) {
  // Section 5.1 policy: "if a person P is already on the ASSIGNED-LIST, a
  // new attempt to assign him a seat does not alter P's previous priority."
  State s = state_with({1, 2}, {3});
  const State before = s;
  Airline::apply({Update::Kind::kMoveUp, 1}, s);
  EXPECT_EQ(s, before);
}

TEST(AirlineUpdate, MoveUpOfUnknownPersonIsNoop) {
  State s = state_with({1}, {2});
  const State before = s;
  Airline::apply({Update::Kind::kMoveUp, 9}, s);
  EXPECT_EQ(s, before);
}

// --- move-down(P) update semantics ---

TEST(AirlineUpdate, MoveDownMovesAssignedToFrontOfWaitList) {
  // Front insertion: the displaced passenger outranks every waiter (see
  // the priority-preservation requirement of section 4.2 and the section
  // 5.5 example "Q gets put at the head of the WAIT-LIST").
  State s = state_with({1, 2}, {3});
  Airline::apply({Update::Kind::kMoveDown, 2}, s);
  EXPECT_EQ(s.assigned, (std::vector<al::Person>{1}));
  EXPECT_EQ(s.waiting, (std::vector<al::Person>{2, 3}));
}

TEST(AirlineUpdate, MoveDownOfNonAssignedIsNoop) {
  State s = state_with({1}, {2});
  const State before = s;
  Airline::apply({Update::Kind::kMoveDown, 2}, s);  // waiting, not assigned
  EXPECT_EQ(s, before);
  Airline::apply({Update::Kind::kMoveDown, 9}, s);  // unknown
  EXPECT_EQ(s, before);
}

TEST(AirlineUpdate, NoopLeavesStateUnchanged) {
  State s = state_with({1}, {2});
  const State before = s;
  Airline::apply(Update{}, s);
  EXPECT_EQ(s, before);
}

TEST(AirlineUpdate, AllUpdatesPreserveWellFormedness) {
  // Required of every update by the model (section 2.3).
  for (const auto kind :
       {Update::Kind::kRequest, Update::Kind::kCancel, Update::Kind::kMoveUp,
        Update::Kind::kMoveDown, Update::Kind::kNoop}) {
    State s = state_with({1, 2, 3}, {4, 5});
    for (al::Person p : {1u, 4u, 9u}) {
      State t = s;
      Airline::apply({kind, p}, t);
      EXPECT_TRUE(Airline::well_formed(t));
    }
  }
}

// --- decision parts ---

TEST(AirlineDecision, RequestAlwaysSameUpdateNoExternal) {
  // "Decision: TRUE" — the decision part does not depend on the state.
  const auto d1 = Airline::decide(Request::request(7), Airline::initial());
  const auto d2 = Airline::decide(Request::request(7),
                                  state_with({1, 2}, {7, 9}));
  EXPECT_EQ(d1.update, (Update{Update::Kind::kRequest, 7}));
  EXPECT_EQ(d1.update, d2.update);
  EXPECT_TRUE(d1.external_actions.empty());
  EXPECT_TRUE(d2.external_actions.empty());
}

TEST(AirlineDecision, CancelAlwaysSameUpdateNoExternal) {
  const auto d = Airline::decide(Request::cancel(7), state_with({7}, {}));
  EXPECT_EQ(d.update, (Update{Update::Kind::kCancel, 7}));
  EXPECT_TRUE(d.external_actions.empty());
}

TEST(AirlineDecision, MoveUpPicksFirstWaiterAndInformsThem) {
  const auto d =
      Airline::decide(Request::move_up(), state_with({1}, {5, 6}));
  EXPECT_EQ(d.update, (Update{Update::Kind::kMoveUp, 5}));
  ASSERT_EQ(d.external_actions.size(), 1u);
  EXPECT_EQ(d.external_actions[0].kind, "grant-seat");
  EXPECT_EQ(d.external_actions[0].subject, "P5");
}

TEST(AirlineDecision, MoveUpNoopWhenFlightFull) {
  std::vector<al::Person> full;
  for (al::Person p = 1; p <= 100; ++p) full.push_back(p);
  const auto d =
      Airline::decide(Request::move_up(), state_with(full, {200}));
  EXPECT_EQ(d.update, Update{});
  EXPECT_TRUE(d.external_actions.empty());
}

TEST(AirlineDecision, MoveUpNoopWhenNobodyWaiting) {
  const auto d = Airline::decide(Request::move_up(), state_with({1}, {}));
  EXPECT_EQ(d.update, Update{});
  EXPECT_TRUE(d.external_actions.empty());
}

TEST(AirlineDecision, MoveDownPicksLastAssignedWhenOverbooked) {
  std::vector<al::Person> over;
  for (al::Person p = 1; p <= 101; ++p) over.push_back(p);
  const auto d = Airline::decide(Request::move_down(), state_with(over, {}));
  EXPECT_EQ(d.update, (Update{Update::Kind::kMoveDown, 101}));
  ASSERT_EQ(d.external_actions.size(), 1u);
  EXPECT_EQ(d.external_actions[0].kind, "rescind-seat");
  EXPECT_EQ(d.external_actions[0].subject, "P101");
}

TEST(AirlineDecision, MoveDownNoopWhenAtOrUnderCapacity) {
  std::vector<al::Person> exactly;
  for (al::Person p = 1; p <= 100; ++p) exactly.push_back(p);
  EXPECT_EQ(Airline::decide(Request::move_down(), state_with(exactly, {}))
                .update,
            Update{});
  EXPECT_EQ(
      Airline::decide(Request::move_down(), state_with({1, 2}, {3})).update,
      Update{});
}

// --- costs: the paper's exact figures ---

TEST(AirlineCost, OverbookingIs900PerExcessPassenger) {
  std::vector<al::Person> people;
  for (al::Person p = 1; p <= 103; ++p) people.push_back(p);
  const State s = state_with(people, {});
  EXPECT_DOUBLE_EQ(Airline::cost(s, Airline::kOverbooking), 3 * 900.0);
  EXPECT_DOUBLE_EQ(Airline::cost(s, Airline::kUnderbooking), 0.0);
}

TEST(AirlineCost, UnderbookingIs300PerFillableSeat) {
  // 98 assigned, 5 waiting: min(100-98, 5) = 2 fillable seats.
  std::vector<al::Person> assigned;
  for (al::Person p = 1; p <= 98; ++p) assigned.push_back(p);
  const State s = state_with(assigned, {200, 201, 202, 203, 204});
  EXPECT_DOUBLE_EQ(Airline::cost(s, Airline::kUnderbooking), 2 * 300.0);
  EXPECT_DOUBLE_EQ(Airline::cost(s, Airline::kOverbooking), 0.0);
}

TEST(AirlineCost, UnderbookingLimitedByWaiters) {
  const State s = state_with({1}, {2});  // 99 free seats, 1 waiter
  EXPECT_DOUBLE_EQ(Airline::cost(s, Airline::kUnderbooking), 300.0);
}

TEST(AirlineCost, ZeroWhenFullAndNobodyWaiting) {
  std::vector<al::Person> full;
  for (al::Person p = 1; p <= 100; ++p) full.push_back(p);
  EXPECT_DOUBLE_EQ(core::total_cost<Airline>(state_with(full, {})), 0.0);
}

TEST(AirlineCost, AtMostOneConstraintNonzero) {
  // "every well-formed state has either cost(s,1) = 0 or cost(s,2) = 0"
  // (used by Corollary 11). Spot-check across the AL range.
  for (int al_count : {0, 50, 99, 100, 101, 150}) {
    std::vector<al::Person> assigned;
    for (int p = 1; p <= al_count; ++p)
      assigned.push_back(static_cast<al::Person>(p));
    const State s = state_with(assigned, {1000, 1001});
    EXPECT_TRUE(Airline::cost(s, 0) == 0.0 || Airline::cost(s, 1) == 0.0);
  }
}

// --- priority relation (section 4.2) ---

TEST(AirlinePriority, WaitListOrder) {
  const State s = state_with({}, {1, 2});
  EXPECT_TRUE(Airline::Priority::precedes(s, 1, 2));
  EXPECT_FALSE(Airline::Priority::precedes(s, 2, 1));
}

TEST(AirlinePriority, AssignedListOrder) {
  const State s = state_with({1, 2}, {});
  EXPECT_TRUE(Airline::Priority::precedes(s, 1, 2));
  EXPECT_FALSE(Airline::Priority::precedes(s, 2, 1));
}

TEST(AirlinePriority, AssignedOutranksWaiting) {
  const State s = state_with({2}, {1});
  EXPECT_TRUE(Airline::Priority::precedes(s, 2, 1));
  EXPECT_FALSE(Airline::Priority::precedes(s, 1, 2));
}

TEST(AirlinePriority, KnownListsBothLists) {
  const State s = state_with({3, 1}, {2});
  const auto known = Airline::Priority::known(s);
  EXPECT_EQ(known, (std::vector<al::Person>{3, 1, 2}));
  EXPECT_TRUE(s.is_known(1));
  EXPECT_FALSE(s.is_known(9));
}

TEST(AirlineStrings, HumanReadable) {
  EXPECT_EQ(al::person_name(42), "P42");
  EXPECT_EQ((Update{Update::Kind::kMoveUp, 3}).to_string(), "move-up(P3)");
  EXPECT_EQ(Request::move_down().to_string(), "MOVE-DOWN");
  EXPECT_EQ(state_with({1}, {2}).to_string(), "AL=[P1] WL=[P2]");
}

TEST(SmallAirline, CapacityParameterHonored) {
  // The 5-seat instance used by property tests.
  const State s = state_with({1, 2, 3, 4, 5, 6}, {});
  EXPECT_DOUBLE_EQ(SmallAirline::cost(s, SmallAirline::kOverbooking), 900.0);
  const auto d = SmallAirline::decide(Request::move_down(), s);
  EXPECT_EQ(d.update, (Update{Update::Kind::kMoveDown, 6}));
}

}  // namespace
