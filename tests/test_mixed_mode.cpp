// Mixed-mode serializability (the paper's section 6 extension, using the
// section 3.3 waiting protocol): "It should be possible to build an
// application system in which certain critical transactions run
// serializably, while the others run in a highly available manner."
//
// A serializable submission reserves a timestamp position, waits for every
// peer to promise "I will issue no more transactions with timestamp earlier
// than yours" (Lamport-counter announcements on the anti-entropy schedule),
// and then decides against exactly the entries with smaller timestamps —
// a provably complete prefix.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "apps/banking/banking.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
namespace bk = apps::banking;
using Air = al::BasicAirline<20, 900, 300>;

TEST(MixedMode, SerializableTxRunsWithCompletePrefix) {
  auto sc = harness::wan(4);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(1));
  harness::AirlineWorkload w;
  w.duration = 10.0;
  w.request_rate = 4.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, 2);
  cluster.submit_serializable_at(5.0, 1, al::Request::move_up());
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  // Find the serializable transaction in the assembled trace and check it
  // saw EVERY predecessor.
  std::size_t serial_count = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    // Identify via the node record (the Execution doesn't carry the flag;
    // match by origin + the recorded serializable flag).
    for (const auto& rec : cluster.node(1).originated()) {
      if (rec.serializable && rec.ts == exec.tx(i).ts) {
        ++serial_count;
        EXPECT_EQ(exec.missing_count(i), 0u)
            << "serializable tx at index " << i << " missed predecessors";
      }
    }
  }
  EXPECT_EQ(serial_count, 1u);
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
}

TEST(MixedMode, WaitsThroughPartitionThenRuns) {
  // A serializable tx submitted DURING a partition cannot obtain promises
  // from the other side; it must wait until after the heal.
  auto sc = harness::partitioned_wan(4, 2.0, 12.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(3));
  cluster.submit_at(1.0, 2, al::Request::request(1));
  // Bump node 0's clock during the cut so the reservation's timestamp lies
  // ABOVE anything the far side promised before the partition started —
  // otherwise pre-cut promises already cover it and no waiting is needed.
  for (int i = 0; i < 4; ++i) {
    cluster.submit_at(2.5 + 0.1 * i, 0,
                      al::Request::request(static_cast<al::Person>(10 + i)));
  }
  cluster.submit_serializable_at(5.0, 0, al::Request::move_up());
  cluster.submit_at(6.0, 3, al::Request::request(2));  // far side, during cut
  cluster.run_until(11.0);
  // Still pending: node 0 cannot have promises covering its reservation
  // from the far side.
  EXPECT_EQ(cluster.pending_serializable(), 1u);
  cluster.settle();
  EXPECT_EQ(cluster.pending_serializable(), 0u);
  const auto exec = cluster.execution();
  ASSERT_EQ(exec.size(), 7u);
  // The serializable MOVE-UP has a COMPLETE prefix at its reserved
  // position: request(P2) from the far side carries a LARGER timestamp
  // (reservation order is serial order), so nothing before the
  // reservation is missed even though it ran long after.
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const auto& rec : cluster.node(0).originated()) {
      if (rec.serializable && rec.ts == exec.tx(i).ts) {
        EXPECT_EQ(exec.missing_count(i), 0u);
        EXPECT_GE(rec.decided_time, 12.0);     // ran only after the heal
        EXPECT_DOUBLE_EQ(rec.real_time, 5.0);  // initiated mid-partition
      }
    }
  }
  EXPECT_TRUE(cluster.converged());
}

TEST(MixedMode, CompletePrefixDecisionIgnoresLaterTimestamps) {
  // Normal transactions submitted after the reservation (and therefore
  // with larger timestamps) must NOT be visible to the serializable
  // decision, even if they were merged before it ran.
  auto sc = harness::lan(2);
  sc.anti_entropy_interval = 0.3;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(4));
  cluster.submit_at(0.5, 1, al::Request::request(1));
  // Reservation at t=1.0; its promise round-trip takes ~an anti-entropy
  // period, during which node 0 submits another request locally.
  cluster.submit_serializable_at(1.0, 0, al::Request::move_up());
  cluster.submit_at(1.01, 0, al::Request::request(2));
  cluster.run_until(5.0);
  cluster.settle();
  const auto exec = cluster.execution();
  // Serial order: request(P1) < serializable MOVE-UP < request(P2)
  // (reservation order). The MOVE-UP's prefix is exactly {request(P1)}.
  ASSERT_EQ(exec.size(), 3u);
  EXPECT_EQ(exec.tx(1).update, (al::Update{al::Update::Kind::kMoveUp, 1}));
  EXPECT_EQ(exec.tx(1).prefix, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
}

TEST(MixedMode, MultipleSerializableRunInReservationOrder) {
  auto sc = harness::wan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(5));
  cluster.submit_at(0.5, 1, al::Request::request(1));
  cluster.submit_at(0.6, 2, al::Request::request(2));
  cluster.submit_serializable_at(1.0, 0, al::Request::move_up());
  cluster.submit_serializable_at(1.1, 0, al::Request::move_up());
  cluster.run_until(2.0);
  cluster.settle();
  const auto exec = cluster.execution();
  ASSERT_EQ(exec.size(), 4u);
  // Both seats granted, in order, each with complete prefix.
  EXPECT_EQ(exec.tx(2).update.kind, al::Update::Kind::kMoveUp);
  EXPECT_EQ(exec.tx(3).update.kind, al::Update::Kind::kMoveUp);
  EXPECT_NE(exec.tx(2).update.person, exec.tx(3).update.person);
  EXPECT_EQ(exec.missing_count(2), 0u);
  EXPECT_EQ(exec.missing_count(3), 0u);
}

TEST(MixedMode, SerializableAuditReportsTrueTotalMidstream) {
  // The section 3.2 motivation: "it might be desirable for audits to see
  // the effects of all the preceding deposit, withdrawal and transfer
  // transactions." A serializable AUDIT does, even submitted mid-workload.
  auto sc = harness::wan(4);
  shard::Cluster<bk::Banking> cluster(sc.cluster_config<bk::Banking>(6));
  harness::BankingWorkload w;
  w.duration = 12.0;
  w.tx_rate = 5.0;
  harness::drive_banking(cluster, w, 7);
  cluster.submit_serializable_at(6.0, 2, bk::Request::audit());
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  bool found = false;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (exec.tx(i).request.kind != bk::Request::Kind::kAudit) continue;
    for (const auto& rec : cluster.node(2).originated()) {
      if (!rec.serializable || !(rec.ts == exec.tx(i).ts)) continue;
      found = true;
      EXPECT_EQ(exec.missing_count(i), 0u);
      // Its report equals the total of the actual state at its position.
      const auto s = exec.actual_state_before(i);
      EXPECT_EQ(exec.tx(i).external_actions[0].subject,
                std::to_string(s.total()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(MixedMode, NormalTransactionsUnaffectedByPendingSerial) {
  // Availability of the rest of the system is untouched: while a
  // serializable tx waits out a partition, normal transactions at the SAME
  // node keep running immediately.
  auto sc = harness::partitioned_wan(4, 2.0, 12.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(8));
  // Clock bump during the cut (see WaitsThroughPartitionThenRuns).
  cluster.submit_at(2.5, 0, al::Request::request(9));
  cluster.submit_serializable_at(3.0, 0, al::Request::move_up());
  cluster.submit_at(4.0, 0, al::Request::request(5));
  cluster.run_until(5.0);
  EXPECT_EQ(cluster.pending_serializable(), 1u);
  EXPECT_EQ(cluster.node(0).originated().size(), 2u);  // normal ones ran
  EXPECT_TRUE(cluster.node(0).state().is_waiting(5));
  cluster.settle();
  EXPECT_EQ(cluster.pending_serializable(), 0u);
}

TEST(MixedMode, SerialOrderIsReservationOrderNotExecutionOrder) {
  // The reserved timestamp positions the transaction where it was
  // SUBMITTED in the serial order, even though it executes later — so
  // later normal transactions (larger timestamps) appear after it.
  auto sc = harness::partitioned_wan(2, 1.0, 6.0);
  sc.num_nodes = 2;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(9));
  cluster.submit_at(0.5, 0, al::Request::request(1));
  cluster.run_until(0.9);  // replicate before the cut
  cluster.submit_serializable_at(2.0, 0, al::Request::move_up());
  cluster.submit_at(3.0, 1, al::Request::cancel(1));  // far side
  cluster.run_until(5.9);
  cluster.settle();
  const auto exec = cluster.execution();
  ASSERT_EQ(exec.size(), 3u);
  // Reservation at t=2 precedes the cancel's timestamp? Both Lamport
  // counters were equal (=1) after the replicated request; the reservation
  // ticked node 0's clock to 2, the cancel ticked node 1's to 2: tie on
  // logical, node id breaks it — MOVE-UP (node 0) before CANCEL (node 1).
  EXPECT_EQ(exec.tx(1).update.kind, al::Update::Kind::kMoveUp);
  EXPECT_EQ(exec.tx(2).update.kind, al::Update::Kind::kCancel);
  // Complete prefix = {request}: the cancel is NOT a predecessor.
  EXPECT_EQ(exec.tx(1).prefix, (std::vector<std::size_t>{0}));
  EXPECT_EQ(exec.missing_count(1), 0u);
  // Final state: the cancel (later in serial order) undoes the seat.
  EXPECT_FALSE(exec.final_state().is_known(1));
}

}  // namespace
