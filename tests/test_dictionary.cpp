// The Fischer–Michael replicated dictionary in the SHARD framework
// (section 6): trivial-decision inserts/erases, lookup as pure decision,
// last-writer-wins via timestamp-order merging, convergence across
// partitions.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "apps/dictionary/dictionary.hpp"
#include "harness/scenario.hpp"
#include "shard/cluster.hpp"

namespace {

namespace dict = apps::dictionary;
using dict::Dictionary;
using dict::Request;
using dict::Update;

TEST(Dictionary, InsertEraseLookupSemantics) {
  dict::State s;
  Dictionary::apply({Update::Kind::kInsert, 3, "c"}, s);
  Dictionary::apply({Update::Kind::kInsert, 1, "a"}, s);
  Dictionary::apply({Update::Kind::kInsert, 2, "b"}, s);
  EXPECT_TRUE(Dictionary::well_formed(s));  // key-sorted
  ASSERT_NE(s.find(2), nullptr);
  EXPECT_EQ(s.find(2)->value, "b");
  Dictionary::apply({Update::Kind::kInsert, 2, "B"}, s);  // overwrite
  EXPECT_EQ(s.find(2)->value, "B");
  Dictionary::apply({Update::Kind::kErase, 1, ""}, s);
  EXPECT_EQ(s.find(1), nullptr);
  EXPECT_EQ(s.entries.size(), 2u);
}

TEST(Dictionary, LookupIsPureDecisionReportingObservedValue) {
  dict::State s;
  Dictionary::apply({Update::Kind::kInsert, 7, "x"}, s);
  const auto hit = Dictionary::decide(Request::lookup(7), s);
  EXPECT_EQ(hit.update, Update{});
  EXPECT_EQ(hit.external_actions[0].subject, "7=x");
  const auto miss = Dictionary::decide(Request::lookup(8), s);
  EXPECT_EQ(miss.external_actions[0].subject, "8=<absent>");
}

TEST(Dictionary, ZeroConstraints) {
  EXPECT_EQ(Dictionary::kNumConstraints, 0);
  EXPECT_DOUBLE_EQ(core::total_cost<Dictionary>(dict::State{}), 0.0);
}

TEST(Dictionary, ConcurrentInsertsResolveByTimestampOrderEverywhere) {
  // Two partitioned nodes write the same key; after the heal, every node
  // holds the later-timestamped value.
  auto sc = harness::partitioned_wan(2, 0.0, 5.0);
  sc.num_nodes = 2;
  shard::Cluster<Dictionary> cluster(sc.cluster_config<Dictionary>(9));
  cluster.submit_at(1.0, 0, Request::insert(1, "left"));
  cluster.submit_at(2.0, 1, Request::insert(1, "right"));
  cluster.run_until(4.0);
  // During the partition, each side sees its own write.
  EXPECT_EQ(cluster.node(0).state().find(1)->value, "left");
  EXPECT_EQ(cluster.node(1).state().find(1)->value, "right");
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  // Winner = larger timestamp. Both Lamport counters started at 0, so both
  // writes have logical 1 and the node-id tiebreak favors node 1.
  EXPECT_EQ(cluster.node(0).state().find(1)->value, "right");
}

TEST(Dictionary, LookupDuringPartitionSeesPrefixSubsequence) {
  // The dictionary's "weak" semantics in SHARD terms: a lookup reflects
  // some subsequence of the preceding inserts — stale but well-defined.
  auto sc = harness::partitioned_wan(2, 0.0, 5.0);
  sc.num_nodes = 2;
  shard::Cluster<Dictionary> cluster(sc.cluster_config<Dictionary>(10));
  cluster.submit_at(1.0, 0, Request::insert(1, "v"));
  cluster.submit_at(2.0, 1, Request::lookup(1));  // other side of the cut
  cluster.run_until(4.0);
  cluster.settle();
  const auto exec = cluster.execution();
  ASSERT_EQ(exec.size(), 2u);
  EXPECT_EQ(exec.tx(1).external_actions[0].subject, "1=<absent>");
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  // Its prefix missed the insert — measurable as k = 1.
  EXPECT_EQ(exec.missing_count(1), 1u);
}

TEST(Dictionary, HeavyWorkloadConverges) {
  auto sc = harness::wan(4);
  sc.drop_probability = 0.15;
  shard::Cluster<Dictionary> cluster(sc.cluster_config<Dictionary>(11));
  sim::Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 20.0);
    const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 3));
    const auto key = static_cast<dict::Key>(rng.uniform_int(0, 30));
    if (rng.bernoulli(0.7)) {
      cluster.submit_at(t, node,
                        Request::insert(key, "v" + std::to_string(i)));
    } else {
      cluster.submit_at(t, node, Request::erase(key));
    }
  }
  cluster.run_until(20.0);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.node(0).state(), cluster.execution().final_state());
}

}  // namespace
