// Serializability metrics: the measurable version of the paper's
// "continuous flavor" spectrum between serializable and highly available.
#include <gtest/gtest.h>

#include "analysis/describe.hpp"
#include "analysis/serializability.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::SmallAirline;
using al::Request;
using core::ScriptedExecution;

TEST(Serializability, CompletePrefixesAreSerializable) {
  ScriptedExecution<Air> sx;
  sx.run_complete(Request::request(1));
  sx.run_complete(Request::move_up());
  sx.run_complete(Request::cancel(1));
  EXPECT_TRUE(analysis::is_serializable(sx.execution()));
  const auto d = analysis::serializability_distance(sx.execution());
  EXPECT_EQ(d.incomplete, 0u);
  EXPECT_EQ(d.total_missing_pairs, 0u);
  EXPECT_DOUBLE_EQ(d.complete_fraction, 1.0);
}

TEST(Serializability, MissingPrefixBreaksIt) {
  ScriptedExecution<Air> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});   // misses tx 0
  sx.run(Request::move_up(), {1});   // misses tx 0
  EXPECT_FALSE(analysis::is_serializable(sx.execution()));
  const auto d = analysis::serializability_distance(sx.execution());
  EXPECT_EQ(d.transactions, 3u);
  EXPECT_EQ(d.incomplete, 2u);
  EXPECT_EQ(d.total_missing_pairs, 2u);
  EXPECT_EQ(d.max_k, 1u);
  EXPECT_NEAR(d.complete_fraction, 1.0 / 3.0, 1e-12);
}

TEST(Serializability, DivergenceIsSharperThanMissingCounts) {
  // Tx 1 (a REQUEST) misses tx 0 but its decision is prefix-independent —
  // not divergent. Tx 2 (a MOVE-UP) misses tx 0 and picks a different
  // person than it would with full information — divergent.
  ScriptedExecution<Air> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});   // incomplete but outcome identical
  sx.run(Request::move_up(), {1});   // moves P2; complete info => P1
  const auto divergent = analysis::divergent_transactions(sx.execution());
  EXPECT_EQ(divergent, (std::vector<std::size_t>{2}));
}

TEST(Serializability, FullyCentralizedClusterIsSerializable) {
  using BigAir = al::BasicAirline<20, 900, 300>;
  auto sc = harness::partitioned_wan(4, 3.0, 10.0);
  shard::Cluster<BigAir> cluster(sc.cluster_config<BigAir>(3));
  harness::AirlineWorkload w;
  w.duration = 15.0;
  w.routing = harness::Routing::kCentralizeAll;
  harness::drive_airline(cluster, w, 4);
  cluster.run_until(w.duration);
  cluster.settle();
  EXPECT_TRUE(analysis::is_serializable(cluster.execution()));
}

TEST(Serializability, DistanceGrowsWithPartitionLength) {
  using BigAir = al::BasicAirline<20, 900, 300>;
  const auto measure = [](double plen) {
    auto sc = plen == 0.0 ? harness::wan(4)
                          : harness::partitioned_wan(4, 3.0, 3.0 + plen);
    shard::Cluster<BigAir> cluster(sc.cluster_config<BigAir>(5));
    harness::AirlineWorkload w;
    w.duration = 8.0 + plen;
    harness::drive_airline(cluster, w, 6);
    cluster.run_until(w.duration);
    cluster.settle();
    return analysis::serializability_distance(cluster.execution());
  };
  const auto d0 = measure(0.0);
  const auto d10 = measure(10.0);
  EXPECT_LT(d0.total_missing_pairs, d10.total_missing_pairs);
  EXPECT_GE(d0.complete_fraction, d10.complete_fraction);
}

TEST(Serializability, DivergentSubsetOfIncomplete) {
  using BigAir = al::BasicAirline<20, 900, 300>;
  auto sc = harness::partitioned_wan(4, 3.0, 12.0);
  shard::Cluster<BigAir> cluster(sc.cluster_config<BigAir>(7));
  harness::AirlineWorkload w;
  w.duration = 16.0;
  harness::drive_airline(cluster, w, 8);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  const auto d = analysis::serializability_distance(exec);
  const auto divergent = analysis::divergent_transactions(exec);
  EXPECT_LE(divergent.size(), d.incomplete);
  for (std::size_t i : divergent) EXPECT_GT(exec.missing_count(i), 0u);
}

TEST(Describe, ExecutionDumpIsReadable) {
  ScriptedExecution<Air> sx;
  sx.run_complete(Request::request(1));
  sx.run_complete(Request::move_up());
  const std::string dump = analysis::describe_execution(sx.execution());
  EXPECT_NE(dump.find("REQUEST(P1)"), std::string::npos);
  EXPECT_NE(dump.find("move-up(P1)"), std::string::npos);
  EXPECT_NE(dump.find("grant-seat"), std::string::npos);
  EXPECT_NE(dump.find("saw 1/1"), std::string::npos);
}

TEST(Describe, TruncatesLongExecutions) {
  ScriptedExecution<Air> sx;
  for (al::Person p = 1; p <= 20; ++p) sx.run_complete(Request::request(p));
  const std::string dump =
      analysis::describe_execution(sx.execution(), /*max_rows=*/5);
  EXPECT_NE(dump.find("... 15 more"), std::string::npos);
}

TEST(Describe, CostTrajectoryShowsSteps) {
  ScriptedExecution<Air> sx;  // capacity 5
  sx.run_complete(Request::request(1));
  sx.run_complete(Request::request(2));
  const std::string traj = analysis::describe_cost_trajectory(
      sx.execution(), Air::kUnderbooking);
  EXPECT_NE(traj.find("0 -> 300 -> 600"), std::string::npos);
}

}  // namespace
