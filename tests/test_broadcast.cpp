// Reliable-broadcast protocol tests: flooding, duplicate suppression,
// causal delivery, and anti-entropy recovery across partitions — the
// [GLBKSS] guarantee that "barring permanent communication failures, every
// node will eventually receive information about every transaction".
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/broadcast.hpp"
#include "runtime/sim_backend.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace {

using Payload = std::string;
using Rb = net::ReliableBroadcast<Payload>;

struct Harness {
  sim::Scheduler sched;
  std::unique_ptr<sim::Network> net;
  // Endpoints run against the runtime execution API; the backend is the
  // deterministic simulator pass-through.
  std::unique_ptr<runtime::SimBackend> backend;
  std::vector<std::unique_ptr<Rb>> nodes;
  std::vector<std::vector<Payload>> delivered;

  Harness(std::size_t n, sim::Network::Config cfg, net::BroadcastOptions opts) {
    net = std::make_unique<sim::Network>(sched, std::move(cfg), 7);
    backend = std::make_unique<runtime::SimBackend>(sched, *net);
    delivered.resize(n);
    for (sim::NodeId i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Rb>(
          backend->executor(i), backend->transport(), i, n, opts, 100 + i,
          [this, i](const Rb::Wire& w) { delivered[i].push_back(w.payload); }));
    }
    for (auto& node : nodes) node->start();
  }
};

TEST(Broadcast, FloodReachesAllNodes) {
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.0;  // flood only
  Harness h(4, {}, opts);
  h.nodes[2]->broadcast("m1");
  h.sched.run();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(h.delivered[i].size(), 1u) << "node " << i;
    EXPECT_EQ(h.delivered[i][0], "m1");
  }
}

TEST(Broadcast, LocalDeliveryIsSynchronous) {
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.0;
  Harness h(3, {}, opts);
  h.nodes[0]->broadcast("mine");
  // Before running the scheduler at all, the origin has delivered its own.
  EXPECT_EQ(h.delivered[0].size(), 1u);
  EXPECT_EQ(h.delivered[1].size(), 0u);
}

TEST(Broadcast, DuplicatesSuppressed) {
  // With flooding AND anti-entropy, nodes receive payloads repeatedly; each
  // must be delivered exactly once.
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.1;
  Harness h(3, {}, opts);
  h.nodes[0]->broadcast("a");
  h.nodes[1]->broadcast("b");
  h.sched.run_until(5.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.delivered[i].size(), 2u) << "node " << i;
  }
  EXPECT_GT(h.nodes[0]->stats().anti_entropy_rounds, 0u);
}

TEST(Broadcast, CausalDeliveryOrdersDependentMessages) {
  // Node 0 broadcasts m0; node 1 receives it, then broadcasts m1 (which
  // causally depends on m0). Node 2 is partitioned from node 0 but not from
  // node 1 — it receives m1 first on the wire, and must buffer it until m0
  // arrives via anti-entropy.
  sim::Network::Config cfg;
  cfg.delay = sim::Delay::constant(0.01);
  sim::PartitionEvent ev;
  ev.start = 0.0;
  ev.end = 1.0;
  ev.groups = {{0, 1}, {1, 2}};  // 0-2 cut; both can talk to 1
  cfg.partitions.add(ev);
  net::BroadcastOptions opts;
  opts.causal = true;
  opts.anti_entropy_interval = 0.3;
  Harness h(3, cfg, opts);
  h.nodes[0]->broadcast("m0");
  h.sched.run_until(0.05);  // node 1 has m0 now
  ASSERT_EQ(h.delivered[1].size(), 1u);
  h.nodes[1]->broadcast("m1");
  h.sched.run_until(0.2);
  // Node 2 got m1's wire message but must not deliver before m0.
  EXPECT_TRUE(h.delivered[2].empty() ||
              (h.delivered[2].size() == 2 && h.delivered[2][0] == "m0"));
  h.sched.run_until(5.0);  // anti-entropy brings m0 over via node 1
  ASSERT_EQ(h.delivered[2].size(), 2u);
  EXPECT_EQ(h.delivered[2][0], "m0");
  EXPECT_EQ(h.delivered[2][1], "m1");
  EXPECT_GT(h.nodes[2]->stats().causally_buffered, 0u);
}

TEST(Broadcast, NonCausalModeDeliversInArrivalOrder) {
  sim::Network::Config cfg;
  sim::PartitionEvent ev;
  ev.start = 0.0;
  ev.end = 1.0;
  ev.groups = {{0, 1}, {1, 2}};
  cfg.partitions.add(ev);
  net::BroadcastOptions opts;
  opts.causal = false;
  opts.anti_entropy_interval = 0.3;
  Harness h(3, cfg, opts);
  h.nodes[0]->broadcast("m0");
  h.sched.run_until(0.05);
  h.nodes[1]->broadcast("m1");
  h.sched.run_until(0.2);
  // m1 arrives at node 2 before m0 and is delivered immediately.
  ASSERT_EQ(h.delivered[2].size(), 1u);
  EXPECT_EQ(h.delivered[2][0], "m1");
  h.sched.run_until(5.0);
  ASSERT_EQ(h.delivered[2].size(), 2u);
  EXPECT_EQ(h.delivered[2][1], "m0");
}

TEST(Broadcast, AntiEntropyRecoversFromFullPartition) {
  sim::Network::Config cfg;
  cfg.partitions = sim::FaultPlan{}.split_halves(4, 2, 0.0, 10.0).partitions();
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.5;
  Harness h(4, cfg, opts);
  // Both sides broadcast during the partition.
  h.nodes[0]->broadcast("left");
  h.nodes[3]->broadcast("right");
  h.sched.run_until(9.0);
  EXPECT_EQ(h.delivered[0].size(), 1u);
  EXPECT_EQ(h.delivered[3].size(), 1u);
  // After the heal, anti-entropy spreads everything everywhere.
  h.sched.run_until(30.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.delivered[i].size(), 2u) << "node " << i;
  }
}

TEST(Broadcast, SurvivesHeavyRandomLoss) {
  sim::Network::Config cfg;
  cfg.drop_probability = 0.5;
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.2;
  Harness h(3, cfg, opts);
  for (int i = 0; i < 20; ++i) {
    h.nodes[static_cast<std::size_t>(i % 3)]->broadcast("m" +
                                                        std::to_string(i));
  }
  h.sched.run_until(60.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.delivered[i].size(), 20u) << "node " << i;
  }
}

TEST(Broadcast, GossipOnlyModePropagatesWithoutFlood) {
  net::BroadcastOptions opts;
  opts.flood = false;
  opts.anti_entropy_interval = 0.2;
  Harness h(3, {}, opts);
  h.nodes[0]->broadcast("g");
  h.sched.run_until(0.05);
  // Without flooding, nothing has crossed the wire yet.
  EXPECT_EQ(h.delivered[1].size() + h.delivered[2].size(), 0u);
  h.sched.run_until(20.0);
  EXPECT_EQ(h.delivered[1].size(), 1u);
  EXPECT_EQ(h.delivered[2].size(), 1u);
  EXPECT_GT(h.nodes[0]->stats().anti_entropy_repairs +
                h.nodes[1]->stats().anti_entropy_repairs +
                h.nodes[2]->stats().anti_entropy_repairs,
            0u);
}

TEST(Broadcast, BoundedRepairConvergesViaContinuationDigests) {
  // A long partition accumulates 30 missing payloads on each side; with a
  // cap of 3 per repair reply, recovery proceeds as a chain of truncated
  // batches and immediate continuation digests instead of one giant burst.
  sim::Network::Config cfg;
  cfg.partitions = sim::FaultPlan{}.split_halves(4, 2, 0.0, 10.0).partitions();
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.5;
  opts.max_repairs_per_message = 3;
  Harness h(4, cfg, opts);
  for (int i = 0; i < 30; ++i) {
    h.nodes[static_cast<std::size_t>(i % 2)]->broadcast("L" +
                                                        std::to_string(i));
    h.nodes[static_cast<std::size_t>(2 + i % 2)]->broadcast(
        "R" + std::to_string(i));
  }
  h.sched.run_until(60.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.delivered[i].size(), 60u) << "node " << i;
  }
  std::uint64_t truncated = 0, continuations = 0;
  for (const auto& n : h.nodes) {
    truncated += n->stats().repairs_truncated;
    continuations += n->stats().continuation_digests;
  }
  EXPECT_GT(truncated, 0u);
  EXPECT_GT(continuations, 0u);
}

TEST(Broadcast, RepairStorePruningTracksTheWindow) {
  // Without pruning every node retains every wire message forever (the
  // store IS the history); with pruning, messages every peer has digested
  // are discarded, so at quiescence the store is (nearly) empty.
  const auto run = [](bool prune) {
    net::BroadcastOptions opts;
    opts.anti_entropy_interval = 0.2;
    opts.prune_repair_store = prune;
    Harness h(3, {}, opts);
    for (int i = 0; i < 40; ++i) {
      h.nodes[static_cast<std::size_t>(i % 3)]->broadcast(
          "m" + std::to_string(i));
    }
    h.sched.run_until(30.0);
    std::size_t retained = 0;
    std::uint64_t pruned = 0;
    for (const auto& n : h.nodes) {
      EXPECT_EQ(n->total_delivered(), 40u);
      retained += n->store_retained();
      pruned += n->stats().store_pruned;
    }
    return std::make_pair(retained, pruned);
  };
  const auto [retained_off, pruned_off] = run(false);
  EXPECT_EQ(retained_off, 3 * 40u);
  EXPECT_EQ(pruned_off, 0u);
  const auto [retained_on, pruned_on] = run(true);
  EXPECT_LT(retained_on, 3 * 40u);
  EXPECT_GT(pruned_on, 0u);
}

TEST(Broadcast, PrunedStoreStillRepairsAPartitionedPeer) {
  // Pruning keys off received digests, so a partitioned peer (which cannot
  // digest) implicitly pins the store: after the heal everything it lacks
  // is still repairable.
  sim::Network::Config cfg;
  cfg.partitions =
      sim::FaultPlan{}.split_halves(3, 1, 0.0, 8.0).partitions();  // {0} vs {1, 2}
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.3;
  opts.prune_repair_store = true;
  Harness h(3, cfg, opts);
  for (int i = 0; i < 12; ++i) {
    h.nodes[static_cast<std::size_t>(1 + i % 2)]->broadcast(
        "p" + std::to_string(i));
  }
  h.sched.run_until(40.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.delivered[i].size(), 12u) << "node " << i;
  }
}

TEST(Broadcast, DeliveredVectorTracksPerOriginCounts) {
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.0;
  Harness h(3, {}, opts);
  h.nodes[0]->broadcast("a0");
  h.nodes[0]->broadcast("a1");
  h.nodes[2]->broadcast("c0");
  h.sched.run();
  const auto& v = h.nodes[1]->delivered_vector();
  EXPECT_EQ(v[0], 2u);
  EXPECT_EQ(v[1], 0u);
  EXPECT_EQ(v[2], 1u);
  EXPECT_EQ(h.nodes[1]->total_delivered(), 3u);
}

}  // namespace
