// Property tests for the section 4.1 transaction conditions, mechanically
// re-verifying the paper's hand-proved classification of the airline
// transactions (sections 4.1 and 5.2) over random well-formed states, plus
// negative tests showing the checkers can actually detect violations.
#include <gtest/gtest.h>

#include "analysis/tx_conditions.hpp"
#include "apps/airline/airline.hpp"
#include "harness/state_samples.hpp"

namespace {

namespace al = apps::airline;
using al::Request;
using al::SmallAirline;
using al::Update;
using Air = SmallAirline;  // capacity 5: violations reachable quickly

std::vector<Air::State> sample_states(std::uint64_t seed) {
  return harness::random_airline_states<Air>(seed, /*count=*/400,
                                             /*persons=*/9, /*walk_len=*/30);
}

class TxConditions : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<Air::State> states = sample_states(GetParam());
};

// --- increasing / nonincreasing updates (section 4.1 first example) ---

TEST_P(TxConditions, RequestIncreasingForUnderbookingOnly) {
  // "the request(P) update is nonincreasing for the overbooking constraint,
  // but is increasing for the underbooking constraint."
  const Update u{Update::Kind::kRequest, 1};
  EXPECT_FALSE(
      analysis::increasing_witness<Air>(states, u, Air::kOverbooking)
          .has_value());
  EXPECT_TRUE(
      analysis::increasing_witness<Air>(states, u, Air::kUnderbooking)
          .has_value());
}

TEST_P(TxConditions, CancelIncreasingForUnderbookingOnly) {
  const Update u{Update::Kind::kCancel, 1};
  EXPECT_FALSE(
      analysis::increasing_witness<Air>(states, u, Air::kOverbooking)
          .has_value());
  EXPECT_TRUE(
      analysis::increasing_witness<Air>(states, u, Air::kUnderbooking)
          .has_value());
}

TEST_P(TxConditions, MoveUpIncreasingForOverbookingOnly) {
  // "the move-up(P) update is increasing for the overbooking constraint ...
  // However, it is nonincreasing for the underbooking constraint."
  const Update u{Update::Kind::kMoveUp, 1};
  EXPECT_TRUE(analysis::increasing_witness<Air>(states, u, Air::kOverbooking)
                  .has_value());
  EXPECT_FALSE(
      analysis::increasing_witness<Air>(states, u, Air::kUnderbooking)
          .has_value());
}

TEST_P(TxConditions, MoveDownIncreasingForUnderbookingOnly) {
  const Update u{Update::Kind::kMoveDown, 1};
  EXPECT_FALSE(
      analysis::increasing_witness<Air>(states, u, Air::kOverbooking)
          .has_value());
  EXPECT_TRUE(
      analysis::increasing_witness<Air>(states, u, Air::kUnderbooking)
          .has_value());
}

TEST_P(TxConditions, NoopNeverIncreasing) {
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    EXPECT_FALSE(
        analysis::increasing_witness<Air>(states, Update{}, c).has_value());
  }
}

// --- safe / unsafe (section 4.1 second example) ---

TEST_P(TxConditions, SafetyClassificationMatchesTheory) {
  // "the other transactions are all safe for the overbooking constraint.
  // However, the MOVE-UP transaction is unsafe ... MOVE-UP is safe for the
  // underbooking constraint, but the other three are all unsafe."
  //
  // The unsafe side of each claim is an existence statement, so the search
  // sample is augmented with a few adversarial states (full plane with a
  // specific person waiting / assigned) that witness the increases; the
  // safe side must survive the full randomized sample.
  std::vector<Air::State> search = states;
  for (al::Person p = 1; p <= 9; ++p) {
    Air::State full_waiting;  // p waits while the plane is exactly full
    for (al::Person q = 20; q < 20 + Air::kCapacity; ++q) {
      full_waiting.assigned.push_back(q);
    }
    full_waiting.waiting = {p};
    search.push_back(full_waiting);
    Air::State full_assigned = full_waiting;  // p assigned, others wait
    full_assigned.waiting.clear();
    full_assigned.assigned.push_back(p);
    full_assigned.assigned.erase(full_assigned.assigned.begin());
    full_assigned.waiting = {30, 31};
    search.push_back(full_assigned);
    Air::State overbooked = full_waiting;  // p is the LAST assignee, AL > 5
    overbooked.waiting.clear();
    overbooked.assigned.push_back(p);
    search.push_back(overbooked);
  }
  const std::vector<Request> reqs = {Request::request(1), Request::cancel(1),
                                     Request::move_up(),
                                     Request::move_down()};
  for (const Request& r : reqs) {
    for (int c = 0; c < Air::kNumConstraints; ++c) {
      const auto report = analysis::check_safe_for<Air>(search, search, r, c);
      if (Air::Theory::safe_for(r, c)) {
        EXPECT_TRUE(report.ok())
            << r.to_string() << " constraint " << c << ": "
            << report.to_string();
      } else {
        EXPECT_FALSE(report.ok())
            << r.to_string() << " constraint " << c
            << " claimed unsafe but no counterexample found in sample";
      }
    }
  }
}

// --- preserves-cost (section 4.1 third example) ---

TEST_P(TxConditions, AllTransactionsPreserveOverbookingCost) {
  // "We show that all transactions preserve the cost of the overbooking
  // constraint."
  for (const Request& r : {Request::request(1), Request::cancel(1),
                           Request::move_up(), Request::move_down()}) {
    const auto report =
        analysis::check_preserves_cost<Air>(states, states, r,
                                            Air::kOverbooking);
    EXPECT_TRUE(report.ok()) << r.to_string() << ": " << report.to_string();
  }
}

TEST_P(TxConditions, MoversPreserveUnderbookingCost) {
  for (const Request& r : {Request::move_up(), Request::move_down()}) {
    const auto report =
        analysis::check_preserves_cost<Air>(states, states, r,
                                            Air::kUnderbooking);
    EXPECT_TRUE(report.ok()) << r.to_string() << ": " << report.to_string();
  }
}

TEST_P(TxConditions, RequestAndCancelDoNotPreserveUnderbookingCost) {
  // "it is easy to see that REQUEST(P) and CANCEL(P) transactions do not
  // preserve the cost of the underbooking constraint."
  // REQUEST(P) for a fresh person P (not in any sampled state).
  const auto report_req = analysis::check_preserves_cost<Air>(
      states, states, Request::request(999), Air::kUnderbooking);
  EXPECT_FALSE(report_req.ok());
  const auto report_cancel = analysis::check_preserves_cost<Air>(
      states, states, Request::cancel(1), Air::kUnderbooking);
  EXPECT_FALSE(report_cancel.ok());
}

// --- compensating transactions (section 4.1 / Lemma 1 example) ---

TEST_P(TxConditions, MoveDownCompensatesForOverbooking) {
  const auto report = analysis::check_compensates<Air>(
      states, Request::move_down(), Air::kOverbooking);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(TxConditions, MoveUpCompensatesForUnderbooking) {
  const auto report = analysis::check_compensates<Air>(
      states, Request::move_up(), Air::kUnderbooking);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(TxConditions, RequestDoesNotCompensateForUnderbooking) {
  // Sanity: the checker rejects a non-compensating transaction.
  const auto report = analysis::check_compensates<Air>(
      states, Request::request(999), Air::kUnderbooking);
  EXPECT_FALSE(report.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxConditions,
                         ::testing::Values(21u, 22u, 23u));

// --- f bounds the cost increase (section 4.1 last example) ---

class FBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FBoundProperty, PaperBoundsHoldOnRandomSubsequences) {
  // "900k bounds the cost increase for the overbooking constraint, while
  // 300k bounds the cost increase for the underbooking constraint."
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    // Random full update sequence.
    std::vector<Update> seq;
    for (int i = 0; i < 40; ++i) {
      const auto p = static_cast<al::Person>(rng.uniform_int(1, 8));
      switch (rng.uniform_int(0, 3)) {
        case 0: seq.push_back({Update::Kind::kRequest, p}); break;
        case 1: seq.push_back({Update::Kind::kCancel, p}); break;
        case 2: seq.push_back({Update::Kind::kMoveUp, p}); break;
        default: seq.push_back({Update::Kind::kMoveDown, p}); break;
      }
    }
    // Random dropped positions.
    std::vector<std::size_t> dropped;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (rng.bernoulli(0.15)) dropped.push_back(i);
    }
    for (int c = 0; c < Air::kNumConstraints; ++c) {
      const auto report = analysis::check_f_bounds_cost_increase<Air>(
          seq, dropped, c,
          [](int constraint, std::size_t k) {
            return Air::Theory::f_bound(constraint, k);
          });
      EXPECT_TRUE(report.ok())
          << "trial " << trial << " constraint " << c << ": "
          << report.to_string();
    }
  }
}

TEST(FBoundNegative, TooSmallBoundIsRejected) {
  // With f == 0 and a dropped move-up, the overbooking claim must fail for
  // a sequence that overbooks.
  std::vector<Update> seq;
  for (al::Person p = 1; p <= 6; ++p) {
    seq.push_back({Update::Kind::kRequest, p});
    seq.push_back({Update::Kind::kMoveUp, p});
  }
  // Drop one cancel-free move-up from the "seen" side: t has 5 assigned
  // (cost 0), s has 6 (cost 900) -> needs f(1) >= 900.
  const std::vector<std::size_t> dropped = {11};
  const auto bad = analysis::check_f_bounds_cost_increase<Air>(
      seq, dropped, Air::kOverbooking,
      [](int, std::size_t) { return 0.0; });
  EXPECT_FALSE(bad.ok());
  const auto good = analysis::check_f_bounds_cost_increase<Air>(
      seq, dropped, Air::kOverbooking,
      [](int, std::size_t k) { return 900.0 * static_cast<double>(k); });
  EXPECT_TRUE(good.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FBoundProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));

}  // namespace
