// Fairness (sections 4.2 and 5.5): priority preservation per transaction
// (with the paper's MOVE-UP strong-preservation counterexample), Theorem 25
// priority freezing, Lemma 26, Theorem 27 with t-bounded delay, and the
// section 5.5 anomaly + its timestamped-redesign fix.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "analysis/fairness.hpp"
#include "apps/airline/airline.hpp"
#include "apps/airline/timestamped.hpp"
#include "core/scripted.hpp"
#include "harness/state_samples.hpp"

namespace {

namespace al = apps::airline;
using al::Request;
using Air = al::SmallAirline;
using core::ScriptedExecution;

class PriorityProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<Air::State> states =
      harness::random_airline_states<Air>(GetParam(), 150, 7, 25);
};

TEST_P(PriorityProperty, AllFourTransactionsPreservePriority) {
  // Section 4.2: "all of the transactions preserve priority."
  for (const Request& r : {Request::request(3), Request::cancel(3),
                           Request::move_up(), Request::move_down()}) {
    const auto report = analysis::check_preserves_priority<Air>(states, r);
    EXPECT_TRUE(report.ok()) << r.to_string() << ": " << report.to_string();
  }
}

TEST_P(PriorityProperty, RequestAndCancelStronglyPreservePriority) {
  // Section 4.2: "the REQUEST and CANCEL transactions strongly preserve
  // priority."
  for (const Request& r : {Request::request(3), Request::cancel(3)}) {
    const auto report =
        analysis::check_strongly_preserves_priority<Air>(states, states, r);
    EXPECT_TRUE(report.ok()) << r.to_string() << ": " << report.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityProperty,
                         ::testing::Values(61u, 62u, 63u));

TEST(PriorityCounterexample, MoveUpDoesNotStronglyPreservePriority) {
  // The paper's exact section 4.2 counterexample: "Assume that in state s,
  // person P is first on the WAIT-LIST, and ... generates a move-up(P)
  // update. In state s', P is on the WAIT-LIST but is not the first person:
  // person Q is first. Then the move-up(P) action still moves P to the end
  // of the ASSIGNED-LIST, in this case moving it ahead of Q."
  al::State s;         // decision state: P=1 first
  s.waiting = {1, 2};
  al::State s_prime;   // application state: Q=2 first
  s_prime.waiting = {2, 1};
  const auto decision = Air::decide(Request::move_up(), s);
  EXPECT_EQ(decision.update, (al::Update{al::Update::Kind::kMoveUp, 1}));
  al::State s_dprime = s_prime;
  Air::apply(decision.update, s_dprime);
  // Q < P in s' but P < Q in s'': strong preservation violated.
  EXPECT_TRUE(Air::Priority::precedes(s_prime, 2, 1));
  EXPECT_TRUE(Air::Priority::precedes(s_dprime, 1, 2));
  const auto report = analysis::check_strongly_preserves_priority<Air>(
      {s}, {s_prime}, Request::move_up());
  EXPECT_FALSE(report.ok());
}

TEST(PriorityCounterexample, MoveDownDoesNotStronglyPreservePriority) {
  // "Similar remarks hold for the MOVE-DOWN transaction."
  al::State s;  // overbooked; decision picks last assigned = P6
  s.assigned = {1, 2, 3, 4, 5, 6};
  al::State s_prime;  // but elsewhere P6 is FIRST assigned
  s_prime.assigned = {6, 1, 2, 3, 4, 5};
  const auto decision = Air::decide(Request::move_down(), s);
  EXPECT_EQ(decision.update, (al::Update{al::Update::Kind::kMoveDown, 6}));
  al::State s_dprime = s_prime;
  Air::apply(decision.update, s_dprime);
  // In s', P6 < P1 (both assigned, P6 first). In s'', P6 is waiting while
  // P1 is assigned, so P1 < P6: inverted.
  EXPECT_TRUE(Air::Priority::precedes(s_prime, 6, 1));
  EXPECT_TRUE(Air::Priority::precedes(s_dprime, 1, 6));
}

/// A centralized-mover scripted execution for the Theorem 25 family: all
/// movers run at a conceptual agent that sees all prior movers.
struct AgentScript {
  ScriptedExecution<Air> sx;
  std::vector<std::size_t> agent_known;  // prefix the agent accumulates

  std::size_t request(al::Person p, std::vector<std::size_t> prefix = {},
                      double t = -1.0) {
    return sx.run(Request::request(p), std::move(prefix), 1, t);
  }
  /// Agent learns about transactions (they join every later mover prefix).
  void agent_learns(std::initializer_list<std::size_t> idxs) {
    agent_known.insert(agent_known.end(), idxs);
  }
  std::size_t mover(const Request& r, double t = -1.0) {
    const std::size_t idx = sx.run(r, agent_known, 0, t);
    agent_known.push_back(idx);
    return idx;
  }
};

TEST(Theorem25, PriorityFrozenOnceAgentSeesBothRequests) {
  // P1 requests before P2; the agent hears about P2 FIRST, moves P2 up,
  // then learns of P1. From the moment a mover saw both, their relative
  // order never changes in actual states — even though it contradicts
  // request order.
  AgentScript a;
  const auto r1 = a.request(1);
  const auto r2 = a.request(2);
  a.agent_learns({r2});
  a.mover(Request::move_up());  // moves P2 up (only P2 visible)
  a.agent_learns({r1});
  a.mover(Request::move_up());   // now sees both; P2 assigned, P1 waiting
  a.mover(Request::move_down()); // no-op (not overbooked)
  const auto& exec = a.sx.execution();
  EXPECT_TRUE(analysis::is_transitive(exec));
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_theorem25(exec, cls);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Theorem25, Section55AnomalyOrderFixedAtAgentLearnTime) {
  // A simplified section 5.5 shape: REQUEST(P) precedes REQUEST(Q), but the
  // agent hears about Q first and assigns it. Once a mover has seen both
  // requests with Q ahead, Theorem 25 freezes Q < P for the rest of the
  // execution — "even though there is sufficient information in the system
  // to allow for Q to be placed ... after P."
  constexpr al::Person P = 1, Q = 2;
  AgentScript a;
  const auto rp = a.request(P);
  const auto rq = a.request(Q);
  a.agent_learns({rq});
  a.mover(Request::move_up());  // move-up(Q): Q assigned first
  a.agent_learns({rp});
  a.mover(Request::move_up());  // sees both; assigns P after Q
  const auto& exec = a.sx.execution();
  EXPECT_TRUE(analysis::is_transitive(exec));
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_theorem25(exec, cls);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The anomaly itself: Q ended ahead of P despite requesting later.
  const auto final = exec.final_state();
  EXPECT_TRUE(Air::Priority::precedes(final, Q, P));
  EXPECT_EQ(analysis::final_order_inversions(exec, cls), 1u);
}

/// Build the full section 5.5 anomaly for either airline variant:
/// REQUEST(P) first (stamp 100) but never seen by the assigning agent A;
/// A assigns P10..P13 and Q (stamp 200); a second, uncoordinated agent B
/// assigns Y — actual overbooking. A then learns everything and runs
/// MOVE-DOWN, which demotes Q. Where does Q land relative to P on the
/// wait list?
template <class Anyline, class MakeReq>
typename Anyline::State run_section55(MakeReq make_req) {
  using Req = typename Anyline::Request;
  core::ScriptedExecution<Anyline> sx;
  std::vector<std::size_t> agent_a;
  const auto rp = sx.run(make_req(1, 100), {});        // P, earliest
  (void)rp;  // P's request stays invisible to agent A by design
  std::vector<std::size_t> fillers;
  for (al::Person x = 10; x <= 13; ++x) {
    fillers.push_back(sx.run(make_req(x, 110 + x - 10), {}));
  }
  const auto rq = sx.run(make_req(2, 200), {});        // Q, latest
  const auto ry = sx.run(make_req(3, 150), {});        // Y, via agent B
  // Agent B (different node): assigns Y knowing only Y's request.
  sx.run(Req::move_up(), {ry}, /*origin=*/2);
  // Agent A: knows the fillers and Q (NOT P, NOT B's work); fills the
  // plane — 4 fillers then Q.
  agent_a = fillers;
  agent_a.push_back(rq);
  for (int i = 0; i < 5; ++i) {
    agent_a.push_back(sx.run(Req::move_up(), agent_a, /*origin=*/0));
  }
  // Agent A learns everything (including rp and B's move-up) and reacts to
  // the overbooking: MOVE-DOWN demotes the "last" assignee — Q in both
  // variants (list-last in the basic app, latest-stamped in the
  // timestamped app).
  std::vector<std::size_t> all(sx.size());
  std::iota(all.begin(), all.end(), 0);
  sx.run(Req::move_down(), all, /*origin=*/0);
  return sx.execution().final_state();
}

TEST(Section55, BasicAirlinePutsDemotedQAheadOfEarlierP) {
  // Basic app: move-down inserts at the head of the wait list, so Q (who
  // requested AFTER P) ends up ahead of P — the unfair outcome the paper
  // narrates.
  const auto final = run_section55<Air>(
      [](al::Person p, std::uint64_t) { return Request::request(p); });
  ASSERT_TRUE(final.is_waiting(1));
  ASSERT_TRUE(final.is_waiting(2));
  EXPECT_TRUE(Air::Priority::precedes(final, 2, 1));  // Q < P: anomaly
}

TEST(Section55, TimestampedRedesignInsertsQAfterP) {
  // Redesign: "when the move-down(Q) is run from a state in which P is on
  // the waiting list, Q is not placed at the head of the waiting list, but
  // rather is inserted in timestamp order, after P."
  using TsAir = al::SmallTimestampedAirline;
  const auto final = run_section55<TsAir>([](al::Person p, std::uint64_t s) {
    return al::TsRequest::request(p, s);
  });
  ASSERT_NE(final.find_waiting(1), nullptr);
  ASSERT_NE(final.find_waiting(2), nullptr);
  EXPECT_TRUE(TsAir::Priority::precedes(final, 1, 2));  // P < Q: fixed
  // Both lists are stamp-sorted.
  for (std::size_t i = 1; i < final.waiting.size(); ++i) {
    EXPECT_LT(final.waiting[i - 1].stamp, final.waiting[i].stamp);
  }
  for (std::size_t i = 1; i < final.assigned.size(); ++i) {
    EXPECT_LT(final.assigned[i - 1].stamp, final.assigned[i].stamp);
  }
}

TEST(Lemma26, RequestOrderKeptWhenMoversSeeInOrder) {
  AgentScript a;
  const auto r1 = a.request(1, {}, 0.0);
  a.agent_learns({r1});
  a.mover(Request::move_up(), 1.0);
  const auto r2 = a.request(2, {}, 2.0);
  a.agent_learns({r2});
  a.mover(Request::move_up(), 3.0);
  const auto& exec = a.sx.execution();
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_lemma26(exec, cls);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Theorem27, TBoundedDelayImpliesRequestOrderFairness) {
  // Orderly execution, delay bound t=1.5: requests >= 1.5s apart keep
  // order.
  AgentScript a;
  const auto r1 = a.request(1, {}, 0.0);
  a.agent_learns({r1});
  const auto m1 = a.mover(Request::move_up(), 2.0);
  const auto r2 = a.request(2, {r1, m1}, 3.0);
  a.agent_learns({r2});
  a.mover(Request::move_up(), 5.0);
  const auto& exec = a.sx.execution();
  EXPECT_TRUE(analysis::is_orderly(exec));
  EXPECT_TRUE(analysis::has_t_bounded_delay(exec, 1.5));
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_theorem27(exec, cls, 1.5);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Section55Redesign, TimestampedListsRespectRequestOrder) {
  // The same anomaly sequence on the timestamped app: Q's move-down inserts
  // it in stamp order, AFTER P — the redesign of section 5.5.
  using TsAir = al::SmallTimestampedAirline;
  using TsReq = al::TsRequest;
  core::ScriptedExecution<TsAir> sx;
  const auto rp = sx.run(TsReq::request(1, /*stamp=*/100), {});
  const auto rq = sx.run(TsReq::request(2, /*stamp=*/200), {});
  (void)rp;
  // Agent sees only Q's request; moves Q up.
  const auto m1 = sx.run(TsReq::move_up(), {rq});
  // Later, a move-down of Q (scripted: agent believes overbooking via a
  // stale view is unnecessary — apply the update path directly by an
  // explicit request stream): six fresh stamped requesters fill the plane
  // in the agent's view, then move-down fires.
  std::vector<std::size_t> known = {rq, m1};
  for (al::Person x = 10; x < 15; ++x) {
    const auto r =
        sx.run(TsReq::request(x, /*stamp=*/300 + x), {});
    known.push_back(r);
    known.push_back(sx.run(TsReq::move_up(), known));
  }
  const auto r6 = sx.run(TsReq::request(20, /*stamp=*/400), {});
  known.push_back(r6);
  known.push_back(sx.run(TsReq::move_up(), known));  // 6th assignment
  known.push_back(sx.run(TsReq::move_down(), known));  // AL=6>5: demote
  const auto& exec = sx.execution();
  // The demoted person is the LATEST-stamped assignee (P20, stamp 400) —
  // and crucially, in the ACTUAL state, every wait-list insertion is in
  // stamp order, so P (stamp 100) precedes Q (stamp 200) whenever both
  // wait, and P20 lands after both.
  const auto final = exec.final_state();
  const auto* p1 = final.find_waiting(1);
  ASSERT_NE(p1, nullptr);  // P never seen by agent: still waiting
  for (const auto& e : final.waiting) {
    if (e.person != 1) {
      EXPECT_GT(e.stamp, 100u);  // nothing with a later stamp precedes P1
    }
  }
  // Wait list is stamp-sorted.
  for (std::size_t i = 1; i < final.waiting.size(); ++i) {
    EXPECT_LT(final.waiting[i - 1].stamp, final.waiting[i].stamp);
  }
}

}  // namespace
