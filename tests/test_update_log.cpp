// The SHARD undo/redo merge engine: timestamp-ordered insertion with
// checkpointed recomputation must always equal a naive full replay (the
// section 1.2 invariant: "each node's copy of the database always reflects
// the effects of all the transactions known to that node, as if they were
// run according to the global timestamp order").
#include <gtest/gtest.h>

#include <vector>

#include "apps/airline/airline.hpp"
#include "shard/update_log.hpp"
#include "sim/rng.hpp"

namespace {

using apps::airline::SmallAirline;
using apps::airline::Update;
using core::Timestamp;
using Log = shard::UpdateLog<SmallAirline>;

Update req(apps::airline::Person p) {
  return Update{Update::Kind::kRequest, p};
}
Update up(apps::airline::Person p) { return Update{Update::Kind::kMoveUp, p}; }
Update down(apps::airline::Person p) {
  return Update{Update::Kind::kMoveDown, p};
}
Update cancel(apps::airline::Person p) {
  return Update{Update::Kind::kCancel, p};
}

TEST(UpdateLog, TailAppendsApplyDirectly) {
  Log log(4);
  log.insert({Timestamp{1, 0}, req(1)});
  log.insert({Timestamp{2, 0}, req(2)});
  log.insert({Timestamp{3, 0}, up(1)});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.state().assigned, (std::vector<apps::airline::Person>{1}));
  EXPECT_EQ(log.state().waiting, (std::vector<apps::airline::Person>{2}));
  EXPECT_EQ(log.stats().tail_appends, 3u);
  EXPECT_EQ(log.stats().mid_inserts, 0u);
  EXPECT_EQ(log.stats().undone_updates, 0u);
}

TEST(UpdateLog, OutOfOrderInsertTriggersUndoRedo) {
  Log log(4);
  // Arrive: request(2) at ts 2, move-up picks... then request(1) at ts 1
  // arrives late. State must equal ts-order replay: req(1), req(2), up(2).
  log.insert({Timestamp{2, 0}, req(2)});
  log.insert({Timestamp{3, 0}, up(2)});
  log.insert({Timestamp{1, 0}, req(1)});
  EXPECT_EQ(log.state().assigned, (std::vector<apps::airline::Person>{2}));
  EXPECT_EQ(log.state().waiting, (std::vector<apps::airline::Person>{1}));
  EXPECT_EQ(log.stats().mid_inserts, 1u);
  EXPECT_EQ(log.stats().undone_updates, 2u);  // req(2), up(2) displaced
}

TEST(UpdateLog, LateArrivalChangesOutcomeDeterministically) {
  // The classic SHARD scenario: a move-up decided elsewhere lands before
  // the cancel that should have preceded it.
  Log log(0);  // no checkpoints: full replay path
  log.insert({Timestamp{1, 0}, req(1)});
  log.insert({Timestamp{3, 0}, up(1)});
  EXPECT_TRUE(log.state().is_assigned(1));
  log.insert({Timestamp{2, 1}, cancel(1)});  // between them
  // ts order: req(1), cancel(1), up(1) -> P1 gone, move-up is a no-op.
  EXPECT_FALSE(log.state().is_known(1));
}

TEST(UpdateLog, ContainsAndEntryAccessors) {
  Log log(4);
  log.insert({Timestamp{5, 1}, req(9)});
  EXPECT_TRUE(log.contains(Timestamp{5, 1}));
  EXPECT_FALSE(log.contains(Timestamp{5, 0}));
  EXPECT_FALSE(log.contains(Timestamp{4, 1}));
  EXPECT_EQ(log.update_at(0), req(9));
  EXPECT_EQ(log.ts_at(0), (Timestamp{5, 1}));
  EXPECT_EQ(log.known_timestamps(),
            (std::vector<Timestamp>{Timestamp{5, 1}}));
}

/// Property: for random arrival orders and any checkpoint interval, the
/// incrementally maintained state equals a from-scratch replay.
class UpdateLogEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(UpdateLogEquivalence, MatchesNaiveReplayUnderRandomArrivals) {
  const auto [checkpoint_interval, seed] = GetParam();
  sim::Rng rng(seed);
  // Build a random update sequence with global timestamps 1..n.
  const std::size_t n = 200;
  std::vector<Log::Entry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p =
        static_cast<apps::airline::Person>(rng.uniform_int(1, 12));
    Update u;
    switch (rng.uniform_int(0, 3)) {
      case 0: u = req(p); break;
      case 1: u = cancel(p); break;
      case 2: u = up(p); break;
      default: u = down(p); break;
    }
    entries.push_back({Timestamp{i + 1, 0}, u});
  }
  // Shuffle arrival order (Fisher–Yates with our Rng).
  std::vector<Log::Entry> arrival = entries;
  for (std::size_t i = arrival.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(arrival[i - 1], arrival[j]);
  }
  Log log(checkpoint_interval);
  for (const auto& e : arrival) {
    log.insert(e);
    // Invariant after EVERY insert, not just at the end.
    ASSERT_EQ(log.state(), log.recompute_naive());
  }
  // Final state also equals replay of the ts-ordered original sequence.
  SmallAirline::State expect = SmallAirline::initial();
  for (const auto& e : entries) SmallAirline::apply(e.update, expect);
  EXPECT_EQ(log.state(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UpdateLogEquivalence,
    ::testing::Combine(::testing::Values(0u, 1u, 4u, 32u, 1000u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(UpdateLog, CheckpointsReduceRedoWork) {
  // The [BK]/[SKS]-style optimization claim, measured: replaying after a
  // mid insert from a nearby checkpoint redoes far fewer updates than
  // replaying from scratch.
  const std::size_t n = 500;
  const auto build = [&](std::size_t interval) {
    Log log(interval);
    for (std::size_t i = 0; i < n; ++i) {
      log.insert({Timestamp{2 * (i + 1), 0}, req(static_cast<apps::airline::Person>(i % 7 + 1))});
    }
    // One late insert near the end.
    log.insert({Timestamp{2 * n - 3, 1}, cancel(3)});
    return log.stats().redone_updates;
  };
  const auto redo_naive = build(0);
  const auto redo_ckpt = build(16);
  EXPECT_LT(redo_ckpt, redo_naive);
}

TEST(UpdateLog, CompactionShiftsCheckpointsIncrementally) {
  Log log(4);
  for (std::size_t i = 0; i < 20; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 7 + 1))});
  }
  // Base + snapshots at 4, 8, 12, 16, 20.
  EXPECT_EQ(log.checkpoints_retained(), 6u);
  const auto before = log.state();
  // Fold ts < 10 (entries 1..9). Snapshots above the fold point must be
  // shifted, not rebuilt: no redo work is charged for surviving suffix.
  const auto redo_before = log.stats().redone_updates;
  EXPECT_EQ(log.compact_before(Timestamp{10, 0}), 9u);
  EXPECT_EQ(log.stats().redone_updates, redo_before);
  EXPECT_EQ(log.size(), 11u);
  EXPECT_EQ(log.folded_count(), 9u);
  // Base + shifted snapshots formerly at 12, 16, 20 (now 3, 7, 11).
  EXPECT_EQ(log.checkpoints_retained(), 4u);
  EXPECT_EQ(log.state(), before);
  EXPECT_EQ(log.state(), log.recompute_naive());
  // Merging continues correctly against the shifted snapshots — including
  // a mid-insert that replays from one of them.
  log.insert({Timestamp{25, 0}, req(9)});
  log.insert({Timestamp{15, 1}, cancel(2)});
  EXPECT_EQ(log.state(), log.recompute_naive());
  EXPECT_EQ(log.total_merged(), 22u);
}

TEST(UpdateLog, GeometricThinningBoundsSnapshots) {
  // max_checkpoints = 4 with interval 4 over 200 tail appends: unbounded
  // mode would retain ~50 snapshots; geometric thinning keeps a handful,
  // dense near the tail and sparse near the base.
  Log log(4, 4);
  for (std::size_t i = 0; i < 200; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 7 + 1))});
  }
  EXPECT_LE(log.checkpoints_retained(), 10u);
  EXPECT_GT(log.stats().checkpoints_thinned, 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  // Mid-inserts at early positions fall back to the sparse snapshots (or
  // the base) and must still converge to the naive replay.
  log.insert({Timestamp{10, 1}, cancel(3)});
  EXPECT_EQ(log.state(), log.recompute_naive());
  log.insert({Timestamp{150, 1}, up(5)});
  EXPECT_EQ(log.state(), log.recompute_naive());
}

TEST(UpdateLog, ThinningComposesWithCompaction) {
  Log log(4, 4);
  for (std::size_t i = 0; i < 100; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 5 + 1))});
  }
  EXPECT_GT(log.compact_before(Timestamp{60, 0}), 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  for (std::size_t i = 100; i < 160; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 5 + 1))});
  }
  log.insert({Timestamp{80, 1}, cancel(2)});
  EXPECT_EQ(log.state(), log.recompute_naive());
  EXPECT_LE(log.checkpoints_retained(), 10u);
}

using AosLog = shard::UpdateLog<SmallAirline, shard::LogLayout::kAoS>;

/// Differential property: the SoA/arena layout is observationally identical
/// to the AoS layout — state, entry order, undo/redo/checkpoint counters —
/// over random interleavings with interleaved compaction.
class SoAVersusAoS : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoAVersusAoS, LayoutsAgreeUnderRandomArrivalsAndCompaction) {
  sim::Rng rng(GetParam());
  const std::size_t n = 300;
  std::vector<Log::Entry> arrival;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = static_cast<apps::airline::Person>(rng.uniform_int(1, 12));
    Update u;
    switch (rng.uniform_int(0, 3)) {
      case 0: u = req(p); break;
      case 1: u = cancel(p); break;
      case 2: u = up(p); break;
      default: u = down(p); break;
    }
    arrival.push_back({Timestamp{i + 1, 0}, u});
  }
  for (std::size_t i = arrival.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(arrival[i - 1], arrival[j]);
  }
  Log soa(8, 4);
  AosLog aos(8, 4);
  std::uint64_t max_arrived = 0;
  for (std::size_t i = 0; i < arrival.size(); ++i) {
    // Compaction cuts must sit below everything that can still arrive;
    // since arrival order is a shuffle, only an already-complete prefix of
    // the timestamp line is safe. Track it and occasionally fold.
    soa.insert(arrival[i]);
    aos.insert(arrival[i]);
    max_arrived = std::max(max_arrived, arrival[i].ts.logical);
    ASSERT_EQ(soa.state(), aos.state());
    ASSERT_EQ(soa.size(), aos.size());
    if (i % 64 == 63 && soa.total_merged() == max_arrived) {
      const Timestamp cut{max_arrived / 2, 0};
      ASSERT_EQ(soa.compact_before(cut), aos.compact_before(cut));
      ASSERT_EQ(soa.state(), soa.recompute_naive());
    }
  }
  EXPECT_EQ(soa.state(), aos.state());
  EXPECT_EQ(soa.known_timestamps(), aos.known_timestamps());
  EXPECT_EQ(soa.stats().tail_appends, aos.stats().tail_appends);
  EXPECT_EQ(soa.stats().mid_inserts, aos.stats().mid_inserts);
  EXPECT_EQ(soa.stats().undone_updates, aos.stats().undone_updates);
  EXPECT_EQ(soa.stats().redone_updates, aos.stats().redone_updates);
  EXPECT_EQ(soa.stats().checkpoints_taken, aos.stats().checkpoints_taken);
  EXPECT_EQ(soa.stats().entries_folded, aos.stats().entries_folded);
  EXPECT_EQ(soa.checkpoints_retained(), aos.checkpoints_retained());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    ASSERT_EQ(soa.ts_at(i), aos.ts_at(i));
    ASSERT_EQ(soa.update_at(i), aos.update_at(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoAVersusAoS,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

TEST(UpdateLog, CompactionRecyclesArenaSlots) {
  Log log(4);
  for (std::size_t i = 0; i < 64; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 7 + 1))});
  }
  EXPECT_EQ(log.arena_slots(), 64u);
  EXPECT_EQ(log.arena_free_slots(), 0u);
  EXPECT_EQ(log.compact_before(Timestamp{33, 0}), 32u);
  // Folding frees the prefix's slots for reuse...
  EXPECT_EQ(log.arena_free_slots(), 32u);
  for (std::size_t i = 64; i < 96; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 7 + 1))});
  }
  // ...so a steady-state window never grows the arena: 32 new entries fit
  // exactly in the 32 recycled slots.
  EXPECT_EQ(log.arena_slots(), 64u);
  EXPECT_EQ(log.arena_free_slots(), 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
}

TEST(UpdateLog, TruncateSuffixAgainstArenaLayout) {
  // The stale-disk path over the SoA store: truncation frees the suffix's
  // slots, keeps a consistent prefix, and re-merging the lost tail (plus
  // deeper mid-inserts) reuses them while matching the naive oracle.
  Log log(4);
  std::vector<Log::Entry> all;
  for (std::size_t i = 0; i < 40; ++i) {
    all.push_back({Timestamp{i + 1, 0},
                   req(static_cast<apps::airline::Person>(i % 9 + 1))});
  }
  for (const auto& e : all) log.insert(e);
  EXPECT_EQ(log.truncate_suffix(25), 15u);
  EXPECT_EQ(log.size(), 25u);
  EXPECT_EQ(log.arena_free_slots(), 15u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  // Replay the lost tail out of order, as anti-entropy repair would.
  for (std::size_t i = all.size(); i > 25; --i) log.insert(all[i - 1]);
  EXPECT_EQ(log.size(), 40u);
  EXPECT_EQ(log.arena_slots(), 40u);
  EXPECT_EQ(log.arena_free_slots(), 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  SmallAirline::State expect = SmallAirline::initial();
  for (const auto& e : all) SmallAirline::apply(e.update, expect);
  EXPECT_EQ(log.state(), expect);
}

TEST(UpdateLog, StatsCountCheckpoints) {
  Log log(4);
  for (std::size_t i = 0; i < 12; ++i) {
    log.insert({Timestamp{i + 1, 0}, req(static_cast<apps::airline::Person>(i + 1))});
  }
  EXPECT_EQ(log.stats().checkpoints_taken, 3u);  // at sizes 4, 8, 12
  // A mid insert at position 5 invalidates checkpoints covering > 5.
  log.insert({Timestamp{5, 1}, cancel(1)});
  EXPECT_GT(log.stats().checkpoints_invalidated, 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
}

}  // namespace
