// The SHARD undo/redo merge engine: timestamp-ordered insertion with
// checkpointed recomputation must always equal a naive full replay (the
// section 1.2 invariant: "each node's copy of the database always reflects
// the effects of all the transactions known to that node, as if they were
// run according to the global timestamp order").
#include <gtest/gtest.h>

#include <vector>

#include "apps/airline/airline.hpp"
#include "shard/update_log.hpp"
#include "sim/rng.hpp"

namespace {

using apps::airline::SmallAirline;
using apps::airline::Update;
using core::Timestamp;
using Log = shard::UpdateLog<SmallAirline>;

Update req(apps::airline::Person p) {
  return Update{Update::Kind::kRequest, p};
}
Update up(apps::airline::Person p) { return Update{Update::Kind::kMoveUp, p}; }
Update down(apps::airline::Person p) {
  return Update{Update::Kind::kMoveDown, p};
}
Update cancel(apps::airline::Person p) {
  return Update{Update::Kind::kCancel, p};
}

TEST(UpdateLog, TailAppendsApplyDirectly) {
  Log log(4);
  log.insert({Timestamp{1, 0}, req(1)});
  log.insert({Timestamp{2, 0}, req(2)});
  log.insert({Timestamp{3, 0}, up(1)});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.state().assigned, (std::vector<apps::airline::Person>{1}));
  EXPECT_EQ(log.state().waiting, (std::vector<apps::airline::Person>{2}));
  EXPECT_EQ(log.stats().tail_appends, 3u);
  EXPECT_EQ(log.stats().mid_inserts, 0u);
  EXPECT_EQ(log.stats().undone_updates, 0u);
}

TEST(UpdateLog, OutOfOrderInsertTriggersUndoRedo) {
  Log log(4);
  // Arrive: request(2) at ts 2, move-up picks... then request(1) at ts 1
  // arrives late. State must equal ts-order replay: req(1), req(2), up(2).
  log.insert({Timestamp{2, 0}, req(2)});
  log.insert({Timestamp{3, 0}, up(2)});
  log.insert({Timestamp{1, 0}, req(1)});
  EXPECT_EQ(log.state().assigned, (std::vector<apps::airline::Person>{2}));
  EXPECT_EQ(log.state().waiting, (std::vector<apps::airline::Person>{1}));
  EXPECT_EQ(log.stats().mid_inserts, 1u);
  EXPECT_EQ(log.stats().undone_updates, 2u);  // req(2), up(2) displaced
}

TEST(UpdateLog, LateArrivalChangesOutcomeDeterministically) {
  // The classic SHARD scenario: a move-up decided elsewhere lands before
  // the cancel that should have preceded it.
  Log log(0);  // no checkpoints: full replay path
  log.insert({Timestamp{1, 0}, req(1)});
  log.insert({Timestamp{3, 0}, up(1)});
  EXPECT_TRUE(log.state().is_assigned(1));
  log.insert({Timestamp{2, 1}, cancel(1)});  // between them
  // ts order: req(1), cancel(1), up(1) -> P1 gone, move-up is a no-op.
  EXPECT_FALSE(log.state().is_known(1));
}

TEST(UpdateLog, ContainsAndEntryAccessors) {
  Log log(4);
  log.insert({Timestamp{5, 1}, req(9)});
  EXPECT_TRUE(log.contains(Timestamp{5, 1}));
  EXPECT_FALSE(log.contains(Timestamp{5, 0}));
  EXPECT_FALSE(log.contains(Timestamp{4, 1}));
  EXPECT_EQ(log.entry(0).update, req(9));
  EXPECT_EQ(log.known_timestamps(),
            (std::vector<Timestamp>{Timestamp{5, 1}}));
}

/// Property: for random arrival orders and any checkpoint interval, the
/// incrementally maintained state equals a from-scratch replay.
class UpdateLogEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(UpdateLogEquivalence, MatchesNaiveReplayUnderRandomArrivals) {
  const auto [checkpoint_interval, seed] = GetParam();
  sim::Rng rng(seed);
  // Build a random update sequence with global timestamps 1..n.
  const std::size_t n = 200;
  std::vector<Log::Entry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p =
        static_cast<apps::airline::Person>(rng.uniform_int(1, 12));
    Update u;
    switch (rng.uniform_int(0, 3)) {
      case 0: u = req(p); break;
      case 1: u = cancel(p); break;
      case 2: u = up(p); break;
      default: u = down(p); break;
    }
    entries.push_back({Timestamp{i + 1, 0}, u});
  }
  // Shuffle arrival order (Fisher–Yates with our Rng).
  std::vector<Log::Entry> arrival = entries;
  for (std::size_t i = arrival.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(arrival[i - 1], arrival[j]);
  }
  Log log(checkpoint_interval);
  for (const auto& e : arrival) {
    log.insert(e);
    // Invariant after EVERY insert, not just at the end.
    ASSERT_EQ(log.state(), log.recompute_naive());
  }
  // Final state also equals replay of the ts-ordered original sequence.
  SmallAirline::State expect = SmallAirline::initial();
  for (const auto& e : entries) SmallAirline::apply(e.update, expect);
  EXPECT_EQ(log.state(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UpdateLogEquivalence,
    ::testing::Combine(::testing::Values(0u, 1u, 4u, 32u, 1000u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(UpdateLog, CheckpointsReduceRedoWork) {
  // The [BK]/[SKS]-style optimization claim, measured: replaying after a
  // mid insert from a nearby checkpoint redoes far fewer updates than
  // replaying from scratch.
  const std::size_t n = 500;
  const auto build = [&](std::size_t interval) {
    Log log(interval);
    for (std::size_t i = 0; i < n; ++i) {
      log.insert({Timestamp{2 * (i + 1), 0}, req(static_cast<apps::airline::Person>(i % 7 + 1))});
    }
    // One late insert near the end.
    log.insert({Timestamp{2 * n - 3, 1}, cancel(3)});
    return log.stats().redone_updates;
  };
  const auto redo_naive = build(0);
  const auto redo_ckpt = build(16);
  EXPECT_LT(redo_ckpt, redo_naive);
}

TEST(UpdateLog, CompactionShiftsCheckpointsIncrementally) {
  Log log(4);
  for (std::size_t i = 0; i < 20; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 7 + 1))});
  }
  // Base + snapshots at 4, 8, 12, 16, 20.
  EXPECT_EQ(log.checkpoints_retained(), 6u);
  const auto before = log.state();
  // Fold ts < 10 (entries 1..9). Snapshots above the fold point must be
  // shifted, not rebuilt: no redo work is charged for surviving suffix.
  const auto redo_before = log.stats().redone_updates;
  EXPECT_EQ(log.compact_before(Timestamp{10, 0}), 9u);
  EXPECT_EQ(log.stats().redone_updates, redo_before);
  EXPECT_EQ(log.size(), 11u);
  EXPECT_EQ(log.folded_count(), 9u);
  // Base + shifted snapshots formerly at 12, 16, 20 (now 3, 7, 11).
  EXPECT_EQ(log.checkpoints_retained(), 4u);
  EXPECT_EQ(log.state(), before);
  EXPECT_EQ(log.state(), log.recompute_naive());
  // Merging continues correctly against the shifted snapshots — including
  // a mid-insert that replays from one of them.
  log.insert({Timestamp{25, 0}, req(9)});
  log.insert({Timestamp{15, 1}, cancel(2)});
  EXPECT_EQ(log.state(), log.recompute_naive());
  EXPECT_EQ(log.total_merged(), 22u);
}

TEST(UpdateLog, GeometricThinningBoundsSnapshots) {
  // max_checkpoints = 4 with interval 4 over 200 tail appends: unbounded
  // mode would retain ~50 snapshots; geometric thinning keeps a handful,
  // dense near the tail and sparse near the base.
  Log log(4, 4);
  for (std::size_t i = 0; i < 200; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 7 + 1))});
  }
  EXPECT_LE(log.checkpoints_retained(), 10u);
  EXPECT_GT(log.stats().checkpoints_thinned, 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  // Mid-inserts at early positions fall back to the sparse snapshots (or
  // the base) and must still converge to the naive replay.
  log.insert({Timestamp{10, 1}, cancel(3)});
  EXPECT_EQ(log.state(), log.recompute_naive());
  log.insert({Timestamp{150, 1}, up(5)});
  EXPECT_EQ(log.state(), log.recompute_naive());
}

TEST(UpdateLog, ThinningComposesWithCompaction) {
  Log log(4, 4);
  for (std::size_t i = 0; i < 100; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 5 + 1))});
  }
  EXPECT_GT(log.compact_before(Timestamp{60, 0}), 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  for (std::size_t i = 100; i < 160; ++i) {
    log.insert({Timestamp{i + 1, 0},
                req(static_cast<apps::airline::Person>(i % 5 + 1))});
  }
  log.insert({Timestamp{80, 1}, cancel(2)});
  EXPECT_EQ(log.state(), log.recompute_naive());
  EXPECT_LE(log.checkpoints_retained(), 10u);
}

TEST(UpdateLog, StatsCountCheckpoints) {
  Log log(4);
  for (std::size_t i = 0; i < 12; ++i) {
    log.insert({Timestamp{i + 1, 0}, req(static_cast<apps::airline::Person>(i + 1))});
  }
  EXPECT_EQ(log.stats().checkpoints_taken, 3u);  // at sizes 4, 8, 12
  // A mid insert at position 5 invalidates checkpoints covering > 5.
  log.insert({Timestamp{5, 1}, cancel(1)});
  EXPECT_GT(log.stats().checkpoints_invalidated, 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
}

}  // namespace
