// Harness coverage: workload generators (determinism, routing policies,
// rate shapes, the unique-request property the witness theorems rely on)
// and scenario profiles.
#include <gtest/gtest.h>

#include <map>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

harness::AirlineWorkload base_workload() {
  harness::AirlineWorkload w;
  w.duration = 20.0;
  w.request_rate = 4.0;
  w.mover_rate = 3.0;
  w.cancel_fraction = 0.3;
  w.max_persons = 200;
  return w;
}

TEST(Workload, DeterministicScheduleForSameSeed) {
  const auto gen = [](std::uint64_t seed) {
    auto sc = harness::lan(3);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(1));
    return harness::drive_airline(cluster, base_workload(), seed);
  };
  const auto a = gen(42);
  const auto b = gen(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].request, b[i].request);
  }
}

TEST(Workload, AtMostOneRequestPerPersonByDefault) {
  // The property the section 5.3 witness machinery assumes (see
  // witness.hpp): with duplicate_request_fraction = 0, each person is
  // REQUESTed at most once (cancels are fine).
  auto sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(2));
  const auto schedule = harness::drive_airline(cluster, base_workload(), 7);
  std::map<al::Person, int> requests;
  for (const auto& sub : schedule) {
    if (sub.request.kind == al::Request::Kind::kRequest) {
      ++requests[sub.request.person];
    }
  }
  for (const auto& [p, n] : requests) EXPECT_EQ(n, 1) << "person " << p;
}

TEST(Workload, DuplicateFractionProducesDuplicates) {
  auto w = base_workload();
  w.duplicate_request_fraction = 0.5;
  auto sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(3));
  const auto schedule = harness::drive_airline(cluster, w, 8);
  std::map<al::Person, int> requests;
  for (const auto& sub : schedule) {
    if (sub.request.kind == al::Request::Kind::kRequest) {
      ++requests[sub.request.person];
    }
  }
  int dups = 0;
  for (const auto& [p, n] : requests) {
    if (n > 1) ++dups;
  }
  EXPECT_GT(dups, 0);
}

TEST(Workload, CentralizeMoversRoutesAllMoversToNode0) {
  auto w = base_workload();
  w.routing = harness::Routing::kCentralizeMovers;
  auto sc = harness::lan(4);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(4));
  const auto schedule = harness::drive_airline(cluster, w, 9);
  bool any_nonzero_nonmover = false;
  for (const auto& sub : schedule) {
    const bool mover = sub.request.kind == al::Request::Kind::kMoveUp ||
                       sub.request.kind == al::Request::Kind::kMoveDown;
    if (mover) {
      EXPECT_EQ(sub.node, 0u) << sub.request.to_string();
    } else if (sub.node != 0) {
      any_nonzero_nonmover = true;
    }
  }
  EXPECT_TRUE(any_nonzero_nonmover);  // the rest stays spread out
}

TEST(Workload, CentralizeAllPinsEverything) {
  auto w = base_workload();
  w.routing = harness::Routing::kCentralizeAll;
  auto sc = harness::lan(4);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(5));
  for (const auto& sub : harness::drive_airline(cluster, w, 10)) {
    EXPECT_EQ(sub.node, 0u);
  }
}

TEST(Workload, RatesApproximatelyHonored) {
  auto w = base_workload();
  w.duration = 100.0;
  w.request_rate = 3.0;
  w.mover_rate = 5.0;
  w.cancel_fraction = 0.0;
  w.max_persons = 10000;
  auto sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(6));
  const auto schedule = harness::drive_airline(cluster, w, 11);
  std::size_t requests = 0, movers = 0;
  for (const auto& sub : schedule) {
    if (sub.request.kind == al::Request::Kind::kRequest) ++requests;
    if (sub.request.kind == al::Request::Kind::kMoveUp ||
        sub.request.kind == al::Request::Kind::kMoveDown) {
      ++movers;
    }
  }
  // Poisson(rate * duration): within +-35% is a safe band.
  EXPECT_GT(requests, 195u);
  EXPECT_LT(requests, 405u);
  EXPECT_GT(movers, 325u);
  EXPECT_LT(movers, 675u);
}

TEST(Workload, CancelsComeAfterTheirRequests) {
  auto w = base_workload();
  w.cancel_fraction = 1.0;  // everyone cancels (if within duration)
  auto sc = harness::lan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(7));
  const auto schedule = harness::drive_airline(cluster, w, 12);
  std::map<al::Person, double> request_time;
  for (const auto& sub : schedule) {
    if (sub.request.kind == al::Request::Kind::kRequest) {
      request_time[sub.request.person] = sub.time;
    }
  }
  for (const auto& sub : schedule) {
    if (sub.request.kind == al::Request::Kind::kCancel) {
      ASSERT_TRUE(request_time.contains(sub.request.person));
      EXPECT_GT(sub.time, request_time[sub.request.person]);
    }
  }
}

TEST(Scenario, ProfilesHaveExpectedShapes) {
  const auto lan = harness::lan(5);
  EXPECT_EQ(lan.num_nodes, 5u);
  EXPECT_DOUBLE_EQ(lan.drop_probability, 0.0);
  EXPECT_FALSE(lan.faults.partitioned_at(1.0));
  EXPECT_LE(lan.delay.upper_bound(), 0.01);

  const auto wan = harness::wan(4);
  EXPECT_GT(wan.drop_probability, 0.0);
  EXPECT_GT(wan.delay.upper_bound(), lan.delay.upper_bound());

  const auto part = harness::partitioned_wan(4, 2.0, 9.0);
  EXPECT_TRUE(part.faults.partitioned_at(5.0));
  EXPECT_FALSE(part.faults.partitioned_at(9.5));
  EXPECT_FALSE(part.faults.connected(0, 3, 5.0));
  EXPECT_TRUE(part.faults.connected(0, 1, 5.0));

  const auto flaky = harness::flaky_node(4, 1.0, 3.0);
  EXPECT_FALSE(flaky.faults.connected(3, 0, 2.0));
  EXPECT_TRUE(flaky.faults.connected(0, 1, 2.0));

  const auto roll = harness::rolling_restart(4, 1.0, 2.0, 0.5);
  EXPECT_EQ(roll.faults.crashes().events().size(), 4u);
  EXPECT_TRUE(roll.faults.down(0, 1.5));
  EXPECT_FALSE(roll.faults.down(1, 1.5));  // one node at a time
  EXPECT_DOUBLE_EQ(roll.faults.last_restart_time(), 1.0 + 3 * 2.5 + 2.0);
}

TEST(Scenario, ClusterConfigCarriesEverything) {
  auto sc = harness::partitioned_wan(4, 1.0, 2.0);
  sc.causal_broadcast = false;
  sc.anti_entropy_interval = 0.7;
  sc.checkpoint_interval = 5;
  const auto cfg = sc.cluster_config<Air>(77);
  EXPECT_EQ(cfg.num_nodes, 4u);
  EXPECT_FALSE(cfg.broadcast.causal);
  EXPECT_DOUBLE_EQ(cfg.broadcast.anti_entropy_interval, 0.7);
  EXPECT_EQ(cfg.checkpoint_interval, 5u);
  EXPECT_EQ(cfg.seed, 77u);
  // Partition cuts travel inside the plan; Cluster folds them into the
  // network schedule at construction.
  EXPECT_TRUE(cfg.faults.partitioned_at(1.5));
  EXPECT_FALSE(cfg.network.partitions.partitioned_at(1.5));
}

TEST(Workload, BankingMixFollowsFractions) {
  auto sc = harness::lan(3);
  shard::Cluster<apps::banking::Banking> cluster(
      sc.cluster_config<apps::banking::Banking>(8));
  harness::BankingWorkload w;
  w.duration = 200.0;
  w.tx_rate = 5.0;
  const auto schedule = harness::drive_banking(cluster, w, 13);
  std::size_t deposits = 0, total = schedule.size();
  for (const auto& sub : schedule) {
    if (sub.request.kind == apps::banking::Request::Kind::kDeposit) {
      ++deposits;
    }
  }
  ASSERT_GT(total, 500u);
  const double frac = static_cast<double>(deposits) / total;
  EXPECT_NEAR(frac, w.deposit_fraction, 0.08);
}

TEST(Workload, InventoryStreamsAllKindsPresent) {
  auto sc = harness::lan(3);
  shard::Cluster<apps::inventory::Inventory> cluster(
      sc.cluster_config<apps::inventory::Inventory>(9));
  harness::InventoryWorkload w;
  w.duration = 60.0;
  const auto schedule = harness::drive_inventory(cluster, w, 14);
  std::map<apps::inventory::Request::Kind, int> kinds;
  for (const auto& sub : schedule) ++kinds[sub.request.kind];
  EXPECT_GT(kinds[apps::inventory::Request::Kind::kOrder], 0);
  EXPECT_GT(kinds[apps::inventory::Request::Kind::kFulfill], 0);
  EXPECT_GT(kinds[apps::inventory::Request::Kind::kRestock], 0);
  EXPECT_GT(kinds[apps::inventory::Request::Kind::kRelease], 0);
}

}  // namespace
