// The section 5.5 timestamped redesign: stamp-sorted lists, update
// semantics, decisions, and the no-inversion guarantee measured over
// cluster runs against the basic app.
#include <gtest/gtest.h>

#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/fairness.hpp"
#include "apps/airline/timestamped.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using TsAir = al::SmallTimestampedAirline;
using al::TsEntry;
using al::TsRequest;
using al::TsUpdate;

TEST(TimestampedAirline, RequestInsertsInStampOrder) {
  TsAir::State s;
  TsAir::apply({TsUpdate::Kind::kRequest, 1, 300}, s);
  TsAir::apply({TsUpdate::Kind::kRequest, 2, 100}, s);
  TsAir::apply({TsUpdate::Kind::kRequest, 3, 200}, s);
  ASSERT_EQ(s.waiting.size(), 3u);
  EXPECT_EQ(s.waiting[0], (TsEntry{2, 100}));
  EXPECT_EQ(s.waiting[1], (TsEntry{3, 200}));
  EXPECT_EQ(s.waiting[2], (TsEntry{1, 300}));
}

TEST(TimestampedAirline, DuplicateRequestKeepsOriginalStamp) {
  TsAir::State s;
  TsAir::apply({TsUpdate::Kind::kRequest, 1, 100}, s);
  TsAir::apply({TsUpdate::Kind::kRequest, 1, 999}, s);
  ASSERT_EQ(s.waiting.size(), 1u);
  EXPECT_EQ(s.waiting[0].stamp, 100u);
}

TEST(TimestampedAirline, MoveUpKeepsStampAndSortsAssigned) {
  TsAir::State s;
  TsAir::apply({TsUpdate::Kind::kRequest, 1, 200}, s);
  TsAir::apply({TsUpdate::Kind::kRequest, 2, 100}, s);
  TsAir::apply({TsUpdate::Kind::kMoveUp, 1, 200}, s);
  TsAir::apply({TsUpdate::Kind::kMoveUp, 2, 100}, s);
  ASSERT_EQ(s.assigned.size(), 2u);
  EXPECT_EQ(s.assigned[0], (TsEntry{2, 100}));  // stamp order, not arrival
  EXPECT_EQ(s.assigned[1], (TsEntry{1, 200}));
}

TEST(TimestampedAirline, MoveDownInsertsByStampNotAtHead) {
  // The redesign's core behaviour.
  TsAir::State s;
  TsAir::apply({TsUpdate::Kind::kRequest, 1, 100}, s);  // P waits
  TsAir::apply({TsUpdate::Kind::kRequest, 2, 200}, s);
  TsAir::apply({TsUpdate::Kind::kMoveUp, 2, 200}, s);   // Q assigned
  TsAir::apply({TsUpdate::Kind::kMoveDown, 2, 200}, s); // Q demoted
  ASSERT_EQ(s.waiting.size(), 2u);
  EXPECT_EQ(s.waiting[0].person, 1u);  // P first (earlier stamp)
  EXPECT_EQ(s.waiting[1].person, 2u);
}

TEST(TimestampedAirline, DecisionsPickByStamp) {
  TsAir::State s;
  TsAir::apply({TsUpdate::Kind::kRequest, 1, 300}, s);
  TsAir::apply({TsUpdate::Kind::kRequest, 2, 100}, s);
  const auto up = TsAir::decide(TsRequest::move_up(), s);
  EXPECT_EQ(up.update.person, 2u);  // earliest stamp wins the seat
  // Overbook, then the latest-stamped assignee loses it.
  for (al::Person p = 10; p <= 15; ++p) {
    TsAir::apply({TsUpdate::Kind::kRequest, p, 1000u + p}, s);
    TsAir::apply({TsUpdate::Kind::kMoveUp, p, 1000u + p}, s);
  }
  ASSERT_GT(s.al(), TsAir::kCapacity);
  const auto down = TsAir::decide(TsRequest::move_down(), s);
  EXPECT_EQ(down.update.person, 15u);
}

TEST(TimestampedAirline, WellFormednessRequiresSortedDisjoint) {
  TsAir::State s;
  s.waiting = {{1, 200}, {2, 100}};  // unsorted
  EXPECT_FALSE(TsAir::well_formed(s));
  TsAir::State t;
  t.waiting = {{1, 100}};
  t.assigned = {{1, 100}};
  EXPECT_FALSE(TsAir::well_formed(t));
  TsAir::State u;
  u.waiting = {{2, 100}, {1, 200}};
  u.assigned = {{3, 50}};
  EXPECT_TRUE(TsAir::well_formed(u));
}

TEST(TimestampedAirline, CostFunctionsMatchBasicShape) {
  TsAir::State s;
  for (al::Person p = 1; p <= 7; ++p) s.assigned.push_back({p, 100u + p});
  EXPECT_DOUBLE_EQ(TsAir::cost(s, TsAir::kOverbooking), 2 * 900.0);
  TsAir::State t;
  t.waiting = {{1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(TsAir::cost(t, TsAir::kUnderbooking), 2 * 300.0);
}

class TsClusterFairness : public ::testing::TestWithParam<std::uint64_t> {};

/// Classify for the timestamped app (same shape as AirlineClassify).
struct TsClassify {
  std::optional<al::Person> request_of(const TsRequest& r) const {
    if (r.kind == TsRequest::Kind::kRequest) return r.person;
    return std::nullopt;
  }
  std::optional<al::Person> cancel_of(const TsRequest& r) const {
    if (r.kind == TsRequest::Kind::kCancel) return r.person;
    return std::nullopt;
  }
  bool is_mover(const TsRequest& r) const {
    return r.kind == TsRequest::Kind::kMoveUp ||
           r.kind == TsRequest::Kind::kMoveDown;
  }
};

TEST_P(TsClusterFairness, ListsAlwaysStampSortedUnderPartition) {
  // The redesign's guarantee, measured end-to-end: in EVERY reachable
  // actual state, both lists are sorted by request stamp — so the section
  // 5.5 anomaly (a later requester placed ahead of an earlier one on the
  // same list) cannot occur. Note what is NOT guaranteed: who holds a seat
  // still depends on what the movers saw (Theorem 25's freeze), so
  // assigned-vs-waiting "inversions" remain possible by design.
  using BigTs = al::TimestampedAirlineT<20, 900, 300>;
  auto sc = harness::partitioned_wan(4, 4.0, 16.0);
  shard::Cluster<BigTs> cluster(sc.cluster_config<BigTs>(GetParam()));
  harness::AirlineWorkload w;
  w.duration = 22.0;
  w.request_rate = 3.0;
  w.mover_rate = 4.0;
  w.move_down_fraction = 0.4;
  w.cancel_fraction = 0.0;
  w.max_persons = 80;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  const auto sorted_by_stamp = [](const std::vector<TsEntry>& v) {
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (!(v[i - 1] < v[i])) return false;
    }
    return true;
  };
  for (const auto& s : exec.actual_states()) {
    ASSERT_TRUE(sorted_by_stamp(s.waiting));
    ASSERT_TRUE(sorted_by_stamp(s.assigned));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsClusterFairness,
                         ::testing::Values(601u, 602u, 603u));

class TsCostBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TsCostBounds, Theorems5And7HoldOnTheRedesign) {
  // The section 5.2 cost-bound theorems apply to the timestamped redesign
  // unchanged: same costs, same safety classification.
  using BigTs = al::TimestampedAirlineT<20, 900, 300>;
  auto sc = harness::partitioned_wan(4, 5.0, 18.0);
  shard::Cluster<BigTs> cluster(sc.cluster_config<BigTs>(GetParam()));
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 3.0;
  w.mover_rate = 4.0;
  w.max_persons = 100;
  harness::drive_airline(cluster, w, GetParam() ^ 0x77);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  const auto preserves = [](const TsRequest& r, int c) {
    return BigTs::Theory::preserves_cost(r, c);
  };
  const auto unsafe = [](const TsRequest& r, int c) {
    return !BigTs::Theory::safe_for(r, c);
  };
  const auto f = [](int c, std::size_t k) {
    return BigTs::Theory::f_bound(c, k);
  };
  for (int c = 0; c < BigTs::kNumConstraints; ++c) {
    const auto r5 = analysis::check_theorem5(exec, c, preserves, f);
    EXPECT_TRUE(r5.ok()) << r5.to_string();
  }
  const auto r7 =
      analysis::check_theorem7(exec, BigTs::kOverbooking, unsafe, f);
  EXPECT_TRUE(r7.ok()) << r7.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsCostBounds,
                         ::testing::Values(611u, 612u, 613u));

}  // namespace
