// The runtime execution API (src/runtime/): both backends behind
// runtime::Executor / runtime::Transport.
//
// Four claims under test:
//
//   * SimBackend differential — the runtime port is trace-invariant: the
//     same (scenario, seed) yields byte-identical merged trace streams
//     across repeated runs over the chaos and crash-chaos seed tiers, and
//     a cluster wired through the [[deprecated]] sim::Network& adapters is
//     byte-identical to one wired through the runtime interfaces.
//   * Hooks unification — SimBackend::set_hooks drives the legacy
//     scheduler-dispatch and network-fate observer surfaces: a consumer
//     registered through runtime::Hooks sees exactly the sequence the
//     legacy observers saw.
//   * ThreadedBackend — real threads, real clocks: seeded runs converge,
//     the full oracle stack (prefix-subsequence condition, transitivity,
//     state == replay) holds on the assembled execution, and the merged
//     per-node trace shards satisfy the send/fate shutdown contract.
//   * Shutdown drain — drain_and_stop refuses new sends before tracing
//     them and delivers everything already on the bus, so no kNetSend is
//     ever orphaned (runtime::validate_message_fates), even when shutdown
//     races a full-throttle workload or crash/restart churn.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "apps/dictionary/dictionary.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/tracer.hpp"
#include "runtime/realtime_cluster.hpp"
#include "runtime/sim_backend.hpp"
#include "runtime/threaded_backend.hpp"
#include "runtime/validate.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using Dict = apps::dictionary::Dictionary;
using DictRequest = apps::dictionary::Request;

// ---------------------------------------------------------------------------
// SimBackend differential tier: the runtime port is trace-invariant
// ---------------------------------------------------------------------------

harness::Scenario chaos_scenario(std::uint64_t seed, bool with_crashes) {
  sim::Rng rng(seed);
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;
  harness::Scenario sc;
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(seed ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  if (with_crashes) {
    sc.faults.random_crashes(nodes, horizon,
                             static_cast<int>(rng.uniform_int(1, 4)),
                             /*min_down=*/1.0, /*max_down=*/6.0,
                             /*amnesia_probability=*/0.5);
  }
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  return sc;
}

struct ChaosRun {
  std::string trace;
  std::vector<Air::State> states;
  bool checker_clean = false;
};

ChaosRun run_chaos(harness::Scenario sc, std::uint64_t seed) {
  sc.trace.enabled = true;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 3.0;
  w.mover_rate = 2.0;
  w.cancel_fraction = 0.1;
  w.max_persons = 150;
  harness::drive_airline(cluster, w, seed ^ 0x5eed);
  cluster.run_until(25.0);
  cluster.settle();
  ChaosRun r;
  r.trace = obs::serialize(capture.events());
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    r.states.push_back(cluster.node(static_cast<core::NodeId>(n)).state());
  }
  const core::Execution<Air> exec = cluster.execution();
  r.checker_clean = analysis::check_prefix_subsequence_condition(exec).ok() &&
                    analysis::is_transitive(exec) && cluster.converged();
  // No fate validation here: a settled simulator run stops at an arbitrary
  // instant with deliveries still scheduled, so open sends are legitimate.
  // The every-send-resolves contract belongs to the threaded backend's
  // drain (tested below).
  return r;
}

void expect_trace_invariant(std::uint64_t seed, bool with_crashes) {
  const harness::Scenario sc = chaos_scenario(seed, with_crashes);
  const ChaosRun a = run_chaos(sc, seed ^ 0x17a7);
  const ChaosRun b = run_chaos(sc, seed ^ 0x17a7);
  ASSERT_EQ(a.trace, b.trace) << "seed " << seed;
  ASSERT_EQ(a.states.size(), b.states.size());
  for (std::size_t n = 0; n < a.states.size(); ++n) {
    EXPECT_EQ(a.states[n], b.states[n]) << "seed " << seed;
  }
  EXPECT_TRUE(a.checker_clean) << "seed " << seed;
}

class RuntimeChaosTier : public ::testing::TestWithParam<std::uint64_t> {};
class RuntimeCrashChaosTier : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RuntimeChaosTier, PortIsTraceInvariant) {
  expect_trace_invariant(GetParam(), /*with_crashes=*/false);
}
TEST_P(RuntimeCrashChaosTier, PortIsTraceInvariant) {
  expect_trace_invariant(GetParam(), /*with_crashes=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeChaosTier,
                         ::testing::Range<std::uint64_t>(1000, 1012));
INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeCrashChaosTier,
                         ::testing::Range<std::uint64_t>(3000, 3012));

// ---------------------------------------------------------------------------
// Deprecated-adapter equivalence
// ---------------------------------------------------------------------------

/// A hand-wired three-node dictionary cluster, constructed either through
/// the runtime interfaces or through the one-release sim::Network&
/// adapters. Everything else — seeds, traffic, tracing — is identical.
struct MiniRun {
  std::string trace;
  Dict::State state;
};

MiniRun run_mini(bool use_adapter) {
  sim::Scheduler sched;
  sim::Network net(sched, {}, /*seed=*/7);
  runtime::SimBackend backend(sched, net);
  obs::Tracer tracer(1 << 14);
  constexpr std::size_t kNodes = 3;
  net::BroadcastOptions opts;
  opts.anti_entropy_interval = 0.3;
  std::vector<std::unique_ptr<shard::Node<Dict>>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (use_adapter) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      nodes.push_back(std::make_unique<shard::Node<Dict>>(
          static_cast<core::NodeId>(i), net, kNodes, opts,
          /*checkpoint_interval=*/8, /*seed=*/100 + i, false, &tracer));
#pragma GCC diagnostic pop
    } else {
      nodes.push_back(std::make_unique<shard::Node<Dict>>(
          static_cast<core::NodeId>(i),
          backend.executor(static_cast<runtime::NodeId>(i)),
          backend.transport(), kNodes, opts,
          /*checkpoint_interval=*/8, /*seed=*/100 + i, false, &tracer));
    }
  }
  for (auto& n : nodes) n->start();
  sim::Rng rng(42);
  for (int k = 0; k < 30; ++k) {
    const auto who = static_cast<std::size_t>(rng.uniform_int(0, kNodes - 1));
    const double at = rng.uniform(0.0, 5.0);
    sched.schedule_at(at, [&, who, k] {
      nodes[who]->submit(
          DictRequest::insert(static_cast<apps::dictionary::Key>(k % 7),
                              "v" + std::to_string(k)),
          sched.now());
    });
  }
  sched.run_until(20.0);
  MiniRun r;
  r.trace = obs::serialize(tracer.ring());
  r.state = nodes[0]->state();
  for (std::size_t i = 1; i < kNodes; ++i) {
    EXPECT_EQ(nodes[i]->state(), r.state) << "node " << i;
  }
  return r;
}

TEST(RuntimeAdapters, DeprecatedNetworkCtorIsByteIdentical) {
  const MiniRun direct = run_mini(/*use_adapter=*/false);
  const MiniRun adapted = run_mini(/*use_adapter=*/true);
  ASSERT_FALSE(direct.trace.empty());
  EXPECT_EQ(adapted.trace, direct.trace);
  EXPECT_EQ(adapted.state, direct.state);
}

TEST(RuntimeAdapters, DeprecatedBroadcastCtorDeliversIdentically) {
  using Rb = net::ReliableBroadcast<std::string>;
  const auto drive = [](bool use_adapter) {
    sim::Scheduler sched;
    sim::Network net(sched, {}, 7);
    runtime::SimBackend backend(sched, net);
    std::vector<std::vector<std::string>> delivered(3);
    std::vector<std::unique_ptr<Rb>> ends;
    net::BroadcastOptions opts;
    opts.anti_entropy_interval = 0.2;
    for (sim::NodeId i = 0; i < 3; ++i) {
      const auto cb = [&delivered, i](const Rb::Wire& w) {
        delivered[i].push_back(w.payload);
      };
      if (use_adapter) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
        ends.push_back(std::make_unique<Rb>(net, i, 3, opts, 100 + i, cb));
#pragma GCC diagnostic pop
      } else {
        ends.push_back(std::make_unique<Rb>(backend.executor(i),
                                            backend.transport(), i, 3, opts,
                                            100 + i, cb));
      }
    }
    for (auto& e : ends) e->start();
    ends[0]->broadcast("a");
    ends[1]->broadcast("b");
    ends[2]->broadcast("c");
    sched.run_until(5.0);
    return delivered;
  };
  EXPECT_EQ(drive(true), drive(false));
}

// ---------------------------------------------------------------------------
// Hooks unification: one registration, both legacy observer surfaces
// ---------------------------------------------------------------------------

struct HookLog {
  std::vector<std::tuple<double, std::uint64_t>> dispatches;
  std::vector<std::tuple<sim::NodeId, sim::NodeId, std::uint64_t, int>> fates;
};

TEST(RuntimeHooks, UnifiedHooksMatchLegacyObserverSequences) {
  const auto drive = [](bool use_hooks) {
    sim::Scheduler sched;
    sim::Network::Config ncfg;
    ncfg.drop_probability = 0.2;
    sim::Network net(sched, ncfg, 7);
    runtime::SimBackend backend(sched, net);
    HookLog log;
    if (use_hooks) {
      runtime::Hooks hooks;
      hooks.on_dispatch = [&log](runtime::NodeId worker, sim::Time t,
                                 std::uint64_t id) {
        EXPECT_EQ(worker, runtime::kNoWorker);
        log.dispatches.emplace_back(t, id);
      };
      hooks.on_message_fate = [&log](sim::NodeId src, sim::NodeId dst,
                                     std::uint64_t id,
                                     runtime::MessageFate fate) {
        log.fates.emplace_back(src, dst, id, static_cast<int>(fate));
      };
      backend.set_hooks(std::move(hooks));
    } else {
      sched.set_observer([&log](sim::Time t, std::uint64_t id) {
        log.dispatches.emplace_back(t, id);
      });
      net.set_observer([&log](sim::NodeId src, sim::NodeId dst,
                              std::uint64_t id,
                              sim::Network::MessageFate fate) {
        log.fates.emplace_back(src, dst, id, static_cast<int>(fate));
      });
    }
    using Rb = net::ReliableBroadcast<std::string>;
    std::vector<std::unique_ptr<Rb>> ends;
    net::BroadcastOptions opts;
    opts.anti_entropy_interval = 0.2;
    for (sim::NodeId i = 0; i < 3; ++i) {
      ends.push_back(std::make_unique<Rb>(backend.executor(i),
                                          backend.transport(), i, 3, opts,
                                          100 + i, [](const Rb::Wire&) {}));
    }
    for (auto& e : ends) e->start();
    ends[0]->broadcast("x");
    ends[2]->broadcast("y");
    sched.run_until(3.0);
    return log;
  };
  const HookLog via_hooks = drive(true);
  const HookLog via_legacy = drive(false);
  ASSERT_FALSE(via_hooks.dispatches.empty());
  ASSERT_FALSE(via_hooks.fates.empty());
  EXPECT_EQ(via_hooks.dispatches, via_legacy.dispatches);
  EXPECT_EQ(via_hooks.fates, via_legacy.fates);
}

// ---------------------------------------------------------------------------
// ThreadedBackend: primitives
// ---------------------------------------------------------------------------

TEST(ThreadedBackend, TimersFireAndCancelWorks) {
  runtime::ThreadedConfig tc;
  tc.num_nodes = 1;
  runtime::ThreadedBackend backend(tc);
  backend.start();
  std::atomic<int> fired{0};
  runtime::Executor& ex = backend.executor(0);
  const auto far = ex.schedule_after(60.0, [&] { fired += 1000; });
  ex.schedule_after(0.005, [&] { fired += 1; });
  EXPECT_TRUE(ex.cancel(far));
  EXPECT_FALSE(ex.cancel(far));  // double-cancel reports failure
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  backend.drain_and_stop();
  EXPECT_EQ(fired.load(), 1);
}

TEST(ThreadedBackend, DeferRunsAfterCurrentTaskOnOwnWorker) {
  runtime::ThreadedConfig tc;
  tc.num_nodes = 1;
  runtime::ThreadedBackend backend(tc);
  backend.start();
  std::vector<int> order;
  std::atomic<bool> done{false};
  backend.post(0, [&] {
    backend.executor(0).defer([&] {
      order.push_back(2);
      done = true;
    });
    order.push_back(1);
  });
  while (!done) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  backend.drain_and_stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// ThreadedBackend: convergence + checker-clean property tier
// ---------------------------------------------------------------------------

class ThreadedSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreadedSeeds, ConvergesAndPassesFullOracleStack) {
  const std::uint64_t seed = GetParam();
  runtime::RealtimeConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = seed;
  cfg.broadcast.anti_entropy_interval = 0.02;
  cfg.broadcast.anti_entropy_jitter = 0.005;
  cfg.bus.min_delay = 0.0002;
  cfg.bus.max_delay = 0.002;
  cfg.bus.drop_probability = 0.05;
  runtime::RealtimeCluster<Dict> rc(cfg);
  sim::Rng rng(seed);
  constexpr std::uint64_t kRequests = 40;
  for (std::uint64_t k = 0; k < kRequests; ++k) {
    const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 2));
    rc.submit(node, DictRequest::insert(
                        static_cast<apps::dictionary::Key>(k % 11),
                        "s" + std::to_string(seed) + "-" + std::to_string(k)));
  }
  ASSERT_TRUE(rc.await_convergence(/*timeout_s=*/60.0, kRequests))
      << "seed " << seed;
  rc.shutdown();
  // Post hoc, on joined state: the full oracle stack.
  EXPECT_TRUE(rc.converged()) << "seed " << seed;
  EXPECT_EQ(rc.total_originated(), kRequests) << "seed " << seed;
  const core::Execution<Dict> exec = rc.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok())
      << "seed " << seed;
  EXPECT_TRUE(analysis::is_transitive(exec)) << "seed " << seed;
  EXPECT_EQ(rc.node(0).state(), exec.final_state()) << "seed " << seed;
  const runtime::FateValidation fates = rc.validate_fates();
  EXPECT_TRUE(fates.ok()) << "seed " << seed << ": " << fates.orphaned.size()
                          << " orphaned, " << fates.unmatched.size()
                          << " unmatched";
  EXPECT_GT(fates.sends, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedSeeds,
                         ::testing::Range<std::uint64_t>(7000, 7008));

// ---------------------------------------------------------------------------
// Shutdown drain: the send/fate contract under racing shutdown + crashes
// ---------------------------------------------------------------------------

TEST(ThreadedRuntime, ImmediateShutdownNeverOrphansASend) {
  // Fire a burst and shut down while the bus is still busy: drain must
  // refuse new sends before tracing them and deliver what's in flight.
  runtime::RealtimeConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 99;
  cfg.broadcast.anti_entropy_interval = 0.01;
  cfg.bus.min_delay = 0.001;
  cfg.bus.max_delay = 0.005;
  runtime::RealtimeCluster<Dict> rc(cfg);
  for (std::uint64_t k = 0; k < 60; ++k) {
    rc.submit(static_cast<core::NodeId>(k % 4),
              DictRequest::insert(static_cast<apps::dictionary::Key>(k), "x"));
  }
  // Let the burst get airborne (delays are 1–5 ms, so plenty is still in
  // flight), then shut down mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  rc.shutdown();
  const runtime::FateValidation fates = rc.validate_fates();
  EXPECT_TRUE(fates.ok()) << fates.orphaned.size() << " orphaned, "
                          << fates.unmatched.size() << " unmatched";
  EXPECT_GT(fates.sends, 0u);
  EXPECT_EQ(fates.resolved, fates.sends);
}

TEST(ThreadedRuntime, CrashRestartChurnStaysCheckerClean) {
  runtime::RealtimeConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 1234;
  cfg.broadcast.anti_entropy_interval = 0.02;
  cfg.bus.min_delay = 0.0002;
  cfg.bus.max_delay = 0.002;
  cfg.bus.drop_probability = 0.1;
  runtime::RealtimeCluster<Dict> rc(cfg);
  std::uint64_t submitted = 0;
  for (std::uint64_t k = 0; k < 20; ++k) {
    rc.submit(static_cast<core::NodeId>(k % 2),  // node 2 will crash
              DictRequest::insert(static_cast<apps::dictionary::Key>(k), "a"));
    ++submitted;
  }
  rc.crash(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (std::uint64_t k = 0; k < 20; ++k) {
    rc.submit(static_cast<core::NodeId>(k % 2),
              DictRequest::insert(static_cast<apps::dictionary::Key>(100 + k),
                                  "b"));
    ++submitted;
  }
  rc.restart(2);
  // Node 2 was down for every submission, so all `submitted` landed on
  // live nodes; after restart, anti-entropy must catch node 2 up.
  ASSERT_TRUE(rc.await_convergence(/*timeout_s=*/60.0, submitted));
  rc.shutdown();
  EXPECT_TRUE(rc.converged());
  const core::Execution<Dict> exec = rc.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  EXPECT_TRUE(analysis::is_transitive(exec));
  EXPECT_EQ(rc.node(2).state(), exec.final_state());
  EXPECT_TRUE(rc.validate_fates().ok());
  EXPECT_GT(rc.node(2).engine_stats().crashes, 0u);
}

}  // namespace
