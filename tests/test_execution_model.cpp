// The formal execution object (section 3.1) and the section 3.2 condition
// checkers, exercised on small hand-built executions where every apparent
// and actual state can be verified by hand.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "core/cost.hpp"
#include "core/scripted.hpp"

namespace {

namespace al = apps::airline;
using al::Request;
using al::SmallAirline;  // capacity 5
using al::Update;
using core::ScriptedExecution;

TEST(Execution, AppendRejectsForwardReferences) {
  core::Execution<SmallAirline> exec;
  core::TxInstance<SmallAirline> tx;
  tx.prefix = {0};  // no transaction 0 exists yet
  EXPECT_THROW(exec.append(tx), std::invalid_argument);
}

TEST(Execution, AppendSortsAndDedupsPrefix) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});
  core::Execution<SmallAirline> exec = sx.execution();
  core::TxInstance<SmallAirline> tx;
  tx.request = Request::move_up();
  tx.prefix = {1, 0, 1};
  tx.update = Update{Update::Kind::kMoveUp, 1};
  exec.append(tx);
  EXPECT_EQ(exec.tx(2).prefix, (std::vector<std::size_t>{0, 1}));
}

TEST(Execution, ApparentVsActualStates) {
  // tx0: REQUEST(P1); tx1: REQUEST(P2); tx2: MOVE-UP seeing only tx1.
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});
  sx.run(Request::move_up(), {1});  // sees P2 only -> moves P2 up
  const auto& exec = sx.execution();
  // Apparent state before tx2: only request(P2) applied.
  const auto t = exec.apparent_state_before(2);
  EXPECT_EQ(t.waiting, (std::vector<al::Person>{2}));
  EXPECT_EQ(exec.tx(2).update, (Update{Update::Kind::kMoveUp, 2}));
  // Apparent state after tx2: P2 assigned, nothing else visible.
  const auto t_after = exec.apparent_state_after(2);
  EXPECT_EQ(t_after.assigned, (std::vector<al::Person>{2}));
  EXPECT_TRUE(t_after.waiting.empty());
  // Actual state after tx2: P1 still waiting, P2 assigned.
  const auto s_after = exec.actual_state_after(2);
  EXPECT_EQ(s_after.assigned, (std::vector<al::Person>{2}));
  EXPECT_EQ(s_after.waiting, (std::vector<al::Person>{1}));
  // actual_states() agrees with per-index queries.
  const auto all = exec.actual_states();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[3], s_after);
  EXPECT_EQ(all[0], SmallAirline::initial());
  EXPECT_EQ(exec.final_state(), s_after);
}

TEST(Execution, StateOfSubsequenceAppliesInAscendingOrder) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run_complete(Request::move_up());
  sx.run_complete(Request::cancel(1));
  const auto& exec = sx.execution();
  // Subsequence {0, 2}: request then cancel -> empty.
  const auto s = exec.state_of_subsequence({0, 2});
  EXPECT_TRUE(s.assigned.empty());
  EXPECT_TRUE(s.waiting.empty());
  // Subsequence {0, 1}: request then move-up -> assigned.
  const auto s2 = exec.state_of_subsequence({0, 1});
  EXPECT_EQ(s2.assigned, (std::vector<al::Person>{1}));
}

TEST(Execution, PrefixExecutionTruncates) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run_complete(Request::move_up());
  const auto trunc = sx.execution().prefix_execution(1);
  EXPECT_EQ(trunc.size(), 1u);
  EXPECT_EQ(trunc.final_state().waiting, (std::vector<al::Person>{1}));
}

TEST(CheckerConditions, DetectsCondition3Violation) {
  // Tamper with a recorded update: the checker must notice that the
  // decision re-run does not reproduce it.
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run_complete(Request::move_up());
  auto txs = sx.execution().transactions();
  txs[1].update = Update{Update::Kind::kMoveUp, 9};  // forged
  const core::Execution<SmallAirline> forged(std::move(txs));
  const auto report = analysis::check_prefix_subsequence_condition(forged);
  EXPECT_FALSE(report.ok());
}

TEST(CheckerConditions, DetectsForgedExternalActions) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run_complete(Request::move_up());
  auto txs = sx.execution().transactions();
  txs[1].external_actions.clear();  // decision informed P1; record says not
  const core::Execution<SmallAirline> forged(std::move(txs));
  EXPECT_FALSE(analysis::check_prefix_subsequence_condition(forged).ok());
}

TEST(Atomicity, ConsecutiveRunWithSharedBaseIsAtomic) {
  // Three MOVE-UPs each seeing base {0,1} plus the earlier suffix members.
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});
  const auto m0 = sx.run(Request::move_up(), {0, 1});
  const auto m1 = sx.run(Request::move_up(), {0, 1, m0});
  sx.run(Request::move_up(), {0, 1, m0, m1});
  EXPECT_TRUE(analysis::is_atomic(sx.execution(), 2, 4));
}

TEST(Atomicity, DifferentBasesBreakAtomicity) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});
  const auto m0 = sx.run(Request::move_up(), {0, 1});
  sx.run(Request::move_up(), {0, m0});  // base {0} != {0,1}
  EXPECT_FALSE(analysis::is_atomic(sx.execution(), 2, 3));
}

TEST(Atomicity, MissingInRangeMemberBreaksAtomicity) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});
  sx.run(Request::move_up(), {0, 1});
  sx.run(Request::move_up(), {0, 1});  // does not see tx 2
  EXPECT_FALSE(analysis::is_atomic(sx.execution(), 2, 3));
}

TEST(Centralization, DetectsCentralizedAndNot) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  const auto m0 = sx.run(Request::move_up(), {0});
  sx.run(Request::request(2), {});
  sx.run(Request::move_up(), {0, m0, 2});  // sees prior mover
  const auto is_mover = [](const Request& r) {
    return r.kind == Request::Kind::kMoveUp;
  };
  EXPECT_TRUE(analysis::is_centralized<SmallAirline>(sx.execution(), is_mover));

  ScriptedExecution<SmallAirline> sy;
  sy.run(Request::request(1), {});
  sy.run(Request::move_up(), {0});
  sy.run(Request::request(2), {});
  sy.run(Request::move_up(), {2});  // misses the prior mover
  EXPECT_FALSE(analysis::is_centralized<SmallAirline>(sy.execution(), is_mover));
}

TEST(TimedExecution, OrderlyAndBoundedDelay) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {}, 0, /*real_time=*/0.0);
  sx.run(Request::request(2), {0}, 0, 1.0);
  sx.run(Request::move_up(), {0, 1}, 0, 2.0);
  EXPECT_TRUE(analysis::is_orderly(sx.execution()));
  EXPECT_TRUE(analysis::has_t_bounded_delay(sx.execution(), 0.5));
  EXPECT_DOUBLE_EQ(analysis::min_bounded_delay(sx.execution()), 0.0);
}

TEST(TimedExecution, BoundedDelayViolationMeasured) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {}, 0, 0.0);
  sx.run(Request::request(2), {}, 0, 5.0);  // misses tx0, 5s older
  const auto& exec = sx.execution();
  EXPECT_TRUE(analysis::has_t_bounded_delay(exec, 6.0));
  EXPECT_FALSE(analysis::has_t_bounded_delay(exec, 5.0));
  EXPECT_DOUBLE_EQ(analysis::min_bounded_delay(exec), 5.0);
}

TEST(TimedExecution, NotOrderlyWhenRealTimesInvert) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {}, 0, 3.0);
  sx.run(Request::request(2), {}, 0, 1.0);
  EXPECT_FALSE(analysis::is_orderly(sx.execution()));
}

TEST(MissingCounts, VectorMatchesPerIndexQueries) {
  ScriptedExecution<SmallAirline> sx;
  sx.run(Request::request(1), {});
  sx.run(Request::request(2), {});
  sx.run(Request::request(3), {1});
  const auto mc = analysis::missing_counts(sx.execution());
  EXPECT_EQ(mc, (std::vector<std::size_t>{0, 1, 1}));
}

TEST(CostStats, TracksMaxMeanFinalOverExecution) {
  ScriptedExecution<SmallAirline> sx;  // capacity 5
  for (al::Person p = 1; p <= 3; ++p) sx.run_complete(Request::request(p));
  const auto stats = core::cost_stats_of_execution(sx.execution());
  // Underbooking cost rises 300, 600, 900 across the three states.
  EXPECT_DOUBLE_EQ(stats.max_cost(SmallAirline::kUnderbooking), 900.0);
  EXPECT_DOUBLE_EQ(stats.final_cost(SmallAirline::kUnderbooking), 900.0);
  EXPECT_DOUBLE_EQ(stats.max_cost(SmallAirline::kOverbooking), 0.0);
  EXPECT_EQ(stats.states_observed(), 4u);  // s0..s3
  EXPECT_NEAR(stats.mean_cost(SmallAirline::kUnderbooking),
              (0.0 + 300.0 + 600.0 + 900.0) / 4.0, 1e-9);
}

TEST(CostStats, SummaryMentionsConstraints) {
  core::CostStats stats(2);
  stats.observe({1.0, 0.0});
  EXPECT_NE(stats.summary().find("c0"), std::string::npos);
  EXPECT_THROW(stats.observe({1.0}), std::invalid_argument);
}

}  // namespace
