// sim::FaultPlan — the unified fault-injection builder (fault-injection v2).
//
// These are unit tests of the plan itself: composition, validation, seeded
// determinism, the correlated builders (rack power loss, rolling restart,
// chaos), and the Byzantine payload adversary's config surface. End-to-end
// behavior of the fault modes lives in test_crash_recovery.cpp,
// test_chaos.cpp and test_checker_sensitivity.cpp.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/fault_plan.hpp"

namespace {

TEST(FaultPlan, ComposesCrashesAndPartitionsFluently) {
  sim::FaultPlan plan;
  plan.crash(0, 1.0, 3.0)
      .split_halves(4, 2, 2.0, 6.0)
      .crash(1, 4.0, 5.0, sim::RecoveryMode::kAmnesia)
      .isolate(3, 4, 7.0, 9.0);
  EXPECT_EQ(plan.crashes().events().size(), 2u);
  EXPECT_EQ(plan.partitions().events().size(), 2u);
  EXPECT_TRUE(plan.down(0, 2.0));
  EXPECT_FALSE(plan.connected(0, 2, 3.0));
  EXPECT_FALSE(plan.connected(3, 0, 8.0));
  EXPECT_TRUE(plan.partitioned_at(8.0));
  EXPECT_FALSE(plan.partitioned_at(9.5));
  EXPECT_DOUBLE_EQ(plan.last_heal_time(), 9.0);
  EXPECT_DOUBLE_EQ(plan.last_restart_time(), 5.0);
  EXPECT_DOUBLE_EQ(plan.all_clear_time(), 9.0);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, EmptyPlanDescribesItself) {
  sim::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.describe(), "no faults");
}

TEST(FaultPlan, DescribeCoversEveryFaultClass) {
  sim::FaultPlan plan;
  plan.disk_failure(0, 1.0, 2.0, 0.5)
      .split_halves(3, 1, 1.0, 4.0)
      .crash_mid_broadcast(2, 3);
  const std::string d = plan.describe();
  EXPECT_NE(d.find("stale-disk"), std::string::npos);
  EXPECT_NE(d.find("keep=0.5"), std::string::npos);
  EXPECT_NE(d.find("partition"), std::string::npos);
  EXPECT_NE(d.find("mid-broadcast"), std::string::npos);
  EXPECT_NE(d.find("node 2@seq 3"), std::string::npos);
}

TEST(FaultPlan, RejectsInvalidWindowsAndFractions) {
  sim::FaultPlan plan;
  plan.crash(0, 1.0, 2.0);
  EXPECT_THROW(plan.crash(0, 1.5, 2.5), std::invalid_argument);  // overlap
  EXPECT_THROW(plan.crash(1, 2.0, 2.0), std::invalid_argument);  // empty
  EXPECT_THROW(plan.disk_failure(1, 1.0, 2.0, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.disk_failure(1, 1.0, 2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(plan.crash_mid_broadcast(0, 0), std::invalid_argument);
  EXPECT_THROW(plan.crash_mid_broadcast(0, 1, 0.0), std::invalid_argument);
  plan.crash_mid_broadcast(0, 1);
  EXPECT_THROW(plan.crash_mid_broadcast(0, 1), std::invalid_argument);
  EXPECT_NO_THROW(plan.crash_mid_broadcast(0, 2));
  EXPECT_NO_THROW(plan.crash_mid_broadcast(1, 1));
  EXPECT_THROW(plan.rack_power_loss({}, 4, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.rolling_restart(3, 0.0, 0.0), std::invalid_argument);
}

TEST(FaultPlan, DiskFailureDrawsSeededFraction) {
  sim::FaultPlan a(123), b(123), c(456);
  a.disk_failure(0, 1.0, 2.0);
  b.disk_failure(0, 1.0, 2.0);
  c.disk_failure(0, 1.0, 2.0);
  const auto frac = [](const sim::FaultPlan& p) {
    return p.crashes().events().front().keep_fraction;
  };
  // Same seed -> same draw; drawn fractions stay in the interesting band.
  EXPECT_DOUBLE_EQ(frac(a), frac(b));
  EXPECT_GE(frac(a), 0.1);
  EXPECT_LT(frac(a), 0.9);
  EXPECT_NE(frac(a), frac(c));
  EXPECT_EQ(static_cast<int>(a.crashes().events().front().mode),
            static_cast<int>(sim::RecoveryMode::kStaleDisk));
  // The explicit-fraction overload must not consume the plan's RNG: the
  // next seeded draw matches a plan that never made the explicit call.
  sim::FaultPlan d(123);
  d.disk_failure(9, 50.0, 51.0, 0.25).disk_failure(0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(d.crashes().events().back().keep_fraction, frac(a));
}

TEST(FaultPlan, RackPowerLossCorrelatesPartitionAndCrashes) {
  sim::FaultPlan plan;
  plan.rack_power_loss({1, 3}, 5, 2.0, 6.0, sim::RecoveryMode::kAmnesia);
  // One cut: {1,3} vs {0,2,4}.
  ASSERT_EQ(plan.partitions().events().size(), 1u);
  EXPECT_FALSE(plan.connected(1, 0, 3.0));
  EXPECT_TRUE(plan.connected(1, 3, 3.0));   // intra-rack link stays up
  EXPECT_TRUE(plan.connected(0, 4, 3.0));   // rest unaffected
  // Every rack node crashes for exactly the same window.
  ASSERT_EQ(plan.crashes().events().size(), 2u);
  for (const auto& ev : plan.crashes().events()) {
    EXPECT_TRUE(ev.node == 1 || ev.node == 3);
    EXPECT_DOUBLE_EQ(ev.start, 2.0);
    EXPECT_DOUBLE_EQ(ev.end, 6.0);
    EXPECT_EQ(static_cast<int>(ev.mode),
              static_cast<int>(sim::RecoveryMode::kAmnesia));
  }
  EXPECT_DOUBLE_EQ(plan.all_clear_time(), 6.0);
}

TEST(FaultPlan, RollingRestartStaggersNonOverlappingWindows) {
  sim::FaultPlan plan;
  plan.rolling_restart(4, 1.0, 2.0, 0.5);
  const auto& events = plan.crashes().events();
  ASSERT_EQ(events.size(), 4u);
  for (sim::NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].node, i);
    EXPECT_DOUBLE_EQ(events[i].start, 1.0 + 2.5 * i);
    EXPECT_DOUBLE_EQ(events[i].end, 3.0 + 2.5 * i);
  }
  // At most one node down at any instant (quorum stays live).
  for (double t = 0.0; t < 12.0; t += 0.1) {
    int down = 0;
    for (sim::NodeId n = 0; n < 4; ++n) down += plan.down(n, t) ? 1 : 0;
    EXPECT_LE(down, 1) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(plan.last_restart_time(), 10.5);
}

TEST(FaultPlan, RandomGenerationIsSeedDeterministic) {
  const auto build = [](std::uint64_t seed) {
    sim::FaultPlan plan(seed);
    plan.random_partitions(5, 30.0, 3);
    plan.random_crashes(5, 30.0, 4, 1.0, 4.0, 0.4, 0.3);
    return plan;
  };
  const sim::FaultPlan a = build(99), b = build(99);
  EXPECT_EQ(a.describe(), b.describe());
  ASSERT_EQ(a.crashes().events().size(), b.crashes().events().size());
  ASSERT_EQ(a.partitions().events().size(), b.partitions().events().size());
  EXPECT_NE(a.describe(), build(100).describe());
}

TEST(FaultPlan, ChaosProducesValidCorrelatedPlans) {
  sim::ChaosOptions opt;
  opt.partition_events = 3;
  opt.crash_events = 3;
  opt.rack_loss_probability = 1.0;  // every cut is a rack power loss
  opt.disk_failure_probability = 0.5;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const sim::FaultPlan plan = sim::FaultPlan::chaos(seed, 5, 20.0, opt);
    // Valid: per-node crash windows never overlap, nodes in range.
    const auto& events = plan.crashes().events();
    for (const auto& ev : events) {
      EXPECT_LT(ev.node, 5u);
      EXPECT_LT(ev.start, ev.end);
      if (ev.mode == sim::RecoveryMode::kStaleDisk) {
        EXPECT_GE(ev.keep_fraction, 0.1);
        EXPECT_LT(ev.keep_fraction, 0.9);
      }
      for (const auto& other : events) {
        if (&ev == &other || ev.node != other.node) continue;
        EXPECT_TRUE(ev.end <= other.start || other.end <= ev.start);
      }
    }
    EXPECT_FALSE(plan.partitions().events().empty());
    // Deterministic.
    EXPECT_EQ(plan.describe(),
              sim::FaultPlan::chaos(seed, 5, 20.0, opt).describe());
  }
}

TEST(FaultPlan, ByzantinePayloadValidatesAndDescribes) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.byzantine().enabled);
  EXPECT_THROW(plan.byzantine_payload(1.5), std::invalid_argument);
  EXPECT_THROW(plan.byzantine_payload(0.1, -0.1), std::invalid_argument);
  EXPECT_THROW(plan.byzantine_payload(0.1, 0.0, 0.0, 5.0, 5.0),
               std::invalid_argument);
  EXPECT_FALSE(plan.byzantine().enabled);  // failed arming leaves it off
  EXPECT_TRUE(plan.empty());
  plan.byzantine_payload(0.2, 0.1, 0.05, 1.0, 9.0);
  EXPECT_TRUE(plan.byzantine().enabled);
  EXPECT_FALSE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.byzantine().corrupt_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.byzantine().duplicate_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.byzantine().reorder_probability, 0.05);
  EXPECT_NE(plan.describe().find("byzantine"), std::string::npos);
  // The adversary seed is drawn from the plan's stream: same plan seed,
  // same adversary seed; different plan seed, different adversary.
  sim::FaultPlan a(7), b(7), c(8);
  a.byzantine_payload(0.2);
  b.byzantine_payload(0.2);
  c.byzantine_payload(0.2);
  EXPECT_EQ(a.byzantine().seed, b.byzantine().seed);
  EXPECT_NE(a.byzantine().seed, c.byzantine().seed);
}

TEST(FaultPlan, MidBroadcastCrashesAreNotPartOfAllClear) {
  sim::FaultPlan plan;
  plan.crash(0, 1.0, 2.0).crash_mid_broadcast(1, 5, /*down_for=*/50.0);
  ASSERT_EQ(plan.mid_broadcast_crashes().size(), 1u);
  EXPECT_EQ(plan.mid_broadcast_crashes()[0].node, 1u);
  EXPECT_EQ(plan.mid_broadcast_crashes()[0].broadcast_seq, 5u);
  // Dynamic faults fire only if the node reaches the seq — they have no
  // static schedule, so they don't extend the all-clear horizon.
  EXPECT_DOUBLE_EQ(plan.all_clear_time(), 2.0);
  EXPECT_FALSE(plan.empty());
}

}  // namespace
