// Centralization results (section 5.4): with transitive executions and
// centralized MOVE-UPs plus one of the two technical request restrictions,
// overbooking is impossible (Theorems 22/23) — realized in the cluster by
// pinning mover requests to one node (section 3.3: "force all the
// transactions in G to run at the same node").
#include <gtest/gtest.h>

#include "analysis/airline_theorems.hpp"
#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using al::Request;

class Centralized : public ::testing::TestWithParam<std::uint64_t> {};

core::Execution<Air> run_with_routing(std::uint64_t seed,
                                      harness::Routing routing,
                                      double duplicate_fraction = 0.0) {
  auto sc = harness::partitioned_wan(4, 5.0, 20.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::AirlineWorkload w;
  w.duration = 30.0;
  w.request_rate = 2.5;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.0;  // Theorem 23's unique-request hypothesis
  w.duplicate_request_fraction = duplicate_fraction;
  w.max_persons = 100;
  w.routing = routing;
  harness::drive_airline(cluster, w, seed ^ 0xabc);
  cluster.run_until(w.duration);
  cluster.settle();
  return cluster.execution();
}

TEST_P(Centralized, MoverRoutingYieldsCentralizedGroup) {
  const auto exec = run_with_routing(GetParam(),
                                     harness::Routing::kCentralizeMovers);
  EXPECT_TRUE(analysis::is_centralized<Air>(exec, [](const Request& r) {
    return r.kind == Request::Kind::kMoveUp;
  }));
  EXPECT_TRUE(analysis::is_centralized<Air>(exec, [](const Request& r) {
    return r.kind == Request::Kind::kMoveUp ||
           r.kind == Request::Kind::kMoveDown;
  }));
  EXPECT_TRUE(analysis::is_transitive(exec));
}

TEST_P(Centralized, Theorem23HoldsWithUniqueRequests) {
  // Unique requests + centralized MOVE-UPs + transitivity => overbooking
  // cost identically zero, despite the partition.
  const auto exec = run_with_routing(GetParam(),
                                     harness::Routing::kCentralizeMovers);
  const auto report = analysis::check_theorem23(exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(Centralized, RandomRoutingCanOverbook) {
  // Control: without centralization, the same workload shape produces
  // overbooked reachable states for at least some seeds. We assert only
  // that the *checker hypotheses* fail (movers not centralized), and track
  // the max cost for the experiment tables.
  const auto exec =
      run_with_routing(GetParam(), harness::Routing::kAnyNode);
  const bool centralized =
      analysis::is_centralized<Air>(exec, [](const Request& r) {
        return r.kind == Request::Kind::kMoveUp;
      });
  // With 4 nodes, a 15-second partition and random routing, mover
  // centralization essentially never holds.
  EXPECT_FALSE(centralized);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Centralized,
                         ::testing::Values(301u, 302u, 303u));

TEST(Centralized, SomeRandomRoutedRunOverbooks) {
  // Existence check across a few seeds: decentralized movers actually do
  // produce a nonzero overbooking cost somewhere (otherwise Theorems 22/23
  // would be vacuous in our setup).
  double worst = 0.0;
  for (std::uint64_t seed = 301; seed <= 310 && worst == 0.0; ++seed) {
    const auto exec = run_with_routing(seed, harness::Routing::kAnyNode);
    const auto states = exec.actual_states();
    for (const auto& s : states) {
      worst = std::max(worst, Air::cost(s, Air::kOverbooking));
    }
  }
  EXPECT_GT(worst, 0.0);
}

TEST(Centralized, FullyCentralizedIsSerializableAndZeroCostEventually) {
  // Routing everything to node 0 makes every transaction see a complete
  // prefix of every other — k = 0 — so no overbooking ever, and
  // underbooking only between a request and the next mover.
  auto sc = harness::partitioned_wan(4, 5.0, 20.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(77));
  harness::AirlineWorkload w;
  w.duration = 30.0;
  w.request_rate = 2.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.1;
  w.routing = harness::Routing::kCentralizeAll;
  harness::drive_airline(cluster, w, 78);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  EXPECT_EQ(exec.max_missing(), 0u);  // fully serial
  const auto r22 = analysis::check_theorem22(exec);
  EXPECT_TRUE(r22.ok()) << r22.to_string();
}

}  // namespace
