// Causal layer (obs/causal.hpp): happens-before graph construction, orphan
// and cycle detection, per-update chains, ancestry queries, the trace-diff
// bisector, and the exact serialize/deserialize round trip — unit-tested on
// hand-built streams, then property-tested over the same randomized chaos
// and crash-chaos seed ranges the guarantee-stack tiers use: on a COMPLETE
// stream from a converged run, the graph must be acyclic with zero orphans
// and every update must have a full originate→deliver→merge chain reaching
// every replica.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/lifecycle.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using obs::Event;
using obs::EventType;

// ------------------------------------------------------------ unit tests --

TEST(CausalGraph, ProgramAndMessageEdges) {
  // Two sends from node 0, delivered at node 1 (delivery-side events are
  // recorded at the destination: node = dst, a = src, b = message id).
  const std::vector<Event> ev = {
      {EventType::kNetSend, 0.0, 0, 0, 0, 1, 5},
      {EventType::kNetSend, 0.1, 0, 0, 0, 1, 6},
      {EventType::kNetDeliver, 0.2, 1, 0, 0, 0, 5},
      {EventType::kNetDeliver, 0.3, 1, 0, 0, 0, 6},
  };
  const obs::CausalGraph g = obs::CausalGraph::build(ev);
  EXPECT_TRUE(g.validate().ok()) << g.validate().summary();
  // 0->1 and 2->3 (program), 0->2 and 1->3 (message).
  EXPECT_EQ(g.edges().size(), 4u);
  const std::vector<std::size_t> parents = g.parent_edges(3);
  ASSERT_EQ(parents.size(), 2u);
  bool program = false, message = false;
  for (const std::size_t k : parents) {
    const obs::CausalEdge& e = g.edges()[k];
    if (e.kind == obs::EdgeKind::kProgram) program = e.from == 2;
    if (e.kind == obs::EdgeKind::kMessage) message = e.from == 1;
  }
  EXPECT_TRUE(program);
  EXPECT_TRUE(message);
}

TEST(CausalGraph, DeliveryTimeCrashDropJoinsItsSend) {
  const std::vector<Event> ev = {
      {EventType::kNetSend, 0.0, 0, 0, 0, 1, 9},
      {EventType::kNetDropCrashed, 0.2, 1, 0, 0, 0, 9},
      // Send-time drop: no message existed (b = 0), so no edge and no
      // orphan either.
      {EventType::kNetDropCrashed, 0.3, 0, 0, 0, 1, 0},
  };
  const obs::CausalGraph g = obs::CausalGraph::build(ev);
  EXPECT_TRUE(g.validate().ok()) << g.validate().summary();
  bool found = false;
  for (const obs::CausalEdge& e : g.edges()) {
    if (e.kind == obs::EdgeKind::kMessage) {
      EXPECT_EQ(e.from, 0u);
      EXPECT_EQ(e.to, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CausalGraph, OrphanNetDeliverDetected) {
  const std::vector<Event> ev = {
      {EventType::kNetDeliver, 0.0, 1, 0, 0, 0, 7},
  };
  const obs::CausalGraph g = obs::CausalGraph::build(ev);
  EXPECT_FALSE(g.validate().ok());
  ASSERT_EQ(g.validate().orphan_net_delivers.size(), 1u);
  EXPECT_EQ(g.validate().orphan_net_delivers[0], 0u);
}

TEST(CausalGraph, UpdateChainJoinsOriginateDeliverMerge) {
  // Update 5:2, origin_seq 1 at node 2: local deliver+merge, then remote
  // deliver at node 1 whose mid-insert displaces 2 entries (undo + redo).
  const std::vector<Event> ev = {
      {EventType::kBroadcastOriginate, 1.0, 2, 5, 2, 1, 0},
      {EventType::kBroadcastSend, 1.0, 2, 0, 0, 1, 3},
      {EventType::kBroadcastDeliver, 1.0, 2, 0, 0, 2, 1},
      {EventType::kMergeTailAppend, 1.0, 2, 5, 2, 0, 0},
      {EventType::kBroadcastDeliver, 1.4, 1, 0, 0, 2, 1},
      {EventType::kMergeMidInsert, 1.4, 1, 5, 2, 2, 0},
      {EventType::kMergeUndo, 1.4, 1, 5, 2, 2, 0},
      {EventType::kMergeRedo, 1.4, 1, 5, 2, 2, 0},
  };
  const obs::CausalGraph g = obs::CausalGraph::build(ev);
  EXPECT_TRUE(g.validate().ok()) << g.validate().summary();

  const std::vector<std::size_t> chain = g.update_chain(5, 2);
  EXPECT_EQ(chain, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(g.update_chain(9, 9).empty());

  // Replicate edges 0->2, 0->4; merge edges 2->3, 4->5.
  std::size_t replicate = 0, merge = 0;
  for (const obs::CausalEdge& e : g.edges()) {
    replicate += e.kind == obs::EdgeKind::kReplicate;
    merge += e.kind == obs::EdgeKind::kMerge;
  }
  EXPECT_EQ(replicate, 2u);
  EXPECT_EQ(merge, 2u);

  // Path to node 1: originate plus node-1 chain events.
  EXPECT_EQ(g.path_to_node(5, 2, 1),
            (std::vector<std::size_t>{0, 4, 5, 6, 7}));
  // Ancestry of the mid-insert: its deliver (4) and the originate (0).
  EXPECT_EQ(g.ancestry(5), (std::vector<std::size_t>{0, 4}));
}

TEST(CausalGraph, OrphanAndUnmergedDetection) {
  {
    // A merge with no originate and no deliver anywhere.
    const std::vector<Event> ev = {
        {EventType::kMergeTailAppend, 0.0, 1, 5, 2, 0, 0},
    };
    const auto issues = obs::CausalGraph::build(ev).validate();
    EXPECT_EQ(issues.orphan_merges.size(), 1u);
  }
  {
    // A broadcast deliver whose originate is missing.
    const std::vector<Event> ev = {
        {EventType::kBroadcastDeliver, 0.0, 1, 0, 0, 2, 1},
    };
    const auto issues = obs::CausalGraph::build(ev).validate();
    EXPECT_EQ(issues.orphan_broadcast_delivers.size(), 1u);
  }
  {
    // Delivered but never merged: the synchronous deliver->merge contract
    // was broken (or the stream is truncated).
    const std::vector<Event> ev = {
        {EventType::kBroadcastOriginate, 0.0, 2, 5, 2, 1, 0},
        {EventType::kBroadcastDeliver, 0.4, 1, 0, 0, 2, 1},
    };
    const auto issues = obs::CausalGraph::build(ev).validate();
    ASSERT_EQ(issues.unmerged_delivers.size(), 1u);
    EXPECT_EQ(issues.unmerged_delivers[0], 1u);
    EXPECT_NE(issues.summary().find("never merged"), std::string::npos);
  }
}

TEST(CausalGraph, AmnesiaRedeliveryReMergeIsNotAnOrphan) {
  // The same update delivered and merged twice at node 1 (stable-outbox
  // replay after an amnesia restart): the second deliver re-arms the merge
  // expectation, so the second merge is explained, not orphaned.
  const std::vector<Event> ev = {
      {EventType::kBroadcastOriginate, 0.0, 2, 5, 2, 1, 0},
      {EventType::kBroadcastDeliver, 0.4, 1, 0, 0, 2, 1},
      {EventType::kMergeTailAppend, 0.4, 1, 5, 2, 0, 0},
      {EventType::kBroadcastDeliver, 2.0, 1, 0, 0, 2, 1},
      {EventType::kMergeTailAppend, 2.0, 1, 5, 2, 0, 0},
  };
  const obs::CausalGraph g = obs::CausalGraph::build(ev);
  EXPECT_TRUE(g.validate().ok()) << g.validate().summary();
}

// ------------------------------------------------------------ trace diff --

TEST(TraceDiff, IdenticalStreamsDoNotDiverge) {
  const std::vector<Event> a = {
      {EventType::kNetSend, 0.0, 0, 0, 0, 1, 5},
      {EventType::kNetDeliver, 0.2, 1, 0, 0, 0, 5},
  };
  const obs::TraceDivergence d = obs::trace_diff(a, a);
  EXPECT_FALSE(d.diverged);
  EXPECT_NE(obs::divergence_report(d, a, a).find("streams identical"),
            std::string::npos);
}

TEST(TraceDiff, ReportsFirstDifferingIndexWithAncestry) {
  const std::vector<Event> a = {
      {EventType::kNetSend, 0.0, 0, 0, 0, 1, 5},
      {EventType::kNetDeliver, 0.2, 1, 0, 0, 0, 5},
  };
  std::vector<Event> b = a;
  b[1].time = 0.3;  // delivery happened later
  const obs::TraceDivergence d = obs::trace_diff(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  const std::string report = obs::divergence_report(d, a, b);
  EXPECT_NE(report.find("first divergence at index 1"), std::string::npos);
  // The diverging deliver's causal ancestry includes its send.
  EXPECT_NE(report.find("causal ancestry"), std::string::npos);
  EXPECT_NE(report.find("net.send"), std::string::npos);
}

TEST(TraceDiff, StrictPrefixDivergesAtShorterLength) {
  const std::vector<Event> a = {
      {EventType::kNetSend, 0.0, 0, 0, 0, 1, 5},
      {EventType::kNetDeliver, 0.2, 1, 0, 0, 0, 5},
  };
  const std::vector<Event> b(a.begin(), a.begin() + 1);
  const obs::TraceDivergence d = obs::trace_diff(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(obs::divergence_report(d, a, b).find("(stream ended)"),
            std::string::npos);
}

// --------------------------------------------------- serialize round trip --

TEST(TraceSerialize, RoundTripIsExact) {
  // Doubles with no short decimal representation must survive exactly —
  // the whole point of shortest-round-trip formatting.
  std::vector<Event> events = {
      {EventType::kNetSend, 0.1 + 0.2, 3, 17, 2, 1, 42},
      {EventType::kMergeMidInsert, 1.0 / 3.0, 1, 9, 0, 3, 0},
      {EventType::kPartitionOpen, 1e-17, obs::kControlNode, 0, 0, 0, 0},
  };
  const std::string text = obs::serialize(events);
  std::vector<Event> back;
  ASSERT_TRUE(obs::deserialize(text, back));
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << "event " << i;
  }
  // And the re-serialization is byte-identical.
  EXPECT_EQ(obs::serialize(back), text);
}

TEST(TraceSerialize, DeserializeRejectsMalformedLines) {
  std::vector<Event> out;
  std::size_t bad = 0;
  EXPECT_FALSE(obs::deserialize("nonsense t=0 n=0 ts=0:0 a=0 b=0\n", out,
                                &bad));
  EXPECT_EQ(bad, 0u);
  out.clear();
  EXPECT_FALSE(obs::deserialize(
      "net.send t=0 n=0 ts=0:0 a=0 b=0\nnet.send t=oops n=0 ts=0:0 a=0 b=0\n",
      out, &bad));
  EXPECT_EQ(bad, 1u);
  EXPECT_EQ(out.size(), 1u);  // the good line before the bad one survives
  out.clear();
  EXPECT_TRUE(obs::deserialize("", out));
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------------ chaos property testing --

/// The causal invariants a COMPLETE stream from a converged run must
/// satisfy, cross-checked against the execution and lifecycle state.
void expect_causal_invariants(shard::Cluster<Air>& cluster,
                              const std::vector<Event>& stream,
                              std::size_t nodes) {
  ASSERT_TRUE(cluster.converged());
  const obs::CausalGraph g = obs::CausalGraph::build(stream);
  EXPECT_EQ(g.num_events(), stream.size());

  // Acyclic with zero orphans: every net.deliver has its send, every
  // broadcast.deliver its originate, every merge its deliver, and every
  // deliver its merge.
  EXPECT_TRUE(g.validate().ok()) << g.validate().summary();
  for (const obs::CausalEdge& e : g.edges()) {
    ASSERT_LT(e.from, e.to);  // record order is a topological witness
  }

  // Every recorded transaction has a complete chain reaching every node.
  const auto exec = cluster.execution();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const core::Timestamp& ts = exec.tx(i).ts;
    ASSERT_FALSE(g.update_chain(ts.logical, ts.node).empty())
        << "tx " << i << " has no causal chain";
    for (std::size_t n = 0; n < nodes; ++n) {
      ASSERT_FALSE(
          g.path_to_node(ts.logical, ts.node, static_cast<sim::NodeId>(n))
              .empty())
          << "tx " << i << " has no path to node " << n;
    }
  }

  // Lifecycle provenance agrees: every update delivered at and merged by
  // every replica, with the causal.* histograms fully populated.
  const obs::LifecycleTracker* lc = cluster.lifecycle();
  ASSERT_NE(lc, nullptr);
  EXPECT_EQ(lc->originated(), exec.size());
  EXPECT_EQ(lc->fully_replicated(), lc->originated());
  EXPECT_EQ(lc->deliver_latency().count(), nodes * lc->originated());
  if (nodes > 1) {
    EXPECT_EQ(lc->first_deliver_latency().count(), lc->originated());
  }
  EXPECT_EQ(lc->last_deliver_latency().count(), lc->originated());
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const core::Timestamp& ts = exec.tx(i).ts;
    obs::ProvenanceTimeline tl;
    ASSERT_TRUE(lc->timeline(ts.logical, ts.node, tl));
    EXPECT_GE(tl.originate_at, 0.0);
    ASSERT_EQ(tl.per_node.size(), nodes);
    for (const obs::ProvenanceTimeline::Cell& c : tl.per_node) {
      EXPECT_GE(c.deliver, tl.originate_at);
      EXPECT_GE(c.merge, c.deliver);
    }
  }

  // The metrics snapshot carries the causal histograms.
  const obs::MetricsRegistry reg = cluster.metrics();
  EXPECT_EQ(reg.histograms().at("causal.deliver_latency").count(),
            nodes * lc->originated());
  EXPECT_TRUE(reg.histograms().count("causal.last_deliver_latency"));
  EXPECT_TRUE(reg.histograms().count("causal.mid_insert_latency"));
  EXPECT_TRUE(reg.histograms().count("causal.fanout_degree"));
}

class CausalChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalChaos, InvariantsHoldUnderRandomFailures) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "causal-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.3);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x9afb);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  sc.trace.enabled = true;

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a0));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  expect_causal_invariants(cluster, capture.events(), nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalChaos,
                         ::testing::Range<std::uint64_t>(1000, 1012));

class CausalCrashChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalCrashChaos, InvariantsHoldUnderCrashesAndPartitions) {
  sim::Rng rng(GetParam());
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const double horizon = 25.0;

  harness::Scenario sc;
  sc.name = "causal-crash-chaos";
  sc.num_nodes = nodes;
  sc.delay = sim::Delay::exponential(rng.uniform(0.005, 0.05),
                                     rng.uniform(0.05, 0.3), 5.0);
  sc.drop_probability = rng.uniform(0.0, 0.25);
  sc.faults = sim::FaultPlan(GetParam() ^ 0x37c1);
  sc.faults.random_partitions(nodes, horizon,
                              static_cast<int>(rng.uniform_int(0, 3)));
  sc.faults.random_crashes(nodes, horizon,
                           static_cast<int>(rng.uniform_int(1, 4)),
                           /*min_down=*/1.0, /*max_down=*/6.0,
                           /*amnesia_probability=*/0.5);
  sc.anti_entropy_interval = rng.uniform(0.2, 0.8);
  sc.trace.enabled = true;

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam() ^ 0xc4a5));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = horizon;
  w.request_rate = rng.uniform(1.0, 5.0);
  w.mover_rate = rng.uniform(1.0, 6.0);
  w.move_down_fraction = rng.uniform(0.1, 0.5);
  w.cancel_fraction = rng.uniform(0.0, 0.3);
  w.max_persons = 200;
  harness::drive_airline(cluster, w, GetParam() ^ 0x5eed);

  cluster.run_until(horizon);
  cluster.settle();
  expect_causal_invariants(cluster, capture.events(), nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalCrashChaos,
                         ::testing::Range<std::uint64_t>(3000, 3012));

}  // namespace
