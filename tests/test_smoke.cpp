// End-to-end smoke test: a small cluster runs the airline under a lossy
// network, converges, and the assembled execution satisfies the paper's
// basic conditions. Deeper checks live in the per-module suites.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

using apps::airline::Airline;

TEST(Smoke, ClusterRunsConvergesAndSatisfiesPrefixCondition) {
  const harness::Scenario sc = harness::wan(4);
  shard::Cluster<Airline> cluster(sc.cluster_config<Airline>(/*seed=*/42));
  harness::AirlineWorkload w;
  w.duration = 20.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, /*seed=*/7);
  cluster.run_until(w.duration);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());

  const core::Execution<Airline> exec = cluster.execution();
  EXPECT_GT(exec.size(), 20u);
  const analysis::CheckReport report =
      analysis::check_prefix_subsequence_condition(exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(analysis::is_transitive(exec));
}

}  // namespace
