// Partial replication (paper section 6 extension): placement, routing,
// per-group convergence, cross-group transactions, the new unroutable
// failure mode, storage savings, and the key claim — every per-group
// projection is a SHARD execution satisfying the paper's conditions.
#include <gtest/gtest.h>

#include "apps/banking/sharded.hpp"
#include "apps/dictionary/sharded.hpp"
#include "harness/scenario.hpp"
#include "shard/partial.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace bk = apps::banking;
namespace dict = apps::dictionary;
using bk::ShardedBanking;
using bk::ShardedRequest;
using Dict8 = dict::ShardedDictionary<8>;

shard::PartialCluster<ShardedBanking>::Config bank_config(
    std::size_t nodes, std::size_t groups, std::size_t r,
    std::uint64_t seed) {
  shard::PartialCluster<ShardedBanking>::Config cfg;
  cfg.num_nodes = nodes;
  cfg.num_groups = groups;
  cfg.replication_factor = r;
  cfg.network.delay = sim::Delay::uniform(0.005, 0.05);
  cfg.anti_entropy_interval = 0.3;
  cfg.seed = seed;
  return cfg;
}

TEST(Partial, PlacementIsRoundRobinWithRequestedFactor) {
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 2, 1));
  for (shard::GroupId g = 0; g < 8; ++g) {
    const auto& reps = cluster.replicas_of(g);
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_EQ(reps[0], g % 4);
    EXPECT_EQ(reps[1], (g + 1) % 4);
    for (core::NodeId n : reps) EXPECT_TRUE(cluster.hosts(n, g));
  }
  // Each node hosts 8 * 2 / 4 = 4 groups.
  for (core::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster.groups_hosted_at(n), 4u);
  }
}

TEST(Partial, InvalidReplicationFactorRejected) {
  EXPECT_THROW(shard::PartialCluster<ShardedBanking>(bank_config(4, 8, 0, 1)),
               std::invalid_argument);
  EXPECT_THROW(shard::PartialCluster<ShardedBanking>(bank_config(4, 8, 5, 1)),
               std::invalid_argument);
}

TEST(Partial, SingleGroupRequestsRouteToHosts) {
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 2, 2));
  const auto node = cluster.route({3});
  ASSERT_TRUE(node.has_value());
  EXPECT_TRUE(cluster.hosts(*node, 3));
}

TEST(Partial, TransferNeedsCoHostedGroups) {
  // r=2, n=4: groups a and a+1 share node (a+1)%4; groups 0 and 2 share
  // nobody.
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 2, 3));
  EXPECT_TRUE(cluster.route({0, 1}).has_value());
  EXPECT_FALSE(cluster.route({0, 2}).has_value());
  // Full replication (r = n): everything routable.
  shard::PartialCluster<ShardedBanking> full(bank_config(4, 8, 4, 3));
  EXPECT_TRUE(full.route({0, 2}).has_value());
}

TEST(Partial, UnroutableRequestsCounted) {
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 2, 4));
  cluster.submit_at(0.1, ShardedRequest::deposit(0, 100));
  cluster.submit_at(0.2, ShardedRequest::transfer(0, 2, 10));  // unroutable
  cluster.run_until(1.0);
  EXPECT_EQ(cluster.stats().routed, 1u);
  EXPECT_EQ(cluster.stats().unroutable, 1u);
}

TEST(Partial, DepositWithdrawConvergePerGroup) {
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 3, 5));
  cluster.submit_at(0.1, ShardedRequest::deposit(2, 500));
  cluster.submit_at(0.5, ShardedRequest::withdraw(2, 200));
  cluster.run_until(1.0);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.group_state(2).balance, 300);
}

TEST(Partial, TransferMovesMoneyAcrossGroups) {
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 2, 6));
  cluster.submit_at(0.1, ShardedRequest::deposit(1, 400));
  cluster.submit_at(1.0, ShardedRequest::transfer(1, 2, 150));
  cluster.run_until(2.0);
  cluster.settle();
  EXPECT_EQ(cluster.group_state(1).balance, 250);
  EXPECT_EQ(cluster.group_state(2).balance, 150);
}

TEST(Partial, StaleTransferCanOverdraftAndCoverCompensates) {
  // Two replicas of account 1 (nodes 1 and 2). Run two withdrawals at
  // different replicas before either propagates: both see the full
  // balance, both dispense — overdraft, exactly the full-replication
  // failure mode, now per group.
  auto cfg = bank_config(4, 8, 2, 7);
  cfg.network.delay = sim::Delay::constant(0.5);  // slow propagation
  shard::PartialCluster<ShardedBanking> cluster(cfg);
  cluster.submit_now_at(1, ShardedRequest::deposit(1, 100));
  cluster.settle();
  cluster.submit_now_at(1, ShardedRequest::withdraw(1, 80));
  cluster.submit_now_at(2, ShardedRequest::withdraw(1, 80));  // stale view
  cluster.settle();
  EXPECT_EQ(cluster.group_state(1).balance, -60);
  EXPECT_DOUBLE_EQ(ShardedBanking::cost(cluster.group_state(1), 0), 60.0);
  cluster.submit_now_at(1, ShardedRequest::cover(1));
  cluster.settle();
  EXPECT_EQ(cluster.group_state(1).balance, 0);
}

TEST(Partial, GroupExecutionSatisfiesStructuralConditions) {
  shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, 2, 8));
  sim::Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const auto a = static_cast<bk::AccountId>(rng.uniform_int(0, 7));
    const double t = rng.uniform(0.0, 10.0);
    if (rng.bernoulli(0.6)) {
      cluster.submit_at(t, ShardedRequest::deposit(a, rng.uniform_int(1, 50)));
    } else {
      cluster.submit_at(t, ShardedRequest::withdraw(a, rng.uniform_int(1, 50)));
    }
  }
  cluster.run_until(10.0);
  cluster.settle();
  for (shard::GroupId g = 0; g < 8; ++g) {
    const auto exec = cluster.group_execution(g);
    // Structural §3.1 conditions: prefixes reference predecessors only,
    // strictly increasing; serial order = timestamp order; replaying the
    // execution reproduces the replicas' state.
    for (std::size_t i = 0; i < exec.size(); ++i) {
      const auto& prefix = exec.tx(i).prefix;
      for (std::size_t j = 0; j < prefix.size(); ++j) {
        EXPECT_LT(prefix[j], i);
        if (j > 0) {
          EXPECT_LT(prefix[j - 1], prefix[j]);
        }
      }
      if (i > 0) {
        EXPECT_LT(exec.tx(i - 1).ts, exec.tx(i).ts);
      }
    }
    EXPECT_EQ(exec.final_state(), cluster.group_state(g));
  }
}

TEST(Partial, PerGroupOverdraftBoundHolds) {
  // The Corollary-8 analogue, group-wise: group overdraft <= sum of debit
  // amounts over that group's transactions with missing group-prefixes.
  auto cfg = bank_config(4, 8, 2, 10);
  cfg.network.delay = sim::Delay::exponential(0.05, 0.3, 3.0);
  shard::PartialCluster<ShardedBanking> cluster(cfg);
  sim::Rng rng(11);
  for (bk::AccountId a = 0; a < 8; ++a) {
    cluster.submit_at(0.1, ShardedRequest::deposit(a, 120));
  }
  for (int i = 0; i < 120; ++i) {
    const auto a = static_cast<bk::AccountId>(rng.uniform_int(0, 7));
    cluster.submit_at(rng.uniform(0.5, 12.0),
                      ShardedRequest::withdraw(a, rng.uniform_int(1, 60)));
  }
  cluster.run_until(12.0);
  cluster.settle();
  for (shard::GroupId g = 0; g < 8; ++g) {
    const auto exec = cluster.group_execution(g);
    double bound = 0.0;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (exec.tx(i).update.kind == bk::ShardedUpdate::Kind::kDebit &&
          exec.missing_count(i) > 0) {
        bound += static_cast<double>(exec.tx(i).update.amount);
      }
    }
    for (const auto& s : exec.actual_states()) {
      EXPECT_LE(ShardedBanking::cost(s, 0), bound + 1e-9) << "group " << g;
    }
  }
}

TEST(Partial, DictionaryShardsConvergeUnderPartition) {
  shard::PartialCluster<Dict8>::Config cfg;
  cfg.num_nodes = 4;
  cfg.num_groups = 8;
  cfg.replication_factor = 2;
  cfg.network.delay = sim::Delay::uniform(0.01, 0.08);
  cfg.network.partitions =
      sim::FaultPlan{}.split_halves(4, 2, 1.0, 6.0).partitions();
  cfg.anti_entropy_interval = 0.3;
  cfg.seed = 12;
  shard::PartialCluster<Dict8> cluster(cfg);
  sim::Rng rng(13);
  for (int i = 0; i < 80; ++i) {
    const auto key = static_cast<dict::Key>(rng.uniform_int(0, 40));
    cluster.submit_at(rng.uniform(0.0, 8.0),
                      dict::Request::insert(key, "v" + std::to_string(i)));
  }
  cluster.run_until(8.0);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  EXPECT_GT(cluster.stats().routed, 0u);
  EXPECT_EQ(cluster.stats().unroutable, 0u);  // single-group requests
}

TEST(Partial, StorageScalesWithReplicationFactor) {
  const auto run = [](std::size_t r) {
    shard::PartialCluster<ShardedBanking> cluster(bank_config(4, 8, r, 14));
    for (int i = 0; i < 40; ++i) {
      cluster.submit_at(0.1 * i, ShardedRequest::deposit(
                                     static_cast<bk::AccountId>(i % 8), 10));
    }
    cluster.run_until(10.0);
    cluster.settle();
    std::size_t total = 0;
    for (core::NodeId n = 0; n < 4; ++n) total += cluster.storage_at(n);
    return total;
  };
  const auto s2 = run(2);
  const auto s4 = run(4);
  EXPECT_EQ(s2, 40u * 2u);
  EXPECT_EQ(s4, 40u * 4u);  // full replication doubles the storage
}

}  // namespace
