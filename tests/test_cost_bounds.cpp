// The cost-bound theorems (section 5.2) validated over real cluster
// executions with partitions and loss, plus grouping construction and the
// refined witness bounds of section 5.3 (Theorems 20/21).
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/airline_theorems.hpp"
#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using al::Request;
using Air = al::BasicAirline<20, 900, 300>;  // 20 seats: violations frequent

const auto kPreserves = [](const Request& r, int c) {
  return Air::Theory::preserves_cost(r, c);
};
const auto kUnsafe = [](const Request& r, int c) {
  return !Air::Theory::safe_for(r, c);
};
const auto kF = [](int c, std::size_t k) { return Air::Theory::f_bound(c, k); };

core::Execution<Air> run_cluster(std::uint64_t seed,
                                 harness::Scenario sc,
                                 harness::AirlineWorkload w) {
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::drive_airline(cluster, w, seed ^ 0x9e37);
  cluster.run_until(w.duration);
  cluster.settle();
  return cluster.execution();
}

harness::AirlineWorkload default_workload() {
  harness::AirlineWorkload w;
  w.duration = 30.0;
  w.request_rate = 2.0;
  w.mover_rate = 3.0;
  w.cancel_fraction = 0.2;
  w.max_persons = 80;
  return w;
}

class CostBoundsOnCluster : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostBoundsOnCluster, Theorem5StepBoundsHoldUnderPartition) {
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    const auto report = analysis::check_theorem5(exec, c, kPreserves, kF);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST_P(CostBoundsOnCluster, Theorem7InvariantOverbookingBound) {
  // Corollary 8: with every MOVE-UP k-complete, every reachable state has
  // overbooking cost <= 900k. k is measured from the trace.
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  const auto report =
      analysis::check_theorem7(exec, Air::kOverbooking, kUnsafe, kF);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(CostBoundsOnCluster, Theorem7WithExplicitTooSmallKFlagsHypothesis) {
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  const std::size_t measured = analysis::max_missing_over_unsafe(
      exec, Air::kOverbooking, kUnsafe);
  if (measured == 0) GTEST_SKIP() << "no information was missing this run";
  // Claiming k = measured-1 must be reported as a failed hypothesis (or, if
  // the bound still holds numerically, at least not crash).
  const auto report = analysis::check_theorem7(
      exec, Air::kOverbooking, kUnsafe, kF, measured - 1);
  EXPECT_FALSE(report.ok());
}

TEST_P(CostBoundsOnCluster, Theorem20WitnessBoundsHold) {
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  const auto report = analysis::check_theorem20(exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(CostBoundsOnCluster, WitnessKNeverExceedsRawK) {
  // The section 5.3 refinement claim: per-person witness information is a
  // sharper hypothesis than raw k-completeness.
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  for (std::size_t i = 0; i < exec.size(); ++i) {
    EXPECT_LE(analysis::witness_k_overbooking(exec, i),
              exec.missing_count(i));
  }
}

TEST_P(CostBoundsOnCluster, Theorem21CompensationBoundsHold) {
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  // "seen" = a random-ish subsequence: drop every 7th index.
  std::vector<std::size_t> seen;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (i % 7 != 3) seen.push_back(i);
  }
  const auto r1 = analysis::check_theorem21_overbooking(exec, seen);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  const auto r2 = analysis::check_theorem21_underbooking(exec, seen);
  EXPECT_TRUE(r2.ok()) << r2.to_string();
}

TEST_P(CostBoundsOnCluster, Lemma4ActualWithinFkOfApparent) {
  // Lemma 4: for a k-complete T, s <=_k t (actual vs apparent states), so
  // cost(s,i) <= cost(t,i) + f(k), before and after the transaction.
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  const auto states = exec.actual_states();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const std::size_t k = exec.missing_count(i);
    const auto t_before = exec.apparent_state_before(i);
    const auto t_after = exec.apparent_state_after(i);
    for (int c = 0; c < Air::kNumConstraints; ++c) {
      EXPECT_LE(Air::cost(states[i], c), Air::cost(t_before, c) + kF(c, k) + 1e-9)
          << "tx " << i << " constraint " << c << " (before)";
      EXPECT_LE(Air::cost(states[i + 1], c),
                Air::cost(t_after, c) + kF(c, k) + 1e-9)
          << "tx " << i << " constraint " << c << " (after)";
    }
  }
}

TEST_P(CostBoundsOnCluster, Lemma3AtomicSuffixPreservesSubsequenceRelation) {
  // Lemma 3: if s <=_k t before an atomic suffix, then s' <=_k t' after it
  // — constructively: applying the suffix updates to both sides preserves
  // the subsequence witness, so the cost gap stays bounded by f(k).
  const auto exec = run_cluster(GetParam(),
                                harness::partitioned_wan(4, 5.0, 20.0),
                                default_workload());
  // t = state of a subsequence missing k indices; s = full state.
  std::vector<std::size_t> seen;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (i % 9 != 4) seen.push_back(i);
  }
  const std::size_t k = exec.size() - seen.size();
  Air::State s = exec.final_state();
  Air::State t = exec.state_of_subsequence(seen);
  // Atomic suffix: ten MOVE-UP/MOVE-DOWN decisions taken against t,
  // applied to both sides (the definition of running atomically with
  // prefix subsequence `seen`).
  for (int step = 0; step < 10; ++step) {
    const auto d = Air::decide(step % 2 == 0 ? al::Request::move_up()
                                             : al::Request::move_down(),
                               t);
    Air::apply(d.update, t);
    Air::apply(d.update, s);
    for (int c = 0; c < Air::kNumConstraints; ++c) {
      EXPECT_LE(Air::cost(s, c), Air::cost(t, c) + kF(c, k) + 1e-9)
          << "step " << step << " constraint " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostBoundsOnCluster,
                         ::testing::Values(101u, 102u, 103u, 104u));

TEST(Grouping, SingletonGroupsForPreservingTransactions) {
  // An execution of movers only: every transaction preserves both
  // constraints, so the grouping is all singletons.
  core::ScriptedExecution<Air> sx;
  sx.run_complete(Request::move_up());
  sx.run_complete(Request::move_down());
  const auto g = analysis::find_grouping(sx.execution(), Air::kUnderbooking,
                                         kPreserves);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->groups.size(), 2u);
  EXPECT_EQ(g->groups[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(Grouping, RequestRunClosesWhenApparentCostZero) {
  // REQUEST(P1) opens a group (does not preserve underbooking); the
  // following MOVE-UP's apparent post-state has cost 0, closing it.
  core::ScriptedExecution<Air> sx;
  sx.run_complete(Request::request(1));
  sx.run_complete(Request::move_up());
  sx.run_complete(Request::request(2));
  sx.run_complete(Request::move_up());
  const auto g = analysis::find_grouping(sx.execution(), Air::kUnderbooking,
                                         kPreserves);
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(g->groups.size(), 2u);
  EXPECT_EQ(g->groups[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(g->groups[1], (std::pair<std::size_t, std::size_t>{2, 3}));
  EXPECT_EQ(g->normal_state_indices(), (std::vector<std::size_t>{2, 4}));
}

TEST(Grouping, UncompensatedTrailingRequestsHaveNoGrouping) {
  // Requests keep arriving with no MOVE-UPs: the trailing run never closes
  // — exactly when Corollary 10's hypothesis is unsatisfiable.
  core::ScriptedExecution<Air> sx;
  sx.run_complete(Request::request(1));
  sx.run_complete(Request::request(2));
  EXPECT_FALSE(analysis::find_grouping(sx.execution(), Air::kUnderbooking,
                                       kPreserves)
                   .has_value());
}

class GroupingOnCluster : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupingOnCluster, Theorem9NormalStateBoundHolds) {
  // Build an execution that *has* a grouping by appending enough MOVE-UPs
  // after the workload to drive the apparent underbooking cost to zero.
  auto w = default_workload();
  w.mover_rate = 6.0;  // frequent compensation
  auto sc = harness::wan(3);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(GetParam()));
  harness::drive_airline(cluster, w, GetParam() ^ 0x51);
  cluster.run_until(w.duration);
  cluster.settle();
  // Trailing atomic compensation at node 0 until its local cost is 0.
  while (Air::cost(cluster.node(0).state(), Air::kUnderbooking) > 0.0) {
    cluster.submit_now(0, Request::move_up());
  }
  cluster.settle();
  const auto exec = cluster.execution();
  const auto g =
      analysis::find_grouping(exec, Air::kUnderbooking, kPreserves);
  ASSERT_TRUE(g.has_value());
  const auto report = analysis::check_theorem9(exec, *g, Air::kUnderbooking,
                                               kPreserves, kF);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Corollary 11: total cost at normal states <= 900k (k measured over the
  // union hypothesis; every well-formed state has one constraint at 0).
  const std::size_t k = analysis::grouping_hypothesis_k(
      exec, *g, Air::kUnderbooking, kPreserves);
  const auto states = exec.actual_states();
  for (std::size_t ns : g->normal_state_indices()) {
    EXPECT_LE(core::total_cost<Air>(states[ns]),
              900.0 * static_cast<double>(std::max<std::size_t>(
                          k, analysis::max_missing_over_unsafe(
                                 exec, Air::kOverbooking, kUnsafe))) +
                  1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingOnCluster,
                         ::testing::Values(201u, 202u, 203u));

}  // namespace
