// Compensating-transaction results: Lemma 1 (iterating a compensator drives
// the apparent cost to zero), Corollary 2, Lemma 12 / Corollary 13 (atomic
// compensation suffixes restore the f(k) bound on the ACTUAL state).
#include <gtest/gtest.h>

#include "analysis/compensation.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"
#include "harness/scenario.hpp"
#include "harness/state_samples.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using al::Request;
using Air = al::SmallAirline;  // capacity 5

class Lemma1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Property, MoveDownIterationZeroesOverbooking) {
  // Lemma 1: "either cost(s,i) = 0, or there is some integer k > 0 such
  // that T(s,s) = s1, ..., T(s_{k-1}, s_{k-1}) = s_k and cost(s_k, i) = 0."
  const auto states =
      harness::random_airline_states<Air>(GetParam(), 300, 9, 40);
  for (const auto& s : states) {
    const auto run = analysis::iterate_compensator<Air>(
        s, Request::move_down(), Air::kOverbooking);
    EXPECT_TRUE(run.reached_zero);
    EXPECT_DOUBLE_EQ(Air::cost(run.final_state, Air::kOverbooking), 0.0);
    // Steps needed = excess passengers (each MOVE-DOWN removes one).
    const auto excess = static_cast<std::size_t>(
        core::monus<std::int64_t>(s.al(), Air::kCapacity));
    EXPECT_EQ(run.updates.size(), excess);
  }
}

TEST_P(Lemma1Property, MoveUpIterationZeroesUnderbooking) {
  const auto states =
      harness::random_airline_states<Air>(GetParam(), 300, 9, 40);
  for (const auto& s : states) {
    const auto run = analysis::iterate_compensator<Air>(
        s, Request::move_up(), Air::kUnderbooking);
    EXPECT_TRUE(run.reached_zero);
    EXPECT_DOUBLE_EQ(Air::cost(run.final_state, Air::kUnderbooking), 0.0);
  }
}

TEST_P(Lemma1Property, IntermingledMoversZeroBothConstraints) {
  // Section 4.1 example: "from any well-formed state, any atomic sequence
  // of intermingled MOVE-UP and MOVE-DOWN transactions which contain
  // sufficiently many of each will eventually reach an apparent cost of 0
  // for both integrity constraints."
  const auto states =
      harness::random_airline_states<Air>(GetParam(), 100, 9, 40);
  for (auto s : states) {
    // First zero overbooking, then underbooking; neither compensator can
    // re-raise the constraint the other fixed (MOVE-UP only fires when
    // AL < capacity; MOVE-DOWN only when AL > capacity).
    const auto r1 = analysis::iterate_compensator<Air>(
        s, Request::move_down(), Air::kOverbooking);
    const auto r2 = analysis::iterate_compensator<Air>(
        r1.final_state, Request::move_up(), Air::kUnderbooking);
    EXPECT_DOUBLE_EQ(Air::cost(r2.final_state, Air::kOverbooking), 0.0);
    EXPECT_DOUBLE_EQ(Air::cost(r2.final_state, Air::kUnderbooking), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Values(41u, 42u, 43u));

TEST(Compensation, AlreadyZeroCostNeedsNoSteps) {
  const auto run = analysis::iterate_compensator<Air>(
      Air::initial(), Request::move_down(), Air::kOverbooking);
  EXPECT_TRUE(run.reached_zero);
  EXPECT_TRUE(run.updates.empty());
}

TEST(Compensation, StepCapReportsFailureHonestly) {
  // A deliberately wrong compensator (REQUEST never reduces underbooking):
  // the iteration must stop at the cap and report not-zero.
  al::State s;
  s.waiting = {1, 2, 3};
  const auto run = analysis::iterate_compensator<Air>(
      s, Request::request(99), Air::kUnderbooking, /*max_steps=*/10);
  EXPECT_FALSE(run.reached_zero);
  EXPECT_EQ(run.updates.size(), 10u);
}

class Lemma12OnCluster : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma12OnCluster, AtomicSuffixRestoresFkBound) {
  using BigAir = al::BasicAirline<20, 900, 300>;
  auto sc = harness::partitioned_wan(4, 5.0, 20.0);
  shard::Cluster<BigAir> cluster(sc.cluster_config<BigAir>(GetParam()));
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 2.0;
  w.mover_rate = 3.0;
  w.max_persons = 60;
  harness::drive_airline(cluster, w, GetParam() ^ 0xbeef);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  // Several different "seen" subsequences, including aggressive ones.
  for (const std::size_t drop_mod : {3u, 5u, 11u}) {
    std::vector<std::size_t> seen;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (i % drop_mod != 0) seen.push_back(i);
    }
    const auto f = [](int c, std::size_t k) {
      return BigAir::Theory::f_bound(c, k);
    };
    const auto r1 = analysis::check_lemma12(
        exec, seen, Request::move_down(), BigAir::kOverbooking, f);
    EXPECT_TRUE(r1.ok()) << "drop_mod " << drop_mod << ": " << r1.to_string();
    const auto r2 = analysis::check_lemma12(
        exec, seen, Request::move_up(), BigAir::kUnderbooking, f);
    EXPECT_TRUE(r2.ok()) << "drop_mod " << drop_mod << ": " << r2.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma12OnCluster,
                         ::testing::Values(51u, 52u, 53u));

TEST(Corollary2, AtomicSuffixReachesApparentZero) {
  // Corollary 2 via run_atomic_compensation: the apparent state after the
  // suffix has cost 0 (with any subsequence as the shared prefix).
  core::ScriptedExecution<Air> sx;
  for (al::Person p = 1; p <= 8; ++p) {
    sx.run_complete(Request::request(p));
  }
  const auto& exec = sx.execution();
  const std::vector<std::size_t> seen = {0, 2, 4, 6};
  const auto res = analysis::run_atomic_compensation<Air>(
      exec, seen, Request::move_up(), Air::kUnderbooking);
  EXPECT_TRUE(res.apparent_zero);
  EXPECT_DOUBLE_EQ(Air::cost(res.apparent_final, Air::kUnderbooking), 0.0);
  EXPECT_EQ(res.k, 4u);
}

}  // namespace
