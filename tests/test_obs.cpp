// Observability subsystem (src/obs/): tracer ring + sinks, stats summaries,
// metrics registry JSON round-trip, Perfetto export, lifecycle metrics, and
// the checker's trace-dump diagnostics — exercised both standalone and
// end-to-end through a crash-chaos cluster run.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "analysis/report.hpp"
#include "analysis/trace_dump.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "net/broadcast_stats.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "shard/engine_stats.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<15, 900, 300>;
using Cluster = shard::Cluster<Air>;

// ---------------------------------------------------------------- tracer --

TEST(Tracer, RingIsBoundedAndOldestFirst) {
  obs::Tracer tracer(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record(obs::EventType::kNetSend, static_cast<double>(i), 1, 0, 0,
                  i);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.ring_size(), 4u);
  EXPECT_EQ(tracer.evicted(), 6u);
  const std::vector<obs::Event> ring = tracer.ring();
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring[i].a, 6 + i);  // events 6,7,8,9 survive, oldest first
  }
  EXPECT_EQ(tracer.type_counts()[static_cast<std::size_t>(
                obs::EventType::kNetSend)],
            10u);
}

TEST(Tracer, EventTypeNamesRoundTripForEveryType) {
  // The compile-time drift guard (static_assert in tracer.cpp) pins the
  // table SIZE to the enum; this pins the CONTENT: every type renders a
  // real name, every name is unique, and each parses back to its type —
  // so serialize() -> deserialize() can never silently drop a type.
  std::vector<std::string> seen;
  for (std::size_t i = 0; i < obs::kNumEventTypes; ++i) {
    const auto type = static_cast<obs::EventType>(i);
    const std::string_view name = obs::event_type_name(type);
    EXPECT_NE(name, "unknown") << "type " << i << " has no name";
    EXPECT_NE(name.find('.'), std::string_view::npos)
        << name << " is not <group>.<what>";
    obs::EventType back = obs::EventType::kSchedulerDispatch;
    ASSERT_TRUE(obs::event_type_from_name(name, back)) << name;
    EXPECT_EQ(back, type) << name;
    seen.emplace_back(name);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "duplicate event type name";
  // Past-the-end values degrade to the sentinel, never read out of bounds.
  EXPECT_EQ(obs::event_type_name(
                static_cast<obs::EventType>(obs::kNumEventTypes)),
            "unknown");
  obs::EventType out = obs::EventType::kSchedulerDispatch;
  EXPECT_FALSE(obs::event_type_from_name("unknown", out));
  EXPECT_FALSE(obs::event_type_from_name("no.such_event", out));
}

TEST(Tracer, SinksSeeEveryEventEvenPastRingCapacity) {
  obs::Tracer tracer(2);
  obs::VectorSink sink;
  tracer.add_sink(&sink);
  for (int i = 0; i < 5; ++i) {
    tracer.record(obs::EventType::kMergeTailAppend, 0.0, 0, i, 0);
  }
  EXPECT_EQ(sink.events().size(), 5u);
  EXPECT_EQ(tracer.ring_size(), 2u);
}

TEST(Tracer, SliceAroundCoalescesContextWindows) {
  obs::Tracer tracer(64);
  // Two events about update 7:3 separated by unrelated traffic.
  tracer.record(obs::EventType::kBroadcastOriginate, 0.0, 3, 7, 3);
  for (int i = 0; i < 10; ++i) {
    tracer.record(obs::EventType::kNetSend, 0.1, 0, 0, 0, i);
  }
  tracer.record(obs::EventType::kMergeTailAppend, 0.2, 1, 7, 3);
  const auto slice = tracer.slice_around(7, 3, 2);
  // originate + 2 after, 2 before + merge = 6 events, record order.
  ASSERT_EQ(slice.size(), 6u);
  EXPECT_EQ(slice.front().type, obs::EventType::kBroadcastOriginate);
  EXPECT_EQ(slice.back().type, obs::EventType::kMergeTailAppend);
  EXPECT_TRUE(tracer.slice_around(99, 99).empty());
}

TEST(Tracer, SerializeIsLinePerEvent) {
  std::vector<obs::Event> events;
  events.push_back(
      obs::Event{obs::EventType::kCrash, 1.5, 2, 0, 0, 0, 0});
  events.push_back(
      obs::Event{obs::EventType::kMergeMidInsert, 2.0, 1, 9, 0, 3, 0});
  const std::string s = obs::serialize(events);
  EXPECT_NE(s.find("node.crash"), std::string::npos);
  EXPECT_NE(s.find("merge.mid_insert"), std::string::npos);
  EXPECT_NE(s.find("ts=9:0"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

// -------------------------------------------------------- stats summaries --

TEST(StatsSummary, EngineStatsSummaryCoversFields) {
  shard::EngineStats s;
  s.decisions_run = 7;
  s.tail_appends = 5;
  s.mid_inserts = 2;
  s.undone_updates = 4;
  std::string out = s.summary();
  EXPECT_NE(out.find("decisions=7"), std::string::npos);
  EXPECT_NE(out.find("tail=5"), std::string::npos);
  EXPECT_NE(out.find("mid=2"), std::string::npos);
  EXPECT_NE(out.find("undone=4"), std::string::npos);
  // Crash block only appears once a crash happened.
  EXPECT_EQ(out.find("crashes="), std::string::npos);
  s.crashes = 1;
  s.recoveries = 1;
  out = s.summary();
  EXPECT_NE(out.find("crashes=1"), std::string::npos);
  EXPECT_NE(out.find("recoveries=1"), std::string::npos);
}

TEST(StatsSummary, BroadcastStatsSummaryCoversFields) {
  net::BroadcastStats s;
  s.originated = 3;
  s.delivered = 9;
  s.duplicates_dropped = 4;
  s.anti_entropy_repairs = 2;
  std::string out = s.summary();
  EXPECT_NE(out.find("originated=3"), std::string::npos);
  EXPECT_NE(out.find("delivered=9"), std::string::npos);
  EXPECT_NE(out.find("dup=4"), std::string::npos);
  EXPECT_NE(out.find("ae_repairs=2"), std::string::npos);
  EXPECT_EQ(out.find("amnesia_resets="), std::string::npos);
  s.amnesia_resets = 1;
  EXPECT_NE(s.summary().find("amnesia_resets=1"), std::string::npos);
}

TEST(StatsSummary, ExportToAddsSoPerNodeCallsAggregate) {
  obs::MetricsRegistry reg;
  net::BroadcastStats a;
  a.delivered = 3;
  net::BroadcastStats b;
  b.delivered = 4;
  a.export_to(reg);
  b.export_to(reg);
  EXPECT_EQ(reg.counters().at("broadcast.delivered"), 7u);
}

// ------------------------------------------------------- metrics registry --

TEST(Metrics, HistogramBucketsAndQuantiles) {
  obs::Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.add(0.5);
  h.add(1.5);
  h.add(3.0);
  h.add(100.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h.quantile_bound(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_bound(0.5), 2.0);
  // Overflow quantile reports the observed max.
  EXPECT_DOUBLE_EQ(h.quantile_bound(1.0), 100.0);
}

TEST(Metrics, RegistryJsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.set_counter("engine.mid_inserts", 42);
  reg.add_counter("engine.mid_inserts", 1);
  reg.set_gauge("cluster.sim_time", 12.25);
  reg.set_gauge("weird", 0.1);  // not exactly representable — needs 17 digits
  obs::Histogram& h = reg.histogram("lifecycle.replication_latency");
  h.add(0.004);
  h.add(2.5);

  const std::string json = reg.to_json();
  const obs::MetricsRegistry back = obs::MetricsRegistry::from_json(json);
  EXPECT_EQ(back, reg);
  // Byte-identical re-emission (std::map ordering + max_digits10 doubles).
  EXPECT_EQ(back.to_json(), json);
}

TEST(Metrics, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(obs::MetricsRegistry::from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW(obs::MetricsRegistry::from_json("{\"counters\":{"),
               std::invalid_argument);
  EXPECT_THROW(obs::MetricsRegistry::from_json(""), std::invalid_argument);
}

// ------------------------------------------------- end-to-end cluster run --

/// A chaotic run: partition + two crashes (one amnesia) over a busy airline
/// workload, with tracing on. Shared by the integration tests below.
std::unique_ptr<Cluster> make_traced_chaos_cluster(
    obs::VectorSink* sink = nullptr) {
  harness::Scenario sc = harness::wan(4);
  sc.faults.split_halves(4, 2, 6.0, 10.0)
      .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
      .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia);
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 1 << 16;
  // Heap-allocated: nodes and observer lambdas point back into the cluster,
  // so the object must never move.
  auto cluster = std::make_unique<Cluster>(sc.cluster_config<Air>(0xD37E));
  if (sink != nullptr) cluster->tracer()->add_sink(sink);
  harness::AirlineWorkload w;
  w.duration = 14.0;
  w.request_rate = 5.0;
  w.mover_rate = 3.0;
  w.cancel_fraction = 0.2;
  harness::drive_airline(*cluster, w, 0x5EED);
  cluster->run_until(w.duration);
  cluster->settle();
  return cluster;
}

TEST(ObsEndToEnd, ChaosRunRecordsWholeLifecycle) {
  const auto cluster = make_traced_chaos_cluster();
  ASSERT_NE(cluster->tracer(), nullptr);
  const auto& counts = cluster->tracer()->type_counts();
  const auto count = [&](obs::EventType t) {
    return counts[static_cast<std::size_t>(t)];
  };
  EXPECT_EQ(count(obs::EventType::kCrash), 2u);
  EXPECT_EQ(count(obs::EventType::kRestart), 2u);
  EXPECT_EQ(count(obs::EventType::kPartitionOpen), 1u);
  EXPECT_EQ(count(obs::EventType::kPartitionHeal), 1u);
  EXPECT_GT(count(obs::EventType::kSchedulerDispatch), 0u);
  EXPECT_GT(count(obs::EventType::kNetSend), 0u);
  EXPECT_GT(count(obs::EventType::kNetDeliver), 0u);
  EXPECT_GT(count(obs::EventType::kNetDropPartition), 0u);
  EXPECT_GT(count(obs::EventType::kBroadcastOriginate), 0u);
  EXPECT_GT(count(obs::EventType::kMergeTailAppend), 0u);
  EXPECT_GT(count(obs::EventType::kMergeMidInsert), 0u);
  EXPECT_GT(count(obs::EventType::kAntiEntropyRepair), 0u);
  // Trace totals match the stats the engine kept independently.
  EXPECT_EQ(count(obs::EventType::kBroadcastOriginate),
            cluster->total_originated());
  EXPECT_EQ(count(obs::EventType::kMergeMidInsert),
            cluster->aggregate_engine_stats().mid_inserts);
}

TEST(ObsEndToEnd, LifecycleMetricsConvergeWithCluster) {
  const auto cluster = make_traced_chaos_cluster();
  const obs::LifecycleTracker* lc = cluster->lifecycle();
  ASSERT_NE(lc, nullptr);
  EXPECT_EQ(lc->originated(), cluster->total_originated());
  // Settled cluster: every update reached every replica, divergence is 0.
  EXPECT_EQ(lc->fully_replicated(), lc->originated());
  EXPECT_EQ(lc->divergence(), 0u);
  EXPECT_EQ(lc->replication_latency().count(), lc->originated());
  EXPECT_GT(lc->replication_latency().max(), 0.0);
  // Mid-inserts happened, so some update displaced others.
  EXPECT_GT(lc->total_undo_churn(), 0u);
}

TEST(ObsEndToEnd, MetricsSnapshotFoldsAllLayersAndRoundTrips) {
  const auto cluster = make_traced_chaos_cluster();
  const obs::MetricsRegistry reg = cluster->metrics();
  EXPECT_EQ(reg.counters().at("engine.decisions_run"),
            cluster->aggregate_engine_stats().decisions_run);
  EXPECT_EQ(reg.counters().at("engine.crashes"), 2u);
  EXPECT_GT(reg.counters().at("broadcast.delivered"), 0u);
  EXPECT_GT(reg.counters().at("net.sent"), 0u);
  EXPECT_GT(reg.counters().at("net.dropped_partition"), 0u);
  EXPECT_EQ(reg.counters().at("cluster.updates_originated"),
            cluster->total_originated());
  EXPECT_GT(reg.counters().at("trace.events_recorded"), 0u);
  EXPECT_GT(reg.gauges().at("cluster.sim_time"), 0.0);
  EXPECT_EQ(reg.histograms().at("lifecycle.replication_latency").count(),
            cluster->total_originated());
  const obs::MetricsRegistry back =
      obs::MetricsRegistry::from_json(reg.to_json());
  EXPECT_EQ(back, reg);
}

TEST(ObsEndToEnd, PerfettoExportContainsCrashWindowAndMergeEvents) {
  obs::VectorSink sink;
  const auto cluster = make_traced_chaos_cluster(&sink);
  std::ostringstream os;
  obs::write_perfetto(sink.events(), os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Crash windows are duration slices; the rest are instants.
  EXPECT_NE(json.find("\"name\":\"down\",\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"down\",\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("node.restart"), std::string::npos);
  EXPECT_NE(json.find("merge.mid_insert"), std::string::npos);
  EXPECT_NE(json.find("anti_entropy.repair"), std::string::npos);
  // The streaming sink produces the same document as the batch writer.
  std::ostringstream os2;
  {
    obs::PerfettoSink streaming(os2);
    for (const obs::Event& e : sink.events()) streaming.on_event(e);
  }
  EXPECT_EQ(os2.str(), json);
}

TEST(ObsEndToEnd, PerfettoExportDrawsMessageFlows) {
  obs::VectorSink sink;
  const auto cluster = make_traced_chaos_cluster(&sink);
  std::ostringstream os;
  obs::write_perfetto(sink.events(), os);
  const std::string json = os.str();
  // Message fates with a live id render as minimal "X" slices carrying
  // companion flow events, so send->deliver pairs draw as arrows.
  EXPECT_NE(json.find("\"name\":\"net.send\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"net.deliver\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"msg\",\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"msg\",\"ph\":\"f\",\"bp\":\"e\""),
            std::string::npos);
  // Flows close at a delivery or delivery-time crash drop; a handful of
  // messages can still be in flight when the run settles (settle() stops
  // at convergence, not scheduler exhaustion), so finishes can trail
  // starts slightly but never exceed them.
  const auto count_sub = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (auto p = json.find(needle); p != std::string::npos;
         p = json.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  const std::size_t starts = count_sub("\"ph\":\"s\"");
  const std::size_t finishes = count_sub("\"ph\":\"f\"");
  EXPECT_GT(finishes, 0u);
  EXPECT_LE(finishes, starts);
  EXPECT_GE(finishes + 64, starts);  // nearly all flows completed
}

TEST(ObsEndToEnd, TraceStreamIsDeterministic) {
  const auto run = [] {
    obs::VectorSink sink;
    const auto cluster = make_traced_chaos_cluster(&sink);
    return obs::serialize(sink.events());
  };
  const std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

// ------------------------------------------------------------ trace dump --

TEST(TraceDump, CleanReportDumpsNothing) {
  const auto cluster = make_traced_chaos_cluster();
  const auto exec = cluster->execution();
  const analysis::CheckReport report =
      analysis::check_prefix_subsequence_condition(exec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.violating_txs().empty());
  EXPECT_TRUE(
      analysis::trace_dump(report, exec, *cluster->tracer()).empty());
}

TEST(TraceDump, ViolationDumpsTraceWindowAroundOffendingUpdate) {
  const auto cluster = make_traced_chaos_cluster();
  const auto exec = cluster->execution();
  ASSERT_GT(exec.size(), 0u);
  analysis::CheckReport report("synthetic");
  report.add_violation("tx 0: synthetic violation", 0);
  report.add_violation("tx 0: second violation, same tx", 0);
  const std::string dump =
      analysis::trace_dump(report, exec, *cluster->tracer());
  const core::Timestamp& ts = exec.tx(0).ts;
  std::ostringstream want;
  want << "-- tx 0 ts=" << ts.logical << ":" << ts.node << " --";
  EXPECT_NE(dump.find("synthetic"), std::string::npos);
  // Deduplicated: the tx-0 header appears exactly once.
  const auto first = dump.find(want.str());
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(dump.find(want.str(), first + 1), std::string::npos);
}

TEST(TraceDump, ViolationPrintsCausalChainAndProvenance) {
  const auto cluster = make_traced_chaos_cluster();
  const auto exec = cluster->execution();
  ASSERT_GT(exec.size(), 0u);
  analysis::CheckReport report("synthetic");
  report.add_violation("tx 0: synthetic violation", 0);
  const std::string dump = analysis::trace_dump(
      report, exec, *cluster->tracer(), 6, cluster->lifecycle());
  // The offending update's replication path, not just a ring window.
  EXPECT_NE(dump.find("causal chain"), std::string::npos);
  EXPECT_NE(dump.find("broadcast.originate"), std::string::npos);
  EXPECT_NE(dump.find("ring window:"), std::string::npos);
  // And the per-replica provenance timeline from the lifecycle tracker.
  const core::Timestamp& ts = exec.tx(0).ts;
  std::ostringstream want;
  want << "provenance:\nupdate " << ts.logical << ':' << ts.node
       << " originated";
  EXPECT_NE(dump.find(want.str()), std::string::npos);
}

TEST(TraceDump, CheckerAttributesViolationsToTxIndices) {
  // Hand-build a broken execution: tx 1's prefix references tx 1 (itself),
  // violating condition (1); the checker must attribute it to index 1.
  // Built through the raw-vector constructor — append() would reject it.
  const auto cluster = make_traced_chaos_cluster();
  auto exec = cluster->execution();
  ASSERT_GT(exec.size(), 2u);
  std::vector<core::TxInstance<Air>> raw;
  for (std::size_t i = 0; i < 3; ++i) {
    auto tx = exec.tx(i);
    if (i == 1) tx.prefix = {1};
    raw.push_back(std::move(tx));
  }
  core::Execution<Air> broken(std::move(raw));
  const analysis::CheckReport report =
      analysis::check_prefix_subsequence_condition(broken);
  EXPECT_FALSE(report.ok());
  const std::vector<std::size_t> txs = report.violating_txs();
  EXPECT_NE(std::find(txs.begin(), txs.end(), 1u), txs.end());
  const std::string dump = analysis::trace_dump(report, broken,
                                                *cluster->tracer());
  EXPECT_NE(dump.find("-- tx 1 "), std::string::npos);
}

}  // namespace
