// Unit tests for the discrete-event simulator: scheduler ordering and
// cancellation, RNG determinism, delay models, partition schedules, and the
// network layer's delivery/drop behaviour.
#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "sim/delay.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  sim::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  sim::Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  sim::Scheduler sched;
  double fired_at = -1.0;
  sched.schedule_at(5.0, [&] {
    sched.schedule_after(2.5, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, CancelPreventsExecution) {
  sim::Scheduler sched;
  bool ran = false;
  const auto id = sched.schedule_at(1.0, [&] { ran = true; });
  sched.cancel(id);
  sched.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sched.events_executed(), 0u);
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  sim::Scheduler sched;
  std::vector<double> fired;
  sched.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sched.schedule_at(2.0, [&] { fired.push_back(2.0); });
  sched.schedule_at(3.0, [&] { fired.push_back(3.0); });
  sched.run_until(2.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  sched.run_until(10.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sched.now(), 10.0);  // idles forward to the target
}

TEST(Scheduler, RunUntilSkipsCancelledFrontEvent) {
  sim::Scheduler sched;
  bool late_ran = false;
  const auto id = sched.schedule_at(1.0, [] {});
  sched.schedule_at(5.0, [&] { late_ran = true; });
  sched.cancel(id);
  sched.run_until(2.0);
  EXPECT_FALSE(late_ran);  // the 5.0 event must not run early
  sched.run_until(5.0);
  EXPECT_TRUE(late_ran);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  sim::Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_after(1.0, recurse);
  };
  sched.schedule_at(0.0, recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sched.now(), 4.0);
}

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkSeedDecorrelates) {
  sim::Rng a(7);
  const auto s1 = a.fork_seed();
  const auto s2 = a.fork_seed();
  EXPECT_NE(s1, s2);
}

TEST(Rng, UniformIntInRange) {
  sim::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, BernoulliExtremes) {
  sim::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Delay, ConstantAlwaysSame) {
  sim::Rng rng(1);
  const sim::Delay d = sim::Delay::constant(0.25);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 0.25);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 0.25);
}

TEST(Delay, UniformWithinBounds) {
  sim::Rng rng(2);
  const sim::Delay d = sim::Delay::uniform(0.1, 0.2);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 0.1);
    EXPECT_LE(v, 0.2);
  }
  EXPECT_DOUBLE_EQ(d.upper_bound(), 0.2);
}

TEST(Delay, ExponentialRespectsBaseAndCap) {
  sim::Rng rng(3);
  const sim::Delay d = sim::Delay::exponential(0.05, 0.1, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 0.05);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(d.upper_bound(), 1.0);
}

TEST(Delay, UncappedExponentialUnbounded) {
  const sim::Delay d = sim::Delay::exponential(0.0, 0.1);
  EXPECT_TRUE(std::isinf(d.upper_bound()));
}

TEST(Delay, BimodalMixes) {
  sim::Rng rng(4);
  const sim::Delay d = sim::Delay::bimodal(sim::Delay::constant(0.01),
                                           sim::Delay::constant(1.0), 0.5);
  int slow = 0;
  for (int i = 0; i < 1000; ++i) {
    if (d.sample(rng) > 0.5) ++slow;
  }
  EXPECT_GT(slow, 350);
  EXPECT_LT(slow, 650);
  EXPECT_DOUBLE_EQ(d.upper_bound(), 1.0);
}

TEST(Delay, DescribeMentionsModel) {
  EXPECT_NE(sim::Delay::lognormal(0.05, 1.0).describe().find("lognormal"),
            std::string::npos);
}

TEST(Partition, NoEventsMeansConnected) {
  sim::FaultPlan ps;
  EXPECT_TRUE(ps.connected(0, 1, 0.0));
  EXPECT_FALSE(ps.partitioned_at(5.0));
  EXPECT_DOUBLE_EQ(ps.last_heal_time(), 0.0);
}

TEST(Partition, SplitHalvesCutsAcrossOnly) {
  sim::FaultPlan ps;
  ps.split_halves(4, 2, 10.0, 20.0);
  // Before and after the window: all connected.
  EXPECT_TRUE(ps.connected(0, 3, 9.99));
  EXPECT_TRUE(ps.connected(0, 3, 20.0));
  // During: same half connected, across halves not.
  EXPECT_TRUE(ps.connected(0, 1, 15.0));
  EXPECT_TRUE(ps.connected(2, 3, 15.0));
  EXPECT_FALSE(ps.connected(0, 2, 15.0));
  EXPECT_FALSE(ps.connected(1, 3, 15.0));
  EXPECT_TRUE(ps.partitioned_at(15.0));
  EXPECT_DOUBLE_EQ(ps.last_heal_time(), 20.0);
}

TEST(Partition, IsolateSingleNode) {
  sim::FaultPlan ps;
  ps.isolate(2, 4, 0.0, 5.0);
  EXPECT_FALSE(ps.connected(2, 0, 1.0));
  EXPECT_FALSE(ps.connected(1, 2, 1.0));
  EXPECT_TRUE(ps.connected(0, 1, 1.0));
  EXPECT_TRUE(ps.connected(0, 3, 1.0));
  EXPECT_TRUE(ps.connected(2, 2, 1.0));  // self always connected
}

TEST(Partition, OverlappingEventsComposeConjunctively) {
  sim::FaultPlan ps;
  ps.split_halves(4, 2, 0.0, 10.0);  // {0,1} | {2,3}
  ps.isolate(1, 4, 5.0, 15.0);       // {1} | {0,2,3}
  EXPECT_TRUE(ps.connected(0, 1, 2.0));
  EXPECT_FALSE(ps.connected(0, 1, 7.0));   // isolation kicks in
  EXPECT_FALSE(ps.connected(0, 2, 7.0));   // halves still apply
  EXPECT_TRUE(ps.connected(0, 2, 12.0));   // halves healed
  EXPECT_FALSE(ps.connected(1, 3, 12.0));  // isolation persists
}

TEST(Partition, NodeAbsentFromAllGroupsIsIsolated) {
  sim::PartitionEvent ev;
  ev.start = 0.0;
  ev.end = 10.0;
  ev.groups = {{0, 1}};  // node 2 not listed anywhere
  sim::FaultPlan ps;
  ps.partition(ev);
  EXPECT_FALSE(ps.connected(0, 2, 5.0));
  EXPECT_FALSE(ps.connected(1, 2, 5.0));
  EXPECT_TRUE(ps.connected(0, 1, 5.0));
}

TEST(Partition, DescribeSummarizes) {
  sim::FaultPlan ps;
  EXPECT_EQ(ps.describe(), "no faults");
  ps.split_halves(4, 2, 1.0, 2.0);
  EXPECT_NE(ps.describe().find("1 partition event"), std::string::npos);
}

TEST(Network, DeliversAfterSampledDelay) {
  sim::Scheduler sched;
  sim::Network::Config cfg;
  cfg.delay = sim::Delay::constant(0.5);
  sim::Network net(sched, cfg, 1);
  double delivered_at = -1.0;
  net.register_node(0, [](const sim::Message&) {});
  net.register_node(1, [&](const sim::Message& m) {
    delivered_at = sched.now();
    EXPECT_EQ(std::any_cast<std::string>(m.payload), "hello");
  });
  net.send(0, 1, std::string("hello"));
  sched.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.5);
  EXPECT_EQ(net.stats().sent, 1u);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(Network, PartitionAtSendTimeDropsMessage) {
  sim::Scheduler sched;
  sim::Network::Config cfg;
  cfg.partitions = sim::FaultPlan{}.split_halves(2, 1, 0.0, 10.0).partitions();
  sim::Network net(sched, cfg, 1);
  int received = 0;
  net.register_node(0, [](const sim::Message&) {});
  net.register_node(1, [&](const sim::Message&) { ++received; });
  net.send(0, 1, std::string("lost"));
  sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
  // After the heal, sends go through.
  sched.run_until(10.0);
  net.send(0, 1, std::string("found"));
  sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, RandomDropRateRoughlyHonored) {
  sim::Scheduler sched;
  sim::Network::Config cfg;
  cfg.drop_probability = 0.3;
  sim::Network net(sched, cfg, 21);
  net.register_node(0, [](const sim::Message&) {});
  int received = 0;
  net.register_node(1, [&](const sim::Message&) { ++received; });
  for (int i = 0; i < 1000; ++i) net.send(0, 1, std::string("x"));
  sched.run();
  EXPECT_GT(received, 600);
  EXPECT_LT(received, 800);
  EXPECT_EQ(net.stats().dropped_random + net.stats().delivered, 1000u);
}

TEST(Network, SendToAllSkipsSelf) {
  sim::Scheduler sched;
  sim::Network net(sched, {}, 1);
  std::vector<int> got(3, 0);
  for (sim::NodeId i = 0; i < 3; ++i) {
    net.register_node(i, [&got, i](const sim::Message&) { ++got[i]; });
  }
  EXPECT_EQ(net.send_to_all(1, std::string("b")), 2u);
  sched.run();
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 1);
}

}  // namespace
