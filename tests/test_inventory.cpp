// Inventory application: update/decision semantics, the airline-shaped
// two-constraint cost model, section 4.1 classification, and cluster-level
// overcommit bounds (section 6's "inventory control" conjecture).
#include <gtest/gtest.h>

#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/tx_conditions.hpp"
#include "apps/inventory/inventory.hpp"
#include "harness/scenario.hpp"
#include "harness/state_samples.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace inv = apps::inventory;
using inv::Inventory;
using inv::Request;
using inv::Update;

inv::State make_state(inv::Units stock, inv::Units committed,
                      inv::Units demand) {
  inv::State s;
  s.stock = stock;
  s.committed = committed;
  s.demand = demand;
  return s;
}

TEST(Inventory, OrderRestockCancelSemantics) {
  inv::State s;
  Inventory::apply({Update::Kind::kOrder, 5}, s);
  EXPECT_EQ(s.demand, 5);
  Inventory::apply({Update::Kind::kRestock, 10}, s);
  EXPECT_EQ(s.stock, 10);
  Inventory::apply({Update::Kind::kCancel, 7}, s);
  EXPECT_EQ(s.demand, 0);  // clamped
}

TEST(Inventory, CommitConsumesDemand) {
  inv::State s = make_state(10, 0, 4);
  Inventory::apply({Update::Kind::kCommit, 6}, s);
  EXPECT_EQ(s.committed, 6);
  EXPECT_EQ(s.demand, 0);
}

TEST(Inventory, ReleaseReturnsDemand) {
  inv::State s = make_state(5, 8, 0);
  Inventory::apply({Update::Kind::kRelease, 3}, s);
  EXPECT_EQ(s.committed, 5);
  EXPECT_EQ(s.demand, 3);
  // Release clamps at committed.
  Inventory::apply({Update::Kind::kRelease, 100}, s);
  EXPECT_EQ(s.committed, 0);
  EXPECT_EQ(s.demand, 8);
}

TEST(Inventory, FulfillDecisionPromisesObservedFreeStock) {
  const auto d =
      Inventory::decide(Request::fulfill(100), make_state(10, 4, 9));
  EXPECT_EQ(d.update, (Update{Update::Kind::kCommit, 6}));
  ASSERT_EQ(d.external_actions.size(), 1u);
  EXPECT_EQ(d.external_actions[0].kind, "promise-shipment");
  // Batch cap binds.
  const auto capped =
      Inventory::decide(Request::fulfill(2), make_state(10, 4, 9));
  EXPECT_EQ(capped.update, (Update{Update::Kind::kCommit, 2}));
  // No free stock or no demand: no-op.
  EXPECT_EQ(Inventory::decide(Request::fulfill(5), make_state(4, 4, 9)).update,
            Update{});
  EXPECT_EQ(Inventory::decide(Request::fulfill(5), make_state(9, 4, 0)).update,
            Update{});
}

TEST(Inventory, ReleaseDecisionTargetsObservedExcess) {
  const auto d =
      Inventory::decide(Request::release(), make_state(5, 9, 0));
  EXPECT_EQ(d.update, (Update{Update::Kind::kRelease, 4}));
  EXPECT_EQ(d.external_actions[0].kind, "apologize");
  EXPECT_EQ(Inventory::decide(Request::release(), make_state(9, 5, 0)).update,
            Update{});
}

TEST(Inventory, CostModel) {
  // Overcommit: 50 per unit promised beyond stock.
  EXPECT_DOUBLE_EQ(Inventory::cost(make_state(5, 9, 0), 0), 4 * 50.0);
  EXPECT_DOUBLE_EQ(Inventory::cost(make_state(9, 5, 0), 0), 0.0);
  // Idle stock with demand: 5 per shippable-but-unpromised unit.
  EXPECT_DOUBLE_EQ(Inventory::cost(make_state(9, 5, 3), 1), 3 * 5.0);
  EXPECT_DOUBLE_EQ(Inventory::cost(make_state(9, 5, 10), 1), 4 * 5.0);
  EXPECT_DOUBLE_EQ(Inventory::cost(make_state(9, 9, 10), 1), 0.0);
}

TEST(Inventory, WellFormednessNonNegative) {
  EXPECT_TRUE(Inventory::well_formed(make_state(0, 0, 0)));
  EXPECT_FALSE(Inventory::well_formed(make_state(-1, 0, 0)));
}

TEST(Inventory, ClassificationMatchesTheory) {
  const auto states = harness::random_inventory_states(19, 300, 25);
  // FULFILL unsafe for overcommit; everything else safe.
  EXPECT_FALSE(analysis::check_safe_for<Inventory>(states, states,
                                                   Request::fulfill(10), 0)
                   .ok());
  for (const Request& r : {Request::order(5), Request::cancel(5),
                           Request::restock(5), Request::release()}) {
    EXPECT_TRUE(
        analysis::check_safe_for<Inventory>(states, states, r, 0).ok())
        << r.to_string();
  }
  // All preserve the overcommit cost (FULFILL believes it stays within
  // stock); RELEASE compensates.
  for (const Request& r : {Request::order(5), Request::fulfill(10),
                           Request::restock(5), Request::release()}) {
    EXPECT_TRUE(
        analysis::check_preserves_cost<Inventory>(states, states, r, 0).ok())
        << r.to_string();
  }
  EXPECT_TRUE(analysis::check_compensates<Inventory>(states,
                                                     Request::release(), 0)
                  .ok());
  // FULFILL compensates for idle stock.
  EXPECT_TRUE(analysis::check_compensates<Inventory>(
                  states, Request::fulfill(1'000'000), 1)
                  .ok());
}

class InventoryCluster : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InventoryCluster, ConvergesAndOvercommitBounded) {
  auto sc = harness::partitioned_wan(4, 4.0, 14.0);
  shard::Cluster<Inventory> cluster(
      sc.cluster_config<Inventory>(GetParam()));
  harness::InventoryWorkload w;
  w.duration = 20.0;
  harness::drive_inventory(cluster, w, GetParam() ^ 0x3c);
  cluster.run_until(w.duration);
  cluster.settle();
  EXPECT_TRUE(cluster.converged());
  const auto exec = cluster.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  // Inventory analogue of the banking bound: overcommit cost <= penalty *
  // sum of commit sizes over FULFILLs with missing info.
  double bound_units = 0.0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    if (tx.update.kind == Update::Kind::kCommit &&
        exec.missing_count(i) > 0) {
      bound_units += static_cast<double>(tx.update.n);
    }
  }
  for (const auto& s : exec.actual_states()) {
    EXPECT_LE(Inventory::cost(s, 0),
              Inventory::kOvercommitPenalty * bound_units + 1e-9);
  }
}

TEST_P(InventoryCluster, Theorems5And7CarryOver) {
  // The conclusion's conjecture checked through the GENERIC theorem
  // checkers: with f parameterized by the workload's fulfill cap, the
  // section 5.2 bounds hold for inventory too.
  auto sc = harness::partitioned_wan(4, 4.0, 14.0);
  shard::Cluster<Inventory> cluster(
      sc.cluster_config<Inventory>(GetParam() ^ 0x1234));
  harness::InventoryWorkload w;
  w.duration = 20.0;
  harness::drive_inventory(cluster, w, GetParam() ^ 0x9);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  const auto preserves = [](const Request& r, int c) {
    return Inventory::Theory::preserves_cost(r, c);
  };
  const auto unsafe = [](const Request& r, int c) {
    return !Inventory::Theory::safe_for(r, c);
  };
  const auto f = [&w](int c, std::size_t k) {
    return Inventory::Theory::f_bound_units(c, w.fulfill_cap, k);
  };
  for (int c = 0; c < Inventory::kNumConstraints; ++c) {
    const auto r5 = analysis::check_theorem5(exec, c, preserves, f);
    EXPECT_TRUE(r5.ok()) << r5.to_string();
  }
  const auto r7 = analysis::check_theorem7(exec, Inventory::kOvercommit,
                                           unsafe, f);
  EXPECT_TRUE(r7.ok()) << r7.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InventoryCluster,
                         ::testing::Values(501u, 502u, 503u));

TEST(Inventory, StringsAreReadable) {
  EXPECT_EQ(Request::fulfill(3).to_string(), "FULFILL(cap=3)");
  EXPECT_EQ((Update{Update::Kind::kCommit, 4}).to_string(), "commit(4)");
  EXPECT_EQ(make_state(1, 2, 3).to_string(),
            "{stock=1,committed=2,demand=3}");
}

}  // namespace
