// Log compaction — "Discarding Obsolete Information in a Replicated
// Database System" ([SL], cited by the paper). An entry is discardable
// once the cluster-wide stability point (min announced promise, with all
// announced-issued updates merged) passes it: no update with a smaller
// timestamp can ever arrive, so the prefix folds into a base state.
// Knowledge is preserved (prefix recording still names folded
// transactions); only update storage is reclaimed.
#include <gtest/gtest.h>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"
#include "shard/update_log.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using SmallLog = shard::UpdateLog<al::SmallAirline>;

al::Update req(al::Person p) { return {al::Update::Kind::kRequest, p}; }

TEST(UpdateLogCompaction, FoldPreservesStateAndCountsStorage) {
  SmallLog log(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    log.insert({core::Timestamp{i, 0}, req(static_cast<al::Person>(i))});
  }
  const auto state_before = log.state();
  const std::size_t folded = log.compact_before(core::Timestamp{6, 0});
  EXPECT_EQ(folded, 5u);
  EXPECT_EQ(log.size(), 5u);           // retained entries
  EXPECT_EQ(log.folded_count(), 5u);
  EXPECT_EQ(log.total_merged(), 10u);
  EXPECT_EQ(log.state(), state_before);  // folding is invisible to state
  EXPECT_EQ(log.state(), log.recompute_naive());
  EXPECT_EQ(log.stats().entries_folded, 5u);
}

TEST(UpdateLogCompaction, RepeatedAndNoopCompaction) {
  SmallLog log(0);  // also exercise the no-checkpoint path
  for (std::uint64_t i = 1; i <= 6; ++i) {
    log.insert({core::Timestamp{i, 0}, req(static_cast<al::Person>(i))});
  }
  EXPECT_EQ(log.compact_before(core::Timestamp{4, 0}), 3u);
  EXPECT_EQ(log.compact_before(core::Timestamp{4, 0}), 0u);  // idempotent
  EXPECT_EQ(log.compact_before(core::Timestamp{2, 0}), 0u);  // never backward
  EXPECT_EQ(log.compact_before(core::Timestamp{7, 0}), 3u);  // fold the rest
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.state(), log.recompute_naive());
  // Inserts above the cut still work.
  log.insert({core::Timestamp{8, 0}, req(9)});
  EXPECT_EQ(log.state(), log.recompute_naive());
}

TEST(UpdateLogCompaction, MidInsertAboveCutStillCorrect) {
  SmallLog log(2);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    log.insert({core::Timestamp{2 * i, 0}, req(static_cast<al::Person>(i))});
  }
  log.compact_before(core::Timestamp{7, 0});  // folds ts 2,4,6
  // A late arrival between retained entries (above the cut).
  log.insert({core::Timestamp{9, 1}, al::Update{al::Update::Kind::kCancel, 4}});
  EXPECT_EQ(log.state(), log.recompute_naive());
  // state_before still works relative to the base.
  const auto s = log.state_before(core::Timestamp{10, 0});
  al::SmallAirline::State expect;
  for (al::Person p : {1u, 2u, 3u}) expect.waiting.push_back(p);  // folded
  al::SmallAirline::apply(req(4), expect);
  al::SmallAirline::apply({al::Update::Kind::kCancel, 4}, expect);
  EXPECT_EQ(s, expect);
}

TEST(ClusterCompaction, StableQuiescentClusterFoldsEverything) {
  auto sc = harness::lan(3);
  sc.anti_entropy_interval = 0.2;
  auto cfg = sc.cluster_config<Air>(1);
  cfg.compaction = true;
  shard::Cluster<Air> cluster(cfg);
  for (int i = 0; i < 30; ++i) {
    cluster.submit_at(0.1 * i, static_cast<core::NodeId>(i % 3),
                      al::Request::request(static_cast<al::Person>(i + 1)));
  }
  cluster.run_until(3.0);
  cluster.settle();
  // After quiescence plus a few announcement rounds, the stability point
  // passes every entry: logs shrink to (near) nothing while knowledge is
  // intact.
  cluster.run_until(cluster.scheduler().now() + 3.0);
  for (core::NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.node(n).updates_known(), 30u);
    EXPECT_LT(cluster.node(n).entries_retained(), 30u) << "node " << n;
    EXPECT_GT(cluster.node(n).engine_stats().entries_folded, 0u);
  }
  EXPECT_TRUE(cluster.converged());
}

TEST(ClusterCompaction, ExecutionTraceSurvivesCompaction) {
  // Prefix recording must still name folded transactions — the formal
  // trace and all its checks are unaffected by storage reclamation.
  auto sc = harness::wan(3);
  sc.anti_entropy_interval = 0.2;
  auto cfg = sc.cluster_config<Air>(2);
  cfg.compaction = true;
  shard::Cluster<Air> cluster(cfg);
  harness::AirlineWorkload w;
  w.duration = 15.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  harness::drive_airline(cluster, w, 3);
  cluster.run_until(w.duration);
  cluster.settle();
  cluster.run_until(cluster.scheduler().now() + 2.0);
  // Submit one more transaction whose prefix includes folded entries.
  cluster.submit_now(0, al::Request::move_up());
  cluster.settle();
  const auto exec = cluster.execution();
  const auto report = analysis::check_prefix_subsequence_condition(exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(analysis::is_transitive(exec));
  // The last transaction saw everything (complete prefix), part via base.
  EXPECT_EQ(exec.missing_count(exec.size() - 1), 0u);
  // And compaction actually happened somewhere.
  std::uint64_t folded = 0;
  for (core::NodeId n = 0; n < 3; ++n) {
    folded += cluster.node(n).engine_stats().entries_folded;
  }
  EXPECT_GT(folded, 0u);
}

TEST(ClusterCompaction, PartitionBlocksCompactionUntilHeal) {
  // During a partition the far side's promises cannot advance here, so the
  // stability point freezes — nothing below safety is discarded.
  auto sc = harness::partitioned_wan(4, 1.0, 10.0);
  sc.anti_entropy_interval = 0.2;
  auto cfg = sc.cluster_config<Air>(4);
  cfg.compaction = true;
  shard::Cluster<Air> cluster(cfg);
  for (int i = 0; i < 20; ++i) {
    cluster.submit_at(1.5 + 0.2 * i, static_cast<core::NodeId>(i % 4),
                      al::Request::request(static_cast<al::Person>(i + 1)));
  }
  cluster.run_until(9.0);
  // Mid-partition the stability point freezes at what pre-cut promises
  // covered — the far side's counters were still ~0 then, so at most the
  // very first timestamp(s) are foldable; everything submitted during the
  // cut stays retained.
  for (core::NodeId n = 0; n < 4; ++n) {
    EXPECT_LE(cluster.node(n).engine_stats().entries_folded, 1u)
        << "node " << n;
  }
  cluster.settle();
  cluster.run_until(cluster.scheduler().now() + 3.0);
  // After the heal, stability advances and folding resumes.
  std::uint64_t folded = 0;
  for (core::NodeId n = 0; n < 4; ++n) {
    folded += cluster.node(n).engine_stats().entries_folded;
  }
  EXPECT_GT(folded, 0u);
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.node(0).state(), cluster.execution().final_state());
}

TEST(ClusterCompaction, SerializableReservationPinsStability) {
  // A pending reservation holds the node's own promise at its timestamp,
  // so no node can fold past it — compaction and mixed mode compose.
  auto sc = harness::partitioned_wan(4, 2.0, 8.0);
  sc.anti_entropy_interval = 0.2;
  auto cfg = sc.cluster_config<Air>(5);
  cfg.compaction = true;
  shard::Cluster<Air> cluster(cfg);
  cluster.submit_at(0.5, 1, al::Request::request(1));
  // Bump node 0 then reserve during the cut (it must wait for the heal).
  cluster.submit_at(2.5, 0, al::Request::request(2));
  cluster.submit_serializable_at(3.0, 0, al::Request::move_up());
  cluster.submit_at(4.0, 2, al::Request::request(3));
  cluster.run_until(7.0);
  EXPECT_EQ(cluster.pending_serializable(), 1u);
  cluster.settle();
  cluster.run_until(cluster.scheduler().now() + 3.0);
  EXPECT_EQ(cluster.pending_serializable(), 0u);
  const auto exec = cluster.execution();
  EXPECT_TRUE(analysis::check_prefix_subsequence_condition(exec).ok());
  // The serializable tx still has a complete prefix.
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const auto& rec : cluster.node(0).originated()) {
      if (rec.serializable && rec.ts == exec.tx(i).ts) {
        EXPECT_EQ(exec.missing_count(i), 0u);
      }
    }
  }
}

}  // namespace
