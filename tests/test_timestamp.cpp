// Timestamp total order and Lamport clock invariants (paper section 1.2:
// globally unique timestamps via local counters + node-id tiebreak).
#include <gtest/gtest.h>

#include "core/timestamp.hpp"

namespace {

using core::LamportClock;
using core::Timestamp;

TEST(Timestamp, TotalOrderByLogicalThenNode) {
  EXPECT_LT((Timestamp{1, 5}), (Timestamp{2, 0}));
  EXPECT_LT((Timestamp{3, 1}), (Timestamp{3, 2}));
  EXPECT_EQ((Timestamp{3, 2}), (Timestamp{3, 2}));
  EXPECT_GT((Timestamp{4, 0}), (Timestamp{3, 9}));
}

TEST(Timestamp, ToStringFormat) {
  EXPECT_EQ((Timestamp{7, 3}).to_string(), "7@n3");
}

TEST(LamportClock, TickIsStrictlyIncreasing) {
  LamportClock clk(2);
  Timestamp prev = clk.tick();
  for (int i = 0; i < 100; ++i) {
    const Timestamp next = clk.tick();
    EXPECT_LT(prev, next);
    prev = next;
  }
}

TEST(LamportClock, ObserveAdvancesPastRemote) {
  LamportClock clk(0);
  clk.observe(Timestamp{100, 3});
  const Timestamp t = clk.tick();
  EXPECT_GT(t, (Timestamp{100, 3}));
  EXPECT_EQ(t.node, 0u);
}

TEST(LamportClock, ObserveOlderTimestampIsNoop) {
  LamportClock clk(0);
  clk.tick();
  clk.tick();  // counter = 2
  clk.observe(Timestamp{1, 9});
  EXPECT_EQ(clk.counter(), 2u);
}

TEST(LamportClock, TwoClocksNeverCollide) {
  // Same logical values can occur, but the node tiebreak keeps timestamps
  // globally unique — the paper's requirement for a total merge order.
  LamportClock a(0), b(1);
  const Timestamp ta = a.tick();
  const Timestamp tb = b.tick();
  EXPECT_NE(ta, tb);
  EXPECT_EQ(ta.logical, tb.logical);
}

TEST(LamportClock, LocalTimestampExceedsEverythingObserved) {
  // The invariant that makes a transaction's prefix a subsequence of its
  // *predecessors* (section 3.1 condition (1)).
  LamportClock clk(1);
  std::vector<Timestamp> observed = {{5, 0}, {9, 2}, {3, 3}, {9, 0}};
  for (const auto& ts : observed) clk.observe(ts);
  const Timestamp mine = clk.tick();
  for (const auto& ts : observed) EXPECT_GT(mine, ts);
}

TEST(Timestamp, HashDistinguishes) {
  std::hash<Timestamp> h;
  EXPECT_NE(h(Timestamp{1, 2}), h(Timestamp{2, 1}));
}

}  // namespace
