// E13 — partial replication (the paper's first section 6 extension).
//
// Sweep the replication factor on a sharded-banking cluster (one group per
// account; transfers span two groups). Measured: storage per node, wire
// messages, the new unroutable-transfer failure mode, convergence, and the
// per-group overdraft bound — the correctness conditions survive partial
// replication exactly as the paper conjectured, with availability now also
// limited by data placement.
#include <cstdio>

#include "apps/banking/sharded.hpp"
#include "harness/table.hpp"
#include "shard/partial.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

namespace {

namespace bk = apps::banking;
using bk::ShardedBanking;
using bk::ShardedRequest;

struct RunResult {
  std::size_t routed = 0;
  std::size_t unroutable = 0;
  std::size_t max_storage = 0;
  std::uint64_t wires = 0;
  bool converged = false;
  bool bounds_hold = true;
  double worst_overdraft = 0.0;
};

RunResult run(std::size_t replication_factor, std::uint64_t seed) {
  constexpr std::size_t kNodes = 6;
  constexpr std::size_t kGroups = 12;
  shard::PartialCluster<ShardedBanking>::Config cfg;
  cfg.num_nodes = kNodes;
  cfg.num_groups = kGroups;
  cfg.replication_factor = replication_factor;
  cfg.network.delay = sim::Delay::exponential(0.02, 0.1, 2.0);
  cfg.network.partitions =
      sim::FaultPlan{}.split_halves(kNodes, kNodes / 2, 4.0, 12.0).partitions();
  cfg.anti_entropy_interval = 0.3;
  cfg.seed = seed;
  shard::PartialCluster<ShardedBanking> cluster(cfg);

  sim::Rng rng(seed ^ 0xe13);
  for (bk::AccountId a = 0; a < kGroups; ++a) {
    cluster.submit_at(0.1, ShardedRequest::deposit(a, 200));
  }
  for (int i = 0; i < 250; ++i) {
    const double t = rng.uniform(0.5, 16.0);
    const auto a = static_cast<bk::AccountId>(rng.uniform_int(0, kGroups - 1));
    const double roll = rng.uniform01();
    if (roll < 0.4) {
      cluster.submit_at(t, ShardedRequest::deposit(a, rng.uniform_int(1, 80)));
    } else if (roll < 0.8) {
      cluster.submit_at(t, ShardedRequest::withdraw(a, rng.uniform_int(1, 80)));
    } else {
      auto b = static_cast<bk::AccountId>(rng.uniform_int(0, kGroups - 1));
      if (b == a) b = (b + 1) % kGroups;
      cluster.submit_at(t, ShardedRequest::transfer(a, b, rng.uniform_int(1, 60)));
    }
  }
  cluster.run_until(16.0);
  cluster.settle();

  RunResult r;
  r.routed = cluster.stats().routed;
  r.unroutable = cluster.stats().unroutable;
  r.wires = cluster.stats().wires_sent;
  r.converged = cluster.converged();
  for (core::NodeId n = 0; n < kNodes; ++n) {
    r.max_storage = std::max(r.max_storage, cluster.storage_at(n));
  }
  for (shard::GroupId g = 0; g < kGroups; ++g) {
    const auto exec = cluster.group_execution(g);
    double bound = 0.0;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (exec.tx(i).update.kind == bk::ShardedUpdate::Kind::kDebit &&
          exec.missing_count(i) > 0) {
        bound += static_cast<double>(exec.tx(i).update.amount);
      }
    }
    for (const auto& s : exec.actual_states()) {
      const double c = ShardedBanking::cost(s, 0);
      r.worst_overdraft = std::max(r.worst_overdraft, c);
      if (c > bound + 1e-9) r.bounds_hold = false;
    }
  }
  return r;
}

}  // namespace

int main() {
  harness::Table table(
      "E13  Partial replication: sharded banking, 6 nodes / 12 account "
      "groups, 8s partition",
      {"replication r", "routed", "unroutable transfers", "max storage/node",
       "wire msgs", "converged", "worst group overdraft $",
       "per-group bound holds"});
  for (const std::size_t r : {1u, 2u, 3u, 6u}) {
    const RunResult res = run(r, 99);
    table.add_row({harness::Table::num(r), harness::Table::num(res.routed),
                   harness::Table::num(res.unroutable),
                   harness::Table::num(res.max_storage),
                   harness::Table::num(static_cast<std::size_t>(res.wires)),
                   res.converged ? "yes" : "NO",
                   harness::Table::num(res.worst_overdraft, 0),
                   res.bounds_hold ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nReading: the section 6 conjecture realized. r=1 stores the least\n"
      "and sends no replication traffic, but cross-account transfers are\n"
      "mostly unroutable and there is no fault tolerance; r=n is full\n"
      "replication. In between, every group's projection still satisfies\n"
      "the SHARD conditions and the per-group damage bound — correctness\n"
      "conditions survive partial replication, availability becomes a\n"
      "placement question.\n");
  return 0;
}
