// E3 — Theorem 9 / Corollaries 10, 11 and Lemma 12 / Corollary 13: the
// underbooking bound via groupings, and compensation suffixes.
//
// Underbooking has no unconditional invariant bound (requests can pile up
// faster than movers run), so the paper bounds the cost at *normal states*
// — the states after each group of a grouping — by 300k, and shows that an
// atomic suffix of compensating MOVE-UPs restores the f(k) bound from any
// point (Lemma 12). Both are measured here.
#include <cstdio>

#include "analysis/compensation.hpp"
#include "analysis/cost_bounds.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

const auto kPreserves = [](const al::Request& r, int c) {
  return Air::Theory::preserves_cost(r, c);
};
const auto kF = [](int c, std::size_t k) {
  return Air::Theory::f_bound(c, k);
};

core::Execution<Air> run_with_compensation(std::uint64_t seed,
                                           double mover_rate) {
  harness::Scenario sc = harness::partitioned_wan(4, 5.0, 18.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 2.5;
  w.mover_rate = mover_rate;
  w.max_persons = 100;
  harness::drive_airline(cluster, w, seed ^ 0xe3);
  cluster.run_until(w.duration);
  cluster.settle();
  // Close the final group: atomic MOVE-UPs at node 0 until apparent
  // underbooking cost is zero (the paper's construction: "a sequence of
  // MOVE-UP transactions immediately after each REQUEST and CANCEL").
  while (Air::cost(cluster.node(0).state(), Air::kUnderbooking) > 0.0) {
    cluster.submit_now(0, al::Request::move_up());
  }
  cluster.settle();
  return cluster.execution();
}

}  // namespace

int main() {
  harness::Table t9(
      "E3a  Theorem 9 / Corollary 10: normal-state underbooking bound 300k",
      {"mover rate /s", "txs", "groups", "k (hypothesis)",
       "worst normal cost $", "bound 300k $", "violations"});
  for (const double mover_rate : {2.0, 4.0, 8.0}) {
    const auto exec = run_with_compensation(900 + static_cast<int>(mover_rate),
                                            mover_rate);
    const auto grouping =
        analysis::find_grouping(exec, Air::kUnderbooking, kPreserves);
    if (!grouping.has_value()) {
      t9.add_row({harness::Table::num(mover_rate, 0),
                  harness::Table::num(exec.size()), "no grouping", "-", "-",
                  "-", "-"});
      continue;
    }
    const std::size_t k = analysis::grouping_hypothesis_k(
        exec, *grouping, Air::kUnderbooking, kPreserves);
    const auto states = exec.actual_states();
    double worst_normal = 0.0;
    for (std::size_t ns : grouping->normal_state_indices()) {
      worst_normal =
          std::max(worst_normal, Air::cost(states[ns], Air::kUnderbooking));
    }
    const auto report = analysis::check_theorem9(
        exec, *grouping, Air::kUnderbooking, kPreserves, kF);
    t9.add_row({harness::Table::num(mover_rate, 0),
                harness::Table::num(exec.size()),
                harness::Table::num(grouping->groups.size()),
                harness::Table::num(k),
                harness::Table::num(worst_normal, 0),
                harness::Table::num(kF(Air::kUnderbooking, k), 0),
                harness::Table::num(report.violations().size())});
  }
  t9.print();

  harness::Table t12(
      "E3b  Lemma 12 / Corollary 13: atomic compensation restores f(k)",
      {"dropped from 'seen'", "k", "cost before $", "f(k) $",
       "suffix len", "cost after $", "holds"});
  const auto exec = run_with_compensation(42, 3.0);
  for (const std::size_t drop_mod : {20u, 10u, 5u, 3u}) {
    std::vector<std::size_t> seen;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (i % drop_mod != 0) seen.push_back(i);
    }
    const auto res = analysis::run_atomic_compensation<Air>(
        exec, seen, al::Request::move_up(), Air::kUnderbooking);
    const double before = Air::cost(exec.final_state(), Air::kUnderbooking);
    const double after = Air::cost(res.actual_final, Air::kUnderbooking);
    const double fk = kF(Air::kUnderbooking, res.k);
    t12.add_row({"every " + std::to_string(drop_mod) + "th",
                 harness::Table::num(res.k), harness::Table::num(before, 0),
                 harness::Table::num(fk, 0),
                 harness::Table::num(res.suffix_length),
                 harness::Table::num(after, 0),
                 (before <= fk || after <= fk + 1e-9) ? "yes" : "NO (bug!)"});
  }
  t12.print();
  std::printf(
      "\nReading: more frequent movers -> more groups -> the 300k bound\n"
      "holds at every normal state; and from any point, an atomic MOVE-UP\n"
      "suffix running on any subsequence missing k updates lands within\n"
      "f(k)=300k of perfect (Lemma 12).\n");
  return 0;
}
