// E26 — violation forensics: incident bundles, metrics series, flame diff.
//
// The forensics pipeline end to end, gated: the canonical crash-chaos
// scenario (E24's shape) plus a Byzantine payload adversary produces real
// streaming-checker violations; every one is assembled into an
// epoch-attributed incident bundle (obs/incident.hpp via the
// analysis-layer wiring). Three claims are pinned:
//
//   * determinism — the full bundle byte image (JSON + folded stacks +
//     rendering) is a pure function of (seed, config): two independent
//     runs of the same seed must agree byte for byte, which is what lets
//     CI upload a bundle as a stable artifact;
//   * attribution — every in-stream incident's ADMITTED epoch contains
//     its originate event, and detection never precedes admission;
//   * triage closure — FlameDiff of a run's profile against itself is
//     empty (the flame_diff tool's exit-0 direction), and the per-epoch
//     metrics series covers exactly the fault plan's boundary census.
//
// Output: one JSON document — per-seed forensic census + exact boolean
// gates + the merged checker.*/epoch.* registry. Stdout is a pure function
// of the seeds (wall clock goes to stderr). With an argument, writes each
// seed's bundle JSON and folded stacks into that directory (CI artifacts).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/incident.hpp"
#include "analysis/streaming.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/flame_diff.hpp"
#include "obs/incident.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

constexpr double kHorizon = 20.0;

void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

/// E24's canonical crash-chaos shape with a Byzantine corruption overlay:
/// the adversary substitutes payloads at the receive path, so the
/// streaming checker has real violations to seed bundles from.
harness::Scenario canonical() {
  harness::Scenario sc = harness::wan(4);
  sc.faults.split_halves(4, 2, 6.0, 10.0)
      .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
      .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia)
      .byzantine_payload(/*corrupt=*/0.25, 0.0, 0.0, 0.0, 1e18);
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 1 << 15;
  sc.metrics_series = true;
  return sc;
}

struct Run {
  std::string bundle_bytes;  ///< to_json + folded + render, concatenated
  std::string bundle_json;   ///< to_json alone (the artifact)
  std::string folded;        ///< folded stacks alone (the artifact)
  std::size_t events = 0;
  std::size_t epochs = 0;
  std::size_t incidents = 0;
  std::size_t in_stream = 0;
  std::size_t contributors = 0;
  std::size_t series_samples = 0;
  bool attribution_ok = true;
  bool self_diff_clean = false;
  obs::MetricsRegistry metrics;
};

Run run_once(std::uint64_t seed) {
  harness::Scenario sc = canonical();
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  analysis::StreamingChecker<Air> ck(4);
  cluster.set_stream_observer(&ck);
  harness::AirlineWorkload w;
  w.duration = kHorizon;
  w.request_rate = 6.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.15;
  w.max_persons = 250;
  harness::drive_airline(cluster, w, seed ^ 0x5EED);
  // No settle(): corrupted replicas may never converge; a fixed drain
  // window keeps the horizon — and the trace — deterministic.
  cluster.run_until(kHorizon);
  cluster.run_until(kHorizon + 5.0);
  ck.finish(cluster.scheduler().now());

  Run r;
  r.metrics = cluster.metrics();
  r.events = capture.events().size();
  r.series_samples = cluster.metrics_series().size();

  const auto t0 = std::chrono::steady_clock::now();
  const obs::IncidentReport bundle =
      analysis::build_incident_report(ck, capture.events(), &r.metrics);
  const auto t1 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "seed %llx: bundle build %.3f ms, %zu incident(s)\n",
               static_cast<unsigned long long>(seed),
               std::chrono::duration<double, std::milli>(t1 - t0).count(),
               bundle.incidents().size());

  r.epochs = bundle.epochs().size();
  r.incidents = bundle.incidents().size();
  for (const obs::Incident& inc : bundle.incidents()) {
    if (!inc.in_stream) continue;
    ++r.in_stream;
    r.contributors += inc.contributors.size();
    // The admission anchor (the chain's originate event, else its earliest
    // retained event) must fall inside the span of the blamed epoch, and
    // detection must not precede admission.
    const obs::Event* anchor = &inc.chain.front();
    for (const obs::Event& e : inc.chain) {
      if (e.type == obs::EventType::kBroadcastOriginate) {
        anchor = &e;
        break;
      }
    }
    const obs::Epoch& adm = bundle.epochs().epoch(inc.admitted_epoch);
    if (anchor->time < adm.start) r.attribution_ok = false;
    if (inc.admitted_epoch + 1 < bundle.epochs().size() &&
        anchor->time > adm.end) {
      r.attribution_ok = false;
    }
    if (inc.detected_epoch < inc.admitted_epoch) r.attribution_ok = false;
  }

  // Triage closure: a profile diffed against itself is empty — the
  // flame_diff tool's same-seed CI direction, pinned at the library layer.
  const obs::EpochIndex epochs = obs::EpochIndex::build(capture.events());
  const obs::CausalGraph graph = obs::CausalGraph::build(capture.events());
  const obs::FlameProfile flame =
      obs::FlameProfile::build(capture.events(), graph, epochs);
  r.self_diff_clean = !obs::FlameDiff::build(flame, flame).differs();

  r.bundle_json = bundle.to_json();
  r.folded = bundle.folded();
  r.bundle_bytes = r.bundle_json + "\n===\n" + r.folded + "\n===\n" +
                   bundle.render();
  return r;
}

struct SeedResult {
  std::uint64_t seed = 0;
  Run run;
  bool deterministic = false;  ///< both runs' bundle bytes identical
};

}  // namespace

int main(int argc, char** argv) {
  const std::string artifact_dir = argc > 1 ? argv[1] : "";
  const std::uint64_t kSeeds[] = {0xE26A, 0xE26B, 0xE26C};
  std::vector<SeedResult> rows;
  obs::MetricsRegistry reg;

  for (const std::uint64_t seed : kSeeds) {
    SeedResult r;
    r.seed = seed;
    r.run = run_once(seed);
    const Run again = run_once(seed);
    r.deterministic = r.run.bundle_bytes == again.bundle_bytes;
    reg.merge_from(r.run.metrics);

    if (!artifact_dir.empty()) {
      char name[64];
      std::snprintf(name, sizeof name, "/e26_seed%llx.incident.json",
                    static_cast<unsigned long long>(seed));
      std::ofstream(artifact_dir + name, std::ios::binary) << r.run.bundle_json;
      std::snprintf(name, sizeof name, "/e26_seed%llx.folded",
                    static_cast<unsigned long long>(seed));
      std::ofstream(artifact_dir + name, std::ios::binary) << r.run.folded;
    }
    rows.push_back(std::move(r));
  }

  bool all_ok = true;
  std::printf("{\n  \"experiment\": \"e26_incident_forensics\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": 4, \"seeds\": %zu,\n",
              kHorizon, std::size(kSeeds));
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SeedResult& r = rows[i];
    all_ok = all_ok && r.deterministic && r.run.attribution_ok &&
             r.run.self_diff_clean;
    std::printf(
        "    {\"seed\": %llu, \"events\": %zu, \"epochs\": %zu, "
        "\"incidents\": %zu, \"in_stream\": %zu, \"contributors\": %zu, "
        "\"series_samples\": %zu, \"bundle_json_bytes\": %zu, "
        "\"folded_bytes\": %zu, \"bundle_deterministic\": %s, "
        "\"attribution_ok\": %s, \"self_diff_clean\": %s}%s\n",
        static_cast<unsigned long long>(r.seed), r.run.events, r.run.epochs,
        r.run.incidents, r.run.in_stream, r.run.contributors,
        r.run.series_samples, r.run.bundle_json.size(), r.run.folded.size(),
        r.deterministic ? "true" : "false",
        r.run.attribution_ok ? "true" : "false",
        r.run.self_diff_clean ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_ok\": %s,\n", all_ok ? "true" : "false");
  std::printf("  \"metrics\":\n");
  print_indented(reg.to_json(), "    ");
  std::printf("\n}\n");
  return all_ok ? 0 : 1;
}
