// E21 — replication-path latency breakdown and causal-graph overhead.
//
// The causal layer (obs/causal.hpp) turns the flat event stream into
// happens-before structure; this bench measures both what it REVEALS and
// what it COSTS. Revealed: the per-stage provenance breakdown of every
// update's replication path — originate -> first remote deliver -> last
// replica deliver -> merge, plus the out-of-order (mid-insert) latency
// tail and the flood fan-out degree — as the causal.* histograms from
// Cluster::metrics(). Cost: wall time to build the CausalGraph over the
// complete stream, its edge census by kind, and the validator's verdict
// (which must be clean on every seed: acyclic, no orphans, complete
// chains).
//
// Output: one JSON document, per-seed graph stats plus the merged metrics
// registry (counters/gauges summed, histograms merged bucket-wise across
// seeds) with derived e21.* per-stage quantile gauges — the
// machine-readable per-stage breakdown.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

constexpr double kHorizon = 20.0;

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::size_t edges = 0;
  std::size_t edges_by_kind[4] = {0, 0, 0, 0};
  double build_ms = 0.0;
  bool clean = true;
};

}  // namespace

int main() {
  const std::uint64_t kSeeds[] = {0xE21A, 0xE21B, 0xE21C};
  std::vector<SeedResult> per_seed;
  obs::MetricsRegistry reg;

  for (const std::uint64_t seed : kSeeds) {
    // The canonical crash-chaos shape (partition + two crashes, one
    // amnesia) the chaos tiers and E19 use.
    harness::Scenario sc = harness::wan(4);
    sc.faults.split_halves(4, 2, 6.0, 10.0)
        .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
        .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia);
    sc.trace.enabled = true;

    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    obs::VectorSink capture;
    cluster.tracer()->add_sink(&capture);
    harness::AirlineWorkload w;
    w.duration = kHorizon;
    w.request_rate = 6.0;
    w.mover_rate = 4.0;
    w.cancel_fraction = 0.15;
    w.max_persons = 250;
    harness::drive_airline(cluster, w, seed ^ 0x5EED);
    cluster.run_until(kHorizon);
    cluster.settle();

    SeedResult r;
    r.seed = seed;
    r.events = capture.events().size();
    const auto t0 = std::chrono::steady_clock::now();
    const obs::CausalGraph graph = obs::CausalGraph::build(capture.events());
    const auto t1 = std::chrono::steady_clock::now();
    r.build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.edges = graph.edges().size();
    for (const obs::CausalEdge& e : graph.edges()) {
      ++r.edges_by_kind[static_cast<std::size_t>(e.kind)];
    }
    r.clean = graph.validate().ok();
    per_seed.push_back(r);

    reg.merge_from(cluster.metrics());
  }

  // Derived per-stage quantiles from the merged causal histograms — the
  // replication path, stage by stage.
  for (const char* stage :
       {"causal.first_deliver_latency", "causal.deliver_latency",
        "causal.last_deliver_latency", "causal.mid_insert_latency",
        "causal.fanout_degree"}) {
    const obs::Histogram& h = reg.histograms().at(stage);
    reg.set_gauge(std::string(stage) + ".p50", h.quantile_bound(0.5));
    reg.set_gauge(std::string(stage) + ".p99", h.quantile_bound(0.99));
    reg.set_gauge(std::string(stage) + ".mean", h.mean());
  }

  bool all_clean = true;
  std::printf("{\n  \"experiment\": \"e21_causal_latency\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": 4, \"seeds\": %zu,\n",
              kHorizon, std::size(kSeeds));
  std::printf("  \"graph\": [\n");
  for (std::size_t i = 0; i < per_seed.size(); ++i) {
    const SeedResult& r = per_seed[i];
    all_clean = all_clean && r.clean;
    std::printf(
        "    {\"seed\": %llu, \"events\": %zu, \"edges\": %zu, "
        "\"program\": %zu, \"message\": %zu, \"replicate\": %zu, "
        "\"merge\": %zu, \"build_ms\": %.3f, \"clean\": %s}%s\n",
        static_cast<unsigned long long>(r.seed), r.events, r.edges,
        r.edges_by_kind[0], r.edges_by_kind[1], r.edges_by_kind[2],
        r.edges_by_kind[3], r.build_ms, r.clean ? "true" : "false",
        i + 1 < per_seed.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_clean\": %s,\n", all_clean ? "true" : "false");
  std::printf("  \"metrics\":\n");
  print_indented(reg.to_json(), "    ");
  std::printf("\n}\n");
  return all_clean ? 0 : 1;
}
