// E12 — the availability/correctness trade (section 3.2: "System and
// application designers must weigh the correctness gained by restricting
// the prefix subsequences against the reductions in availability").
//
// One axis: how much of the workload is pinned to a single node
// (none -> movers -> everything). For each point: worst overbooking
// (correctness), staleness distribution (k quantiles), and two
// availability proxies — transactions that would have required crossing an
// active partition to reach their pinned node, and the share of all work
// concentrated on node 0.
//
// Each sweep point is one obs::MetricsRegistry: the per-seed
// Cluster::metrics() snapshots merged via merge_from (counters/gauges
// summed across seeds) plus derived e12.* gauges, emitted after the
// human-readable table as one JSON document in the same schema as every
// other metrics consumer.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/probabilistic.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

const char* routing_name(harness::Routing r) {
  switch (r) {
    case harness::Routing::kAnyNode:
      return "none (any node)";
    case harness::Routing::kCentralizeMovers:
      return "movers pinned";
    case harness::Routing::kCentralizeAll:
      return "all pinned";
  }
  return "?";
}

/// JSON-safe key for a routing mode.
const char* routing_key(harness::Routing r) {
  switch (r) {
    case harness::Routing::kAnyNode:
      return "any_node";
    case harness::Routing::kCentralizeMovers:
      return "movers_pinned";
    case harness::Routing::kCentralizeAll:
      return "all_pinned";
  }
  return "?";
}

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

struct Point {
  const char* key = "";
  std::string metrics_json;
};

}  // namespace

int main() {
  harness::Table table(
      "E12  Availability vs correctness across centralization scope "
      "(15s partition, 3 seeds)",
      {"centralization", "txs", "worst overbook $", "k p50", "k p99",
       "node-0 share", "cross-partition txs"});
  std::vector<Point> points;
  for (const auto routing :
       {harness::Routing::kAnyNode, harness::Routing::kCentralizeMovers,
        harness::Routing::kCentralizeAll}) {
    std::size_t txs = 0, node0 = 0, crossers = 0;
    double worst = 0.0;
    harness::KDistribution kdist;
    obs::MetricsRegistry reg;
    for (std::uint64_t seed : {31u, 32u, 33u}) {
      harness::Scenario sc = harness::partitioned_wan(4, 5.0, 20.0);
      shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
      harness::AirlineWorkload w;
      w.duration = 28.0;
      w.request_rate = 3.0;
      w.mover_rate = 4.0;
      w.cancel_fraction = 0.0;
      w.max_persons = 150;
      w.routing = routing;
      const auto schedule = harness::drive_airline(cluster, w, seed ^ 0xe12);
      cluster.run_until(w.duration);
      cluster.settle();
      const auto exec = cluster.execution();
      txs += exec.size();
      kdist.observe_all(analysis::missing_counts(exec));
      for (const auto& s : exec.actual_states()) {
        worst = std::max(worst, Air::cost(s, Air::kOverbooking));
      }
      for (const auto& sub : schedule) {
        if (sub.node == 0) ++node0;
        // A client is equally likely to sit near any node; a pinned
        // submission during an active cut would cross it with prob. 1/2
        // in our 2|2 split — count pinned-while-partitioned as the proxy.
        if (sub.node == 0 && sc.faults.partitioned_at(sub.time) &&
            routing != harness::Routing::kAnyNode) {
          ++crossers;
        }
      }
      reg.merge_from(cluster.metrics());
    }
    const double node0_share =
        static_cast<double>(node0) / static_cast<double>(txs);
    table.add_row({routing_name(routing), harness::Table::num(txs),
                   harness::Table::num(worst, 0),
                   harness::Table::num(kdist.quantile(0.5)),
                   harness::Table::num(kdist.quantile(0.99)),
                   harness::Table::pct(node0_share),
                   harness::Table::num(crossers)});
    // Derived sweep-point metrics alongside the merged substrate counters.
    reg.add_counter("e12.txs", txs);
    reg.add_counter("e12.cross_partition_txs", crossers);
    reg.set_gauge("e12.worst_overbooking", worst);
    reg.set_gauge("e12.k_p50", kdist.quantile(0.5));
    reg.set_gauge("e12.k_p99", kdist.quantile(0.99));
    reg.set_gauge("e12.node0_share", node0_share);
    Point pt;
    pt.key = routing_key(routing);
    pt.metrics_json = reg.to_json();
    points.push_back(pt);
  }
  table.print();
  std::printf(
      "\nReading: the spectrum the paper describes. Fully decentralized =\n"
      "maximum availability, bounded-but-nonzero overbooking. Pinning just\n"
      "the movers already zeroes overbooking (Theorem 23) at a moderate\n"
      "availability cost. Pinning everything recovers serializability\n"
      "(k=0 throughout) and maximizes dependence on one node.\n");
  std::printf("\n{\n  \"experiment\": \"e12_availability\",\n");
  std::printf("  \"nodes\": 4, \"seeds\": 3,\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("    {\"centralization\": \"%s\",\n     \"metrics\":\n",
                points[i].key);
    print_indented(points[i].metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
