// E23 — streaming checker overhead and the O(window) retention bound.
//
// The streaming checkers (analysis/streaming.hpp) promise three things the
// post-hoc oracles cannot: violations while the run is still going, the
// same violation sets byte for byte, and bounded state. This bench runs
// one fixed partition-chaos workload (rewind-free, so bounded memory is
// sound) in four modes:
//
//   off                no observer attached — the fast path every other
//                      experiment runs with (baseline row);
//   streaming          full checker (condition (3)/(4), theorem 5 over all
//                      constraints, theorem 7), unbounded retention;
//   streaming-bounded  same checks with Options::bounded_memory: ledgers
//                      prune to the slowest replica's contiguous delivery
//                      point, shadows compact to each node's next-expected
//                      update;
//   streaming-byz      the byzantine_payload adversary armed on top
//                      (corrupt/duplicate/reorder at the receive path) —
//                      the run no longer converges, real violations and
//                      divergence events flow, and streaming must still
//                      match the oracles exactly.
//
// Per row: merged Cluster::metrics() across seeds (including the checker.*
// counters and latency histograms), e23.agrees — streaming reports
// identical to the post-hoc oracles on every run, the differential gate —
// and e23.window_bounded — the bounded row drained to a window-sized
// footprint. Everything inside "metrics" is a deterministic function of
// (mode, seed) and is gated by compare_bench.py e23 against
// bench/baselines/BENCH_e23.json. The JSON on stdout is a pure function of
// (mode, seeds) — wall-clock overhead is machine noise, so it goes to
// stderr and never enters the gated output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/streaming.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using Checker = analysis::StreamingChecker<Air>;

constexpr double kHorizon = 30.0;
constexpr std::size_t kNodes = 4;
constexpr std::size_t kTheorem7K = 2;

bool air_preserves(const al::Request& r, int c) {
  return Air::Theory::preserves_cost(r, c);
}
bool air_unsafe(const al::Request& r, int c) {
  return !Air::Theory::safe_for(r, c);
}
double air_f(int c, std::size_t k) { return Air::Theory::f_bound(c, k); }

Checker::Options full_options(bool bounded) {
  Checker::Options o;
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    o.theorem5.push_back({c, air_preserves, air_f});
  }
  o.theorem7.push_back({Air::kOverbooking, air_unsafe, air_f, kTheorem7K});
  o.bounded_memory = bounded;
  return o;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Streaming reports vs the post-hoc oracles on one finished run: same
/// violation multisets, same violating transaction indices.
bool agrees_with_oracles(const core::Execution<Air>& exec, const Checker& ck) {
  if (ck.txs_finalized() != exec.size()) return false;
  if (ck.order_violations() != 0) return false;
  const analysis::CheckReport oracle =
      analysis::check_prefix_subsequence_condition(exec);
  if (sorted(oracle.violations()) != sorted(ck.prefix_report().violations()))
    return false;
  if (oracle.violating_txs() != ck.prefix_report().violating_txs())
    return false;
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    const analysis::CheckReport t5 =
        analysis::check_theorem5(exec, c, air_preserves, air_f);
    if (sorted(t5.violations()) !=
        sorted(ck.theorem5_reports()[static_cast<std::size_t>(c)].violations()))
      return false;
  }
  const analysis::CheckReport t7 = analysis::check_theorem7(
      exec, Air::kOverbooking, air_unsafe, air_f, kTheorem7K);
  return sorted(t7.violations()) == sorted(ck.theorem7_reports()[0].violations());
}

struct Mode {
  const char* name;
  bool checker;
  bool bounded;
  bool byzantine;
};

constexpr Mode kModes[] = {
    {"off", false, false, false},
    {"streaming", true, false, false},
    {"streaming-bounded", true, true, false},
    {"streaming-byz", true, false, true},
};

struct Row {
  const char* mode;
  bool agrees = true;
  bool window_bounded = true;
  double wall_ms = 0.0;
  std::string metrics_json;
};

void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

}  // namespace

int main() {
  const std::uint64_t kSeeds[] = {231, 232, 233};
  std::vector<Row> rows;

  for (const Mode& mode : kModes) {
    Row row;
    row.mode = mode.name;
    obs::MetricsRegistry reg;
    std::size_t retained_final = 0;
    const auto t0 = std::chrono::steady_clock::now();

    for (const std::uint64_t seed : kSeeds) {
      harness::Scenario sc = harness::wan(kNodes);
      // Rewind-free plan (partitions only), so bounded retention is sound
      // and all four modes replay the same failure shape.
      sc.faults = sim::FaultPlan(seed ^ 0x23);
      sc.faults.random_partitions(kNodes, kHorizon, 2);
      if (mode.byzantine) {
        sc.faults.byzantine_payload(/*corrupt=*/0.05, /*duplicate=*/0.05,
                                    /*reorder=*/0.05, 0.0, kHorizon);
      }
      shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed ^ 0xe23));
      Checker ck(kNodes, full_options(mode.bounded));
      if (mode.checker) cluster.set_stream_observer(&ck);

      harness::AirlineWorkload w;
      w.duration = kHorizon;
      w.request_rate = 4.0;
      w.mover_rate = 4.0;
      w.cancel_fraction = 0.1;
      w.max_persons = 250;
      harness::drive_airline(cluster, w, seed ^ 0x5eed);

      cluster.run_until(kHorizon);
      if (mode.byzantine) {
        // Corrupted replicas never converge; drain in-flight wires instead.
        cluster.run_until(kHorizon + 20.0);
      } else {
        cluster.settle();
      }
      if (mode.checker) ck.finish(cluster.scheduler().now());

      const auto exec = cluster.execution();
      if (mode.checker) {
        row.agrees = row.agrees && agrees_with_oracles(exec, ck);
        retained_final += ck.retained_entries();
        if (mode.bounded) {
          // The O(window) claim: once settled and finalized, the checker
          // holds a window, not the history.
          row.window_bounded =
              row.window_bounded && ck.retained_entries() < 128;
        }
      } else {
        row.agrees =
            row.agrees &&
            analysis::check_prefix_subsequence_condition(exec).ok();
      }
      reg.add_counter("e23.txs", exec.size());
      reg.merge_from(cluster.metrics());
    }

    const auto t1 = std::chrono::steady_clock::now();
    row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (mode.bounded) {
      // Re-check the peak against the merged counters: the bounded row's
      // shadow peak must undercut the history the unbounded row retains.
      row.window_bounded =
          row.window_bounded &&
          reg.counters().at("checker.peak_shadow_entries") <
              reg.counters().at("checker.txs_finalized");
    }
    reg.add_counter("e23.agrees", row.agrees ? 1 : 0);
    reg.add_counter("e23.window_bounded", row.window_bounded ? 1 : 0);
    reg.add_counter("e23.retained_final", retained_final);
    row.metrics_json = reg.to_json();
    rows.push_back(row);
  }

  const double off_ms = rows[0].wall_ms;
  std::printf("{\n  \"experiment\": \"e23_streaming_overhead\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": %zu, \"seeds\": %zu,\n",
              kHorizon, kNodes, std::size(kSeeds));
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"mode\": \"%s\", \"agrees\": %s, "
                "\"window_bounded\": %s,\n",
                r.mode, r.agrees ? "true" : "false",
                r.window_bounded ? "true" : "false");
    std::fprintf(stderr, "# mode=%s wall_ms=%.2f overhead_pct_vs_off=%.2f\n",
                 r.mode, r.wall_ms,
                 off_ms > 0.0 ? 100.0 * (r.wall_ms - off_ms) / off_ms : 0.0);
    std::printf("     \"metrics\":\n");
    print_indented(r.metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
