// E5 — Theorems 22/23 (section 5.4): centralizing the MOVE-UPs makes
// overbooking impossible — at an availability price.
//
// Routing policies realize section 3.3's "force all the transactions in G
// to run at the same node". The table shows, per policy: whether the
// theorem hypotheses hold on the recorded execution, the worst overbooking
// observed, and the availability cost — transactions that had to run at the
// pinned node while a partition separated it from half the cluster (in a
// real deployment those would block or fail).
#include <cstdio>

#include "analysis/airline_theorems.hpp"
#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

struct PolicyResult {
  std::size_t txs = 0;
  bool movers_centralized = false;
  bool transitive = false;
  double worst_overbook = 0.0;
  std::size_t pinned_during_partition = 0;
  bool theorem23_ok = false;
};

PolicyResult run(harness::Routing routing, std::uint64_t seed) {
  harness::Scenario sc = harness::partitioned_wan(4, 5.0, 20.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::AirlineWorkload w;
  w.duration = 28.0;
  w.request_rate = 3.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.0;  // unique requests (Theorem 23 hypothesis)
  w.max_persons = 150;
  w.routing = routing;
  const auto schedule = harness::drive_airline(cluster, w, seed ^ 0xe5);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();

  PolicyResult r;
  r.txs = exec.size();
  r.movers_centralized =
      analysis::is_centralized<Air>(exec, [](const al::Request& rq) {
        return rq.kind == al::Request::Kind::kMoveUp;
      });
  r.transitive = analysis::is_transitive(exec);
  for (const auto& s : exec.actual_states()) {
    r.worst_overbook = std::max(r.worst_overbook,
                                Air::cost(s, Air::kOverbooking));
  }
  // Availability cost: submissions pinned to node 0 while the partition
  // was active (clients on the far side could not really have reached it).
  for (const auto& sub : schedule) {
    if (sub.node == 0 &&
        sc.faults.partitioned_at(sub.time)) {
      ++r.pinned_during_partition;
    }
  }
  r.theorem23_ok = analysis::check_theorem23(exec).ok();
  return r;
}

const char* routing_name(harness::Routing r) {
  switch (r) {
    case harness::Routing::kAnyNode:
      return "any-node (max availability)";
    case harness::Routing::kCentralizeMovers:
      return "centralize movers";
    case harness::Routing::kCentralizeAll:
      return "centralize everything";
  }
  return "?";
}

}  // namespace

int main() {
  harness::Table table(
      "E5  Theorems 22/23: centralization eliminates overbooking, costs "
      "availability (15s partition)",
      {"routing", "txs", "movers centralized", "transitive",
       "worst overbook $", "Thm23 holds", "txs pinned during partition"});
  for (const auto routing :
       {harness::Routing::kAnyNode, harness::Routing::kCentralizeMovers,
        harness::Routing::kCentralizeAll}) {
    // Aggregate worst case over 3 seeds.
    PolicyResult agg;
    bool all23 = true, all_central = true, all_trans = true;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
      const PolicyResult r = run(routing, seed);
      agg.txs += r.txs;
      agg.worst_overbook = std::max(agg.worst_overbook, r.worst_overbook);
      agg.pinned_during_partition += r.pinned_during_partition;
      all23 = all23 && r.theorem23_ok;
      all_central = all_central && r.movers_centralized;
      all_trans = all_trans && r.transitive;
    }
    table.add_row({routing_name(routing), harness::Table::num(agg.txs),
                   all_central ? "yes" : "no", all_trans ? "yes" : "no",
                   harness::Table::num(agg.worst_overbook, 0),
                   all23 ? "yes" : "n/a (hypothesis fails)",
                   harness::Table::num(agg.pinned_during_partition)});
  }
  table.print();
  std::printf(
      "\nReading: the paper's trade, quantified. Random routing overbooks\n"
      "(nonzero worst cost) but nothing depends on one node; centralizing\n"
      "the movers drives overbooking to exactly zero (Theorem 23), at the\n"
      "price of every mover depending on node 0 — including through the\n"
      "partition, when half the clients couldn't reach it.\n");
  return 0;
}
