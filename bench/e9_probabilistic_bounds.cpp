// E9 — the section 1.3 probabilistic program, carried out.
//
// "(1) conditional results of the form 'If certain conditions hold, then
// the cost remains at most c'; (2) probability distribution information
// describing the probability that the conditions hold ... obtained by an
// independent analysis, using information such as delay characteristics of
// the message system." The simulator supplies (2): the empirical
// distribution of k across many seeded runs per network profile. Composing
// with Corollary 8's f(k) = 900k yields statements of exactly the paper's
// target form: "With probability p, the cost remains at most c."
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/probabilistic.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

harness::KDistribution measure(const harness::Scenario& sc,
                               std::size_t runs) {
  harness::KDistribution dist;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
    harness::AirlineWorkload w;
    w.duration = 20.0;
    w.request_rate = 3.0;
    w.mover_rate = 4.0;
    w.max_persons = 120;
    harness::drive_airline(cluster, w, seed ^ 0xe9);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    // k per MOVE-UP (the transactions Corollary 8 conditions on).
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (exec.tx(i).request.kind == al::Request::Kind::kMoveUp) {
        dist.observe(exec.missing_count(i));
      }
    }
  }
  return dist;
}

}  // namespace

int main() {
  harness::Table table(
      "E9  P(k <= K) measured over 8 seeded runs per profile, composed with "
      "Corollary 8 (cost <= 900K)",
      {"profile", "MOVE-UPs", "mean k", "K@p=0.50", "bound $", "K@p=0.90",
       "bound $", "K@p=0.99", "bound $"});
  struct Net {
    const char* name;
    harness::Scenario sc;
  };
  const auto f = [](int, std::size_t k) {
    return 900.0 * static_cast<double>(k);
  };
  for (const auto& net :
       {Net{"lan", harness::lan(4)}, Net{"wan", harness::wan(4)},
        Net{"wan, 20% loss",
            [] {
              auto s = harness::wan(4);
              s.drop_probability = 0.2;
              return s;
            }()},
        Net{"wan+10s partition", harness::partitioned_wan(4, 5.0, 15.0)}}) {
    const auto dist = measure(net.sc, 8);
    std::vector<std::string> row = {net.name,
                                    harness::Table::num(dist.total()),
                                    harness::Table::num(dist.mean(), 2)};
    for (const double p : {0.50, 0.90, 0.99}) {
      const auto b = harness::probabilistic_cost_bound(dist, 0, f, p);
      row.push_back(harness::Table::num(b.K));
      row.push_back(harness::Table::num(b.cost_bound, 0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nReading: the paper's \"With probability p, the cost remains at\n"
      "most c\" statements, instantiated. On a LAN, 99%% of MOVE-UPs run\n"
      "with k=0 — serializable in effect, cost 0. Loss and partitions\n"
      "shift the k distribution right and the probabilistic cost bounds\n"
      "grow accordingly — small changes in available information, small\n"
      "perturbations in the guarantee (the paper's \"continuous flavor\").\n");
  return 0;
}
