// E11 — the conclusion's conjecture, checked: "For other resource
// allocation applications, similar cost bound and fairness results should
// be provable."
//
// Banking: total overdraft <= sum of amounts over debits that ran with
//          missing information (the per-account analogue of 900k).
// Inventory: overcommit cost <= penalty * units committed by FULFILLs that
//          ran with missing information.
// Both swept over partition length, with the bound never crossed.
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/banking/banking.hpp"
#include "apps/inventory/inventory.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace bk = apps::banking;
namespace inv = apps::inventory;

}  // namespace

int main() {
  harness::Table tb(
      "E11a  Banking: overdraft vs missed-debit bound (partition sweep)",
      {"partition (s)", "txs", "stale debits", "bound $", "worst overdraft $",
       "tightness", "holds"});
  for (const double plen : {0.0, 8.0, 16.0, 24.0}) {
    harness::Scenario sc = plen == 0.0
                               ? harness::wan(4)
                               : harness::partitioned_wan(4, 4.0, 4.0 + plen);
    shard::Cluster<bk::Banking> cluster(
        sc.cluster_config<bk::Banking>(11));
    for (bk::AccountId a = 0; a < 12; ++a) {
      cluster.submit_at(0.2, a % 4, bk::Request::deposit(a, 250));
    }
    harness::BankingWorkload w;
    w.duration = 10.0 + plen;
    w.tx_rate = 8.0;
    w.num_accounts = 12;
    w.max_amount = 120;
    harness::drive_banking(cluster, w, 12);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    double bound = 0.0;
    std::size_t stale = 0;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      const auto& r = exec.tx(i).request;
      const bool debit = r.kind == bk::Request::Kind::kWithdraw ||
                         r.kind == bk::Request::Kind::kTransfer;
      if (debit && exec.missing_count(i) > 0) {
        bound += static_cast<double>(r.amount);
        ++stale;
      }
    }
    double worst = 0.0;
    for (const auto& s : exec.actual_states()) {
      worst = std::max(worst, bk::Banking::cost(s, 0));
    }
    tb.add_row({harness::Table::num(plen, 0),
                harness::Table::num(exec.size()), harness::Table::num(stale),
                harness::Table::num(bound, 0), harness::Table::num(worst, 0),
                bound > 0.0 ? harness::Table::pct(worst / bound) : "-",
                worst <= bound + 1e-9 ? "yes" : "NO"});
  }
  tb.print();

  harness::Table ti(
      "E11b  Inventory: overcommit vs stale-FULFILL bound (partition sweep)",
      {"partition (s)", "txs", "stale commits (units)", "bound $",
       "worst overcommit $", "holds"});
  for (const double plen : {0.0, 8.0, 16.0, 24.0}) {
    harness::Scenario sc = plen == 0.0
                               ? harness::wan(4)
                               : harness::partitioned_wan(4, 4.0, 4.0 + plen);
    shard::Cluster<inv::Inventory> cluster(
        sc.cluster_config<inv::Inventory>(13));
    harness::InventoryWorkload w;
    w.duration = 10.0 + plen;
    harness::drive_inventory(cluster, w, 14);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    double stale_units = 0.0;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      const auto& tx = exec.tx(i);
      if (tx.update.kind == inv::Update::Kind::kCommit &&
          exec.missing_count(i) > 0) {
        stale_units += static_cast<double>(tx.update.n);
      }
    }
    const double bound = inv::Inventory::kOvercommitPenalty * stale_units;
    double worst = 0.0;
    for (const auto& s : exec.actual_states()) {
      worst = std::max(worst, inv::Inventory::cost(s, 0));
    }
    ti.add_row({harness::Table::num(plen, 0),
                harness::Table::num(exec.size()),
                harness::Table::num(stale_units, 0),
                harness::Table::num(bound, 0), harness::Table::num(worst, 0),
                worst <= bound + 1e-9 ? "yes" : "NO"});
  }
  ti.print();
  std::printf(
      "\nReading: the airline's k-bounded-damage shape transfers to both\n"
      "applications: damage is proportional to how much promised value\n"
      "moved on stale information, and is zero when nothing was missing.\n");
  return 0;
}
