// E2 — Theorem 7 / Corollary 8: the invariant overbooking bound.
//
// "Assume all MOVE-UP transactions are k-complete in e. Then every state
// reachable in e has cost(s,1) <= 900k." The sweep lengthens the partition;
// k (measured over MOVE-UPs) grows with it, the worst observed overbooking
// grows with it, and the bound is never crossed. The "tightness" column
// shows observed/bound — the conditional bounds are worst-case, so
// tightness well below 1 is expected, but it should rise as contention
// concentrates.
#include <cstdio>

#include "analysis/cost_bounds.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

}  // namespace

int main() {
  harness::Table table(
      "E2  Corollary 8: invariant overbooking bound 900k over partition "
      "length (3 seeds each)",
      {"partition (s)", "txs", "k over MOVE-UPs", "worst overbook $",
       "bound 900k $", "tightness", "Thm7 violations"});
  for (const double plen : {0.0, 5.0, 10.0, 20.0, 30.0}) {
    std::size_t txs = 0, worst_k = 0, violations = 0;
    double worst_cost = 0.0, bound_at_worst = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      harness::Scenario sc =
          plen == 0.0 ? harness::wan(4)
                      : harness::partitioned_wan(4, 5.0, 5.0 + plen);
      shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
      harness::AirlineWorkload w;
      w.duration = 10.0 + plen + 5.0;
      w.request_rate = 3.0;
      w.mover_rate = 4.0;
      w.max_persons = 200;
      harness::drive_airline(cluster, w, seed ^ 0xe2);
      cluster.run_until(w.duration);
      cluster.settle();
      const auto exec = cluster.execution();
      txs += exec.size();
      const auto unsafe = [](const al::Request& r, int c) {
        return !Air::Theory::safe_for(r, c);
      };
      const std::size_t k = analysis::max_missing_over_unsafe(
          exec, Air::kOverbooking, unsafe);
      double worst = 0.0;
      for (const auto& s : exec.actual_states()) {
        worst = std::max(worst, Air::cost(s, Air::kOverbooking));
      }
      if (worst >= worst_cost) {
        worst_cost = worst;
        bound_at_worst = Air::Theory::f_bound(Air::kOverbooking, k);
      }
      worst_k = std::max(worst_k, k);
      const auto f = [](int c, std::size_t kk) {
        return Air::Theory::f_bound(c, kk);
      };
      violations += analysis::check_theorem7(exec, Air::kOverbooking, unsafe,
                                             f)
                        .violations()
                        .size();
    }
    table.add_row(
        {harness::Table::num(plen, 0), harness::Table::num(txs),
         harness::Table::num(worst_k), harness::Table::num(worst_cost, 0),
         harness::Table::num(bound_at_worst, 0),
         bound_at_worst > 0.0
             ? harness::Table::pct(worst_cost / bound_at_worst)
             : "-",
         harness::Table::num(violations)});
  }
  table.print();
  std::printf(
      "\nReading: longer partitions -> staler MOVE-UPs (k grows) -> more\n"
      "observed overbooking, always under 900k. No violations: Corollary 8.\n");
  return 0;
}
