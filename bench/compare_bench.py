#!/usr/bin/env python3
"""Compare a bench JSON emission against its committed baseline.

Usage:
    compare_bench.py e20 bench/baselines/BENCH_e20.json BENCH_e20.json
    compare_bench.py e10 bench/baselines/BENCH_e10.json BENCH_e10.json
    compare_bench.py e22 bench/baselines/BENCH_e22.json BENCH_e22.json
    compare_bench.py e23 bench/baselines/BENCH_e23.json BENCH_e23.json
    compare_bench.py e24 bench/baselines/BENCH_e24.json BENCH_e24.json
    compare_bench.py e25 bench/baselines/BENCH_e25.json BENCH_e25.json
    compare_bench.py e26 bench/baselines/BENCH_e26.json BENCH_e26.json
    compare_bench.py e27 bench/baselines/BENCH_e27.json BENCH_e27.json
    compare_bench.py --selftest

The gate is designed to be machine-independent:

* e20 (submit-scaling harness): the primary signals are the deterministic
  retained-footprint counters (exact for a given seed/scale, allowed to
  drift by the tolerance so intentional policy tweaks don't need a baseline
  dance) and the *flatness* ratios — last-decile / first-decile wall time
  per point and large-scale / small-scale per-submit time overall. Flat is
  the O(window) claim; absolute wall times are machine noise and are only
  reported.

* e10 (google-benchmark substrate microbenchmarks): absolute ns/op are
  machine-dependent, so the gate compares the checkpointed-vs-naive
  mid-insert *ratios* within one run against the same ratios in the
  baseline run.

* e22 (fault-matrix harness): every emitted number is a deterministic
  function of (fault mode, seed) — simulated time, never wall-clock — so
  the gate checks checker_clean exactly (any fault mode leaving the
  checkers dirty is an instant failure) and the fault/availability
  counters and lag gauges within the tolerance, allowing intentional
  workload tweaks without a baseline dance.

* e23 (streaming-checker harness): the binary gates are exact — streaming
  reports must match the post-hoc oracles on every run ("agrees") and the
  bounded-memory row must drain to a window-sized footprint
  ("window_bounded"). The checker/adversary counters are deterministic per
  (mode, seed) and gated within the tolerance; wall-clock overhead is
  machine noise and only reported.

* e25 (open-loop saturation harness): the simulated side is deterministic —
  convergence, cross-row replica-state agreement, and the packet / batch /
  outbox-sync counters are gated per row. Wall-clock throughput is machine
  noise and only reported, EXCEPT the within-run speedup of the optimized
  row over the aos-unbatched ablation (same binary, same machine — a ratio
  like e10's), which must clear the constant-factor floor
  ("speedup_floor" in the baseline, default 1.5).

* e24 (flame-attribution harness): the equivalence gates are exact — the
  sharded tracer's stream must be byte-identical to the legacy global
  tracer's and its k-way ring merge must reconstruct the capture
  ("sharded_matches_legacy" / "merged_matches_capture"), and the causal
  validator must stay clean. The per-seed epoch/attribution census and the
  merged epoch.* counters are deterministic and gated within the
  tolerance; flame-build wall time is machine noise, kept out of the JSON
  entirely (the harness prints it to stderr).

* e26 (incident-forensics harness): the boolean gates are exact — every
  seed's incident bundle must be byte-deterministic across two independent
  runs ("bundle_deterministic"), every in-stream incident's admitted epoch
  must contain its originate event ("attribution_ok"), and a flame profile
  diffed against itself must be empty ("self_diff_clean"). The per-seed
  forensic census (incidents, epochs, series samples, bundle sizes) and
  the merged checker.*/epoch.* counters are deterministic and gated within
  the tolerance; bundle-build wall time goes to stderr and is never gated.

* e27 (execution-backend harness): the boolean gates are exact — the DES
  row must stay byte-deterministic and checker-clean, and every threaded
  row must converge, pass the full oracle stack, and satisfy the
  send/fate shutdown contract. The DES row's trace census and network /
  broadcast counters are deterministic per seed and gated within the
  tolerance; everything wall-clock (and the threaded rows' send counts,
  which real scheduling jitters) is only reported.

A baseline JSON may carry a top-level "tolerance_overrides" object mapping
gate keys (exact, or a prefix/suffix of the composed "mode=... name" key)
to a per-key relative tolerance, loosening or tightening individual gates
without touching this script — e.g. {"e22.mean_convergence_lag": 0.5}.

`--selftest` runs the gate machinery against synthetic documents (no files
needed) and exits 0 only if every probe behaves: use it to sanity-check
edits to this script in CI before any real comparison runs.

On any gate failure a per-key markdown summary table is printed after the
log lines (for CI job summaries / PR comments).

Exit status 0 = within tolerance, 1 = regression, 2 = usage/parse error.
"""

import json
import sys

DEFAULT_TOLERANCE = 0.15

# Flatness ratios get an absolute floor as well: on small/noisy runs a
# baseline of 0.9 must not make 1.1 a "regression".
FLATNESS_FLOOR = 2.0

E20_COUNTERS = [
    "retained.log_entries",
    "retained.checkpoints",
    "retained.repair_store",
    "retained.prefix_slots",
]


# Structured record of every gate failure, for the markdown summary the CI
# job prints on regression: one row per offending key.
FAILURES = []


def fail(msg, key=None, current=None, baseline=None, allowed=None):
    print(f"REGRESSION: {msg}")
    FAILURES.append({"key": key or msg, "current": current,
                     "baseline": baseline, "allowed": allowed})
    return 1


def _cell(v):
    if v is None:
        return ""
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def print_failure_summary():
    """Markdown table of failed keys (printed only when gates failed)."""
    print()
    print("### Bench gate failures")
    print()
    print("| key | current | baseline | allowed |")
    print("| --- | --- | --- | --- |")
    for f in FAILURES:
        print(f"| {f['key']} | {_cell(f['current'])} "
              f"| {_cell(f['baseline'])} | {_cell(f['allowed'])} |")


def within(current, baseline, tol):
    """Symmetric relative check with a tiny absolute slack for near-zero."""
    slack = max(abs(baseline) * tol, 2.0)
    return abs(current - baseline) <= slack


def key_tolerance(base, key, default):
    """Per-key tolerance override from the baseline JSON.

    Exact match on the composed gate key wins; otherwise a prefix or suffix
    match lets one entry cover a metric across every mode/seed row (e.g.
    "net.sent" matches "mode=soa-batched net.sent").
    """
    overrides = base.get("tolerance_overrides") or {}
    if key in overrides:
        return float(overrides[key])
    for pattern, tol in overrides.items():
        if key.startswith(pattern) or key.endswith(pattern):
            return float(tol)
    return default


def compare_e20(base, cur, tol):
    rc = 0
    base_points = {p["n"]: p for p in base["points"]}
    # Decile wall windows at small scales are a few ms — pure scheduler
    # noise — so the tail_ratio gate only applies at the largest scale.
    gate_tail_at = max(p["n"] for p in cur["points"])
    for point in cur["points"]:
        n = point["n"]
        bp = base_points.get(n)
        if bp is None:
            print(f"note: scale n={n} has no baseline point; skipping")
            continue
        counters = point["metrics"]["counters"]
        bcounters = bp["metrics"]["counters"]
        for name in E20_COUNTERS:
            c, b = counters.get(name, 0), bcounters.get(name, 0)
            ktol = key_tolerance(base, f"n={n} {name}", tol)
            if not within(c, b, ktol):
                rc |= fail(f"n={n} {name}: {c} vs baseline {b} (tol {ktol:.0%})",
                           key=f"n={n} {name}", current=c, baseline=b,
                           allowed=f"±{ktol:.0%}")
            else:
                print(f"ok: n={n} {name}: {c} (baseline {b})")
        tail = point["tail_ratio"]
        btail = bp["tail_ratio"]
        bound = max(FLATNESS_FLOOR, btail * (1 + tol))
        if n != gate_tail_at:
            print(f"info: n={n} tail_ratio {tail:.3f} (small scale; not gated)")
        elif tail > bound:
            rc |= fail(f"n={n} tail_ratio {tail:.3f} > bound {bound:.3f} "
                       f"(baseline {btail:.3f})",
                       key=f"n={n} tail_ratio", current=tail, baseline=btail,
                       allowed=f"<= {bound:.3f}")
        else:
            print(f"ok: n={n} tail_ratio {tail:.3f} (bound {bound:.3f})")
        spr = point["slots_per_record"]
        bspr = bp["slots_per_record"]
        sbound = max(bspr * (1 + tol), bspr + 0.5)
        if spr > sbound:
            rc |= fail(f"n={n} slots_per_record {spr:.3f} > bound "
                       f"{sbound:.3f} (baseline {bspr:.3f})",
                       key=f"n={n} slots_per_record", current=spr,
                       baseline=bspr, allowed=f"<= {sbound:.3f}")
        else:
            print(f"ok: n={n} slots_per_record {spr:.3f} (bound {sbound:.3f})")
        print(f"info: n={n} per_submit_us {point['per_submit_us']:.2f} "
              f"(baseline {bp['per_submit_us']:.2f}; not gated)")
    flat, bflat = cur["flatness_ratio"], base["flatness_ratio"]
    fbound = max(FLATNESS_FLOOR, bflat * (1 + tol))
    if flat > fbound:
        rc |= fail(f"flatness_ratio {flat:.3f} > bound {fbound:.3f} "
                   f"(baseline {bflat:.3f})",
                   key="flatness_ratio", current=flat, baseline=bflat,
                   allowed=f"<= {fbound:.3f}")
    else:
        print(f"ok: flatness_ratio {flat:.3f} (bound {fbound:.3f})")
    return rc


def e10_times(doc):
    # Fixed-iteration benchmarks get "/iterations:N" appended to the name;
    # strip it so lookups are stable if the iteration count changes.
    return {b["name"].split("/iterations:")[0]: b["cpu_time"]
            for b in doc["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}


def e10_ratios(times):
    """checkpointed / naive cpu-time ratios for the mid-insert family."""
    ratios = {}
    for interval in (16, 64):
        for size in (2048, 8192):
            naive = times.get(f"BM_LogMidInsert/0/{size}")
            ckpt = times.get(f"BM_LogMidInsert/{interval}/{size}")
            if naive and ckpt:
                ratios[f"mid_insert_ckpt{interval}_vs_naive/{size}"] = \
                    ckpt / naive
    return ratios


def compare_e10(base, cur, tol):
    rc = 0
    bratios = e10_ratios(e10_times(base))
    cratios = e10_ratios(e10_times(cur))
    if not cratios:
        return fail("no BM_LogMidInsert ratios found in current run")
    for name, ratio in sorted(cratios.items()):
        bratio = bratios.get(name)
        if bratio is None:
            print(f"note: {name} has no baseline; skipping")
            continue
        bound = max(bratio * (1 + tol), bratio + 0.25)
        if ratio > bound:
            rc |= fail(f"{name}: {ratio:.3f} > bound {bound:.3f} "
                       f"(baseline {bratio:.3f})",
                       key=name, current=ratio, baseline=bratio,
                       allowed=f"<= {bound:.3f}")
        else:
            print(f"ok: {name}: {ratio:.3f} (bound {bound:.3f})")
    return rc


E22_COUNTERS = [
    "e22.txs",
    "engine.crashes",
    "engine.recoveries",
    "broadcast.stale_resets",
    "broadcast.mid_broadcast_crashes",
    "engine.rejected_submissions",
]

E22_GAUGES = [
    "e22.availability",
    "e22.mean_recovery_lag",
    "e22.mean_convergence_lag",
]


def compare_e22(base, cur, tol):
    rc = 0
    base_rows = {r["mode"]: r for r in base["rows"]}
    for row in cur["rows"]:
        mode = row["mode"]
        if not row["checker_clean"]:
            rc |= fail(f"mode={mode} checker_clean is false",
                       key=f"mode={mode} checker_clean", current=False,
                       baseline=True, allowed="exact")
            continue
        br = base_rows.get(mode)
        if br is None:
            print(f"note: mode={mode} has no baseline row; skipping")
            continue
        counters = row["metrics"]["counters"]
        bcounters = br["metrics"]["counters"]
        for name in E22_COUNTERS:
            c, b = counters.get(name, 0), bcounters.get(name, 0)
            ktol = key_tolerance(base, f"mode={mode} {name}", tol)
            if not within(c, b, ktol):
                rc |= fail(f"mode={mode} {name}: {c} vs baseline {b} "
                           f"(tol {ktol:.0%})",
                           key=f"mode={mode} {name}", current=c, baseline=b,
                           allowed=f"±{ktol:.0%}")
            else:
                print(f"ok: mode={mode} {name}: {c} (baseline {b})")
        gauges = row["metrics"]["gauges"]
        bgauges = br["metrics"]["gauges"]
        for name in E22_GAUGES:
            g, b = gauges.get(name, 0.0), bgauges.get(name, 0.0)
            # Simulated-time lags are deterministic but small; give them the
            # same near-zero slack scale as the counters, shrunk to 0.25.
            ktol = key_tolerance(base, f"mode={mode} {name}", tol)
            slack = max(abs(b) * ktol, 0.25)
            if abs(g - b) > slack:
                rc |= fail(f"mode={mode} {name}: {g:.3f} vs baseline "
                           f"{b:.3f} (slack {slack:.3f})",
                           key=f"mode={mode} {name}", current=g, baseline=b,
                           allowed=f"±{slack:.3f}")
            else:
                print(f"ok: mode={mode} {name}: {g:.3f} (baseline {b:.3f})")
    missing = set(base_rows) - {r["mode"] for r in cur["rows"]}
    if missing:
        rc |= fail(f"fault modes missing from current run: {sorted(missing)}",
                   key="fault modes", current="missing " + str(sorted(missing)))
    return rc


E23_COUNTERS = [
    "e23.txs",
    "e23.retained_final",
    "checker.txs_finalized",
    "checker.deliveries",
    "checker.violations",
    "checker.divergence_events",
    "checker.peak_pending",
    "checker.peak_ledger_entries",
    "checker.peak_shadow_entries",
    "broadcast.byz_corrupted",
    "broadcast.byz_duplicated",
    "broadcast.byz_reordered",
]


def compare_e23(base, cur, tol):
    rc = 0
    base_rows = {r["mode"]: r for r in base["rows"]}
    for row in cur["rows"]:
        mode = row["mode"]
        # The differential gate is binary: streaming must match the post-hoc
        # oracles on every run, and the bounded row must have drained to a
        # window-sized footprint. Any drift here is an instant failure.
        if not row["agrees"]:
            rc |= fail(f"mode={mode} streaming/oracle agreement is false",
                       key=f"mode={mode} agrees", current=False,
                       baseline=True, allowed="exact")
            continue
        if not row["window_bounded"]:
            rc |= fail(f"mode={mode} window_bounded is false",
                       key=f"mode={mode} window_bounded", current=False,
                       baseline=True, allowed="exact")
            continue
        br = base_rows.get(mode)
        if br is None:
            print(f"note: mode={mode} has no baseline row; skipping")
            continue
        counters = row["metrics"]["counters"]
        bcounters = br["metrics"]["counters"]
        for name in E23_COUNTERS:
            c, b = counters.get(name, 0), bcounters.get(name, 0)
            ktol = key_tolerance(base, f"mode={mode} {name}", tol)
            if not within(c, b, ktol):
                rc |= fail(f"mode={mode} {name}: {c} vs baseline {b} "
                           f"(tol {ktol:.0%})",
                           key=f"mode={mode} {name}", current=c, baseline=b,
                           allowed=f"±{ktol:.0%}")
            else:
                print(f"ok: mode={mode} {name}: {c} (baseline {b})")
        if "overhead_pct_vs_off" in row:
            print(f"info: mode={mode} overhead_pct_vs_off "
                  f"{row['overhead_pct_vs_off']:.1f} (wall clock; not gated)")
    missing = set(base_rows) - {r["mode"] for r in cur["rows"]}
    if missing:
        rc |= fail(f"checker modes missing from current run: "
                   f"{sorted(missing)}",
                   key="checker modes",
                   current="missing " + str(sorted(missing)))
    return rc


# Per-seed census fields of an e24 row: each is a deterministic function of
# (seed, config), gated within the tolerance so intentional workload or
# stage-taxonomy tweaks don't need a baseline dance.
E24_ROW_KEYS = [
    "events",
    "epochs",
    "transitions",
    "coalesced",
    "updates_profiled",
    "updates_complete",
    "folded_bytes",
]

E24_COUNTERS = [
    "epoch.count",
    "epoch.transitions",
    "epoch.coalesced",
    "epoch.updates_profiled",
    "epoch.updates_incomplete",
    "trace.events_recorded",
]


def compare_e24(base, cur, tol):
    rc = 0
    base_rows = {r["seed"]: r for r in base["rows"]}
    for row in cur["rows"]:
        seed = row["seed"]
        # Equivalence and validator gates are exact: the sharded stream must
        # be byte-identical to the legacy one, the k-way merge must
        # reconstruct the capture, and the causal graph must stay clean.
        for flag in ("sharded_matches_legacy", "merged_matches_capture",
                     "clean"):
            if not row[flag]:
                rc |= fail(f"seed={seed} {flag} is false",
                           key=f"seed={seed} {flag}", current=False,
                           baseline=True, allowed="exact")
        br = base_rows.get(seed)
        if br is None:
            print(f"note: seed={seed} has no baseline row; skipping")
            continue
        for name in E24_ROW_KEYS:
            c, b = row.get(name, 0), br.get(name, 0)
            ktol = key_tolerance(base, f"seed={seed} {name}", tol)
            if not within(c, b, ktol):
                rc |= fail(f"seed={seed} {name}: {c} vs baseline {b} "
                           f"(tol {ktol:.0%})",
                           key=f"seed={seed} {name}", current=c, baseline=b,
                           allowed=f"±{ktol:.0%}")
            else:
                print(f"ok: seed={seed} {name}: {c} (baseline {b})")
    counters = cur["metrics"]["counters"]
    bcounters = base["metrics"]["counters"]
    for name in E24_COUNTERS:
        c, b = counters.get(name, 0), bcounters.get(name, 0)
        ktol = key_tolerance(base, name, tol)
        if not within(c, b, ktol):
            rc |= fail(f"{name}: {c} vs baseline {b} (tol {ktol:.0%})",
                       key=name, current=c, baseline=b,
                       allowed=f"±{ktol:.0%}")
        else:
            print(f"ok: {name}: {c} (baseline {b})")
    missing = set(base_rows) - {r["seed"] for r in cur["rows"]}
    if missing:
        rc |= fail(f"seeds missing from current run: {sorted(missing)}",
                   key="seeds", current="missing " + str(sorted(missing)))
    return rc


# Per-row deterministic counters of an e25 row: pure functions of the
# precomputed open-loop schedule and the row's config (layout, max_batch).
E25_COUNTERS = [
    "e25.txs",
    "broadcast.originated",
    "broadcast.delivered",
    "broadcast.flood_batches",
    "broadcast.flood_batched_wires",
    "broadcast.outbox_commits",
    "broadcast.outbox_records_synced",
    "net.sent",
    "net.delivered",
]

# The constant-factor claim: the optimized row (SoA + batched floods +
# group commit) must sustain at least this multiple of the aos-unbatched
# ablation's saturation throughput. A within-run ratio of the same binary
# on the same machine — the one wall-clock-derived number that IS gated.
E25_SPEEDUP_FLOOR = 1.5


def compare_e25(base, cur, tol):
    rc = 0
    if not cur["rows_agree"]:
        rc |= fail("rows_agree is false (replica states diverged across "
                   "ablation rows)",
                   key="rows_agree", current=False, baseline=True,
                   allowed="exact")
    floor = float(base.get("speedup_floor", E25_SPEEDUP_FLOOR))
    speedup = cur["speedup_vs_aos_unbatched"]
    if speedup < floor:
        rc |= fail(f"speedup_vs_aos_unbatched {speedup:.3f} < floor "
                   f"{floor:.2f}",
                   key="speedup_vs_aos_unbatched", current=speedup,
                   baseline=base.get("speedup_vs_aos_unbatched"),
                   allowed=f">= {floor:.2f}")
    else:
        print(f"ok: speedup_vs_aos_unbatched {speedup:.3f} "
              f"(floor {floor:.2f})")
    base_rows = {r["mode"]: r for r in base["rows"]}
    for row in cur["rows"]:
        mode = row["mode"]
        for flag in ("converged", "decisions_ok"):
            if not row[flag]:
                rc |= fail(f"mode={mode} {flag} is false",
                           key=f"mode={mode} {flag}", current=False,
                           baseline=True, allowed="exact")
        br = base_rows.get(mode)
        if br is None:
            print(f"note: mode={mode} has no baseline row; skipping")
            continue
        counters = row["metrics"]["counters"]
        bcounters = br["metrics"]["counters"]
        for name in E25_COUNTERS:
            c, b = counters.get(name, 0), bcounters.get(name, 0)
            ktol = key_tolerance(base, f"mode={mode} {name}", tol)
            if not within(c, b, ktol):
                rc |= fail(f"mode={mode} {name}: {c} vs baseline {b} "
                           f"(tol {ktol:.0%})",
                           key=f"mode={mode} {name}", current=c, baseline=b,
                           allowed=f"±{ktol:.0%}")
            else:
                print(f"ok: mode={mode} {name}: {c} (baseline {b})")
        print(f"info: mode={mode} tx_per_sec_per_node "
              f"{row['tx_per_sec_per_node']:.1f} wall_seconds "
              f"{row['wall_seconds']:.3f} (wall clock; not gated)")
    missing = set(base_rows) - {r["mode"] for r in cur["rows"]}
    if missing:
        rc |= fail(f"ablation rows missing from current run: "
                   f"{sorted(missing)}",
                   key="ablation rows",
                   current="missing " + str(sorted(missing)))
    return rc


# Per-seed census fields of an e26 row: each is a deterministic function of
# (seed, config), gated within the tolerance so intentional workload or
# adversary tweaks don't need a baseline dance.
E26_ROW_KEYS = [
    "events",
    "epochs",
    "incidents",
    "in_stream",
    "contributors",
    "series_samples",
    "bundle_json_bytes",
    "folded_bytes",
]

E26_COUNTERS = [
    "checker.violations",
    "checker.divergence_events",
    "checker.incident_seeds",
    "checker.pinned_windows",
    "broadcast.byz_corrupted",
    "epoch.count",
    "epoch.transitions",
]


def compare_e26(base, cur, tol):
    rc = 0
    base_rows = {r["seed"]: r for r in base["rows"]}
    for row in cur["rows"]:
        seed = row["seed"]
        # Forensic gates are exact: bundles must be byte-deterministic,
        # admission attribution must hold for every in-stream incident, and
        # the flame self-diff must be empty.
        for flag in ("bundle_deterministic", "attribution_ok",
                     "self_diff_clean"):
            if not row[flag]:
                rc |= fail(f"seed={seed} {flag} is false",
                           key=f"seed={seed} {flag}", current=False,
                           baseline=True, allowed="exact")
        br = base_rows.get(seed)
        if br is None:
            print(f"note: seed={seed} has no baseline row; skipping")
            continue
        for name in E26_ROW_KEYS:
            c, b = row.get(name, 0), br.get(name, 0)
            ktol = key_tolerance(base, f"seed={seed} {name}", tol)
            if not within(c, b, ktol):
                rc |= fail(f"seed={seed} {name}: {c} vs baseline {b} "
                           f"(tol {ktol:.0%})",
                           key=f"seed={seed} {name}", current=c, baseline=b,
                           allowed=f"±{ktol:.0%}")
            else:
                print(f"ok: seed={seed} {name}: {c} (baseline {b})")
    counters = cur["metrics"]["counters"]
    bcounters = base["metrics"]["counters"]
    for name in E26_COUNTERS:
        c, b = counters.get(name, 0), bcounters.get(name, 0)
        ktol = key_tolerance(base, name, tol)
        if not within(c, b, ktol):
            rc |= fail(f"{name}: {c} vs baseline {b} (tol {ktol:.0%})",
                       key=name, current=c, baseline=b,
                       allowed=f"±{ktol:.0%}")
        else:
            print(f"ok: {name}: {c} (baseline {b})")
    missing = set(base_rows) - {r["seed"] for r in cur["rows"]}
    if missing:
        rc |= fail(f"seeds missing from current run: {sorted(missing)}",
                   key="seeds", current="missing " + str(sorted(missing)))
    return rc


# DES-side deterministic counters of the e27 document: pure functions of
# the seed and the workload config.
E27_COUNTERS = [
    "cluster.updates_originated",
    "broadcast.originated",
    "broadcast.delivered",
    "net.sent",
    "net.delivered",
    "trace.events_recorded",
]


def compare_e27(base, cur, tol):
    rc = 0
    des = cur["des"]
    # The DES row's gates are exact: the port must stay byte-deterministic
    # and checker-clean.
    for flag in ("deterministic", "checker_clean"):
        if not des[flag]:
            rc |= fail(f"des {flag} is false", key=f"des {flag}",
                       current=False, baseline=True, allowed="exact")
    bdes = base["des"]
    c, b = des["trace_events"], bdes["trace_events"]
    ktol = key_tolerance(base, "des trace_events", tol)
    if not within(c, b, ktol):
        rc |= fail(f"des trace_events: {c} vs baseline {b} (tol {ktol:.0%})",
                   key="des trace_events", current=c, baseline=b,
                   allowed=f"±{ktol:.0%}")
    else:
        print(f"ok: des trace_events: {c} (baseline {b})")
    counters = cur["metrics"]["counters"]
    bcounters = base["metrics"]["counters"]
    for name in E27_COUNTERS:
        c, b = counters.get(name, 0), bcounters.get(name, 0)
        ktol = key_tolerance(base, name, tol)
        if not within(c, b, ktol):
            rc |= fail(f"{name}: {c} vs baseline {b} (tol {ktol:.0%})",
                       key=name, current=c, baseline=b,
                       allowed=f"±{ktol:.0%}")
        else:
            print(f"ok: {name}: {c} (baseline {b})")
    print(f"info: des updates_per_wall_s {des['updates_per_wall_s']:.1f} "
          f"(wall clock; not gated)")
    # Threaded rows: nothing about a real-thread run is deterministic, so
    # the only gates are the exact booleans; counts and wall are reported.
    for row in cur["threaded"]:
        seed = row["seed"]
        for flag in ("converged", "checker_clean", "fates_ok"):
            if not row[flag]:
                rc |= fail(f"threaded seed={seed} {flag} is false",
                           key=f"threaded seed={seed} {flag}", current=False,
                           baseline=True, allowed="exact")
        print(f"info: threaded seed={seed} sends {row['sends']} "
              f"updates_per_wall_s {row['updates_per_wall_s']:.1f} "
              f"(nondeterministic; not gated)")
    missing = ({r["seed"] for r in base["threaded"]} -
               {r["seed"] for r in cur["threaded"]})
    if missing:
        rc |= fail(f"threaded seeds missing from current run: "
                   f"{sorted(missing)}",
                   key="threaded seeds",
                   current="missing " + str(sorted(missing)))
    return rc


def _selftest_e27_doc():
    """Minimal e27 document that passes its own gates."""
    def trow(seed):
        return {"seed": seed, "converged": True, "checker_clean": True,
                "fates_ok": True, "sends": 800, "resolved": 800,
                "trace_events": 7800, "wall_seconds": 0.1,
                "updates_per_wall_s": 4000.0}
    return {"des": {"seed": 1, "deterministic": True, "checker_clean": True,
                    "trace_events": 11900, "wall_seconds": 0.004,
                    "updates_per_wall_s": 100000.0},
            "threaded": [trow(10), trow(11)],
            "metrics": {"counters": {"cluster.updates_originated": 400,
                                     "broadcast.originated": 400,
                                     "net.sent": 2400},
                        "gauges": {}}}


def _selftest_e26_doc():
    """Minimal e26 document that passes its own gates."""
    def row(seed):
        return {"seed": seed, "events": 9000, "epochs": 7, "incidents": 20,
                "in_stream": 20, "contributors": 60, "series_samples": 7,
                "bundle_json_bytes": 40000, "folded_bytes": 900,
                "bundle_deterministic": True, "attribution_ok": True,
                "self_diff_clean": True}
    return {"rows": [row(1), row(2)],
            "metrics": {"counters": {"checker.violations": 40,
                                     "checker.incident_seeds": 40,
                                     "broadcast.byz_corrupted": 30,
                                     "epoch.count": 14},
                        "gauges": {}}}


def _selftest_e25_doc():
    """Minimal e25 document that passes its own gates."""
    def row(mode, batch, rate):
        return {"mode": mode, "layout": "soa", "max_batch": batch,
                "converged": True, "decisions_ok": True,
                "wall_seconds": 1.0, "tx_per_sec_per_node": rate,
                "metrics": {"counters": {"e25.txs": 1000, "net.sent": 5000},
                            "gauges": {}}}
    return {"rows_agree": True, "speedup_vs_aos_unbatched": 2.0,
            "rows": [row("soa-batched", 8, 100.0),
                     row("soa-unbatched", 0, 55.0),
                     row("aos-unbatched", 0, 50.0)]}


def selftest():
    """Gate-machinery probes against synthetic documents (no files)."""
    import copy
    rc = 0

    def check(name, cond):
        nonlocal rc
        print(f"{'ok' if cond else 'FAIL'}: selftest {name}")
        if not cond:
            rc = 1

    check("within exact", within(100, 100, 0.15))
    check("within near-zero slack", within(1, 0, 0.15))
    check("within rejects drift", not within(200, 100, 0.15))
    base = {"tolerance_overrides": {"mode=a widget": 3.0, "gadget": 0.5}}
    check("override exact key",
          key_tolerance(base, "mode=a widget", 0.15) == 3.0)
    check("override by suffix",
          key_tolerance(base, "mode=b gadget", 0.15) == 0.5)
    check("override falls back",
          key_tolerance(base, "mode=b sprocket", 0.15) == 0.15)
    check("no overrides falls back", key_tolerance({}, "x", 0.15) == 0.15)

    # compare_e25 end to end: identity passes; a dirty flag, a sub-floor
    # speedup, or counter drift each fail; an override forgives the drift.
    # (The probes below legitimately print REGRESSION lines.)
    doc = _selftest_e25_doc()
    check("e25 identity passes", compare_e25(doc, copy.deepcopy(doc),
                                             0.15) == 0)
    bad = copy.deepcopy(doc)
    bad["rows"][0]["converged"] = False
    check("e25 catches dirty flag", compare_e25(doc, bad, 0.15) != 0)
    bad = copy.deepcopy(doc)
    bad["speedup_vs_aos_unbatched"] = 1.2
    check("e25 enforces speedup floor", compare_e25(doc, bad, 0.15) != 0)
    bad = copy.deepcopy(doc)
    bad["rows"][1]["metrics"]["counters"]["net.sent"] = 50000
    check("e25 catches counter drift", compare_e25(doc, bad, 0.15) != 0)
    loose = copy.deepcopy(doc)
    loose["tolerance_overrides"] = {"net.sent": 10.0}
    check("e25 honors override", compare_e25(loose, bad, 0.15) == 0)

    # compare_e26 end to end: identity passes; a nondeterministic bundle or
    # census drift each fail; an override forgives the drift.
    doc = _selftest_e26_doc()
    check("e26 identity passes", compare_e26(doc, copy.deepcopy(doc),
                                             0.15) == 0)
    bad = copy.deepcopy(doc)
    bad["rows"][0]["bundle_deterministic"] = False
    check("e26 catches nondeterministic bundle",
          compare_e26(doc, bad, 0.15) != 0)
    bad = copy.deepcopy(doc)
    bad["rows"][1]["attribution_ok"] = False
    check("e26 catches broken attribution", compare_e26(doc, bad, 0.15) != 0)
    bad = copy.deepcopy(doc)
    bad["rows"][0]["incidents"] = 200
    check("e26 catches census drift", compare_e26(doc, bad, 0.15) != 0)
    loose = copy.deepcopy(doc)
    loose["tolerance_overrides"] = {"incidents": 20.0}
    check("e26 honors override", compare_e26(loose, bad, 0.15) == 0)

    # compare_e27 end to end: identity passes; a nondeterministic DES run,
    # an unconverged threaded row, or DES counter drift each fail; an
    # override forgives the drift and wall-clock drift never fails.
    doc = _selftest_e27_doc()
    check("e27 identity passes", compare_e27(doc, copy.deepcopy(doc),
                                             0.15) == 0)
    bad = copy.deepcopy(doc)
    bad["des"]["deterministic"] = False
    check("e27 catches nondeterministic DES", compare_e27(doc, bad, 0.15) != 0)
    bad = copy.deepcopy(doc)
    bad["threaded"][1]["converged"] = False
    check("e27 catches unconverged threaded row",
          compare_e27(doc, bad, 0.15) != 0)
    bad = copy.deepcopy(doc)
    bad["metrics"]["counters"]["net.sent"] = 24000
    check("e27 catches counter drift", compare_e27(doc, bad, 0.15) != 0)
    loose = copy.deepcopy(doc)
    loose["tolerance_overrides"] = {"net.sent": 20.0}
    check("e27 honors override", compare_e27(loose, bad, 0.15) == 0)
    noisy = copy.deepcopy(doc)
    noisy["threaded"][0]["sends"] = 5000
    noisy["threaded"][0]["updates_per_wall_s"] = 123.0
    noisy["des"]["wall_seconds"] = 9.9
    check("e27 ignores wall/send noise", compare_e27(doc, noisy, 0.15) == 0)

    FAILURES.clear()  # Probe-induced failures are expected, not reportable.
    print("SELFTEST " + ("PASS" if rc == 0 else "FAIL"))
    return rc


def main(argv):
    if len(argv) >= 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) < 4:
        print(__doc__)
        return 2
    kind, base_path, cur_path = argv[1], argv[2], argv[3]
    tol = DEFAULT_TOLERANCE
    if len(argv) > 5 and argv[4] == "--tolerance":
        tol = float(argv[5])
    try:
        with open(base_path) as f:
            base = json.load(f)
        with open(cur_path) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error loading inputs: {e}")
        return 2
    if kind == "e20":
        rc = compare_e20(base, cur, tol)
    elif kind == "e10":
        rc = compare_e10(base, cur, tol)
    elif kind == "e22":
        rc = compare_e22(base, cur, tol)
    elif kind == "e23":
        rc = compare_e23(base, cur, tol)
    elif kind == "e24":
        rc = compare_e24(base, cur, tol)
    elif kind == "e25":
        rc = compare_e25(base, cur, tol)
    elif kind == "e26":
        rc = compare_e26(base, cur, tol)
    elif kind == "e27":
        rc = compare_e27(base, cur, tol)
    else:
        print(f"unknown kind {kind!r} (want e10, e20, e22, e23, e24, e25, "
              f"e26 or e27)")
        return 2
    if rc != 0 and FAILURES:
        print_failure_summary()
    print("PASS" if rc == 0 else "FAIL")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
