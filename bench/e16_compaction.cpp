// E16 — discarding obsolete information ([SL], the companion paper this
// one cites: Sarin & Lynch, "Discarding Obsolete Information in a
// Replicated Database System").
//
// Without compaction, every replica's update log grows without bound —
// undo/redo needs history. With the announcement protocol's stability
// point (min cluster-wide promise with all issued updates merged), the
// stable prefix folds into a base state. The sweep measures retained log
// size and late-insert cost over a long run, with and without compaction,
// and under a partition (which freezes the stability point — retention is
// the price of the cut).
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<50, 900, 300>;

struct RunResult {
  std::uint64_t merged = 0;
  std::size_t retained_max = 0;   // max over nodes at end of run
  std::uint64_t folded = 0;
  bool converged = false;
  bool trace_intact = false;
};

RunResult run(bool compaction, double partition_len, std::uint64_t seed) {
  harness::Scenario sc =
      partition_len > 0.0
          ? harness::partitioned_wan(4, 10.0, 10.0 + partition_len)
          : harness::wan(4);
  sc.anti_entropy_interval = 0.25;
  auto cfg = sc.cluster_config<Air>(seed);
  cfg.compaction = compaction;
  shard::Cluster<Air> cluster(cfg);
  harness::AirlineWorkload w;
  w.duration = 30.0 + partition_len;
  w.request_rate = 6.0;
  w.mover_rate = 6.0;
  w.max_persons = 500;
  harness::drive_airline(cluster, w, seed ^ 0xe16);
  cluster.run_until(w.duration);
  cluster.settle();
  cluster.run_until(cluster.scheduler().now() + 2.0);  // let folding finish

  RunResult r;
  r.converged = cluster.converged();
  for (core::NodeId n = 0; n < 4; ++n) {
    r.merged = std::max<std::uint64_t>(r.merged,
                                       cluster.node(n).updates_known());
    r.retained_max =
        std::max(r.retained_max, cluster.node(n).entries_retained());
    r.folded += cluster.node(n).engine_stats().entries_folded;
  }
  // Knowledge intact: the formal trace still checks out.
  const auto exec = cluster.execution();
  r.trace_intact = analysis::check_prefix_subsequence_condition(exec).ok() &&
                   cluster.node(0).state() == exec.final_state();
  return r;
}

}  // namespace

int main() {
  harness::Table table(
      "E16  Log compaction ([SL]): retained entries vs merged updates",
      {"variant", "merged updates", "max retained/node", "entries folded",
       "converged", "trace intact"});
  struct Row {
    const char* name;
    bool compaction;
    double partition;
  };
  for (const Row row :
       {Row{"no compaction, no partition", false, 0.0},
        Row{"compaction, no partition", true, 0.0},
        Row{"compaction, 15s partition", true, 15.0}}) {
    const RunResult r = run(row.compaction, row.partition, 33);
    table.add_row({row.name,
                   harness::Table::num(static_cast<std::size_t>(r.merged)),
                   harness::Table::num(r.retained_max),
                   harness::Table::num(static_cast<std::size_t>(r.folded)),
                   r.converged ? "yes" : "NO",
                   r.trace_intact ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nReading: without compaction a replica retains every update ever\n"
      "merged. With it, the cluster-stable prefix folds away and retention\n"
      "drops to the in-flight tail. A partition freezes the stability point\n"
      "— retention grows for its duration, then collapses after the heal.\n"
      "Knowledge is untouched: prefixes still name folded transactions and\n"
      "every checker passes.\n");
  return 0;
}
