// E7 — fairness (Theorems 25/27 and the section 5.5 redesign).
//
// E7a: with centralized movers, Theorem 25's priority freeze and Theorem
//      27's t-bounded-delay fairness are checked over cluster runs while
//      the measured delay bound shrinks with network quality.
// E7b: the basic vs timestamped airline, same workload: request-order
//      inversions in the final state. The basic design produces them (the
//      section 5.5 anomaly); the redesign's lists are stamp-sorted, so
//      same-list inversions vanish.
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "analysis/fairness.hpp"
#include "apps/airline/airline.hpp"
#include "apps/airline/timestamped.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using TsAir = al::TimestampedAirlineT<20, 900, 300>;

struct TsClassify {
  std::optional<al::Person> request_of(const al::TsRequest& r) const {
    if (r.kind == al::TsRequest::Kind::kRequest) return r.person;
    return std::nullopt;
  }
  std::optional<al::Person> cancel_of(const al::TsRequest& r) const {
    if (r.kind == al::TsRequest::Kind::kCancel) return r.person;
    return std::nullopt;
  }
  bool is_mover(const al::TsRequest& r) const {
    return r.kind == al::TsRequest::Kind::kMoveUp ||
           r.kind == al::TsRequest::Kind::kMoveDown;
  }
};

template <class Anyline>
core::Execution<Anyline> run(const harness::Scenario& sc, std::uint64_t seed,
                             harness::Routing routing) {
  shard::Cluster<Anyline> cluster(sc.template cluster_config<Anyline>(seed));
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 3.0;
  w.mover_rate = 4.0;
  w.move_down_fraction = 0.35;
  w.cancel_fraction = 0.0;
  w.max_persons = 120;
  w.routing = routing;
  harness::drive_airline(cluster, w, seed ^ 0xe7);
  cluster.run_until(w.duration);
  cluster.settle();
  return cluster.execution();
}

}  // namespace

int main() {
  harness::Table t25(
      "E7a  Theorems 25/27 with centralized movers",
      {"scenario", "txs", "measured delay bound t (s)", "Thm25 freeze",
       "Thm27 @ measured t"});
  const analysis::AirlineClassify cls;
  struct Net {
    const char* name;
    harness::Scenario sc;
  };
  for (const auto& net :
       {Net{"lan", harness::lan(4)}, Net{"wan", harness::wan(4)},
        Net{"wan+partition", harness::partitioned_wan(4, 5.0, 15.0)}}) {
    const auto exec =
        run<Air>(net.sc, 501, harness::Routing::kCentralizeMovers);
    const double t = analysis::min_bounded_delay(exec);
    const auto freeze = analysis::check_theorem25(exec, cls);
    const auto fair = analysis::check_theorem27(exec, cls, t + 1e-9);
    t25.add_row({net.name, harness::Table::num(exec.size()),
                 harness::Table::num(t, 2),
                 freeze.ok() ? "holds" : "VIOLATED",
                 fair.ok() ? "holds" : "VIOLATED"});
  }
  t25.print();

  harness::Table t55(
      "E7b  Section 5.5 anomaly rate: basic vs timestamped redesign",
      {"seed", "basic: final inversions", "timestamped: same-list "
       "inversions"});
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const auto sc = harness::partitioned_wan(4, 4.0, 16.0);
    const auto basic = run<Air>(sc, seed, harness::Routing::kAnyNode);
    const std::size_t basic_inv =
        analysis::final_order_inversions(basic, cls);
    const auto ts = run<TsAir>(sc, seed, harness::Routing::kAnyNode);
    // Same-list inversions for the timestamped app: by construction of the
    // stamp-sorted lists these are zero whenever submission stamps follow
    // request order; count them directly.
    const auto final = ts.final_state();
    std::size_t ts_inv = 0;
    const auto count_list = [&ts_inv](const std::vector<al::TsEntry>& v) {
      for (std::size_t i = 1; i < v.size(); ++i) {
        if (v[i - 1].stamp > v[i].stamp) ++ts_inv;
      }
    };
    count_list(final.waiting);
    count_list(final.assigned);
    t55.add_row({harness::Table::num(seed), harness::Table::num(basic_inv),
                 harness::Table::num(ts_inv)});
  }
  t55.print();
  std::printf(
      "\nReading: (a) once the centralized agent has seen two requests,\n"
      "their order never changes (Theorem 25), and requests separated by\n"
      "more than the measured delay bound keep request order (Theorem 27).\n"
      "(b) The basic design produces final-state priority inversions; the\n"
      "timestamped redesign keeps both lists in request order always.\n");
  return 0;
}
