// E6 — the section 5.4 counterexample, replayed deterministically.
//
// "It would be better if we could prove the same result only assuming
// centralization of MOVE-UP transactions and transitivity ... But this
// stronger statement is not true." Blocks of
// REQUEST(Pi), CANCEL(Pi), REQUEST(Pi), MOVE-UP — the first 100 MOVE-UPs
// each see only the first request of their block; the 101st sees
// everything the others saw plus the cancels, concludes the plane is
// empty, and seats P101: cost $900 despite centralized, transitive movers.
#include <cstdio>

#include "analysis/airline_theorems.hpp"
#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "core/scripted.hpp"
#include "harness/table.hpp"

int main() {
  namespace al = apps::airline;
  using Air = al::Airline;  // the paper's 100-seat flight
  using Request = al::Request;

  core::ScriptedExecution<Air> sx;
  std::vector<std::size_t> prior_moveups;
  std::vector<std::size_t> seen_first_requests;
  std::vector<std::size_t> all_cancels;
  for (al::Person p = 1; p <= 101; ++p) {
    const std::size_t r1 = sx.run(Request::request(p), {});
    const std::size_t c = sx.run(Request::cancel(p), {});
    const std::size_t r2 = sx.run(Request::request(p), {});
    all_cancels.push_back(c);
    if (p <= 100) {
      std::vector<std::size_t> prefix = prior_moveups;
      prefix.insert(prefix.end(), seen_first_requests.begin(),
                    seen_first_requests.end());
      prefix.push_back(r1);
      prior_moveups.push_back(sx.run(Request::move_up(), std::move(prefix)));
      seen_first_requests.push_back(r1);
    } else {
      std::vector<std::size_t> prefix = prior_moveups;
      prefix.insert(prefix.end(), seen_first_requests.begin(),
                    seen_first_requests.end());
      prefix.insert(prefix.end(), all_cancels.begin(), all_cancels.end());
      prefix.push_back(r1);
      prefix.push_back(r2);
      sx.run(Request::move_up(), std::move(prefix));
    }
  }
  const auto& exec = sx.execution();

  harness::Table table("E6  Section 5.4 counterexample (404 transactions)",
                       {"property", "value"});
  table.add_row({"transactions", harness::Table::num(exec.size())});
  table.add_row({"prefix-subsequence condition",
                 analysis::check_prefix_subsequence_condition(exec).ok()
                     ? "holds"
                     : "violated"});
  table.add_row(
      {"transitive", analysis::is_transitive(exec) ? "yes" : "no"});
  table.add_row({"MOVE-UPs centralized",
                 analysis::is_centralized<Air>(exec,
                                               [](const Request& r) {
                                                 return r.kind ==
                                                        Request::Kind::kMoveUp;
                                               })
                     ? "yes"
                     : "no"});
  const auto final = exec.final_state();
  table.add_row({"final assigned count",
                 harness::Table::num(final.assigned.size())});
  table.add_row({"final overbooking cost",
                 "$" + harness::Table::num(
                           Air::cost(final, Air::kOverbooking), 0)});
  const auto r22 = analysis::check_theorem22(exec);
  const auto r23 = analysis::check_theorem23(exec);
  table.add_row({"Theorem 22 checker",
                 r22.ok() ? "holds (unexpected!)"
                          : "reports failed hypothesis (per-person "
                            "centralization)"});
  table.add_row({"Theorem 23 checker",
                 r23.ok() ? "holds (unexpected!)"
                          : "reports failed hypothesis (duplicate REQUESTs)"});
  table.print();
  std::printf(
      "\nReading: transitivity + centralized MOVE-UPs alone do NOT prevent\n"
      "overbooking. The last MOVE-UP sees all prior MOVE-UPs AND all the\n"
      "cancels, but not the second requests, so it believes every earlier\n"
      "assignment was erroneous and seats P101 onto a full plane. Both\n"
      "theorem checkers correctly refuse: each missing technical hypothesis\n"
      "is exactly what this execution violates.\n");
  return 0;
}
