// E17 — the Grapevine name service (paper section 6: "name servers such as
// Grapevine have interesting but nonserializable behavior; it seems likely
// that they can be described within our framework").
//
// Sweep partition length: dangling memberships (referential-integrity
// cost) accumulate while the sides diverge; the lookups users actually see
// degrade (resolutions listing dangling members); one SCRUB after the heal
// restores integrity. The same k-bounded shape as every other app: damage
// tracks how much membership/registration traffic crossed the cut blind.
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/grapevine/grapevine.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "shard/cluster.hpp"
#include "sim/rng.hpp"

namespace {

namespace gv = apps::grapevine;
using gv::Grapevine;
using gv::Request;

struct RunResult {
  std::size_t txs = 0;
  std::size_t max_k = 0;
  double worst_cost = 0.0;
  std::size_t dangling_resolutions = 0;
  std::size_t total_resolutions = 0;
  double cost_after_scrub = 0.0;
  bool converged = false;
};

RunResult run(double partition_len, std::uint64_t seed) {
  harness::Scenario sc =
      partition_len > 0.0
          ? harness::partitioned_wan(4, 4.0, 4.0 + partition_len)
          : harness::wan(4);
  shard::Cluster<Grapevine> cluster(sc.cluster_config<Grapevine>(seed));
  sim::Rng rng(seed ^ 0xe17);
  const double duration = 8.0 + partition_len;
  // Everyone registers before the trouble starts; thereafter membership
  // edits, deregistrations, and lookups race across the cut.
  for (gv::Name n = 1; n <= 15; ++n) {
    cluster.submit_at(0.1, static_cast<core::NodeId>(n % 4),
                      Request::register_individual(n, "mx"));
  }
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(2.0, duration);
    const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 3));
    const auto n = static_cast<gv::Name>(rng.uniform_int(1, 15));
    const auto g = static_cast<gv::Name>(rng.uniform_int(20, 24));
    switch (rng.uniform_int(0, 5)) {
      case 0:
        cluster.submit_at(t, node, Request::deregister(n));
        break;
      case 1:
      case 2:
      case 3:
        cluster.submit_at(t, node, Request::add_member(g, n));
        break;
      case 4:
        cluster.submit_at(t, node, Request::remove_member(g, n));
        break;
      default:
        cluster.submit_at(t, node, Request::resolve(g));
        break;
    }
  }
  cluster.run_until(duration);
  cluster.settle();
  const auto exec = cluster.execution();

  RunResult r;
  r.txs = exec.size();
  r.max_k = exec.max_missing();
  r.converged = cluster.converged();
  for (const auto& s : exec.actual_states()) {
    r.worst_cost = std::max(r.worst_cost, Grapevine::cost(s, 0));
  }
  for (std::size_t i = 0; i < exec.size(); ++i) {
    for (const auto& a : exec.tx(i).external_actions) {
      if (a.kind == "resolution") {
        ++r.total_resolutions;
        if (a.subject.find("<dangling>") != std::string::npos) {
          ++r.dangling_resolutions;
        }
      }
    }
  }
  cluster.submit_now(0, Request::scrub());
  cluster.settle();
  r.cost_after_scrub = Grapevine::cost(cluster.node(0).state(), 0);
  return r;
}

}  // namespace

int main() {
  harness::Table table(
      "E17  Grapevine name service: referential-integrity damage vs "
      "partition length",
      {"partition (s)", "txs", "max k", "worst dangling cost $",
       "degraded lookups", "after SCRUB $", "converged"});
  for (const double plen : {0.0, 6.0, 12.0, 20.0}) {
    const RunResult r = run(plen, 44);
    table.add_row(
        {harness::Table::num(plen, 0), harness::Table::num(r.txs),
         harness::Table::num(r.max_k), harness::Table::num(r.worst_cost, 0),
         harness::Table::num(r.dangling_resolutions) + "/" +
             harness::Table::num(r.total_resolutions),
         harness::Table::num(r.cost_after_scrub, 0),
         r.converged ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nReading: the paper's closing conjecture holds — Grapevine's lazy\n"
      "registration database is a SHARD application. Longer partitions mean\n"
      "staler membership edits, more dangling references, and more degraded\n"
      "lookups; a single compensating SCRUB after the heal restores\n"
      "referential integrity to $0 everywhere.\n");
  return 0;
}
