// E20 — per-transaction substrate cost vs run length (the O(history) →
// O(window) tentpole, measured).
//
// Before prefix interning, incremental checkpointing, and bounded repair,
// three hot paths scaled with total history: every submit copied the full
// known-timestamp set into its Record (O(n) time and retained memory per
// transaction), compaction rebuilt checkpoint prefixes by replay, and the
// repair store retained every wire message ever seen. This harness drives
// one long-running cluster at three run lengths (10k / 100k / 1M submits
// by default) under the full window-bounded configuration — compaction on,
// geometric checkpoint bound, repair-store pruning, capped repair batches —
// and reports:
//
//  * per-submit wall time, overall and for the first vs last decile of the
//    run (tail_ratio ~ 1.0 is the flatness claim; O(history) code makes the
//    last decile arbitrarily slower than the first);
//  * retained-footprint counters from Cluster::metrics() — log entries,
//    checkpoints, repair-store messages, prefix slots — which are exactly
//    reproducible for a given (seed, scale) and gate the CI regression;
//  * slots_per_record, the retained-timestamp RSS proxy (~ #nodes,
//    independent of run length; the old representation retained ~n/2
//    timestamps per record).
//
// Emits one JSON document (BENCH_e20.json in CI); bench/compare_bench.py
// diffs it against bench/baselines/BENCH_e20.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<100, 900, 300>;
using Clock = std::chrono::steady_clock;

struct Point {
  std::size_t n = 0;
  double wall_seconds = 0.0;
  double per_submit_us = 0.0;
  double first_decile_us = 0.0;
  double last_decile_us = 0.0;
  double tail_ratio = 0.0;
  double slots_per_record = 0.0;
  std::string metrics_json;
};

/// One run: `n` submissions round-robined over a 3-node LAN at 1 kHz of
/// simulated time, with every window-bounding mechanism enabled. Returns
/// wall-clock timing of the submit loop (scheduler drain included — that IS
/// the substrate cost) plus the end-of-run metrics snapshot.
Point run_scale(std::size_t n) {
  harness::Scenario sc = harness::lan(3);
  sc.name = "e20";
  sc.anti_entropy_interval = 0.5;
  sc.compaction = true;
  sc.checkpoint_interval = 32;
  sc.max_checkpoints = 12;
  sc.prune_repair_store = true;
  sc.max_repairs_per_message = 64;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(0xe20));

  // Deterministic request/cancel cycle over a bounded person population:
  // state size stays constant, so the apply cost cannot mask a substrate
  // trend.
  const auto request_for = [](std::size_t i) {
    const auto p = static_cast<al::Person>(i % 400 + 1);
    return (i / 400) % 2 == 0 ? al::Request::request(p)
                              : al::Request::cancel(p);
  };

  Point pt;
  pt.n = n;
  const std::size_t decile = n / 10;
  std::vector<double> decile_seconds;
  double t = 0.0;
  const auto t0 = Clock::now();
  auto decile_start = t0;
  for (std::size_t i = 0; i < n; ++i) {
    cluster.submit_now(static_cast<core::NodeId>(i % 3), request_for(i));
    t += 0.001;
    cluster.run_until(t);
    if (decile != 0 && (i + 1) % decile == 0) {
      const auto now = Clock::now();
      decile_seconds.push_back(
          std::chrono::duration<double>(now - decile_start).count());
      decile_start = now;
    }
  }
  pt.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  pt.per_submit_us = pt.wall_seconds / static_cast<double>(n) * 1e6;
  if (decile_seconds.size() >= 2) {
    pt.first_decile_us =
        decile_seconds.front() / static_cast<double>(decile) * 1e6;
    pt.last_decile_us =
        decile_seconds.back() / static_cast<double>(decile) * 1e6;
    pt.tail_ratio = pt.first_decile_us > 0.0
                        ? pt.last_decile_us / pt.first_decile_us
                        : 0.0;
  }

  // Retention snapshot at quiescence (settle excluded from the timing: it
  // is teardown, not per-transaction cost).
  cluster.settle();
  obs::MetricsRegistry reg = cluster.metrics();
  pt.slots_per_record =
      static_cast<double>(reg.counters().at("retained.prefix_slots")) /
      static_cast<double>(cluster.total_originated());
  reg.set_gauge("e20.per_submit_us", pt.per_submit_us);
  reg.set_gauge("e20.tail_ratio", pt.tail_ratio);
  reg.set_gauge("e20.slots_per_record", pt.slots_per_record);
  pt.metrics_json = reg.to_json();
  return pt;
}

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: small scales for local smoke runs; CI uses the full ladder.
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{1'000, 5'000, 20'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};

  std::vector<Point> points;
  for (const std::size_t n : scales) points.push_back(run_scale(n));

  const double flatness =
      points.front().per_submit_us > 0.0
          ? points.back().per_submit_us / points.front().per_submit_us
          : 0.0;

  std::printf("{\n  \"experiment\": \"e20_submit_scaling\",\n");
  std::printf("  \"nodes\": 3, \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"flatness_ratio\": %.4f,\n", flatness);
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::printf("    {\"n\": %zu, \"wall_seconds\": %.3f, "
                "\"per_submit_us\": %.3f, \"first_decile_us\": %.3f, "
                "\"last_decile_us\": %.3f, \"tail_ratio\": %.4f, "
                "\"slots_per_record\": %.4f,\n",
                p.n, p.wall_seconds, p.per_submit_us, p.first_decile_us,
                p.last_decile_us, p.tail_ratio, p.slots_per_record);
    std::printf("     \"metrics\":\n");
    print_indented(p.metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
