// E25 — open-loop saturation: SoA log + batched floods vs the AoS /
// unbatched ablations.
//
// An open-loop driver offers load the cluster cannot push back on: each
// simulated tick submits a burst of requests in ONE scheduler dispatch (the
// shape a real ingress queue drains in), with
//
//   * Zipfian key popularity (s = 1) over a fixed person universe, sampled
//     from a precomputed CDF, and
//   * a time-varying arrival curve — a diurnal triangle wave (x0.5 .. x1.5
//     around the base rate) with a 3x flash crowd pinned mid-run —
//     quantized to integer submissions per tick by an exact milli-tx
//     accumulator (no libm in the arrival path, so the schedule is
//     bit-identical on every machine).
//
// The SAME precomputed schedule drives three rows:
//
//   soa-batched      SoA/arena UpdateLog, max_batch = 8   (the optimized path)
//   soa-unbatched    SoA/arena UpdateLog, max_batch = 0   (batching ablation)
//   aos-unbatched    AoS UpdateLog,       max_batch = 0   (the old hot path)
//
// Everything simulated is deterministic per row — txs, packet and batch
// counters, retention footprints, convergence — and gated by
// compare_bench.py e25 against bench/baselines/BENCH_e25.json. Wall-clock
// saturation throughput (tx/s/node) and the derived
// speedup_vs_aos_unbatched are machine-dependent and reported; the gate
// only enforces the speedup floor (>= 1.5x, the constant-factor claim) —
// a within-run ratio of the same binary on the same machine, like e10's.
// A standalone merge replay (sliding-window disorder over 20k entries)
// reports p50/p99 single-insert merge latency for both layouts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"
#include "shard/update_log.hpp"
#include "sim/rng.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<50, 900, 300>;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kNodes = 4;
constexpr double kTickSeconds = 0.05;
constexpr std::size_t kTicks = 600;  // 30 simulated seconds.
constexpr double kHorizon = kTickSeconds * static_cast<double>(kTicks + 2);
constexpr std::size_t kZipfKeys = 400;
constexpr std::uint64_t kSeed = 0xe25;

// Arrival curve, in exact integer milli-transactions per tick.
constexpr std::uint64_t kBaseMilliPerTick = 25000;  // 25 tx/tick average.
constexpr std::size_t kDiurnalPeriod = 400;         // 20 s triangle wave.
constexpr std::size_t kFlashStart = 240, kFlashEnd = 300;  // 12 s .. 15 s.
constexpr std::uint64_t kFlashFactor = 3;

/// Diurnal modulation in milli (500 = x0.5 trough, 1500 = x1.5 peak).
std::uint64_t diurnal_milli(std::size_t tick) {
  const std::size_t phase = tick % kDiurnalPeriod;
  return phase < kDiurnalPeriod / 2
             ? 500 + 5 * phase
             : 1500 - 5 * (phase - kDiurnalPeriod / 2);
}

/// Offered submissions on tick `tick`, carrying the fractional remainder in
/// `acc_milli` so the long-run rate matches the curve exactly.
std::size_t tick_submissions(std::size_t tick, std::uint64_t* acc_milli) {
  std::uint64_t milli = kBaseMilliPerTick * diurnal_milli(tick) / 1000;
  if (tick >= kFlashStart && tick < kFlashEnd) milli *= kFlashFactor;
  *acc_milli += milli;
  const std::size_t n = static_cast<std::size_t>(*acc_milli / 1000);
  *acc_milli %= 1000;
  return n;
}

/// One pre-generated submission: which node originates which request.
struct Submission {
  core::NodeId node;
  al::Request request;
};

/// Zipf(s = 1) CDF over persons 1..kZipfKeys. Plain IEEE adds/divides —
/// deterministic across machines.
std::vector<double> zipf_cdf() {
  std::vector<double> cdf(kZipfKeys);
  double total = 0.0;
  for (std::size_t i = 0; i < kZipfKeys; ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cdf[i] = total;
  }
  return cdf;
}

al::Person sample_person(const std::vector<double>& cdf, sim::Rng& rng) {
  const double u = rng.uniform(0.0, cdf.back());
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<al::Person>(1 + (it - cdf.begin()));
}

/// The full open-loop schedule: per tick, the burst submitted in one
/// dispatch. Generated once and replayed identically against every row.
std::vector<std::vector<Submission>> build_schedule(std::size_t* total) {
  sim::Rng rng(kSeed);
  const std::vector<double> cdf = zipf_cdf();
  std::vector<std::vector<Submission>> schedule(kTicks);
  std::uint64_t acc = 0;
  std::size_t rr = 0;
  for (std::size_t k = 0; k < kTicks; ++k) {
    const std::size_t n = tick_submissions(k, &acc);
    schedule[k].reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const al::Person p = sample_person(cdf, rng);
      const al::Request req = rng.bernoulli(0.3) ? al::Request::cancel(p)
                                                 : al::Request::request(p);
      schedule[k].push_back(
          {static_cast<core::NodeId>(rr++ % kNodes), req});
    }
  }
  *total = 0;
  for (const auto& burst : schedule) *total += burst.size();
  return schedule;
}

struct Row {
  const char* mode;
  std::size_t max_batch;
  const char* layout;
  bool converged = false;
  bool decisions_ok = false;
  double wall_seconds = 0.0;
  double tx_per_sec_per_node = 0.0;
  std::vector<Air::State> states;
  std::string metrics_json;
};

template <shard::LogLayout Layout>
Row run_row(const char* mode, const char* layout, std::size_t max_batch,
            const std::vector<std::vector<Submission>>& schedule,
            std::size_t total) {
  harness::Scenario sc = harness::wan(kNodes);
  sc.compaction = true;
  sc.checkpoint_interval = 32;
  sc.max_checkpoints = 8;
  shard::ClusterConfig cfg = sc.cluster_config<Air>(kSeed ^ 0x5a7);
  cfg.broadcast.max_batch = max_batch;
  shard::Cluster<Air, Layout> cluster(cfg);

  for (std::size_t k = 0; k < kTicks; ++k) {
    if (schedule[k].empty()) continue;
    const std::vector<Submission>& burst = schedule[k];
    cluster.scheduler().schedule_at(
        kTickSeconds * static_cast<double>(k + 1), [&cluster, &burst] {
          for (const Submission& s : burst) {
            cluster.node(s.node).try_submit(s.request,
                                            cluster.scheduler().now());
          }
        });
  }

  const Clock::time_point t0 = Clock::now();
  cluster.run_until(kHorizon);
  cluster.settle();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  Row row;
  row.mode = mode;
  row.max_batch = max_batch;
  row.layout = layout;
  row.converged = cluster.converged();
  row.decisions_ok = cluster.aggregate_engine_stats().decisions_run == total;
  row.wall_seconds = wall;
  row.tx_per_sec_per_node =
      static_cast<double>(total) / wall / static_cast<double>(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    row.states.push_back(cluster.node(static_cast<core::NodeId>(n)).state());
  }
  obs::MetricsRegistry reg;
  reg.add_counter("e25.txs", total);
  reg.merge_from(cluster.metrics());
  row.metrics_json = reg.to_json();
  return row;
}

// ---------------------------------------------------------------------------
// Standalone merge replay: single-insert latency per layout
// ---------------------------------------------------------------------------

struct ReplayStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double total_ms = 0.0;
};

constexpr std::size_t kReplayEntries = 20000;
constexpr std::size_t kReplayWindow = 512;

/// Arrival order for the replay: timestamp i delayed by at most
/// kReplayWindow positions (sliding-window disorder — the WAN shape that
/// produces mid-inserts without degenerate full shuffles).
std::vector<std::size_t> replay_order() {
  sim::Rng rng(kSeed ^ 0x9e25);
  std::vector<std::size_t> order(kReplayEntries);
  for (std::size_t i = 0; i < kReplayEntries; ++i) order[i] = i;
  for (std::size_t i = kReplayEntries; i-- > 1;) {
    const std::size_t lo = i > kReplayWindow ? i - kReplayWindow : 0;
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(i)));
    std::swap(order[i], order[j]);
  }
  return order;
}

template <shard::LogLayout Layout>
ReplayStats run_replay(const std::vector<std::size_t>& order) {
  // Dense checkpoints (no geometric thinning): a mid-insert replays at most
  // one interval past its displacement, so the timing isolates the layout's
  // scan + shift cost rather than checkpoint-placement policy.
  shard::UpdateLog<Air, Layout> log(/*checkpoint_interval=*/32,
                                    /*max_checkpoints=*/0);
  std::vector<double> ns;
  ns.reserve(order.size());
  double total = 0.0;
  for (const std::size_t i : order) {
    const core::Timestamp ts{static_cast<std::uint64_t>(i + 1),
                             static_cast<core::NodeId>(i % kNodes)};
    const al::Update u{al::Update::Kind::kRequest,
                       static_cast<al::Person>(1 + i % kZipfKeys)};
    const Clock::time_point t0 = Clock::now();
    log.insert({ts, u});
    const double d =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    ns.push_back(d);
    total += d;
  }
  std::sort(ns.begin(), ns.end());
  ReplayStats st;
  st.p50_us = ns[ns.size() / 2] / 1e3;
  st.p99_us = ns[ns.size() * 99 / 100] / 1e3;
  st.total_ms = total / 1e6;
  return st;
}

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

}  // namespace

int main() {
  std::size_t total = 0;
  const std::vector<std::vector<Submission>> schedule =
      build_schedule(&total);

  std::vector<Row> rows;
  rows.push_back(run_row<shard::LogLayout::kSoA>("soa-batched", "soa", 8,
                                                 schedule, total));
  rows.push_back(run_row<shard::LogLayout::kSoA>("soa-unbatched", "soa", 0,
                                                 schedule, total));
  rows.push_back(run_row<shard::LogLayout::kAoS>("aos-unbatched", "aos", 0,
                                                 schedule, total));

  // Convergence is order-independent (same merged set, same timestamp
  // order), so all three rows must land on identical replica states.
  bool rows_agree = true;
  for (const Row& r : rows) {
    for (std::size_t n = 0; n < kNodes; ++n) {
      rows_agree = rows_agree && r.states[n] == rows[0].states[n];
    }
  }
  const double speedup =
      rows[0].tx_per_sec_per_node / rows[2].tx_per_sec_per_node;

  const std::vector<std::size_t> order = replay_order();
  const ReplayStats soa = run_replay<shard::LogLayout::kSoA>(order);
  const ReplayStats aos = run_replay<shard::LogLayout::kAoS>(order);

  std::printf("{\n  \"experiment\": \"e25_saturation\",\n");
  std::printf("  \"nodes\": %zu, \"ticks\": %zu, \"horizon\": %.2f,\n",
              kNodes, kTicks, kHorizon);
  std::printf("  \"zipf_keys\": %zu, \"txs\": %zu,\n", kZipfKeys, total);
  std::printf("  \"rows_agree\": %s,\n", rows_agree ? "true" : "false");
  std::printf("  \"speedup_vs_aos_unbatched\": %.3f,\n", speedup);
  std::printf("  \"merge_replay\": {\n");
  std::printf("    \"entries\": %zu, \"window\": %zu,\n", kReplayEntries,
              kReplayWindow);
  std::printf("    \"soa\": {\"p50_us\": %.3f, \"p99_us\": %.3f, "
              "\"total_ms\": %.2f},\n",
              soa.p50_us, soa.p99_us, soa.total_ms);
  std::printf("    \"aos\": {\"p50_us\": %.3f, \"p99_us\": %.3f, "
              "\"total_ms\": %.2f}\n  },\n",
              aos.p50_us, aos.p99_us, aos.total_ms);
  // The offered-load curve (deterministic), bucketed per simulated second —
  // CI renders this as the throughput-curve artifact.
  std::printf("  \"curve\": [");
  for (std::size_t s = 0; s * 20 < kTicks; ++s) {
    std::size_t in_second = 0;
    for (std::size_t k = s * 20; k < (s + 1) * 20 && k < kTicks; ++k) {
      in_second += schedule[k].size();
    }
    std::printf("%s{\"t\": %zu, \"offered\": %zu}", s == 0 ? "" : ", ",
                s + 1, in_second);
  }
  std::printf("],\n");
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"mode\": \"%s\", \"layout\": \"%s\", "
                "\"max_batch\": %zu,\n",
                r.mode, r.layout, r.max_batch);
    std::printf("     \"converged\": %s, \"decisions_ok\": %s,\n",
                r.converged ? "true" : "false",
                r.decisions_ok ? "true" : "false");
    std::printf("     \"wall_seconds\": %.3f, "
                "\"tx_per_sec_per_node\": %.1f,\n",
                r.wall_seconds, r.tx_per_sec_per_node);
    std::printf("     \"metrics\":\n");
    print_indented(r.metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
