// E24 — epoch-aware flame attribution and sharded-tracer equivalence.
//
// Two claims are gated here. First, attribution: segmenting the canonical
// crash-chaos run into partition epochs and folding every update's causal
// chain into stage-weighted flame trees (obs/epoch.hpp + obs/flame.hpp)
// yields deterministic numbers — same (seed, config), same epoch census,
// same stage weights, same folded-stack bytes — so the latency-attribution
// pipeline itself is pinned against its committed baseline. Second,
// equivalence: the per-node sharded tracer's merged stream must be
// byte-identical to the legacy single-ring tracer's for the same seed
// (serialize() bytes compared both ways: sink capture and k-way ring
// merge), so sharding is a pure representation change.
//
// Output: one JSON document — per-seed attribution census + equivalence
// booleans + the merged metrics registry (the epoch.* family included).
// The stdout JSON is a pure function of the seeds (the repo-wide
// determinism probe runs this twice and cmp's); wall-clock flame-tree
// build times go to stderr and are never gated. With an argument, writes
// per-seed folded stacks and Perfetto slices into that directory (the CI
// artifacts).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

constexpr double kHorizon = 20.0;

void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

/// The canonical crash-chaos shape (partition + two crashes, one amnesia)
/// the chaos tiers, E19, E21 and trace_diff all use.
harness::Scenario canonical() {
  harness::Scenario sc = harness::wan(4);
  sc.faults.split_halves(4, 2, 6.0, 10.0)
      .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
      .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia);
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 1 << 15;
  return sc;
}

struct Run {
  std::vector<obs::Event> capture;  ///< full stream via sink
  std::vector<obs::Event> merged;   ///< tracer()->ring()
  obs::MetricsRegistry metrics;
};

Run run_once(std::uint64_t seed, bool sharded) {
  harness::Scenario sc = canonical();
  sc.trace.sharded = sharded;
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = kHorizon;
  w.request_rate = 6.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.15;
  w.max_persons = 250;
  harness::drive_airline(cluster, w, seed ^ 0x5EED);
  cluster.run_until(kHorizon);
  cluster.settle();
  Run r;
  r.capture = capture.events();
  r.merged = cluster.tracer()->ring();
  r.metrics = cluster.metrics();
  return r;
}

struct SeedResult {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::size_t epochs = 0;
  std::uint64_t transitions = 0;
  std::uint64_t coalesced = 0;
  std::size_t updates_profiled = 0;
  std::size_t updates_complete = 0;
  std::size_t folded_bytes = 0;
  bool merged_matches_capture = false;  ///< k-way merge == record order
  bool sharded_matches_legacy = false;  ///< sharded bytes == legacy bytes
  bool clean = true;                    ///< causal validator verdict
};

}  // namespace

int main(int argc, char** argv) {
  const std::string artifact_dir = argc > 1 ? argv[1] : "";
  const std::uint64_t kSeeds[] = {0xE24A, 0xE24B, 0xE24C};
  std::vector<SeedResult> rows;
  obs::MetricsRegistry reg;

  for (const std::uint64_t seed : kSeeds) {
    const Run sharded = run_once(seed, /*sharded=*/true);
    const Run legacy = run_once(seed, /*sharded=*/false);

    SeedResult r;
    r.seed = seed;
    r.events = sharded.capture.size();
    // Equivalence gates: the sharded capture must match the legacy capture
    // byte-for-byte, and the sharded tracer's k-way ring merge must
    // reconstruct that same global record order.
    r.sharded_matches_legacy =
        obs::serialize(sharded.capture) == obs::serialize(legacy.capture);
    r.merged_matches_capture =
        obs::serialize(sharded.merged) == obs::serialize(sharded.capture);

    const auto t0 = std::chrono::steady_clock::now();
    const obs::EpochIndex epochs = obs::EpochIndex::build(sharded.capture);
    const obs::CausalGraph graph = obs::CausalGraph::build(sharded.capture);
    const obs::FlameProfile flame =
        obs::FlameProfile::build(sharded.capture, graph, epochs);
    const auto t1 = std::chrono::steady_clock::now();
    // Wall clock: stderr only, so stdout stays seed-deterministic.
    std::fprintf(stderr, "seed %llx: flame build %.3f ms\n",
                 static_cast<unsigned long long>(seed),
                 std::chrono::duration<double, std::milli>(t1 - t0).count());
    r.clean = graph.validate().ok();
    r.epochs = epochs.size();
    r.transitions = epochs.transitions();
    r.coalesced = epochs.coalesced();
    r.updates_profiled = flame.timings().size();
    for (const obs::UpdateTiming& ut : flame.timings()) {
      if (ut.complete) ++r.updates_complete;
    }
    const std::string folded = flame.folded();
    r.folded_bytes = folded.size();
    rows.push_back(r);
    reg.merge_from(sharded.metrics);

    if (!artifact_dir.empty()) {
      char name[64];
      std::snprintf(name, sizeof name, "/e24_seed%llx.folded",
                    static_cast<unsigned long long>(seed));
      std::ofstream(artifact_dir + name, std::ios::binary) << folded;
      std::snprintf(name, sizeof name, "/e24_seed%llx.perfetto.json",
                    static_cast<unsigned long long>(seed));
      std::ofstream(artifact_dir + name, std::ios::binary)
          << flame.perfetto_json();
    }
  }

  bool all_ok = true;
  std::printf("{\n  \"experiment\": \"e24_flame_attribution\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": 4, \"seeds\": %zu,\n",
              kHorizon, std::size(kSeeds));
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SeedResult& r = rows[i];
    all_ok = all_ok && r.merged_matches_capture && r.sharded_matches_legacy &&
             r.clean;
    std::printf(
        "    {\"seed\": %llu, \"events\": %zu, \"epochs\": %zu, "
        "\"transitions\": %llu, \"coalesced\": %llu, "
        "\"updates_profiled\": %zu, \"updates_complete\": %zu, "
        "\"folded_bytes\": %zu, \"merged_matches_capture\": %s, "
        "\"sharded_matches_legacy\": %s, \"clean\": %s}%s\n",
        static_cast<unsigned long long>(r.seed), r.events, r.epochs,
        static_cast<unsigned long long>(r.transitions),
        static_cast<unsigned long long>(r.coalesced), r.updates_profiled,
        r.updates_complete, r.folded_bytes,
        r.merged_matches_capture ? "true" : "false",
        r.sharded_matches_legacy ? "true" : "false",
        r.clean ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_ok\": %s,\n", all_ok ? "true" : "false");
  std::printf("  \"metrics\":\n");
  print_indented(reg.to_json(), "    ");
  std::printf("\n}\n");
  return all_ok ? 0 : 1;
}
