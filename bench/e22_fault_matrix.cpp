// E22 — availability and recovery lag across the fault matrix.
//
// One row per fault mode of the unified sim::FaultPlan surface, each run
// over the same airline workload and seed set:
//
//   clean            no faults (baseline row)
//   crash-durable    one node down 5s, log survives
//   crash-amnesia    one node down 5s, volatile state lost, outbox replayed
//   stale-disk       one node down 5s, restart from a stale checkpoint
//                    (40% of the merged log lost and re-merged)
//   rack-loss        correlated: a 2-node rack is partitioned AND crashed
//   rolling-restart  every node restarted once, one at a time (upgrade)
//   mid-broadcast    a crash pinned between the stable-outbox append and
//                    the first flood send (write-ahead intention boundary)
//
// Per row: the merged Cluster::metrics() registries across seeds plus
// derived e22.* gauges — availability (share of submissions accepted),
// mean recovery lag (simulated time a restarted node spends catching up),
// mean convergence lag (time past the schedule's all-clear until every
// replica knows every update), and checker_clean (the §3.1 checker and
// convergence held on every run). Everything emitted is a deterministic
// function of (mode, seeds): wall-clock never enters the output, so the
// JSON is byte-comparable across machines and gated by
// compare_bench.py e22 against bench/baselines/BENCH_e22.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

constexpr double kHorizon = 30.0;
constexpr std::size_t kNodes = 4;

/// One fault-matrix row: a named FaultPlan builder.
struct Mode {
  const char* name;
  sim::FaultPlan (*build)(std::uint64_t seed);
};

sim::FaultPlan clean(std::uint64_t) { return sim::FaultPlan{}; }

sim::FaultPlan crash_durable(std::uint64_t) {
  return sim::FaultPlan{}.crash(2, 8.0, 13.0, sim::RecoveryMode::kDurable);
}

sim::FaultPlan crash_amnesia(std::uint64_t) {
  return sim::FaultPlan{}.crash(2, 8.0, 13.0, sim::RecoveryMode::kAmnesia);
}

sim::FaultPlan stale_disk(std::uint64_t) {
  return sim::FaultPlan{}.disk_failure(2, 8.0, 13.0, /*keep_fraction=*/0.6);
}

sim::FaultPlan rack_loss(std::uint64_t) {
  return sim::FaultPlan{}.rack_power_loss({2, 3}, kNodes, 8.0, 13.0);
}

sim::FaultPlan rolling(std::uint64_t) {
  return sim::FaultPlan{}.rolling_restart(kNodes, 6.0, /*down_for=*/3.0,
                                          /*gap=*/1.0);
}

sim::FaultPlan mid_broadcast(std::uint64_t) {
  return sim::FaultPlan{}.crash_mid_broadcast(2, 4, /*down_for=*/5.0);
}

constexpr Mode kModes[] = {
    {"clean", clean},
    {"crash-durable", crash_durable},
    {"crash-amnesia", crash_amnesia},
    {"stale-disk", stale_disk},
    {"rack-loss", rack_loss},
    {"rolling-restart", rolling},
    {"mid-broadcast", mid_broadcast},
};

struct Row {
  const char* mode;
  bool checker_clean = true;
  std::string metrics_json;
};

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

}  // namespace

int main() {
  const std::uint64_t kSeeds[] = {221, 222, 223};
  const std::size_t runs = std::size(kSeeds);
  std::vector<Row> rows;

  for (const Mode& mode : kModes) {
    Row row;
    row.mode = mode.name;
    obs::MetricsRegistry reg;
    double convergence_lag = 0.0;
    for (const std::uint64_t seed : kSeeds) {
      harness::Scenario sc = harness::wan(kNodes);
      sc.faults = mode.build(seed);
      shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed ^ 0xe22));
      harness::AirlineWorkload w;
      w.duration = kHorizon;
      w.request_rate = 4.0;
      w.mover_rate = 4.0;
      w.cancel_fraction = 0.1;
      w.max_persons = 250;
      harness::drive_airline(cluster, w, seed ^ 0x5eed);

      cluster.run_until(kHorizon);
      // Convergence lag: simulated time past the last scheduled failure
      // (mid-broadcast restarts are dynamic; the loop below covers them)
      // until every replica knows every update.
      const double all_clear = std::max(kHorizon, sc.faults.all_clear_time());
      cluster.run_until(all_clear);
      double t = all_clear;
      while (!cluster.converged() && t < all_clear + 1e4) {
        t += 0.25;
        cluster.run_until(t);
      }
      convergence_lag += t - all_clear;

      const auto exec = cluster.execution();
      row.checker_clean =
          row.checker_clean &&
          analysis::check_prefix_subsequence_condition(exec).ok() &&
          analysis::is_transitive(exec) && cluster.converged() &&
          cluster.node(0).state() == exec.final_state() &&
          cluster.aggregate_engine_stats().decisions_run == exec.size();
      reg.add_counter("e22.txs", exec.size());
      reg.merge_from(cluster.metrics());
    }

    // Derived row gauges, computed from the merged counters so the
    // registry is self-describing.
    const std::uint64_t scheduled =
        reg.counters().at("cluster.scheduled_submissions");
    const std::uint64_t rejected =
        reg.counters().at("engine.rejected_submissions");
    const std::uint64_t crashes = reg.counters().at("engine.crashes");
    reg.add_counter("e22.runs", runs);
    reg.add_counter("e22.checker_clean", row.checker_clean ? 1 : 0);
    reg.set_gauge("e22.availability",
                  scheduled == 0 ? 1.0
                                 : 1.0 - static_cast<double>(rejected) /
                                             static_cast<double>(scheduled));
    reg.set_gauge("e22.mean_recovery_lag",
                  crashes == 0 ? 0.0
                               : reg.gauges().at("engine.recovery_lag") /
                                     static_cast<double>(crashes));
    reg.set_gauge("e22.mean_convergence_lag",
                  convergence_lag / static_cast<double>(runs));
    row.metrics_json = reg.to_json();
    rows.push_back(row);
  }

  std::printf("{\n  \"experiment\": \"e22_fault_matrix\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": %zu, \"seeds\": %zu,\n",
              kHorizon, kNodes, runs);
  std::printf("  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"mode\": \"%s\", \"checker_clean\": %s,\n", r.mode,
                r.checker_clean ? "true" : "false");
    std::printf("     \"metrics\":\n");
    print_indented(r.metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
