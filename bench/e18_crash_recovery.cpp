// E18 — availability and convergence lag under node crash/restart fault
// injection (section 1.2's availability narrative, extended to node death).
//
// Sweep the crash rate (random crash/restart schedules, durable and amnesia
// recovery mixed 50/50) over a fixed airline workload and measure what the
// fault injection costs: the share of submissions rejected because their
// origin was down (availability), how long restarted nodes lag behind the
// cluster frontier (recovery lag), how much they re-merge to catch up, and
// how long after the last failure the cluster needs to reconverge
// (convergence lag).
//
// Each sweep point is one obs::MetricsRegistry: the per-seed
// Cluster::metrics() snapshots merged (counters and gauges summed across
// seeds) plus derived e18.* availability/lag gauges. The emitted JSON embeds
// each registry via MetricsRegistry::to_json — the machine-readable
// counterpart of the E12 availability table, in the same schema as every
// other metrics consumer.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"
#include "sim/fault_plan.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

struct Point {
  int crash_events = 0;
  bool checker_clean = true;
  std::string metrics_json;
};

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

}  // namespace

int main() {
  constexpr double kHorizon = 30.0;
  const std::uint64_t kSeeds[] = {181, 182, 183};
  const std::size_t runs = std::size(kSeeds);
  std::vector<Point> points;

  for (const int crash_events : {0, 2, 4, 8, 12}) {
    Point pt;
    pt.crash_events = crash_events;
    obs::MetricsRegistry reg;
    double convergence_lag = 0.0;
    for (const std::uint64_t seed : kSeeds) {
      harness::Scenario sc = harness::wan(4);
      sc.faults = sim::FaultPlan(seed);
      sc.faults.random_crashes(sc.num_nodes, kHorizon, crash_events, 1.0,
                               5.0, 0.5);
      shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed ^ 0xe18));
      harness::AirlineWorkload w;
      w.duration = kHorizon;
      w.request_rate = 4.0;
      w.mover_rate = 4.0;
      w.cancel_fraction = 0.1;
      w.max_persons = 250;
      harness::drive_airline(cluster, w, seed ^ 0x5eed);

      cluster.run_until(kHorizon);
      // Convergence lag: simulated time past the last failure (workload
      // end, partition heal, or final restart — whichever is latest) until
      // every replica knows every update.
      const double all_clear = std::max(kHorizon, sc.faults.all_clear_time());
      cluster.run_until(all_clear);
      double t = all_clear;
      while (!cluster.converged() && t < all_clear + 1e4) {
        t += 0.25;
        cluster.run_until(t);
      }
      convergence_lag += t - all_clear;

      const auto exec = cluster.execution();
      pt.checker_clean = pt.checker_clean &&
                         analysis::check_prefix_subsequence_condition(exec).ok() &&
                         cluster.converged();
      reg.add_counter("e18.txs", exec.size());
      reg.merge_from(cluster.metrics());
    }

    // Derived sweep-point gauges, computed from the merged counters so the
    // registry is self-describing.
    const std::uint64_t scheduled =
        reg.counters().at("cluster.scheduled_submissions");
    const std::uint64_t rejected =
        reg.counters().at("engine.rejected_submissions");
    const std::uint64_t crashes = reg.counters().at("engine.crashes");
    reg.add_counter("e18.crash_events_requested",
                    static_cast<std::uint64_t>(crash_events));
    reg.add_counter("e18.runs", runs);
    reg.add_counter("e18.checker_clean", pt.checker_clean ? 1 : 0);
    reg.set_gauge("e18.availability",
                  scheduled == 0 ? 1.0
                                 : 1.0 - static_cast<double>(rejected) /
                                             static_cast<double>(scheduled));
    reg.set_gauge("e18.mean_recovery_lag",
                  crashes == 0 ? 0.0
                               : reg.gauges().at("engine.recovery_lag") /
                                     static_cast<double>(crashes));
    reg.set_gauge("e18.mean_convergence_lag",
                  convergence_lag / static_cast<double>(runs));
    pt.metrics_json = reg.to_json();
    points.push_back(pt);
  }

  std::printf("{\n  \"experiment\": \"e18_crash_recovery\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": 4, \"seeds\": %zu,\n", kHorizon,
              runs);
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::printf("    {\"crash_events_requested\": %d, \"checker_clean\": %s,\n",
                p.crash_events, p.checker_clean ? "true" : "false");
    std::printf("     \"metrics\":\n");
    print_indented(p.metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
