// E18 — availability and convergence lag under node crash/restart fault
// injection (section 1.2's availability narrative, extended to node death).
//
// Sweep the crash rate (random crash/restart schedules, durable and amnesia
// recovery mixed 50/50) over a fixed airline workload and measure what the
// fault injection costs: the share of submissions rejected because their
// origin was down (availability), how long restarted nodes lag behind the
// cluster frontier (recovery lag), how much they re-merge to catch up, and
// how long after the last failure the cluster needs to reconverge
// (convergence lag). Emits one JSON document — the machine-readable
// counterpart of the E12 availability table.
#include <algorithm>
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

struct Point {
  int crash_events = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t amnesia_recoveries = 0;
  std::uint64_t catch_up_updates = 0;
  double downtime = 0.0;
  double recovery_lag = 0.0;
  double convergence_lag = 0.0;
  std::uint64_t txs = 0;
  bool checker_clean = true;
};

}  // namespace

int main() {
  constexpr double kHorizon = 30.0;
  const std::uint64_t kSeeds[] = {181, 182, 183};
  std::vector<Point> points;

  for (const int crash_events : {0, 2, 4, 8, 12}) {
    Point pt;
    pt.crash_events = crash_events;
    for (const std::uint64_t seed : kSeeds) {
      sim::Rng rng(seed);
      harness::Scenario sc = harness::wan(4);
      sc.crashes = sim::CrashSchedule::random(rng, sc.num_nodes, kHorizon,
                                              crash_events, 1.0, 5.0, 0.5);
      shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed ^ 0xe18));
      harness::AirlineWorkload w;
      w.duration = kHorizon;
      w.request_rate = 4.0;
      w.mover_rate = 4.0;
      w.cancel_fraction = 0.1;
      w.max_persons = 250;
      harness::drive_airline(cluster, w, seed ^ 0x5eed);

      cluster.run_until(kHorizon);
      // Convergence lag: simulated time past the last failure (workload
      // end, partition heal, or final restart — whichever is latest) until
      // every replica knows every update.
      const double all_clear =
          std::max({kHorizon, sc.partitions.last_heal_time(),
                    sc.crashes.last_restart_time()});
      cluster.run_until(all_clear);
      double t = all_clear;
      while (!cluster.converged() && t < all_clear + 1e4) {
        t += 0.25;
        cluster.run_until(t);
      }
      pt.convergence_lag += t - all_clear;

      const auto exec = cluster.execution();
      pt.txs += exec.size();
      pt.checker_clean = pt.checker_clean &&
                         analysis::check_prefix_subsequence_condition(exec).ok() &&
                         cluster.converged();
      pt.scheduled += cluster.scheduled_submissions();
      const shard::EngineStats agg = cluster.aggregate_engine_stats();
      pt.rejected += agg.rejected_submissions;
      pt.crashes += agg.crashes;
      pt.catch_up_updates += agg.catch_up_updates;
      pt.downtime += agg.downtime;
      pt.recovery_lag += agg.recovery_lag;
      for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
        pt.amnesia_recoveries +=
            cluster.node(n).broadcast_stats().amnesia_resets;
      }
    }
    points.push_back(pt);
  }

  const std::size_t runs = std::size(kSeeds);
  std::printf("{\n  \"experiment\": \"e18_crash_recovery\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": 4, \"seeds\": %zu,\n", kHorizon,
              runs);
  std::printf("  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const double availability =
        p.scheduled == 0
            ? 1.0
            : 1.0 - static_cast<double>(p.rejected) /
                        static_cast<double>(p.scheduled);
    const double mean_lag =
        p.crashes == 0 ? 0.0
                       : p.recovery_lag / static_cast<double>(p.crashes);
    std::printf(
        "    {\"crash_events_requested\": %d, \"crashes\": %llu, "
        "\"amnesia_recoveries\": %llu, \"txs\": %llu, "
        "\"scheduled_submissions\": %llu, \"rejected_submissions\": %llu, "
        "\"availability\": %.4f, \"total_downtime\": %.2f, "
        "\"mean_recovery_lag\": %.3f, \"catch_up_updates\": %llu, "
        "\"mean_convergence_lag\": %.3f, \"checker_clean\": %s}%s\n",
        p.crash_events, static_cast<unsigned long long>(p.crashes),
        static_cast<unsigned long long>(p.amnesia_recoveries),
        static_cast<unsigned long long>(p.txs),
        static_cast<unsigned long long>(p.scheduled),
        static_cast<unsigned long long>(p.rejected), availability, p.downtime,
        mean_lag, static_cast<unsigned long long>(p.catch_up_updates),
        p.convergence_lag / static_cast<double>(runs),
        p.checker_clean ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
