// E19 — observability overhead and trace export.
//
// Tracing must be effectively free when off (one null-pointer branch per
// would-be event) and cheap enough when on to leave on for any debugging
// run. This bench runs one fixed crash-chaos workload (partition + two
// crashes, one amnesia — the same shape the chaos test tier uses) in three
// modes and times each:
//
//   off      — Config::trace.enabled = false: the null-tracer fast path
//              every other experiment and test tier runs with;
//   ring     — tracing on, events retained only in the bounded ring;
//   perfetto — tracing on + a streaming PerfettoSink writing trace_event
//              JSON to disk at record time (worst case: per-event
//              formatting + I/O).
//
// Emits one JSON document with per-mode timings and overhead relative to
// "off", and leaves the perfetto-mode trace on disk (argv[1], default
// e19_trace.perfetto.json) — CI uploads it as the browsable run artifact.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/perfetto.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;
using Cluster = shard::Cluster<Air>;

constexpr double kHorizon = 20.0;
constexpr int kReps = 5;

harness::Scenario chaos_scenario(bool traced) {
  harness::Scenario sc = harness::wan(4);
  sc.faults.split_halves(4, 2, 6.0, 10.0)
      .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
      .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia);
  sc.trace.enabled = traced;
  sc.trace.ring_capacity = 1 << 15;
  return sc;
}

struct RunResult {
  double millis = 0.0;
  std::uint64_t events = 0;
  std::uint64_t txs = 0;
  std::string metrics_json;
};

/// One full workload run; `sink` (optional) receives every trace event.
RunResult run_once(bool traced, obs::Sink* sink) {
  const harness::Scenario sc = chaos_scenario(traced);
  const auto t0 = std::chrono::steady_clock::now();
  Cluster cluster(sc.cluster_config<Air>(0xE19));
  if (sink != nullptr && cluster.tracer() != nullptr) {
    cluster.tracer()->add_sink(sink);
  }
  harness::AirlineWorkload w;
  w.duration = kHorizon;
  w.request_rate = 6.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.15;
  w.max_persons = 250;
  harness::drive_airline(cluster, w, 0x5EED);
  cluster.run_until(kHorizon);
  cluster.settle();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.txs = cluster.total_originated();
  if (cluster.tracer() != nullptr) {
    r.events = cluster.tracer()->recorded();
    r.metrics_json = cluster.metrics().to_json();
  }
  return r;
}

struct Mode {
  const char* name;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  std::uint64_t events = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "e19_trace.perfetto.json";

  std::vector<Mode> modes;
  std::uint64_t txs = 0;
  std::string metrics_json;
  for (const char* name : {"off", "ring", "perfetto"}) {
    Mode m;
    m.name = name;
    m.min_ms = 1e300;
    const bool traced = std::string(name) != "off";
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult r;
      if (std::string(name) == "perfetto") {
        // Re-export every rep (overwrite) so the timing includes the full
        // per-event formatting + file I/O; the last file is the artifact.
        std::ofstream out(trace_path);
        obs::PerfettoSink sink(out);
        r = run_once(traced, &sink);
      } else {
        r = run_once(traced, nullptr);
      }
      m.mean_ms += r.millis;
      if (r.millis < m.min_ms) m.min_ms = r.millis;
      m.events = r.events;
      txs = r.txs;
      if (traced && rep == 0) metrics_json = r.metrics_json;
    }
    m.mean_ms /= kReps;
    modes.push_back(m);
  }

  // Overhead vs the null-tracer baseline, on the min (least noisy) timing.
  const double base = modes[0].min_ms;
  std::printf("{\n  \"experiment\": \"e19_trace_overhead\",\n");
  std::printf("  \"horizon\": %.1f, \"nodes\": 4, \"reps\": %d, "
              "\"txs\": %llu,\n",
              kHorizon, kReps, static_cast<unsigned long long>(txs));
  std::printf("  \"perfetto_artifact\": \"%s\",\n", trace_path.c_str());
  std::printf("  \"modes\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const Mode& m = modes[i];
    std::printf(
        "    {\"mode\": \"%s\", \"mean_ms\": %.3f, \"min_ms\": %.3f, "
        "\"events\": %llu, \"overhead_pct_vs_off\": %.2f}%s\n",
        m.name, m.mean_ms, m.min_ms,
        static_cast<unsigned long long>(m.events),
        base > 0.0 ? (m.min_ms - base) / base * 100.0 : 0.0,
        i + 1 < modes.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"metrics_snapshot\": %s\n}\n",
              metrics_json.empty() ? "null" : metrics_json.c_str());
  return 0;
}
