// E10 — substrate microbenchmarks (google-benchmark).
//
// Measures the engine mechanics the paper's section 3.3 cites from
// [BK]/[SKS]: "There are a number of optimizations which allow the system
// to avoid undoing large numbers of transactions, and optimized storage
// structures make this process even more efficient."
//
//  * tail appends (the common, in-order case) — O(1) apply;
//  * mid inserts with checkpoint intervals 0 (naive full replay) vs 16/64 —
//    the optimization's win;
//  * end-to-end cluster throughput;
//  * witness extraction cost (the section 5.3 analysis itself).
#include <benchmark/benchmark.h>

#include "apps/airline/airline.hpp"
#include "apps/airline/witness.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"
#include "shard/update_log.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<100, 900, 300>;
using Log = shard::UpdateLog<Air>;

al::Update random_update(sim::Rng& rng, std::uint32_t persons) {
  const auto p = static_cast<al::Person>(rng.uniform_int(1, persons));
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return {al::Update::Kind::kRequest, p};
    case 1:
      return {al::Update::Kind::kCancel, p};
    case 2:
      return {al::Update::Kind::kMoveUp, p};
    default:
      return {al::Update::Kind::kMoveDown, p};
  }
}

/// In-order merge: the fast path every up-to-date replica takes.
void BM_LogTailAppend(benchmark::State& state) {
  sim::Rng rng(1);
  std::uint64_t ts = 0;
  Log log(32);
  for (auto _ : state) {
    log.insert({core::Timestamp{++ts, 0}, random_update(rng, 64)});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogTailAppend);

/// Out-of-order merge at a given checkpoint interval: each iteration
/// inserts one late update into a log of `log_size` entries, near the tail
/// (the realistic case — slightly delayed messages).
void BM_LogMidInsert(benchmark::State& state) {
  const auto interval = static_cast<std::size_t>(state.range(0));
  const auto log_size = static_cast<std::size_t>(state.range(1));
  sim::Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Log log(interval);
    for (std::size_t i = 0; i < log_size; ++i) {
      log.insert({core::Timestamp{2 * (i + 1), 0}, random_update(rng, 64)});
    }
    // Late arrival landing ~32 entries before the tail.
    const std::uint64_t late_ts = 2 * (log_size - 32) + 1;
    state.ResumeTiming();
    log.insert({core::Timestamp{late_ts, 1}, random_update(rng, 64)});
  }
  state.SetLabel(interval == 0 ? "naive full replay" :
                 "checkpoint every " + std::to_string(interval));
}
// Iterations are capped: each iteration rebuilds the whole log outside the
// timed region (PauseTiming), so letting google-benchmark auto-scale the
// count would spend minutes on untimed setup for no extra precision.
BENCHMARK(BM_LogMidInsert)
    ->Args({0, 2048})
    ->Args({16, 2048})
    ->Args({64, 2048})
    ->Args({0, 8192})
    ->Args({16, 8192})
    ->Args({64, 8192})
    ->Iterations(300);

/// End-to-end: a 4-node WAN cluster processing the standard workload,
/// measured in transactions per simulated run.
void BM_ClusterEndToEnd(benchmark::State& state) {
  std::size_t txs = 0;
  for (auto _ : state) {
    harness::Scenario sc = harness::wan(4);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(7));
    harness::AirlineWorkload w;
    w.duration = 10.0;
    w.request_rate = 10.0;
    w.mover_rate = 10.0;
    w.max_persons = 400;
    harness::drive_airline(cluster, w, 8);
    cluster.run_until(w.duration);
    cluster.settle();
    txs += cluster.total_originated();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(txs));
}
BENCHMARK(BM_ClusterEndToEnd);

/// Witness extraction over a long update history (the section 5.3
/// analysis run as a query).
void BM_WitnessSearch(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<al::Update> seq;
  for (int i = 0; i < 4096; ++i) seq.push_back(random_update(rng, 64));
  al::Person p = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(al::find_assignment_witness(seq, p));
    benchmark::DoNotOptimize(al::find_waiting_witness(seq, p));
    p = p % 64 + 1;
  }
}
BENCHMARK(BM_WitnessSearch);

/// Broadcast fan-out cost: one payload through an 8-node lossless flood.
void BM_BroadcastFlood(benchmark::State& state) {
  for (auto _ : state) {
    harness::Scenario sc = harness::lan(8);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(9));
    for (int i = 0; i < 50; ++i) {
      cluster.submit_now(static_cast<core::NodeId>(i % 8),
                         al::Request::request(static_cast<al::Person>(i + 1)));
    }
    cluster.settle();
    benchmark::DoNotOptimize(cluster.converged());
  }
}
BENCHMARK(BM_BroadcastFlood);

}  // namespace

BENCHMARK_MAIN();
