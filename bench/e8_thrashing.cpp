// E8 — thrashing (section 3.1's closing warning).
//
// Two kinds of damage as information staleness grows:
//  * engine churn: out-of-order arrivals force undo/redo work;
//  * external-action conflicts: passengers granted a seat and then told
//    to give it back (possibly repeatedly) — "very undesirable, not just
//    because of its obvious inefficiency, but because of the external
//    effects of the conflicting transactions."
#include <cstdio>

#include "analysis/thrashing.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

}  // namespace

int main() {
  harness::Table table(
      "E8  Thrashing vs information staleness (3 seeds aggregated)",
      {"scenario", "txs", "mid-order inserts", "updates undone",
       "grant/rescind flips", "passengers affected", "worst passenger"});
  struct Net {
    const char* name;
    harness::Scenario sc;
  };
  const std::vector<Net> nets = {
      {"lan", harness::lan(4)},
      {"wan", harness::wan(4)},
      {"wan+5s partition", harness::partitioned_wan(4, 8.0, 13.0)},
      {"wan+15s partition", harness::partitioned_wan(4, 5.0, 20.0)},
      {"wan+25s partition", harness::partitioned_wan(4, 3.0, 28.0)},
  };
  for (const auto& net : nets) {
    std::size_t txs = 0, mids = 0, undone = 0, flips = 0, subjects = 0,
                worst = 0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      shard::Cluster<Air> cluster(net.sc.cluster_config<Air>(seed));
      harness::AirlineWorkload w;
      w.duration = 32.0;
      w.request_rate = 3.0;
      w.mover_rate = 6.0;
      w.move_down_fraction = 0.4;
      w.max_persons = 150;
      harness::drive_airline(cluster, w, seed ^ 0xe8);
      cluster.run_until(w.duration);
      cluster.settle();
      const auto stats = cluster.aggregate_engine_stats();
      mids += stats.mid_inserts;
      undone += stats.undone_updates;
      const auto exec = cluster.execution();
      txs += exec.size();
      const auto th = analysis::count_external_oscillations(
          exec, "grant-seat", "rescind-seat");
      flips += th.oscillations;
      subjects += th.subjects_affected;
      worst = std::max(worst, th.max_per_subject);
    }
    table.add_row({net.name, harness::Table::num(txs),
                   harness::Table::num(mids), harness::Table::num(undone),
                   harness::Table::num(flips), harness::Table::num(subjects),
                   harness::Table::num(worst)});
  }
  table.print();
  std::printf(
      "\nReading: on a LAN almost everything arrives in timestamp order —\n"
      "no undo/redo, no conflicting promises. As delay and partitions grow,\n"
      "the engines churn (undo/redo counts explode after the heal) and the\n"
      "system starts making — and breaking — promises to passengers.\n");
  return 0;
}
