// E4 — Theorems 20/21 (section 5.3): witness-based refined bounds vs the
// raw k-completeness bounds.
//
// "Generally, it is not actually necessary that the indicated transactions
// see all but k of the entire set of preceding transactions. Rather, only
// certain types of preceding transactions are important." The witness-k
// (persons whose assignment witness / last-cancel info the prefix misses)
// is far smaller than the raw missing count, so the refined step bound
// 900*k_w is far sharper than 900*k_raw.
#include <cstdio>

#include "analysis/airline_theorems.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

}  // namespace

int main() {
  harness::Table table(
      "E4  Theorem 20: witness-k vs raw-k on overbooking steps",
      {"partition (s)", "overbook steps", "mean raw k", "mean witness k",
       "sharpening", "worst raw bound $", "worst witness bound $",
       "Thm20 violations"});
  for (const double plen : {5.0, 15.0, 25.0}) {
    harness::Scenario sc = harness::partitioned_wan(4, 5.0, 5.0 + plen);
    shard::Cluster<Air> cluster(sc.cluster_config<Air>(77));
    harness::AirlineWorkload w;
    w.duration = 12.0 + plen;
    w.request_rate = 3.0;
    w.mover_rate = 4.0;
    w.max_persons = 150;
    harness::drive_airline(cluster, w, 78);
    cluster.run_until(w.duration);
    cluster.settle();
    const auto exec = cluster.execution();
    const auto states = exec.actual_states();

    std::size_t steps = 0;
    double sum_raw = 0.0, sum_wit = 0.0;
    double worst_raw_bound = 0.0, worst_wit_bound = 0.0;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      const double jump = Air::cost(states[i + 1], Air::kOverbooking) -
                          Air::cost(states[i], Air::kOverbooking);
      if (jump <= 0.0) continue;
      ++steps;
      const std::size_t raw = exec.missing_count(i);
      const std::size_t wit = analysis::witness_k_overbooking(exec, i);
      sum_raw += static_cast<double>(raw);
      sum_wit += static_cast<double>(wit);
      worst_raw_bound = std::max(worst_raw_bound, 900.0 * raw);
      worst_wit_bound = std::max(worst_wit_bound, 900.0 * wit);
    }
    const auto report = analysis::check_theorem20(exec);
    const double mean_raw = steps ? sum_raw / steps : 0.0;
    const double mean_wit = steps ? sum_wit / steps : 0.0;
    table.add_row(
        {harness::Table::num(plen, 0), harness::Table::num(steps),
         harness::Table::num(mean_raw, 1), harness::Table::num(mean_wit, 1),
         mean_wit > 0.0
             ? harness::Table::num(mean_raw / mean_wit, 1) + "x"
             : (steps ? ">"+harness::Table::num(mean_raw, 1)+"x" : "-"),
         harness::Table::num(worst_raw_bound, 0),
         harness::Table::num(worst_wit_bound, 0),
         harness::Table::num(report.violations().size())});
  }
  table.print();

  // Theorem 21: the same refinement for the compensation bound.
  harness::Table t21("E4b  Theorem 21: witness compensation bounds",
                     {"dropped", "witness bound check (over)", "(under)"});
  harness::Scenario sc = harness::partitioned_wan(4, 5.0, 20.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(81));
  harness::AirlineWorkload w;
  w.duration = 25.0;
  w.request_rate = 2.5;
  w.mover_rate = 4.0;
  w.max_persons = 120;
  harness::drive_airline(cluster, w, 82);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  for (const std::size_t drop_mod : {11u, 5u, 3u}) {
    std::vector<std::size_t> seen;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (i % drop_mod != 0) seen.push_back(i);
    }
    const auto over = analysis::check_theorem21_overbooking(exec, seen);
    const auto under = analysis::check_theorem21_underbooking(exec, seen);
    t21.add_row({"every " + std::to_string(drop_mod) + "th",
                 over.ok() ? "holds" : "VIOLATED",
                 under.ok() ? "holds" : "VIOLATED"});
  }
  t21.print();
  std::printf(
      "\nReading: raw k counts every missed transaction; witness k counts\n"
      "only the people whose seat-relevant history is missing. The refined\n"
      "hypothesis is an order of magnitude sharper and still never violated.\n");
  return 0;
}
