// E14 — mixed-mode serializability (the paper's second section 6
// extension): "certain critical transactions run serializably, while the
// others run in a highly available manner."
//
// Serializable transactions reserve a timestamp and wait for cluster-wide
// promises (section 3.3's waiting protocol); the sweep varies the fraction
// of MOVE-UPs that run serializably. Measured: the serializable
// transactions' k (always 0 — the guarantee), their waiting latency (the
// price, exploding when a partition must heal first), the availability of
// the normal traffic (unchanged), and the overbooking damage (which drops
// as more movers become serializable).
//
// Each sweep point also captures the Cluster::metrics() snapshot plus
// derived e14.* metrics, emitted after the table as one JSON document —
// the machine-readable counterpart in the same registry schema every
// other metrics consumer speaks.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

/// Indent an embedded JSON document so the output stays readable.
void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

struct RunResult {
  std::size_t serial_txs = 0;
  std::size_t serial_max_k = 0;
  double mean_wait = 0.0;
  double max_wait = 0.0;
  double worst_overbook = 0.0;
  std::size_t normal_txs = 0;
  std::string metrics_json;
};

RunResult run(double serial_fraction, std::uint64_t seed) {
  harness::Scenario sc = harness::partitioned_wan(4, 5.0, 15.0);
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  sim::Rng rng(seed ^ 0xe14);
  // Requests stream normally; movers split serial/normal by fraction.
  for (int i = 0; i < 80; ++i) {
    cluster.submit_at(rng.uniform(0.0, 20.0),
                      static_cast<core::NodeId>(rng.uniform_int(0, 3)),
                      al::Request::request(static_cast<al::Person>(i + 1)));
  }
  for (int i = 0; i < 80; ++i) {
    const double t = rng.uniform(0.0, 20.0);
    const auto node = static_cast<core::NodeId>(rng.uniform_int(0, 3));
    const bool down = rng.bernoulli(0.25);
    const al::Request req =
        down ? al::Request::move_down() : al::Request::move_up();
    if (rng.bernoulli(serial_fraction)) {
      cluster.submit_serializable_at(t, node, req);
    } else {
      cluster.submit_at(t, node, req);
    }
  }
  cluster.run_until(20.0);
  cluster.settle();
  const auto exec = cluster.execution();

  RunResult r;
  for (core::NodeId n = 0; n < 4; ++n) {
    for (const auto& rec : cluster.node(n).originated()) {
      if (!rec.serializable) {
        ++r.normal_txs;
        continue;
      }
      ++r.serial_txs;
      const double wait = rec.decided_time - rec.real_time;
      r.mean_wait += wait;
      r.max_wait = std::max(r.max_wait, wait);
      for (std::size_t i = 0; i < exec.size(); ++i) {
        if (exec.tx(i).ts == rec.ts) {
          r.serial_max_k = std::max(r.serial_max_k, exec.missing_count(i));
        }
      }
    }
  }
  if (r.serial_txs > 0) r.mean_wait /= static_cast<double>(r.serial_txs);
  for (const auto& s : exec.actual_states()) {
    r.worst_overbook = std::max(r.worst_overbook,
                                Air::cost(s, Air::kOverbooking));
  }
  obs::MetricsRegistry reg = cluster.metrics();
  reg.add_counter("e14.serial_txs", r.serial_txs);
  reg.add_counter("e14.normal_txs", r.normal_txs);
  reg.add_counter("e14.serial_max_k", r.serial_max_k);
  reg.set_gauge("e14.serial_fraction", serial_fraction);
  reg.set_gauge("e14.mean_wait", r.mean_wait);
  reg.set_gauge("e14.max_wait", r.max_wait);
  reg.set_gauge("e14.worst_overbooking", r.worst_overbook);
  r.metrics_json = reg.to_json();
  return r;
}

}  // namespace

int main() {
  harness::Table table(
      "E14  Mixed-mode serializability (10s partition; movers split "
      "serial/available)",
      {"serial movers", "serial txs", "serial max k", "mean wait (s)",
       "max wait (s)", "worst overbook $", "normal txs"});
  std::vector<RunResult> results;
  std::vector<double> fractions;
  for (const double frac : {0.0, 0.25, 0.5, 1.0}) {
    const RunResult r = run(frac, 7);
    table.add_row({harness::Table::pct(frac, 0),
                   harness::Table::num(r.serial_txs),
                   harness::Table::num(r.serial_max_k),
                   harness::Table::num(r.mean_wait, 2),
                   harness::Table::num(r.max_wait, 2),
                   harness::Table::num(r.worst_overbook, 0),
                   harness::Table::num(r.normal_txs)});
    results.push_back(r);
    fractions.push_back(frac);
  }
  table.print();
  std::printf(
      "\nReading: serializable transactions ALWAYS run with k = 0 — the\n"
      "guarantee is absolute — but those submitted mid-partition wait for\n"
      "the heal (max wait ~ partition length), while normal traffic at the\n"
      "same nodes flows uninterrupted. Making more movers serializable\n"
      "shrinks the overbooking damage toward zero: the paper's \"specify\n"
      "the modes of operation for different transactions\", working.\n");
  std::printf("\n{\n  \"experiment\": \"e14_mixed_mode\",\n");
  std::printf("  \"nodes\": 4, \"seed\": 7,\n  \"points\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("    {\"serial_fraction\": %.2f,\n     \"metrics\":\n",
                fractions[i]);
    print_indented(results[i].metrics_json, "      ");
    std::printf("\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
