// E15 — ablation of the broadcast layer's design choices (DESIGN.md calls
// these out; the paper's section 3.3 motivates both):
//
//  * causal delivery (piggybacked dependency clocks) is what makes
//    executions transitive — turn it off and transitivity violations
//    appear under reordering;
//  * flooding gives low dissemination latency; anti-entropy alone (pure
//    gossip) still converges but with much higher staleness (k).
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

struct RunResult {
  std::size_t txs = 0;
  std::size_t transitivity_violations = 0;
  std::size_t max_k = 0;
  double mean_k = 0.0;
  std::uint64_t messages = 0;
  bool converged = false;
};

RunResult run(bool flood, bool causal, std::uint64_t seed) {
  harness::Scenario sc = harness::wan(4);
  sc.drop_probability = 0.15;
  sc.causal_broadcast = causal;
  auto cfg = sc.cluster_config<Air>(seed);
  cfg.broadcast.flood = flood;
  cfg.broadcast.anti_entropy_interval = 0.4;
  shard::Cluster<Air> cluster(cfg);
  harness::AirlineWorkload w;
  w.duration = 20.0;
  w.request_rate = 3.0;
  w.mover_rate = 3.0;
  w.max_persons = 100;
  harness::drive_airline(cluster, w, seed ^ 0xe15);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  RunResult r;
  r.txs = exec.size();
  r.transitivity_violations =
      analysis::check_transitive(exec).violations().size();
  const auto ks = analysis::missing_counts(exec);
  for (std::size_t k : ks) {
    r.max_k = std::max(r.max_k, k);
    r.mean_k += static_cast<double>(k);
  }
  if (!ks.empty()) r.mean_k /= static_cast<double>(ks.size());
  r.messages = cluster.network().stats().sent;
  r.converged = cluster.converged();
  return r;
}

}  // namespace

int main() {
  harness::Table table(
      "E15  Broadcast ablation (lossy WAN, 15% drop; 3 seeds aggregated)",
      {"variant", "txs", "transitivity violations", "mean k", "max k",
       "messages", "converged"});
  struct Variant {
    const char* name;
    bool flood;
    bool causal;
  };
  for (const Variant v : {Variant{"flood + causal (default)", true, true},
                          Variant{"flood, no causal", true, false},
                          Variant{"gossip only + causal", false, true}}) {
    RunResult agg;
    double mean_sum = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const RunResult r = run(v.flood, v.causal, seed);
      agg.txs += r.txs;
      agg.transitivity_violations += r.transitivity_violations;
      agg.max_k = std::max(agg.max_k, r.max_k);
      mean_sum += r.mean_k;
      agg.messages += r.messages;
      agg.converged = r.converged;
    }
    table.add_row({v.name, harness::Table::num(agg.txs),
                   harness::Table::num(agg.transitivity_violations),
                   harness::Table::num(mean_sum / 3.0, 2),
                   harness::Table::num(agg.max_k),
                   harness::Table::num(static_cast<std::size_t>(agg.messages)),
                   agg.converged ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nReading: causal delivery is what buys section 3.2 transitivity —\n"
      "without it, reordered arrivals make some prefixes non-closed (the\n"
      "violations column). Dropping the flood keeps all guarantees (and\n"
      "still converges via anti-entropy) but decisions run much staler:\n"
      "mean k an order of magnitude higher for the same message budget.\n");
  return 0;
}
