// E1 — Theorem 5 / Corollary 6: per-transaction step bounds.
//
// "If T is k-complete and preserves the cost of constraint i, then either
// cost(s',i) <= cost(s,i) or cost(s',i) <= f(k)." For the airline: any
// transaction's overbooking jump is bounded by 900k; a mover's
// underbooking jump by 300k (k = that transaction's own missing count).
//
// The table sweeps network conditions from LAN to long partitions. For each
// run it reports the worst observed step-cost against its per-transaction
// bound, and the bound-violation count (always 0 — the theorem).
#include <cstdio>

#include "analysis/cost_bounds.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

struct RunResult {
  std::size_t txs = 0;
  std::size_t max_k = 0;
  double worst_over_jump = 0.0;
  double bound_at_worst_over = 0.0;
  double worst_under_jump = 0.0;
  double bound_at_worst_under = 0.0;
  std::size_t violations = 0;
};

RunResult run(const harness::Scenario& sc, std::uint64_t seed) {
  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  harness::AirlineWorkload w;
  w.duration = 30.0;
  w.request_rate = 3.0;
  w.mover_rate = 4.0;
  w.move_down_fraction = 0.3;
  w.max_persons = 120;
  harness::drive_airline(cluster, w, seed ^ 0xe1);
  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();

  RunResult r;
  r.txs = exec.size();
  r.max_k = exec.max_missing();
  const auto states = exec.actual_states();
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const std::size_t k = exec.missing_count(i);
    const double over_jump =
        Air::cost(states[i + 1], Air::kOverbooking) -
        Air::cost(states[i], Air::kOverbooking);
    if (over_jump > r.worst_over_jump) {
      r.worst_over_jump = over_jump;
      r.bound_at_worst_over = Air::Theory::f_bound(Air::kOverbooking, k);
    }
    const auto kind = exec.tx(i).request.kind;
    const bool mover = kind == al::Request::Kind::kMoveUp ||
                       kind == al::Request::Kind::kMoveDown;
    if (mover) {
      const double under_jump =
          Air::cost(states[i + 1], Air::kUnderbooking) -
          Air::cost(states[i], Air::kUnderbooking);
      if (under_jump > r.worst_under_jump) {
        r.worst_under_jump = under_jump;
        r.bound_at_worst_under = Air::Theory::f_bound(Air::kUnderbooking, k);
      }
    }
  }
  const auto preserves = [](const al::Request& rq, int c) {
    return Air::Theory::preserves_cost(rq, c);
  };
  const auto f = [](int c, std::size_t k) {
    return Air::Theory::f_bound(c, k);
  };
  for (int c = 0; c < Air::kNumConstraints; ++c) {
    r.violations +=
        analysis::check_theorem5(exec, c, preserves, f).violations().size();
  }
  return r;
}

}  // namespace

int main() {
  harness::Table table(
      "E1  Theorem 5 / Corollary 6: per-step cost bounds (20-seat flight, "
      "$900/$300)",
      {"scenario", "txs", "max k", "worst over-jump $", "bound@tx $",
       "worst under-jump $", "bound@tx $", "Thm5 violations"});
  struct Row {
    const char* name;
    harness::Scenario sc;
  };
  const std::vector<Row> rows = {
      {"lan", harness::lan(4)},
      {"wan", harness::wan(4)},
      {"wan+partition 5s", harness::partitioned_wan(4, 10.0, 15.0)},
      {"wan+partition 15s", harness::partitioned_wan(4, 5.0, 20.0)},
      {"wan+partition 25s", harness::partitioned_wan(4, 3.0, 28.0)},
  };
  for (const auto& row : rows) {
    const RunResult r = run(row.sc, 1234);
    table.add_row({row.name, harness::Table::num(r.txs),
                   harness::Table::num(r.max_k),
                   harness::Table::num(r.worst_over_jump, 0),
                   harness::Table::num(r.bound_at_worst_over, 0),
                   harness::Table::num(r.worst_under_jump, 0),
                   harness::Table::num(r.bound_at_worst_under, 0),
                   harness::Table::num(r.violations)});
  }
  table.print();
  std::printf(
      "\nReading: every observed jump sits at or below its transaction's own\n"
      "900k / 300k bound; staler networks (bigger k) both allow and exhibit\n"
      "larger jumps. Violations are identically zero — Theorem 5 holds.\n");
  return 0;
}
