// E27 — real-runtime execution backend: threaded workers vs the DES.
//
// The same Node/broadcast code runs on both execution backends behind
// runtime::Executor / runtime::Transport; only the backend differs. The
// workload is identical on both sides (seeded random inserts into the
// dictionary app across three replicas, 0.2–2 ms bus delays, 5% drops,
// 20 ms anti-entropy). Two claims are pinned:
//
//   * determinism survives the port — the DES row's merged trace stream is
//     byte-identical across two independent runs of the same seed, the
//     replica states agree, and the checker stack is clean;
//   * the threaded backend is correct WITHOUT determinism — every seeded
//     run on real threads and real clocks converges, passes the full
//     oracle stack on the assembled execution, and satisfies the
//     send/fate shutdown contract on the merged trace shards
//     (runtime::validate_message_fates).
//
// Wall-clock throughput on both sides is reported but never gated: the
// DES burns through simulated seconds as fast as one core allows, while
// the threaded bus pays its configured delays in real time — the contrast
// is the point of the experiment, not a regression signal. The gates are
// the exact booleans plus the DES row's deterministic counters.
//
// Output: one JSON document (stdout). Unlike earlier experiments the
// threaded rows are inherently nondeterministic — their message counts
// and wall times vary run to run — so only the boolean gates and the DES
// counters are baseline-compared (bench/compare_bench.py e27).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/execution_checker.hpp"
#include "apps/dictionary/dictionary.hpp"
#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/realtime_cluster.hpp"
#include "runtime/validate.hpp"
#include "shard/cluster.hpp"
#include "sim/delay.hpp"
#include "sim/rng.hpp"

namespace {

using Dict = apps::dictionary::Dictionary;
using DictRequest = apps::dictionary::Request;

constexpr std::uint64_t kUpdates = 400;
constexpr std::size_t kNodes = 3;
constexpr double kSubmitWindow = 10.0;  ///< DES: submits spread over [0, w)
constexpr double kDesHorizon = 12.0;

void print_indented(const std::string& json, const char* pad) {
  std::printf("%s", pad);
  for (const char c : json) {
    std::putchar(c);
    if (c == '\n') std::printf("%s", pad);
  }
}

/// The seeded insert workload, identical on both backends: who gets
/// update k and what it writes is a pure function of (seed, k).
DictRequest nth_request(std::uint64_t seed, std::uint64_t k) {
  return DictRequest::insert(
      static_cast<apps::dictionary::Key>(k % 11),
      "e27-" + std::to_string(seed) + "-" + std::to_string(k));
}

// --------------------------------------------------------------------------
// DES side: deterministic reference
// --------------------------------------------------------------------------

struct DesRun {
  std::string trace;
  std::vector<Dict::State> states;
  std::size_t events = 0;
  bool checker_clean = false;
  double wall_seconds = 0.0;
  obs::MetricsRegistry metrics;
};

DesRun run_des(std::uint64_t seed) {
  harness::Scenario sc;
  sc.num_nodes = kNodes;
  sc.delay = sim::Delay::uniform(0.0002, 0.002);
  sc.drop_probability = 0.05;
  sc.anti_entropy_interval = 0.02;
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 1 << 18;
  const auto t0 = std::chrono::steady_clock::now();
  shard::Cluster<Dict> cluster(sc.cluster_config<Dict>(seed));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  sim::Rng rng(seed ^ 0x5eed);
  for (std::uint64_t k = 0; k < kUpdates; ++k) {
    const auto node = static_cast<core::NodeId>(
        rng.uniform_int(0, static_cast<int>(kNodes) - 1));
    cluster.submit_at(rng.uniform(0.0, kSubmitWindow), node,
                      nth_request(seed, k));
  }
  cluster.run_until(kDesHorizon);
  cluster.settle();
  DesRun r;
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  r.trace = obs::serialize(capture.events());
  r.events = capture.events().size();
  r.metrics = cluster.metrics();
  for (std::size_t n = 0; n < kNodes; ++n) {
    r.states.push_back(cluster.node(static_cast<core::NodeId>(n)).state());
  }
  const core::Execution<Dict> exec = cluster.execution();
  r.checker_clean = analysis::check_prefix_subsequence_condition(exec).ok() &&
                    analysis::is_transitive(exec) && cluster.converged() &&
                    cluster.node(0).state() == exec.final_state();
  return r;
}

// --------------------------------------------------------------------------
// Threaded side: real threads, post-hoc validation
// --------------------------------------------------------------------------

struct ThreadedRun {
  bool converged = false;
  bool checker_clean = false;
  bool fates_ok = false;
  std::uint64_t sends = 0;
  std::uint64_t resolved = 0;
  std::size_t events = 0;
  double wall_seconds = 0.0;  ///< submit-start to convergence (wall clock)
};

ThreadedRun run_threaded(std::uint64_t seed) {
  runtime::RealtimeConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.seed = seed;
  cfg.broadcast.anti_entropy_interval = 0.02;
  cfg.broadcast.anti_entropy_jitter = 0.005;
  cfg.bus.min_delay = 0.0002;
  cfg.bus.max_delay = 0.002;
  cfg.bus.drop_probability = 0.05;
  cfg.ring_capacity = 1 << 17;
  runtime::RealtimeCluster<Dict> rc(cfg);
  sim::Rng rng(seed ^ 0x5eed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < kUpdates; ++k) {
    const auto node = static_cast<core::NodeId>(
        rng.uniform_int(0, static_cast<int>(kNodes) - 1));
    rc.submit(node, nth_request(seed, k));
  }
  ThreadedRun r;
  r.converged = rc.await_convergence(/*timeout_s=*/120.0, kUpdates);
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  rc.shutdown();
  const core::Execution<Dict> exec = rc.execution();
  r.checker_clean = rc.converged() &&
                    analysis::check_prefix_subsequence_condition(exec).ok() &&
                    analysis::is_transitive(exec) &&
                    rc.node(0).state() == exec.final_state();
  const runtime::FateValidation fates = rc.validate_fates();
  r.fates_ok = fates.ok() && fates.sends > 0;
  r.sends = fates.sends;
  r.resolved = fates.resolved;
  r.events = rc.trace().size();
  return r;
}

}  // namespace

int main() {
  const std::uint64_t kDesSeed = 0xE27;
  const std::uint64_t kThreadedSeeds[] = {0xE27A, 0xE27B, 0xE27C};

  // DES reference: run the seed twice; stdout's deterministic half is a
  // pure function of the seed, wall clock goes to stderr and the info
  // fields.
  const DesRun des_a = run_des(kDesSeed);
  const DesRun des_b = run_des(kDesSeed);
  bool des_deterministic = des_a.trace == des_b.trace &&
                           des_a.states.size() == des_b.states.size();
  if (des_deterministic) {
    for (std::size_t n = 0; n < des_a.states.size(); ++n) {
      des_deterministic =
          des_deterministic && des_a.states[n] == des_b.states[n];
    }
  }
  std::fprintf(stderr, "des: %.3f s wall (%zu trace events)\n",
               des_a.wall_seconds, des_a.events);

  std::vector<ThreadedRun> threaded;
  for (const std::uint64_t seed : kThreadedSeeds) {
    threaded.push_back(run_threaded(seed));
    std::fprintf(stderr, "threaded seed %llx: %.3f s wall, %llu sends\n",
                 static_cast<unsigned long long>(seed),
                 threaded.back().wall_seconds,
                 static_cast<unsigned long long>(threaded.back().sends));
  }

  bool all_ok = des_deterministic && des_a.checker_clean;
  for (const ThreadedRun& r : threaded) {
    all_ok = all_ok && r.converged && r.checker_clean && r.fates_ok;
  }

  std::printf("{\n  \"experiment\": \"e27_realtime\",\n");
  std::printf("  \"nodes\": %zu, \"updates\": %llu,\n", kNodes,
              static_cast<unsigned long long>(kUpdates));
  std::printf(
      "  \"des\": {\"seed\": %llu, \"deterministic\": %s, "
      "\"checker_clean\": %s, \"trace_events\": %zu,\n"
      "          \"wall_seconds\": %.4f, \"updates_per_wall_s\": %.1f},\n",
      static_cast<unsigned long long>(kDesSeed),
      des_deterministic ? "true" : "false",
      des_a.checker_clean ? "true" : "false", des_a.events,
      des_a.wall_seconds,
      static_cast<double>(kUpdates) / des_a.wall_seconds);
  std::printf("  \"threaded\": [\n");
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    const ThreadedRun& r = threaded[i];
    std::printf(
        "    {\"seed\": %llu, \"converged\": %s, \"checker_clean\": %s, "
        "\"fates_ok\": %s, \"sends\": %llu, \"resolved\": %llu, "
        "\"trace_events\": %zu, \"wall_seconds\": %.4f, "
        "\"updates_per_wall_s\": %.1f}%s\n",
        static_cast<unsigned long long>(kThreadedSeeds[i]),
        r.converged ? "true" : "false", r.checker_clean ? "true" : "false",
        r.fates_ok ? "true" : "false",
        static_cast<unsigned long long>(r.sends),
        static_cast<unsigned long long>(r.resolved), r.events,
        r.wall_seconds, static_cast<double>(kUpdates) / r.wall_seconds,
        i + 1 < threaded.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_ok\": %s,\n", all_ok ? "true" : "false");
  std::printf("  \"metrics\":\n");
  print_indented(des_a.metrics.to_json(), "    ");
  std::printf("\n}\n");
  return all_ok ? 0 : 1;
}
