// flame_report — epoch-aware latency attribution over a recorded trace.
//
// Reads an event stream in obs::serialize's line format (what
// `trace_diff record` writes and what a VectorSink capture serializes to),
// segments it into partition epochs, folds every update's causal chain
// into stage-weighted flame trees, and prints the top-k dominating stages
// per epoch — "where did stabilization time go while cut 0 was open?"
// answered from a file, no rerun needed.
//
//   flame_report <trace_file> [--top K]
//                [--folded <out>] [--json <out>] [--perfetto <out>]
//
// --folded writes flamegraph.pl-compatible folded stacks (pipe through
// flamegraph.pl for the picture), --json the full per-epoch profile,
// --perfetto critical-path slices for ui.perfetto.dev. All exporters are
// byte-exact: the same trace file always produces the same bytes.
//
// Exit status: 0 on success, 2 on usage error or unreadable/malformed
// input (the malformed line is reported with its 1-based number).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/tracer.hpp"
#include "tool_cli.hpp"

namespace {

constexpr char kUsage[] =
    "usage: flame_report <trace_file> [--top K]\n"
    "                    [--folded <out>] [--json <out>] [--perfetto <out>]\n"
    "       flame_report --help\n"
    "\n"
    "Reads a recorded event stream (trace_diff record / obs::serialize\n"
    "format), segments it into partition epochs, and attributes each\n"
    "update's stabilization latency to pipeline stages per epoch.\n"
    "\n"
    "  --top K         stages printed per epoch (default 8)\n"
    "  --folded <out>  write flamegraph.pl-compatible folded stacks\n"
    "  --json <out>    write the full per-epoch profile as JSON\n"
    "  --perfetto <out> write critical-path slices for ui.perfetto.dev\n"
    "\n"
    "exit status: 0 success, 2 usage error or unreadable/malformed input\n";

int usage() { return tool_cli::usage(kUsage); }

bool write_file(const std::string& path, const std::string& data,
                const char* what) {
  return tool_cli::write_file("flame_report", path, data, what);
}

}  // namespace

int main(int argc, char** argv) {
  if (tool_cli::wants_help(argc, argv, kUsage)) return 0;
  if (argc < 2) return usage();
  const char* trace_path = argv[1];
  std::size_t top_k = 8;
  std::string folded_path, json_path, perfetto_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--folded") == 0 && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else {
      return usage();
    }
  }

  std::vector<obs::Event> events;
  if (!tool_cli::load_stream("flame_report", trace_path, events)) return 2;

  const obs::EpochIndex epochs = obs::EpochIndex::build(events);
  const obs::CausalGraph graph = obs::CausalGraph::build(events);
  const obs::FlameProfile flame = obs::FlameProfile::build(events, graph,
                                                           epochs);

  std::printf("%zu events, %zu epochs (%llu boundary transitions, %llu "
              "coalesced), %zu updates profiled\n",
              events.size(), epochs.size(),
              static_cast<unsigned long long>(epochs.transitions()),
              static_cast<unsigned long long>(epochs.coalesced()),
              flame.timings().size());
  for (const obs::EpochProfile& ep : flame.epochs()) {
    std::printf("\nepoch %zu  %-24s [%0.3f, %0.3f)  updates=%llu",
                ep.epoch, ep.label.c_str(), ep.start, ep.end,
                static_cast<unsigned long long>(ep.updates));
    if (ep.incomplete > 0) {
      std::printf("  incomplete=%llu",
                  static_cast<unsigned long long>(ep.incomplete));
    }
    std::printf("\n");
    const std::uint64_t complete = ep.updates - ep.incomplete;
    if (complete > 0) {
      std::printf("  critical path: mean %.3f ms, max %.3f ms",
                  static_cast<double>(ep.critical_total_us) / 1e3 /
                      static_cast<double>(complete),
                  static_cast<double>(ep.critical_max_us) / 1e3);
      for (const auto& [stage, n] : ep.dominant_counts) {
        std::printf("  dominant[%s]=%llu", stage.c_str(),
                    static_cast<unsigned long long>(n));
      }
      std::printf("\n");
    }
    const std::vector<obs::StageShare> top = flame.top_stages(ep.epoch, top_k);
    for (const obs::StageShare& s : top) {
      std::printf("  %-28s %12lld us  %8llu samples\n", s.stage.c_str(),
                  static_cast<long long>(s.us),
                  static_cast<unsigned long long>(s.samples));
    }
  }

  if (!folded_path.empty() &&
      !write_file(folded_path, flame.folded(), "folded stacks")) {
    return 2;
  }
  if (!json_path.empty() &&
      !write_file(json_path, flame.to_json(), "flame profile JSON")) {
    return 2;
  }
  if (!perfetto_path.empty() &&
      !write_file(perfetto_path, flame.perfetto_json(), "perfetto slices")) {
    return 2;
  }
  return 0;
}
