// Shared CLI plumbing for the operator tools (trace_diff, flame_report,
// flame_diff): the --help/usage/exit-2 convention, trace-file loading in
// obs::serialize's line format, and byte-exact output-file writing. Each
// tool was hand-rolling identical copies of these; one drifting error
// message or exit code would break the CI self-checks that assert them.
//
// Conventions every tool built on this header shares:
//   * `--help` / `-h` as the first argument prints the usage text to
//     stdout and exits 0; any malformed invocation prints it to stderr
//     and exits 2 (so 1 stays reserved for "tool ran, found a difference").
//   * malformed trace input is reported with its 1-based line number.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace tool_cli {

/// Print the usage text to stderr and return the conventional usage exit
/// status (2). Callers `return tool_cli::usage(kUsage);`.
inline int usage(const char* usage_text) {
  std::fputs(usage_text, stderr);
  return 2;
}

/// True when the first argument asks for help; prints the usage text to
/// stdout so `tool --help | less` works. Callers exit 0.
inline bool wants_help(int argc, char** argv, const char* usage_text) {
  if (argc < 2) return false;
  if (std::strcmp(argv[1], "--help") != 0 && std::strcmp(argv[1], "-h") != 0) {
    return false;
  }
  std::fputs(usage_text, stdout);
  return true;
}

/// Load a recorded event stream (obs::serialize line format). On failure
/// prints "<tool>: ..." to stderr — unreadable file or the 1-based line of
/// the first malformed event — and returns false (callers exit 2).
inline bool load_stream(const char* tool, const char* path,
                        std::vector<obs::Event>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read %s\n", tool, path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::size_t bad_line = 0;
  if (!obs::deserialize(buf.str(), out, &bad_line)) {
    std::fprintf(stderr, "%s: %s: malformed event at line %zu\n", tool, path,
                 bad_line + 1);
    return false;
  }
  return true;
}

/// Write `data` byte-exact to `path`, announcing `what` on stdout. On
/// failure prints "<tool>: cannot write ..." and returns false (exit 2).
inline bool write_file(const char* tool, const std::string& path,
                       const std::string& data, const char* what) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", tool, path.c_str());
    return false;
  }
  out << data;
  std::printf("wrote %s to %s\n", what, path.c_str());
  return true;
}

}  // namespace tool_cli
