// trace_diff — record deterministic event streams and bisect divergences.
//
// Same (seed, configuration) must produce a byte-identical event stream;
// when it doesn't, the interesting question is WHERE the histories first
// part ways, because everything after the first divergent event is noise
// amplified by the split. This tool closes that loop:
//
//   trace_diff record <out> [--seed N] [--perturb]
//       Run the canonical crash-chaos scenario (the same shape E19 and the
//       chaos test tier use), capture the full event stream, and write it
//       in obs::serialize's exact line format. --perturb injects one extra
//       crash/restart at t=5.0 — a controlled source of divergence for
//       self-checks and for demonstrating the bisector.
//
//   trace_diff diff <a> <b>
//       Parse two recorded streams and report the first diverging event
//       with its causal ancestry in each stream (obs::trace_diff /
//       obs::divergence_report). Exit 0 when identical, 1 on divergence,
//       2 on unreadable or malformed input — so CI can assert both the
//       "identical seeds agree" and the "perturbation is pinpointed"
//       directions.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "obs/causal.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/crash.hpp"
#include "tool_cli.hpp"

namespace {

namespace al = apps::airline;
using Air = al::BasicAirline<20, 900, 300>;

constexpr char kUsage[] =
    "usage: trace_diff record <out_file> [--seed N] [--perturb]\n"
    "       trace_diff diff <file_a> <file_b>\n"
    "       trace_diff --help\n"
    "\n"
    "record  run the canonical crash-chaos scenario and write its full\n"
    "        event stream in obs::serialize line format; --perturb adds a\n"
    "        sparse extra submission stream (a controlled divergence)\n"
    "diff    report the first diverging event of two recorded streams with\n"
    "        its causal ancestry in each\n"
    "\n"
    "exit status: 0 identical / recorded, 1 divergence found,\n"
    "             2 usage error or unreadable/malformed input\n";

int usage() { return tool_cli::usage(kUsage); }

int cmd_record(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string out_path = argv[2];
  std::uint64_t seed = 0xD1FF;
  bool perturb = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--perturb") == 0) {
      perturb = true;
    } else {
      return usage();
    }
  }

  constexpr double kHorizon = 20.0;
  harness::Scenario sc = harness::wan(4);
  sc.faults.split_halves(4, 2, 6.0, 10.0)
      .crash(1, 3.0, 6.5, sim::RecoveryMode::kDurable)
      .crash(3, 8.0, 11.0, sim::RecoveryMode::kAmnesia);
  sc.trace.enabled = true;
  sc.trace.ring_capacity = 1 << 15;

  shard::Cluster<Air> cluster(sc.cluster_config<Air>(seed));
  obs::VectorSink capture;
  cluster.tracer()->add_sink(&capture);
  harness::AirlineWorkload w;
  w.duration = kHorizon;
  w.request_rate = 6.0;
  w.mover_rate = 4.0;
  w.cancel_fraction = 0.15;
  w.max_persons = 250;
  harness::drive_airline(cluster, w, seed ^ 0x5EED);
  if (perturb) {
    // A sparse extra submission stream on top of the identical base
    // workload: the base schedule is already in place, so the streams
    // share a long identical prefix and first part ways MID-RUN, at the
    // earliest observable consequence of an extra submission — the case
    // the bisector's causal-ancestry output is for.
    harness::AirlineWorkload extra;
    extra.duration = kHorizon;
    extra.request_rate = 0.5;
    extra.mover_rate = 0.0;
    extra.cancel_fraction = 0.0;
    extra.max_persons = 250;
    harness::drive_airline(cluster, extra, 0x9E27);
  }
  cluster.run_until(kHorizon);
  cluster.settle();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace_diff: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << obs::serialize(capture.events());
  std::printf("recorded %zu events (seed 0x%llx%s) to %s\n",
              capture.events().size(),
              static_cast<unsigned long long>(seed),
              perturb ? ", perturbed" : "", out_path.c_str());
  return 0;
}

bool load_stream(const char* path, std::vector<obs::Event>& out) {
  return tool_cli::load_stream("trace_diff", path, out);
}

int cmd_diff(int argc, char** argv) {
  if (argc != 4) return usage();
  std::vector<obs::Event> a, b;
  if (!load_stream(argv[2], a) || !load_stream(argv[3], b)) return 2;
  const obs::TraceDivergence d = obs::trace_diff(a, b);
  std::fputs(obs::divergence_report(d, a, b).c_str(), stdout);
  return d.diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (tool_cli::wants_help(argc, argv, kUsage)) return 0;
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "record") == 0) return cmd_record(argc, argv);
  if (std::strcmp(argv[1], "diff") == 0) return cmd_diff(argc, argv);
  return usage();
}
