// flame_diff — epoch-by-epoch stage-weight regression triage between two
// recorded traces.
//
// trace_diff bisects WHERE two event streams first part ways; flame_diff
// answers the coarser perf question: given a baseline run and a candidate
// run (same scenario, different build/config/seed), which pipeline stage
// in which failure epoch gained or lost stabilization time. Both traces
// are folded through the epoch/causal/flame pipeline (exactly what
// flame_report prints for one run) and diffed leaf-by-leaf; the ranked
// triage table puts the largest absolute shift first.
//
//   flame_diff <baseline> <candidate> [--top K] [--json <out>]
//              [--markdown <out>]
//
// Exit status mirrors trace_diff: 0 when the profiles are identical, 1
// when any stage weight, sample count, or epoch structure differs, 2 on
// usage error or unreadable/malformed input — so CI can assert both the
// "same seed diffs empty" and the "perturbation is ranked" directions.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/epoch.hpp"
#include "obs/flame.hpp"
#include "obs/flame_diff.hpp"
#include "obs/tracer.hpp"
#include "tool_cli.hpp"

namespace {

constexpr char kUsage[] =
    "usage: flame_diff <baseline_trace> <candidate_trace> [--top K]\n"
    "                  [--json <out>] [--markdown <out>]\n"
    "       flame_diff --help\n"
    "\n"
    "Folds both recorded event streams (trace_diff record / obs::serialize\n"
    "format) into per-epoch flame profiles and reports every leaf stage\n"
    "whose weight moved, ranked by absolute delta — regression triage for\n"
    "\"which stage in which failure regime got slower\".\n"
    "\n"
    "  --top K          table rows printed (default 10; 0 = all)\n"
    "  --json <out>     write the full ranked diff as JSON\n"
    "  --markdown <out> write the triage table as markdown\n"
    "\n"
    "exit status: 0 profiles identical, 1 stage weights differ,\n"
    "             2 usage error or unreadable/malformed input\n";

int usage() { return tool_cli::usage(kUsage); }

obs::FlameProfile profile_of(const std::vector<obs::Event>& events) {
  const obs::EpochIndex epochs = obs::EpochIndex::build(events);
  const obs::CausalGraph graph = obs::CausalGraph::build(events);
  return obs::FlameProfile::build(events, graph, epochs);
}

}  // namespace

int main(int argc, char** argv) {
  if (tool_cli::wants_help(argc, argv, kUsage)) return 0;
  if (argc < 3) return usage();
  const char* path_a = argv[1];
  const char* path_b = argv[2];
  std::size_t top = 10;
  std::string json_path, markdown_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--markdown") == 0 && i + 1 < argc) {
      markdown_path = argv[++i];
    } else {
      return usage();
    }
  }

  std::vector<obs::Event> a, b;
  if (!tool_cli::load_stream("flame_diff", path_a, a) ||
      !tool_cli::load_stream("flame_diff", path_b, b)) {
    return 2;
  }
  const obs::FlameDiff diff = obs::FlameDiff::build(profile_of(a),
                                                    profile_of(b));
  std::printf("%zu vs %zu events, %zu vs %zu epochs, %zu stage delta(s)\n",
              a.size(), b.size(), diff.epochs_a(), diff.epochs_b(),
              diff.deltas().size());
  std::fputs(diff.markdown(top).c_str(), stdout);

  if (!json_path.empty() &&
      !tool_cli::write_file("flame_diff", json_path, diff.to_json(),
                            "flame diff JSON")) {
    return 2;
  }
  if (!markdown_path.empty() &&
      !tool_cli::write_file("flame_diff", markdown_path, diff.markdown(top),
                            "triage table")) {
    return 2;
  }
  return diff.differs() ? 1 : 0;
}
