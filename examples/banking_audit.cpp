// Banking on SHARD: ATMs keep dispensing cash through a partition; stale
// balance checks cause overdrafts; the overdraft total stays within the
// missed-debit bound; COVER transactions compensate; and an AUDIT run at
// quiescence (complete prefix — the section 3.2 "crucial transaction")
// reports the true bank position.
//
//   $ ./examples/banking_audit
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/banking/banking.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

int main() {
  namespace bk = apps::banking;
  using bk::Banking;

  harness::Scenario scenario = harness::partitioned_wan(4, 4.0, 18.0);
  shard::Cluster<Banking> cluster(
      scenario.cluster_config<Banking>(/*seed=*/12));

  // Seed accounts, then let the ATM workload run through the partition.
  for (bk::AccountId a = 0; a < 10; ++a) {
    cluster.submit_at(0.5 + 0.01 * a, a % 4, bk::Request::deposit(a, 200));
  }
  harness::BankingWorkload w;
  w.duration = 25.0;
  w.tx_rate = 6.0;
  w.num_accounts = 10;
  w.max_amount = 150;
  harness::drive_banking(cluster, w, /*seed=*/13);

  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  std::printf("ran %zu transactions across the partition; converged: %s\n",
              exec.size(), cluster.converged() ? "yes" : "no");

  // Overdrafts happened exactly where decisions were stale.
  double worst_overdraft = 0.0;
  for (const auto& s : exec.actual_states()) {
    worst_overdraft = std::max(worst_overdraft, Banking::cost(s, 0));
  }
  double bound = 0.0;
  std::size_t incomplete_debits = 0;
  int declines = 0, dispenses = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    const bool debit =
        tx.request.kind == bk::Request::Kind::kWithdraw ||
        tx.request.kind == bk::Request::Kind::kTransfer;
    if (debit && exec.missing_count(i) > 0) {
      bound += static_cast<double>(tx.request.amount);
      ++incomplete_debits;
    }
    for (const auto& a : tx.external_actions) {
      if (a.kind == "decline") ++declines;
      if (a.kind == "dispense-cash") ++dispenses;
    }
  }
  std::printf("cash dispensed %d times, %d requests declined\n", dispenses,
              declines);
  std::printf("worst total overdraft: $%.0f\n", worst_overdraft);
  std::printf(
      "missed-debit bound: %zu debits ran with stale info, summing to "
      "$%.0f  ->  %s\n",
      incomplete_debits, bound,
      worst_overdraft <= bound ? "bound holds" : "BOUND VIOLATED (bug!)");

  // Compensate remaining overdrafts with COVER sweeps at one branch.
  std::size_t covers = 0;
  while (Banking::cost(cluster.node(0).state(), 0) > 0.0) {
    cluster.submit_now(0, bk::Request::cover());
    ++covers;
  }
  cluster.settle();
  std::printf("%zu overdrafts forgiven by COVER sweeps\n", covers);

  // The audit with a complete prefix: its report equals the true total.
  const auto audit = cluster.submit_now(0, bk::Request::audit());
  std::printf("audit (saw %zu/%llu transactions) reports bank total: $%s\n",
              audit.prefix.count(),
              static_cast<unsigned long long>(cluster.total_originated() - 1),
              audit.external_actions[0].subject.c_str());
  std::printf("true bank total: $%lld\n",
              static_cast<long long>(cluster.node(0).state().total()));
  return 0;
}
