// Fairness in a non-serializable world (paper sections 4.2 / 5.5).
//
// Replays the section 5.5 anomaly on BOTH airline variants: P requests
// first, but the seating agent hears about Q first; when overbooking forces
// a demotion, the basic design puts Q back AHEAD of P, while the
// timestamp-sorted redesign inserts Q after P. Then demonstrates
// Theorem 25's freeze: once the agent has seen both requests, the pair's
// relative order never changes again.
//
//   $ ./examples/fairness_demo
#include <cstdio>
#include <numeric>

#include "analysis/fairness.hpp"
#include "apps/airline/airline.hpp"
#include "apps/airline/timestamped.hpp"
#include "core/scripted.hpp"

namespace al = apps::airline;
using BasicAir = al::BasicAirline<5, 900, 300>;
using TsAir = al::SmallTimestampedAirline;

/// The section 5.5 script, generic over the airline variant. P (stamp 100)
/// requests first but agent A never hears of it until the end; A fills the
/// plane with four fillers and Q (stamp 200); an uncoordinated agent B
/// seats Y — actual overbooking; A then learns everything and demotes.
template <class Anyline, class MakeReq>
typename Anyline::State run_anomaly(MakeReq make_req) {
  using Req = typename Anyline::Request;
  core::ScriptedExecution<Anyline> sx;
  const auto rp = sx.run(make_req(1, 100), {});
  (void)rp;
  std::vector<std::size_t> agent_a;
  for (al::Person x = 10; x <= 13; ++x) {
    agent_a.push_back(sx.run(make_req(x, 110 + x - 10), {}));
  }
  agent_a.push_back(sx.run(make_req(2, 200), {}));  // Q
  const auto ry = sx.run(make_req(3, 150), {});
  sx.run(Req::move_up(), {ry}, /*origin=*/2);  // agent B seats Y
  for (int i = 0; i < 5; ++i) {
    agent_a.push_back(sx.run(Req::move_up(), agent_a, /*origin=*/0));
  }
  std::vector<std::size_t> all(sx.size());
  std::iota(all.begin(), all.end(), 0);
  sx.run(Req::move_down(), all, /*origin=*/0);  // demotes Q
  return sx.execution().final_state();
}

int main() {
  std::printf("Section 5.5 anomaly, 5-seat flight.\n");
  std::printf("P requested at t=100, Q at t=200 — P should outrank Q.\n\n");

  const auto basic = run_anomaly<BasicAir>(
      [](al::Person p, std::uint64_t) { return al::Request::request(p); });
  std::printf("basic design, final wait list: ");
  for (al::Person p : basic.waiting) std::printf("%s ", al::person_name(p).c_str());
  std::printf("\n  -> %s\n\n",
              BasicAir::Priority::precedes(basic, 2, 1)
                  ? "Q is AHEAD of P: the demotion put Q at the head of the "
                    "wait list (unfair)"
                  : "P is ahead of Q");

  const auto ts = run_anomaly<TsAir>([](al::Person p, std::uint64_t s) {
    return al::TsRequest::request(p, s);
  });
  std::printf("timestamped redesign, final wait list: ");
  for (const auto& e : ts.waiting) {
    std::printf("%s@%llu ", al::person_name(e.person).c_str(),
                static_cast<unsigned long long>(e.stamp));
  }
  std::printf("\n  -> %s\n\n",
              TsAir::Priority::precedes(ts, 1, 2)
                  ? "P is ahead of Q: move-down inserted Q in timestamp "
                    "order (the section 5.5 fix)"
                  : "Q is ahead of P");

  // Theorem 25: the freeze. Once a (centralized) mover has seen both
  // requests with Q ahead, no later state reorders them.
  core::ScriptedExecution<BasicAir> sx;
  const auto rp = sx.run(al::Request::request(1), {});
  const auto rq = sx.run(al::Request::request(2), {});
  const auto m1 = sx.run(al::Request::move_up(), {rq});     // seats Q
  sx.run(al::Request::move_up(), {rp, rq, m1});             // sees both
  const analysis::AirlineClassify cls;
  const auto report = analysis::check_theorem25(sx.execution(), cls);
  std::printf("Theorem 25 (priority frozen once the agent saw both): %s\n",
              report.ok() ? "holds on this execution" : "VIOLATED (bug!)");
  const auto final = sx.execution().final_state();
  std::printf("  final assigned order: ");
  for (al::Person p : final.assigned) {
    std::printf("%s ", al::person_name(p).c_str());
  }
  std::printf("(Q keeps its head start forever)\n");
  return 0;
}
