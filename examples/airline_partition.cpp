// The paper's headline scenario, end to end: a network partition splits the
// cluster while booking continues on both sides; the flight overbooks; the
// cost stays within the proved 900k bound; compensating MOVE-DOWNs repair
// the damage after the heal — and the passengers who were told "you have a
// seat" and then "you don't" are counted (the irreversible external
// actions).
//
//   $ ./examples/airline_partition
#include <cstdio>

#include "analysis/airline_theorems.hpp"
#include "analysis/cost_bounds.hpp"
#include "analysis/execution_checker.hpp"
#include "analysis/thrashing.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

int main() {
  namespace al = apps::airline;
  using Air = al::BasicAirline<20, 900, 300>;  // a 20-seat charter flight

  // 4 nodes; a hard partition splits them 2|2 from t=5s to t=25s.
  harness::Scenario scenario = harness::partitioned_wan(4, 5.0, 25.0);
  std::printf("scenario: %s, %s\n", scenario.name.c_str(),
              scenario.faults.describe().c_str());
  shard::Cluster<Air> cluster(scenario.cluster_config<Air>(/*seed=*/7));

  // Booking workload across all nodes, movers included.
  harness::AirlineWorkload w;
  w.duration = 35.0;
  w.request_rate = 3.0;
  w.mover_rate = 5.0;
  w.move_down_fraction = 0.25;
  w.cancel_fraction = 0.1;
  w.max_persons = 120;
  harness::drive_airline(cluster, w, /*seed=*/8);

  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();
  std::printf("ran %zu transactions; replicas converged: %s\n", exec.size(),
              cluster.converged() ? "yes" : "no");

  // How stale did decisions get? (k = missing-prefix size.)
  std::printf("max missing prefix k = %zu (of %zu transactions)\n",
              exec.max_missing(), exec.size());

  // The damage: worst overbooking across ALL reachable states.
  double worst_over = 0.0, worst_under = 0.0;
  for (const auto& s : exec.actual_states()) {
    worst_over = std::max(worst_over, Air::cost(s, Air::kOverbooking));
    worst_under = std::max(worst_under, Air::cost(s, Air::kUnderbooking));
  }
  std::printf("worst overbooking cost:  $%.0f\n", worst_over);
  std::printf("worst underbooking cost: $%.0f\n", worst_under);

  // The guarantee (Corollary 8): overbooking <= $900 * k, with k measured
  // over the MOVE-UPs (the only unsafe-for-overbooking transactions).
  const auto unsafe = [](const al::Request& r, int c) {
    return !Air::Theory::safe_for(r, c);
  };
  const std::size_t k_unsafe =
      analysis::max_missing_over_unsafe(exec, Air::kOverbooking, unsafe);
  std::printf("Corollary 8 bound: $900 * k(=%zu) = $%.0f  ->  %s\n", k_unsafe,
              900.0 * static_cast<double>(k_unsafe),
              worst_over <= 900.0 * static_cast<double>(k_unsafe)
                  ? "bound holds"
                  : "BOUND VIOLATED (bug!)");

  // The human cost of thrashing: grant -> rescind oscillations.
  const auto thrash = analysis::count_external_oscillations(
      exec, "grant-seat", "rescind-seat");
  std::printf(
      "external actions: %zu total; %zu passengers had a seat granted "
      "and then rescinded (%zu flips, worst passenger saw %zu)\n",
      thrash.external_actions, thrash.subjects_affected, thrash.oscillations,
      thrash.max_per_subject);

  // After the heal: an atomic run of compensating MOVE-DOWNs at one node
  // drives the overbooking cost to zero (Lemma 1 in action).
  std::size_t comp = 0;
  while (Air::cost(cluster.node(0).state(), Air::kOverbooking) > 0.0) {
    cluster.submit_now(0, al::Request::move_down());
    ++comp;
  }
  cluster.settle();
  std::printf("compensation: %zu MOVE-DOWNs; final overbooking cost $%.0f\n",
              comp,
              Air::cost(cluster.node(0).state(), Air::kOverbooking));
  std::printf("final state: %d/%d seats filled, %lld waiting\n",
              static_cast<int>(cluster.node(0).state().al()), Air::kCapacity,
              static_cast<long long>(cluster.node(0).state().wl()));
  return 0;
}
