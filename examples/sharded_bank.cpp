// Partial replication (paper section 6): a bank where each account lives
// on only 2 of 6 branches. Single-account operations route to any replica;
// transfers need a branch hosting BOTH accounts — the paper's "judicious
// assignment of data and transactions to nodes" — and some pairs have no
// common branch at all: the new availability limit partial replication
// introduces.
//
//   $ ./examples/sharded_bank
#include <cstdio>

#include "apps/banking/sharded.hpp"
#include "shard/partial.hpp"
#include "sim/fault_plan.hpp"
#include "sim/rng.hpp"

int main() {
  namespace bk = apps::banking;
  using bk::ShardedBanking;
  using bk::ShardedRequest;

  shard::PartialCluster<ShardedBanking>::Config cfg;
  cfg.num_nodes = 6;           // branches
  cfg.num_groups = 12;         // accounts
  cfg.replication_factor = 2;  // each account on 2 branches
  cfg.network.delay = sim::Delay::exponential(0.02, 0.08, 2.0);
  cfg.network.partitions =
      sim::FaultPlan{}.split_halves(6, 3, 3.0, 10.0).partitions();
  cfg.anti_entropy_interval = 0.3;
  cfg.seed = 5;
  shard::PartialCluster<ShardedBanking> bank(cfg);

  std::printf("placement (account -> branches):\n  ");
  for (shard::GroupId a = 0; a < cfg.num_groups; ++a) {
    const auto& reps = bank.replicas_of(a);
    std::printf("A%u:{%u,%u} ", a, reps[0], reps[1]);
  }
  std::printf("\n\n");

  // Fund the accounts, then a mixed workload through the partition.
  for (bk::AccountId a = 0; a < cfg.num_groups; ++a) {
    bank.submit_at(0.2, ShardedRequest::deposit(a, 500));
  }
  sim::Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    const double t = rng.uniform(0.5, 14.0);
    const auto a = static_cast<bk::AccountId>(rng.uniform_int(0, 11));
    const double roll = rng.uniform01();
    if (roll < 0.4) {
      bank.submit_at(t, ShardedRequest::deposit(a, rng.uniform_int(1, 100)));
    } else if (roll < 0.8) {
      bank.submit_at(t, ShardedRequest::withdraw(a, rng.uniform_int(1, 100)));
    } else {
      auto b = static_cast<bk::AccountId>(rng.uniform_int(0, 11));
      if (b == a) b = (b + 1) % 12;
      bank.submit_at(t, ShardedRequest::transfer(a, b, rng.uniform_int(1, 80)));
    }
  }
  bank.run_until(14.0);
  bank.settle();

  std::printf("routed %llu operations; %llu were UNROUTABLE transfers\n",
              static_cast<unsigned long long>(bank.stats().routed),
              static_cast<unsigned long long>(bank.stats().unroutable));
  std::printf("(a transfer A_i -> A_j is only possible at a branch hosting "
              "both accounts)\n\n");

  std::printf("per-branch storage (log entries; full replication would put "
              "everything everywhere):\n  ");
  for (core::NodeId n = 0; n < 6; ++n) {
    std::printf("branch%u:%zu ", n, bank.storage_at(n));
  }
  std::printf("\n\nconverged per account group: %s\n",
              bank.converged() ? "yes" : "no");
  long long total = 0;
  for (shard::GroupId a = 0; a < cfg.num_groups; ++a) {
    total += bank.group_state(a).balance;
  }
  std::printf("sum of balances: $%lld (transfers conserve money)\n", total);

  // Each account's history is a SHARD execution of its own.
  const auto exec = bank.group_execution(3);
  std::printf(
      "\naccount A3's own execution: %zu transactions, max missing "
      "prefix k=%zu — the paper's correctness conditions apply per group.\n",
      exec.size(), exec.max_missing());
  return 0;
}
