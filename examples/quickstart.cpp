// Quickstart: the SHARD public API in ~80 lines.
//
// Builds a 3-node replicated Fly-by-Night cluster, submits a few
// transactions at different nodes, shows a decision firing an external
// action, lets the broadcast converge the replicas, and runs the execution
// checker over the recorded trace.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/airline/airline.hpp"
#include "harness/scenario.hpp"
#include "shard/cluster.hpp"

int main() {
  namespace al = apps::airline;
  using Air = al::Airline;  // 100 seats, $900/$300 costs — the paper's app

  // 1. A cluster: 3 fully replicated nodes on a simulated LAN.
  harness::Scenario scenario = harness::lan(3);
  shard::Cluster<Air> cluster(scenario.cluster_config<Air>(/*seed=*/2026));

  // 2. Submit transactions at different nodes. Each runs its decision part
  //    against the LOCAL replica immediately (high availability), then
  //    broadcasts its update to everyone.
  cluster.submit_at(0.0, 0, al::Request::request(1));   // P1 wants a seat
  cluster.submit_at(0.1, 1, al::Request::request(2));   // P2 too, elsewhere
  cluster.submit_at(0.5, 2, al::Request::move_up());    // seat the first
  cluster.submit_at(0.6, 0, al::Request::move_up());    // and the next
  cluster.submit_at(1.0, 1, al::Request::cancel(2));    // P2 cancels
  cluster.run_until(2.0);
  cluster.settle();  // drain anti-entropy until replicas agree

  // 3. All replicas are now identical (mutual consistency).
  std::printf("converged: %s\n", cluster.converged() ? "yes" : "no");
  std::printf("replica 0 sees: %s\n",
              cluster.node(0).state().to_string().c_str());

  // 4. The recorded execution is the paper's formal object: a serial order
  //    plus, per transaction, the prefix subsequence its decision saw.
  const core::Execution<Air> exec = cluster.execution();
  std::printf("\nexecution (%zu transactions):\n", exec.size());
  for (std::size_t i = 0; i < exec.size(); ++i) {
    const auto& tx = exec.tx(i);
    std::printf("  [%zu] %-14s at node %u, saw %zu/%zu predecessors -> %s\n",
                i, tx.request.to_string().c_str(), tx.origin,
                tx.prefix.size(), i, tx.update.to_string().c_str());
    for (const auto& action : tx.external_actions) {
      std::printf("        external action: %s %s\n", action.kind.c_str(),
                  action.subject.c_str());
    }
  }

  // 5. Check the section 3.1 conditions over the trace.
  const auto report = analysis::check_prefix_subsequence_condition(exec);
  std::printf("\nprefix-subsequence condition: %s\n",
              report.ok() ? "OK" : report.to_string().c_str());
  std::printf("transitive: %s, max missing prefix: %zu\n",
              analysis::is_transitive(exec) ? "yes" : "no",
              exec.max_missing());

  // 6. Costs of the final state (zero here: nothing went wrong on a LAN).
  const auto final = exec.final_state();
  std::printf("final costs: overbooking=$%.0f underbooking=$%.0f\n",
              Air::cost(final, Air::kOverbooking),
              Air::cost(final, Air::kUnderbooking));
  return 0;
}
