// A Grapevine-style replicated name service (paper section 6: "name
// servers such as Grapevine have interesting but nonserializable behavior;
// it seems likely that they can be described within our framework").
//
// Registrations and mailing-list edits keep flowing on both sides of a
// partition; a member deregistered on one side stays on lists edited on
// the other — dangling references, the integrity violation — until a SCRUB
// compensates after the heal.
//
//   $ ./examples/name_service
#include <cstdio>

#include "apps/grapevine/grapevine.hpp"
#include "harness/scenario.hpp"
#include "shard/cluster.hpp"

int main() {
  namespace gv = apps::grapevine;
  using gv::Grapevine;
  using gv::Request;

  harness::Scenario sc = harness::partitioned_wan(4, 2.0, 10.0);
  shard::Cluster<Grapevine> registry(sc.cluster_config<Grapevine>(/*seed=*/8));

  // Before the cut: individuals register, a mailing list forms.
  registry.submit_at(0.2, 0, Request::register_individual(1, "mx-boston"));
  registry.submit_at(0.3, 1, Request::register_individual(2, "mx-paris"));
  registry.submit_at(0.4, 2, Request::register_individual(3, "mx-tokyo"));
  registry.submit_at(0.8, 0, Request::add_member(100, 1));
  registry.submit_at(0.9, 1, Request::add_member(100, 2));
  registry.submit_at(1.0, 2, Request::add_member(100, 3));
  registry.run_until(1.8);

  // During the cut: the left side deregisters R2; the right side, unaware,
  // adds R2 to a second list AND resolves the first one.
  registry.submit_at(3.0, 0, Request::deregister(2));
  registry.submit_at(4.0, 3, Request::add_member(200, 2));
  registry.submit_at(5.0, 3, Request::resolve(100));
  registry.submit_at(6.0, 0, Request::resolve(100));
  registry.run_until(9.0);

  std::printf("during the partition:\n");
  for (core::NodeId n = 0; n < 4; ++n) {
    for (const auto& rec : registry.node(n).originated()) {
      for (const auto& a : rec.external_actions) {
        if (a.kind == "resolution") {
          std::printf("  node %u resolves %s\n", n, a.subject.c_str());
        }
      }
    }
  }
  std::printf("  (the right side still lists R2; the left knows it's gone)\n");

  registry.settle();
  const auto& s = registry.node(0).state();
  std::printf("\nafter the heal (converged=%s): %s\n",
              registry.converged() ? "yes" : "no", s.to_string().c_str());
  std::printf("dangling memberships: %zu  ->  cost $%.0f\n",
              s.dangling().size(), Grapevine::cost(s, 0));

  // Compensation: one SCRUB restores referential integrity everywhere.
  const auto scrub = registry.submit_now(0, Request::scrub());
  registry.settle();
  std::printf("\nSCRUB %s\n",
              scrub.external_actions.empty()
                  ? "found nothing"
                  : ("removed " + scrub.external_actions[0].subject).c_str());
  std::printf("final: %s\n", registry.node(0).state().to_string().c_str());
  std::printf("cost after compensation: $%.0f\n",
              Grapevine::cost(registry.node(0).state(), 0));
  return 0;
}
