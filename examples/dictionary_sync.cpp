// The Fischer–Michael replicated dictionary (paper section 6) on SHARD:
// both sides of a partition keep serving reads and writes; conflicting
// writes to the same key resolve deterministically by timestamp order at
// every replica after the heal.
//
//   $ ./examples/dictionary_sync
#include <cstdio>

#include "apps/dictionary/dictionary.hpp"
#include "harness/scenario.hpp"
#include "shard/cluster.hpp"

int main() {
  namespace dict = apps::dictionary;
  using dict::Dictionary;
  using dict::Request;

  // 4 nodes, partitioned 2|2 between t=2 and t=10.
  harness::Scenario scenario = harness::partitioned_wan(4, 2.0, 10.0);
  shard::Cluster<Dictionary> cluster(
      scenario.cluster_config<Dictionary>(/*seed=*/3));

  cluster.submit_at(0.5, 0, Request::insert(1, "dns=10.0.0.1"));
  cluster.run_until(1.5);  // replicated before the cut

  // During the partition: both sides update key 1; each side reads its own
  // value (the lookup's external action reports what THAT replica sees).
  cluster.submit_at(3.0, 0, Request::insert(1, "dns=10.0.0.2"));  // left
  cluster.submit_at(4.0, 3, Request::insert(1, "dns=10.9.9.9"));  // right
  cluster.submit_at(5.0, 1, Request::lookup(1));
  cluster.submit_at(5.0, 2, Request::lookup(1));
  cluster.submit_at(6.0, 2, Request::insert(2, "mail=mx1"));      // right only
  cluster.submit_at(7.0, 1, Request::lookup(2));                  // left miss
  cluster.run_until(9.0);

  std::printf("during the partition:\n");
  for (const auto& node : {1u, 2u}) {
    for (const auto& rec : cluster.node(node).originated()) {
      for (const auto& a : rec.external_actions) {
        std::printf("  node %u lookup -> %s\n", node, a.subject.c_str());
      }
    }
  }
  std::printf("  (left is blind to mail=mx1; each side sees its own dns)\n");

  cluster.settle();
  std::printf("\nafter the heal: converged=%s\n",
              cluster.converged() ? "yes" : "no");
  const auto& s = cluster.node(0).state();
  std::printf("replica 0: %s\n", s.to_string().c_str());
  std::printf("replica 3: %s\n", cluster.node(3).state().to_string().c_str());
  std::printf(
      "conflicting writes to key 1 resolved by global timestamp order: "
      "%s wins everywhere\n",
      s.find(1)->value.c_str());
  return 0;
}
