// Mixed-mode operation (paper section 6): "certain critical transactions
// run serializably, while the others run in a highly available manner. The
// application designer should be able to specify the modes of operation
// for different transactions."
//
// A bank keeps taking deposits and dispensing cash through a partition
// (available mode), while a regulatory audit submitted mid-partition runs
// serializably: it waits for the section 3.3 promises, then reports the
// true total with a provably complete prefix.
//
//   $ ./examples/mixed_critical
#include <cstdio>

#include "analysis/execution_checker.hpp"
#include "apps/banking/banking.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "shard/cluster.hpp"

int main() {
  namespace bk = apps::banking;
  using bk::Banking;

  harness::Scenario sc = harness::partitioned_wan(4, 3.0, 15.0);
  std::printf("scenario: %s\n", sc.faults.describe().c_str());
  shard::Cluster<Banking> cluster(sc.cluster_config<Banking>(/*seed=*/19));

  for (bk::AccountId a = 0; a < 8; ++a) {
    cluster.submit_at(0.3, a % 4, bk::Request::deposit(a, 300));
  }
  harness::BankingWorkload w;
  w.duration = 20.0;
  w.tx_rate = 5.0;
  w.num_accounts = 8;
  harness::drive_banking(cluster, w, /*seed=*/20);

  // The critical transaction: an audit submitted at t=8, mid-partition,
  // in SERIALIZABLE mode. An ordinary audit at the same moment for
  // contrast.
  cluster.submit_at(8.0, 1, bk::Request::audit());
  cluster.submit_serializable_at(8.0, 1, bk::Request::audit());

  cluster.run_until(12.0);
  std::printf("\nat t=12 (partition still open): %zu serializable tx "
              "waiting; ordinary traffic flowing (%llu txs so far)\n",
              cluster.pending_serializable(),
              static_cast<unsigned long long>(cluster.total_originated()));

  cluster.run_until(w.duration);
  cluster.settle();
  const auto exec = cluster.execution();

  for (const auto& rec : cluster.node(1).originated()) {
    if (rec.request.kind != bk::Request::Kind::kAudit) continue;
    // Locate in the serial order to measure completeness.
    std::size_t missing = 0;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      if (exec.tx(i).ts == rec.ts) missing = exec.missing_count(i);
    }
    if (rec.serializable) {
      std::printf(
          "\nSERIALIZABLE audit: initiated t=%.1f, ran t=%.1f (waited %.1fs "
          "for the heal)\n  missed predecessors: %zu  ->  report: $%s "
          "(guaranteed true at its position)\n",
          rec.real_time, rec.decided_time, rec.decided_time - rec.real_time,
          missing, rec.external_actions[0].subject.c_str());
    } else {
      std::printf(
          "\nordinary audit:     initiated t=%.1f, ran immediately\n"
          "  missed predecessors: %zu  ->  report: $%s (local view only —\n"
          "  the far side's deposits and withdrawals are invisible)\n",
          rec.real_time, missing, rec.external_actions[0].subject.c_str());
    }
  }
  std::printf("\nfinal true bank total: $%lld; replicas converged: %s\n",
              static_cast<long long>(cluster.node(0).state().total()),
              cluster.converged() ? "yes" : "no");
  return 0;
}
