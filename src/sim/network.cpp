#include "sim/network.hpp"

#include <cassert>

namespace sim {

void Network::register_node(NodeId node, Handler handler) {
  if (node >= handlers_.size()) handlers_.resize(node + 1);
  handlers_[node] = std::move(handler);
}

void Network::set_node_down(NodeId node, bool down) {
  if (node >= down_.size()) down_.resize(node + 1, 0);
  down_[node] = down ? 1 : 0;
}

std::uint64_t Network::send(NodeId src, NodeId dst, std::any payload) {
  assert(dst < handlers_.size() && handlers_[dst]);
  ++stats_.sent;
  // A crashed endpoint swallows the message outright: a down node has no
  // running protocol stack to transmit or receive with.
  if (node_down(src) || node_down(dst)) {
    ++stats_.dropped_crashed;
    if (observer_) observer_(src, dst, 0, MessageFate::kDroppedCrashed);
    return 0;
  }
  // A cut active at send time swallows the message. The paper's broadcast
  // layer is responsible for eventual delivery via retransmission, so loss
  // here is exactly the failure the correctness conditions must tolerate.
  if (!config_.partitions.connected(src, dst, sched_.now())) {
    ++stats_.dropped_partition;
    if (observer_) observer_(src, dst, 0, MessageFate::kDroppedPartition);
    return 0;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.bernoulli(config_.drop_probability)) {
    ++stats_.dropped_random;
    if (observer_) observer_(src, dst, 0, MessageFate::kDroppedRandom);
    return 0;
  }
  const std::uint64_t id = next_msg_id_++;
  Message msg{src, dst, id, std::move(payload)};
  const Time latency = config_.delay.sample(rng_);
  if (observer_) observer_(src, dst, id, MessageFate::kSent);
  sched_.schedule_after(latency, [this, msg = std::move(msg)]() {
    // Deliver even if a partition started after the send: the datagram was
    // already in flight. (Cut-at-send-time is the standard simplification;
    // the broadcast layer tolerates either convention.) A crash is
    // different: a datagram arriving at a down node lands on dead hardware
    // and is lost — anti-entropy recovers it after the restart.
    if (node_down(msg.dst)) {
      ++stats_.dropped_crashed;
      if (observer_) {
        observer_(msg.src, msg.dst, msg.id, MessageFate::kDroppedCrashed);
      }
      return;
    }
    ++stats_.delivered;
    if (observer_) {
      observer_(msg.src, msg.dst, msg.id, MessageFate::kDelivered);
    }
    handlers_[msg.dst](msg);
  });
  return id;
}

std::size_t Network::send_to_all(NodeId src, const std::any& payload) {
  std::size_t n = 0;
  for (NodeId dst = 0; dst < handlers_.size(); ++dst) {
    if (dst == src || !handlers_[dst]) continue;
    send(src, dst, payload);
    ++n;
  }
  return n;
}

}  // namespace sim
