// Node crash/restart schedules.
//
// The paper's availability story (section 1.2) is that SHARD keeps serving
// "barring permanent communication failures" — which covers node failures
// too: a crashed node is just a node nobody can communicate with until it
// comes back. This module makes crashes a first-class, scriptable input,
// symmetric with PartitionSchedule: a CrashSchedule is a set of timed
// down-windows per node. The Cluster consults the schedule to drive
// Node::crash()/Node::restart(); the Network refuses delivery to a node
// that is currently down (its volatile receive path does not exist).
//
// Each event names a recovery mode for the restart that ends it:
//
//   * kDurable — the node recovers its merged log from stable storage
//     (modeled as: the UpdateLog survives; conceptually the last checkpoint
//     plus the log suffix is replayed from disk) and catches up on whatever
//     it missed through the usual anti-entropy digests.
//   * kAmnesia — the node loses all volatile replication state (merged log,
//     delivery vectors, peer promises) and rebuilds from the initial state
//     by resynchronizing every update from its own stable outbox and its
//     peers. Only the minimal stable-storage footprint survives: the node's
//     own transaction records (timestamps, updates, fired external
//     actions), written before external actions fire so that decisions are
//     never re-run and external actions never re-fired (section 1.2).
//   * kStaleDisk — stable storage survives but lost its recent suffix (a
//     disk that dropped un-synced writes): the node resumes from a *stale*
//     checkpoint, keeping only a seeded fraction of its merged log, and
//     re-merges the lost tail through outbox replay and anti-entropy —
//     the deep undo/redo recovery path of section 3.3.
//
// NOTE: CrashSchedule (like PartitionSchedule) is the storage type behind
// sim::FaultPlan (sim/fault_plan.hpp), which owns seeding and cross-fault
// correlation — compose fault schedules through the plan. The standalone
// convenience builders that once lived here were removed after their
// one-release deprecation window; add() remains for code that assembles
// events directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/delay.hpp"
#include "sim/partition.hpp"
#include "sim/rng.hpp"

namespace sim {

/// How a node comes back from a crash (see file comment).
enum class RecoveryMode {
  kDurable,    ///< merged log survives; catch up on the missed suffix only
  kAmnesia,    ///< volatile state lost; resync everything from peers/outbox
  kStaleDisk,  ///< log suffix lost; resume from a stale checkpoint + repair
};

/// "durable" / "amnesia" / "stale-disk" — shared by describe() and the
/// trace exporters.
const char* to_string(RecoveryMode mode);

/// One down-window: `node` crashes at `start` and restarts at `end` with
/// `mode`. While down the node executes nothing, receives nothing, and
/// rejects submissions.
struct CrashEvent {
  NodeId node = 0;
  Time start = 0.0;
  Time end = 0.0;
  RecoveryMode mode = RecoveryMode::kDurable;
  /// kStaleDisk only: the fraction of the merged log that survived the disk
  /// failure (the rest is truncated at restart). FaultPlan::disk_failure
  /// draws this from the plan's seeded RNG unless given explicitly.
  double keep_fraction = 1.0;
};

/// A scriptable schedule of node crashes over the lifetime of a run,
/// analogous to PartitionSchedule for link failures. Windows for the same
/// node must not overlap (checked by `add`).
class CrashSchedule {
 public:
  CrashSchedule() = default;

  /// Add a down-window. Returns *this for fluent construction. Throws
  /// std::invalid_argument on an empty window or one overlapping an
  /// existing window of the same node.
  CrashSchedule& add(CrashEvent event);

  /// Is `node` down at time t?
  bool down(NodeId node, Time t) const;

  /// Latest restart time over all events (0 if none). After this every node
  /// is up again; harnesses run at least this long before settling.
  Time last_restart_time() const;

  /// Total down-window time summed over all events.
  Time total_downtime() const;

  bool empty() const { return events_.empty(); }
  const std::vector<CrashEvent>& events() const { return events_; }

  std::string describe() const;

 private:
  std::vector<CrashEvent> events_;
};

}  // namespace sim
