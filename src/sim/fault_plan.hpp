// Unified fault-injection plan (fault-injection v2).
//
// The first-generation fault model threaded three parallel, unrelated
// surfaces through Cluster/Scenario: sim::CrashSchedule for node crashes,
// sim::PartitionSchedule for link cuts, and the delay/drop config on the
// network. Faults that span those surfaces — a rack losing power is a
// partition AND a set of simultaneous crashes — had no home, and every
// caller that wanted "random chaos" reimplemented seeded generation by
// hand.
//
// FaultPlan is the single composable surface: one builder that owns the
// seed, the correlation between fault classes, and the full fault
// vocabulary of the paper's availability story (section 1.2 continued
// operation, section 3.3 undo/redo recovery):
//
//   plan.crash(node, start, end[, mode])      — clean crash/restart window
//   plan.disk_failure(node, start, end)       — restart from a *stale*
//                                               checkpoint: the log suffix
//                                               past a seeded point is lost
//                                               and re-merged via undo/redo
//                                               + anti-entropy repair
//   plan.crash_mid_broadcast(node, seq, ...)  — crash between the stable
//                                               outbox append and the first
//                                               flood send, pinning the
//                                               write-ahead intention-log
//                                               boundary
//   plan.partition(...) / cut / split_halves / isolate
//   plan.rack_power_loss(rack, ...)           — correlated: partition the
//                                               rack AND crash every node in
//                                               it for the same window
//   plan.rolling_restart(n, start, ...)       — upgrade simulation: restart
//                                               one node at a time
//   plan.random_partitions / random_crashes / FaultPlan::chaos(seed, ...)
//   plan.byzantine_payload(...)               — adversarial receive-path
//                                               tampering: seeded corruption,
//                                               duplication and reordering of
//                                               update payloads at the
//                                               broadcast layer
//
// Cluster and Scenario accept one FaultPlan. The underlying CrashSchedule /
// PartitionSchedule types persist as the plan's storage (and the network's
// partition oracle); their standalone convenience builders and the adopt()
// migration shims were removed after their one-release deprecation window.
//
// Everything is deterministic: the plan's RNG is seeded at construction and
// consumed only by builder calls, so an identical call sequence yields an
// identical plan — and identical runs, byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/crash.hpp"
#include "sim/partition.hpp"
#include "sim/rng.hpp"

namespace sim {

/// A crash triggered when `node` performs its `broadcast_seq`-th broadcast
/// (1-based, counting the node's own originated updates): the node goes
/// down *after* appending the wire record to its stable outbox but *before*
/// the first flood send. The update's decision has run and its external
/// actions have fired, so by the write-ahead intention-log rule the record
/// must survive and eventually merge everywhere — never re-running, never
/// lost. The node restarts `down_for` after the crash with `mode`.
struct MidBroadcastCrash {
  NodeId node = 0;
  std::uint64_t broadcast_seq = 1;
  Time down_for = 2.0;
  RecoveryMode mode = RecoveryMode::kDurable;
  double keep_fraction = 1.0;  ///< kStaleDisk restarts only
};

/// Byzantine payload adversary at the broadcast receive path. Each wire a
/// node receives during [start, end) is independently tampered with:
/// corrupted (the update field is substituted with a previously seen
/// payload's update, timestamp preserved), duplicated (re-injected into the
/// accept path, exercising dedup), or held back one packet (reordering).
/// All draws come from a dedicated RNG seeded by `seed`, so an unarmed run
/// is byte-identical to one with no Byzantine config at all, and an armed
/// run is deterministic per seed.
struct ByzantineOptions {
  bool enabled = false;
  double corrupt_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  Time start = 0.0;
  Time end = 1e18;  ///< Effectively "forever" by default.
  std::uint64_t seed = 0;
  /// Previously seen payloads retained per node as corruption donors.
  std::size_t stash_capacity = 16;
};

/// Knobs for FaultPlan::chaos (seeded whole-plan generation).
struct ChaosOptions {
  int partition_events = 2;
  int crash_events = 2;
  Time min_down = 1.0;
  Time max_down = 5.0;
  /// Recovery-mode mix for random crashes: each crash is first a disk
  /// failure with `disk_failure_probability`, else amnesia with
  /// `amnesia_probability`, else a clean durable restart.
  double amnesia_probability = 0.35;
  double disk_failure_probability = 0.0;
  /// Per partition event: probability that the cut is a rack power loss,
  /// i.e. every node of the smaller side also crashes for the window.
  double rack_loss_probability = 0.0;
};

/// One composable, seeded plan of every fault the simulation can inject.
/// See the file comment for the vocabulary. Copyable; queries are O(events).
class FaultPlan {
 public:
  /// The seed drives every random draw the builder makes (disk-failure
  /// truncation points, random_* generation). Two plans built with the same
  /// seed and the same call sequence are identical.
  explicit FaultPlan(std::uint64_t seed = 0x5ABDF417u);

  // --- crashes ---------------------------------------------------------

  /// Crash `node` during [start, end); restart with `mode`. Throws
  /// std::invalid_argument on an empty or per-node overlapping window.
  FaultPlan& crash(NodeId node, Time start, Time end,
                   RecoveryMode mode = RecoveryMode::kDurable);

  /// Disk failure: crash `node` during [start, end) and restart from a
  /// stale checkpoint — only a fraction of the merged log survives, the
  /// truncated suffix is re-merged through undo/redo and anti-entropy.
  /// The surviving fraction is drawn from the plan's RNG ([0.1, 0.9)).
  FaultPlan& disk_failure(NodeId node, Time start, Time end);

  /// Disk failure with an explicit surviving fraction in [0, 1] (no RNG
  /// draw, so surrounding seeded draws are unaffected).
  FaultPlan& disk_failure(NodeId node, Time start, Time end,
                          double keep_fraction);

  /// Crash `node` mid-broadcast at its `broadcast_seq`-th originated update
  /// (see MidBroadcastCrash). Dynamic: fires when — and only if — the node
  /// actually reaches that broadcast.
  FaultPlan& crash_mid_broadcast(NodeId node, std::uint64_t broadcast_seq,
                                 Time down_for = 2.0,
                                 RecoveryMode mode = RecoveryMode::kDurable,
                                 double keep_fraction = 1.0);

  // --- partitions ------------------------------------------------------

  /// Add a raw partition event.
  FaultPlan& partition(PartitionEvent event);

  /// Split the node set into the given connectivity groups during
  /// [start, end).
  FaultPlan& cut(std::vector<std::vector<NodeId>> groups, Time start,
                 Time end);

  /// Split nodes [0, n) into halves [0, m) and [m, n) during [start, end).
  FaultPlan& split_halves(NodeId n, NodeId m, Time start, Time end);

  /// Isolate one node from the other cluster_size-1 during [start, end).
  FaultPlan& isolate(NodeId node, NodeId cluster_size, Time start, Time end);

  // --- correlated / composite -----------------------------------------

  /// Correlated failure: the `rack` loses power during [start, end). The
  /// rack is partitioned from the rest of the cluster AND every node in it
  /// crashes, for the same window; each restarts with `mode` when power
  /// returns. Models the PAPERS.md observation that realistic failures are
  /// topology-correlated, not independent coin flips.
  FaultPlan& rack_power_loss(const std::vector<NodeId>& rack,
                             NodeId cluster_size, Time start, Time end,
                             RecoveryMode mode = RecoveryMode::kDurable);

  /// Upgrade simulation: restart nodes 0..cluster_size-1 one at a time.
  /// Node i is down during [start + i*(down_for+gap), +down_for); windows
  /// never overlap, so the cluster keeps a quorum of live nodes throughout.
  FaultPlan& rolling_restart(NodeId cluster_size, Time start, Time down_for,
                             Time gap = 0.5,
                             RecoveryMode mode = RecoveryMode::kDurable);

  // --- seeded random generation ---------------------------------------

  /// `events` random two-group cuts over [0, horizon) (each a random
  /// nonempty proper subset vs the rest, lasting [horizon/10, horizon/3)).
  FaultPlan& random_partitions(std::size_t nodes, Time horizon, int events);

  /// `events` random crash windows over [0, horizon); down-times drawn
  /// from [min_down, max_down), mode mixed as in ChaosOptions. Windows
  /// that would overlap an earlier window of the same node are skipped
  /// (the draw sequence is fixed, keeping runs reproducible).
  FaultPlan& random_crashes(std::size_t nodes, Time horizon, int events,
                            Time min_down = 1.0, Time max_down = 5.0,
                            double amnesia_probability = 0.5,
                            double disk_failure_probability = 0.0);

  /// A whole random plan: partitions (with optional correlated rack
  /// losses) plus independent crashes, per `opt`.
  static FaultPlan chaos(std::uint64_t seed, std::size_t nodes, Time horizon,
                         const ChaosOptions& opt = {});

  // --- Byzantine payload adversary -------------------------------------

  /// Arm the Byzantine receive-path adversary (see ByzantineOptions). The
  /// adversary's RNG seed is drawn from the plan's stream, so two plans
  /// with the same seed and call sequence inject identical tampering.
  /// Probabilities must lie in [0, 1] and the window must be nonempty.
  FaultPlan& byzantine_payload(double corrupt_probability,
                               double duplicate_probability = 0.0,
                               double reorder_probability = 0.0,
                               Time start = 0.0, Time end = 1e18);

  // --- queries ---------------------------------------------------------

  bool down(NodeId node, Time t) const { return crashes_.down(node, t); }
  bool connected(NodeId a, NodeId b, Time t) const {
    return partitions_.connected(a, b, t);
  }
  bool partitioned_at(Time t) const { return partitions_.partitioned_at(t); }
  Time last_heal_time() const { return partitions_.last_heal_time(); }
  Time last_restart_time() const { return crashes_.last_restart_time(); }
  /// Max of last heal and last scheduled restart. Mid-broadcast crashes are
  /// dynamic (they fire when the broadcast happens, if ever) and are not
  /// included; Cluster::settle()'s convergence loop covers them.
  Time all_clear_time() const;
  Time total_downtime() const { return crashes_.total_downtime(); }
  bool empty() const;
  std::string describe() const;

  const CrashSchedule& crashes() const { return crashes_; }
  const PartitionSchedule& partitions() const { return partitions_; }
  const std::vector<MidBroadcastCrash>& mid_broadcast_crashes() const {
    return mid_;
  }
  const ByzantineOptions& byzantine() const { return byzantine_; }

 private:
  Rng rng_;
  CrashSchedule crashes_;
  PartitionSchedule partitions_;
  std::vector<MidBroadcastCrash> mid_;
  ByzantineOptions byzantine_;
};

}  // namespace sim
