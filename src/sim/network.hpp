// Point-to-point message layer over the discrete-event scheduler.
//
// Models the unreliable datagram substrate underneath the [GLBKSS] reliable
// broadcast: per-message sampled latency, optional random loss, and loss of
// every message whose send time falls inside an active partition cut.
// Payloads are type-erased (std::any) so the non-template network can carry
// any application's update envelopes.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/delay.hpp"
#include "sim/partition.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace sim {

/// A delivered datagram.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t id = 0;  // unique per send, for tracing
  std::any payload;
};

/// Counters exposed for the availability experiments (E8, E12, E18).
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_random = 0;
  /// Messages lost because an endpoint was crashed — at send time (either
  /// end down) or at delivery time (destination crashed while the datagram
  /// was in flight; its volatile receive path no longer exists).
  std::uint64_t dropped_crashed = 0;
};

/// Simulated unreliable network.
///
/// One instance serves the whole cluster. Each node registers a receive
/// handler; `send` samples a latency from the delay model and schedules
/// delivery, unless the message is lost to a partition cut or random drop.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// What became of one send attempt (reported to the observer; the
  /// stats counters are the aggregate view of the same outcomes).
  enum class MessageFate {
    kSent,             ///< Accepted; delivery scheduled after sampled delay.
    kDelivered,        ///< Handed to the destination's handler.
    kDroppedPartition, ///< Lost to an active cut at send time.
    kDroppedRandom,    ///< Lost to the random-drop coin.
    kDroppedCrashed,   ///< An endpoint was down at send or delivery time.
  };
  /// Message-fate observer, called once per outcome (a sent message that
  /// is later delivered reports twice: kSent, then kDelivered). `id` is 0
  /// for messages dropped at send time (no id was allocated). Purely
  /// observational; installing one changes no delivery behavior.
  using Observer =
      std::function<void(NodeId src, NodeId dst, std::uint64_t id,
                         MessageFate fate)>;

  struct Config {
    Delay delay = Delay::constant(0.01);
    double drop_probability = 0.0;
    PartitionSchedule partitions;
  };

  Network(Scheduler& sched, Config config, std::uint64_t seed)
      : sched_(sched), config_(std::move(config)), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register the receive handler for `node`. Grows the node table as needed.
  void register_node(NodeId node, Handler handler);

  /// Number of registered nodes.
  std::size_t node_count() const { return handlers_.size(); }

  /// Send `payload` from src to dst. Returns the message id (0 if the
  /// message was dropped immediately).
  std::uint64_t send(NodeId src, NodeId dst, std::any payload);

  /// Broadcast to every registered node except src. Returns messages sent.
  std::size_t send_to_all(NodeId src, const std::any& payload);

  /// Connectivity query, forwarded to the partition schedule at current time.
  bool connected_now(NodeId a, NodeId b) const {
    return config_.partitions.connected(a, b, sched_.now());
  }

  /// Mark a node crashed/restarted. While down the node neither sends nor
  /// receives: sends from/to it are dropped at send time, and in-flight
  /// messages addressed to it are dropped at delivery time. Driven by
  /// Node::crash()/restart() (single source of truth — the schedule only
  /// decides *when* the cluster calls those).
  void set_node_down(NodeId node, bool down);

  /// Is `node` currently marked down?
  bool node_down(NodeId node) const {
    return node < down_.size() && down_[node];
  }

  const NetworkStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  Scheduler& scheduler() { return sched_; }

  /// Install (or clear, with nullptr) the message-fate observer. Used by
  /// the tracer; costs one branch per outcome when unset.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

 private:
  Scheduler& sched_;
  Config config_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<char> down_;  ///< down_[n]: node n is currently crashed
  NetworkStats stats_;
  Observer observer_;
  std::uint64_t next_msg_id_ = 1;
};

}  // namespace sim
