// Deterministic discrete-event scheduler.
//
// The SHARD substrate (paper section 1.2) ran on a real network at CCA; the
// reproduction runs the same protocols on a discrete-event simulation so that
// every theorem of the paper can be checked against exactly reproducible
// executions, including executions with controlled network partitions.
// Events with equal timestamps fire in insertion order, so a run is a pure
// function of (seed, configuration).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/delay.hpp"

namespace sim {

/// A deterministic discrete-event scheduler ("virtual time" event loop).
///
/// Components schedule closures at absolute or relative simulated times;
/// `run()` drains the queue in (time, insertion-sequence) order. Cancellation
/// is supported so protocols can maintain retransmission timers.
class Scheduler {
 public:
  using Action = std::function<void()>;
  /// Identifies a scheduled event; usable with `cancel`.
  using EventId = std::uint64_t;
  /// Dispatch observer: called once per executed event, after now() has
  /// advanced to the event's time and before its action runs. Purely
  /// observational — it must not schedule or cancel events — so installing
  /// one never changes the (time, seq) execution order.
  using Observer = std::function<void(Time t, EventId id)>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at 0.
  Time now() const { return now_; }

  /// Schedule `action` at absolute simulated time `t` (>= now()).
  EventId schedule_at(Time t, Action action);

  /// Schedule `action` `dt` seconds from now.
  EventId schedule_after(Time dt, Action action) {
    return schedule_at(now_ + dt, std::move(action));
  }

  /// Cancel a pending event. Returns false if it already ran or was
  /// previously cancelled.
  bool cancel(EventId id);

  /// Run `action` synchronously after the CURRENT event's action finishes —
  /// at the same simulated time, before any queued event, and without
  /// creating a scheduler event (no new id, no dispatch observation, no
  /// perturbation of the (time, seq) order). This is the hook batching
  /// layers use to coalesce work accumulated within one dispatch: stage
  /// during the action, flush at its end. Deferred actions may defer
  /// further actions (drained FIFO until empty). Called while no event is
  /// dispatching (e.g. from test code driving components directly),
  /// `action` runs immediately.
  void defer(Action action);

  /// Execute the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue is empty ("quiescence"). Returns events executed.
  std::size_t run();

  /// Run events with time <= `t`, then set now() = t even if idle.
  /// Returns events executed.
  std::size_t run_until(Time t);

  /// True if no events are pending (cancelled-but-unpopped events count as
  /// pending until drained; run()/step() skip them).
  bool idle() const { return queue_.empty(); }

  /// Total events executed since construction.
  std::size_t events_executed() const { return executed_; }

  /// Install (or clear, with nullptr) the dispatch observer. Used by the
  /// tracer; costs one branch per dispatch when unset.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

 private:
  struct Event {
    Time t = 0.0;
    std::uint64_t seq = 0;  // insertion order; tie-break for determinism
    EventId id = 0;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Cancelled events stay in the heap and are skipped on pop; `cancelled_`
  // holds their ids until then (erased when the tombstone is consumed, so
  // the set tracks *pending* cancellations, not history). Hash lookup keeps
  // both cancel() and the per-pop check O(1) — cancel-heavy chaos runs used
  // to pay O(log cancelled) per pop re-sorting a vector.
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  // End-of-dispatch work staged by defer(); drained inside step() after the
  // current action returns. Index-based drain: deferred actions may append.
  std::vector<Action> deferred_;
  bool dispatching_ = false;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  Time now_ = 0.0;
  std::size_t executed_ = 0;
  Observer observer_;

  bool is_cancelled(EventId id);
};

}  // namespace sim
