// Deterministic, seedable random number generation for the simulator.
//
// Every stochastic component of the reproduction (delay models, workload
// generators, property tests) draws from an explicitly seeded Rng so that
// every execution trace is exactly reproducible from (seed, parameters).
// Reproducibility is what lets the bench harness re-derive the paper's
// worked examples and lets failing property tests be replayed.
#pragma once

#include <cstdint>
#include <limits>
#include <random>

namespace sim {

/// A seedable pseudo-random generator with convenience samplers.
///
/// Wraps std::mt19937_64. The wrapper exists so call sites never construct
/// ad-hoc distribution objects (which would make draw order — and therefore
/// trace reproducibility — depend on incidental code layout).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal parameterized directly by the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson draw with the given mean.
  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Raw 64-bit draw; used to derive independent child seeds.
  std::uint64_t next_u64() { return engine_(); }

  /// Derive a decorrelated child seed (for giving each node / component its
  /// own stream while keeping the whole run a function of one master seed).
  std::uint64_t fork_seed() {
    // SplitMix64 finalizer decorrelates sequential engine outputs.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sim
