#include "sim/crash.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sim {

const char* to_string(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kDurable:
      return "durable";
    case RecoveryMode::kAmnesia:
      return "amnesia";
    case RecoveryMode::kStaleDisk:
      return "stale-disk";
  }
  return "unknown";
}

CrashSchedule& CrashSchedule::add(CrashEvent event) {
  if (!(event.start < event.end)) {
    throw std::invalid_argument("CrashSchedule: empty down-window");
  }
  for (const CrashEvent& ev : events_) {
    if (ev.node == event.node && event.start < ev.end && ev.start < event.end) {
      throw std::invalid_argument(
          "CrashSchedule: overlapping down-windows for one node");
    }
  }
  events_.push_back(event);
  return *this;
}

bool CrashSchedule::down(NodeId node, Time t) const {
  return std::any_of(events_.begin(), events_.end(),
                     [node, t](const CrashEvent& ev) {
                       return ev.node == node && t >= ev.start && t < ev.end;
                     });
}

Time CrashSchedule::last_restart_time() const {
  Time latest = 0.0;
  for (const CrashEvent& ev : events_) latest = std::max(latest, ev.end);
  return latest;
}

Time CrashSchedule::total_downtime() const {
  Time total = 0.0;
  for (const CrashEvent& ev : events_) total += ev.end - ev.start;
  return total;
}

std::string CrashSchedule::describe() const {
  if (events_.empty()) return "no crashes";
  std::ostringstream os;
  os << events_.size() << " crash event(s): ";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const CrashEvent& ev = events_[i];
    if (i > 0) os << "; ";
    os << "node " << ev.node << " down [" << ev.start << "," << ev.end << ") "
       << to_string(ev.mode);
    if (ev.mode == RecoveryMode::kStaleDisk) {
      os << " keep=" << ev.keep_fraction;
    }
  }
  return os.str();
}

}  // namespace sim
