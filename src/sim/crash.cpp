#include "sim/crash.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sim {

const char* to_string(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kDurable:
      return "durable";
    case RecoveryMode::kAmnesia:
      return "amnesia";
    case RecoveryMode::kStaleDisk:
      return "stale-disk";
  }
  return "unknown";
}

CrashSchedule& CrashSchedule::add(CrashEvent event) {
  if (!(event.start < event.end)) {
    throw std::invalid_argument("CrashSchedule: empty down-window");
  }
  for (const CrashEvent& ev : events_) {
    if (ev.node == event.node && event.start < ev.end && ev.start < event.end) {
      throw std::invalid_argument(
          "CrashSchedule: overlapping down-windows for one node");
    }
  }
  events_.push_back(event);
  return *this;
}

// Definitions of the deprecated adapter surface; defining a deprecated
// function does not itself warn.
CrashSchedule& CrashSchedule::crash(NodeId node, Time start, Time end,
                                    RecoveryMode mode) {
  return add(CrashEvent{node, start, end, mode, 1.0});
}

bool CrashSchedule::down(NodeId node, Time t) const {
  return std::any_of(events_.begin(), events_.end(),
                     [node, t](const CrashEvent& ev) {
                       return ev.node == node && t >= ev.start && t < ev.end;
                     });
}

Time CrashSchedule::last_restart_time() const {
  Time latest = 0.0;
  for (const CrashEvent& ev : events_) latest = std::max(latest, ev.end);
  return latest;
}

Time CrashSchedule::total_downtime() const {
  Time total = 0.0;
  for (const CrashEvent& ev : events_) total += ev.end - ev.start;
  return total;
}

std::string CrashSchedule::describe() const {
  if (events_.empty()) return "no crashes";
  std::ostringstream os;
  os << events_.size() << " crash event(s): ";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const CrashEvent& ev = events_[i];
    if (i > 0) os << "; ";
    os << "node " << ev.node << " down [" << ev.start << "," << ev.end << ") "
       << to_string(ev.mode);
    if (ev.mode == RecoveryMode::kStaleDisk) {
      os << " keep=" << ev.keep_fraction;
    }
  }
  return os.str();
}

CrashSchedule CrashSchedule::random(Rng& rng, std::size_t nodes, Time horizon,
                                    int count, Time min_down, Time max_down,
                                    double amnesia_probability) {
  CrashSchedule cs;
  for (int e = 0; e < count; ++e) {
    CrashEvent ev;
    ev.node = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    ev.start = rng.uniform(0.0, horizon);
    ev.end = ev.start + rng.uniform(min_down, max_down);
    ev.mode = rng.bernoulli(amnesia_probability) ? RecoveryMode::kAmnesia
                                                 : RecoveryMode::kDurable;
    const bool overlaps = std::any_of(
        cs.events_.begin(), cs.events_.end(), [&ev](const CrashEvent& prior) {
          return prior.node == ev.node && ev.start < prior.end &&
                 prior.start < ev.end;
        });
    if (!overlaps) cs.events_.push_back(ev);
  }
  return cs;
}

}  // namespace sim
