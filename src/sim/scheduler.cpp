#include "sim/scheduler.hpp"

#include <cassert>

namespace sim {

Scheduler::EventId Scheduler::schedule_at(Time t, Action action) {
  if (t < now_) {
    // Scheduling into the past would silently reorder causality; treat as a
    // programming error at the call site but clamp so protocol code that
    // computes t = now + sampled_delay with delay 0 is still fine.
    t = now_;
  }
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.action = std::move(action);
  queue_.push(std::move(ev));
  return next_id_ - 1;
}

bool Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Only record ids that might still be pending.
  cancelled_.insert(id);
  // We cannot know cheaply whether the event already ran; callers use the
  // return value only as a hint. Track liveness conservatively by probing.
  return true;
}

bool Scheduler::is_cancelled(EventId id) {
  const auto it = cancelled_.find(id);
  if (it == cancelled_.end()) return false;
  // Each event is popped at most once, so this tombstone is spent: drop it
  // to keep the set proportional to pending cancellations.
  cancelled_.erase(it);
  return true;
}

void Scheduler::defer(Action action) {
  if (!dispatching_) {
    // Not inside a dispatch (component driven directly by test code):
    // there is no "end of the current event" to wait for — run now.
    action();
    return;
  }
  deferred_.push_back(std::move(action));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) continue;
    assert(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    if (observer_) observer_(ev.t, ev.id);
    dispatching_ = true;
    ev.action();
    // Drain end-of-dispatch work (batch flushes). Index loop: a deferred
    // action may defer more; everything runs before the next queued event.
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      Action a = std::move(deferred_[i]);
      a();
    }
    deferred_.clear();
    dispatching_ = false;
    return true;
  }
  return false;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(Time t) {
  std::size_t n = 0;
  for (;;) {
    // Drop cancelled events from the front so the time check below sees the
    // next event that would actually run.
    while (!queue_.empty() && is_cancelled(queue_.top().id)) queue_.pop();
    if (queue_.empty() || queue_.top().t > t) break;
    if (step()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace sim
