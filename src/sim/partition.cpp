#include "sim/partition.hpp"

#include <algorithm>
#include <sstream>

namespace sim {

PartitionSchedule& PartitionSchedule::add(PartitionEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

bool PartitionSchedule::connected(NodeId a, NodeId b, Time t) const {
  if (a == b) return true;
  for (const PartitionEvent& ev : events_) {
    if (t < ev.start || t >= ev.end) continue;
    bool together = false;
    for (const auto& group : ev.groups) {
      const bool has_a = std::find(group.begin(), group.end(), a) != group.end();
      const bool has_b = std::find(group.begin(), group.end(), b) != group.end();
      if (has_a && has_b) {
        together = true;
        break;
      }
    }
    if (!together) return false;
  }
  return true;
}

bool PartitionSchedule::partitioned_at(Time t) const {
  return std::any_of(events_.begin(), events_.end(),
                     [t](const PartitionEvent& ev) {
                       return t >= ev.start && t < ev.end;
                     });
}

Time PartitionSchedule::last_heal_time() const {
  Time latest = 0.0;
  for (const PartitionEvent& ev : events_) latest = std::max(latest, ev.end);
  return latest;
}

std::string PartitionSchedule::describe() const {
  if (events_.empty()) return "no partitions";
  std::ostringstream os;
  os << events_.size() << " partition event(s): ";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const PartitionEvent& ev = events_[i];
    if (i > 0) os << "; ";
    os << "[" << ev.start << "," << ev.end << ")x" << ev.groups.size()
       << " groups";
  }
  return os.str();
}

}  // namespace sim
