#include "sim/partition.hpp"

#include <algorithm>
#include <sstream>

namespace sim {

PartitionSchedule& PartitionSchedule::add(PartitionEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

PartitionSchedule& PartitionSchedule::split_halves(NodeId n, NodeId m,
                                                   Time start, Time end) {
  PartitionEvent ev;
  ev.start = start;
  ev.end = end;
  std::vector<NodeId> left, right;
  for (NodeId i = 0; i < m; ++i) left.push_back(i);
  for (NodeId i = m; i < n; ++i) right.push_back(i);
  ev.groups = {std::move(left), std::move(right)};
  return add(std::move(ev));
}

PartitionSchedule& PartitionSchedule::isolate(NodeId node, NodeId cluster_size,
                                              Time start, Time end) {
  PartitionEvent ev;
  ev.start = start;
  ev.end = end;
  std::vector<NodeId> rest;
  for (NodeId i = 0; i < cluster_size; ++i) {
    if (i != node) rest.push_back(i);
  }
  ev.groups = {{node}, std::move(rest)};
  return add(std::move(ev));
}

bool PartitionSchedule::connected(NodeId a, NodeId b, Time t) const {
  if (a == b) return true;
  for (const PartitionEvent& ev : events_) {
    if (t < ev.start || t >= ev.end) continue;
    bool together = false;
    for (const auto& group : ev.groups) {
      const bool has_a = std::find(group.begin(), group.end(), a) != group.end();
      const bool has_b = std::find(group.begin(), group.end(), b) != group.end();
      if (has_a && has_b) {
        together = true;
        break;
      }
    }
    if (!together) return false;
  }
  return true;
}

bool PartitionSchedule::partitioned_at(Time t) const {
  return std::any_of(events_.begin(), events_.end(),
                     [t](const PartitionEvent& ev) {
                       return t >= ev.start && t < ev.end;
                     });
}

Time PartitionSchedule::last_heal_time() const {
  Time latest = 0.0;
  for (const PartitionEvent& ev : events_) latest = std::max(latest, ev.end);
  return latest;
}

std::string PartitionSchedule::describe() const {
  if (events_.empty()) return "no partitions";
  std::ostringstream os;
  os << events_.size() << " partition event(s): ";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const PartitionEvent& ev = events_[i];
    if (i > 0) os << "; ";
    os << "[" << ev.start << "," << ev.end << ")x" << ev.groups.size()
       << " groups";
  }
  return os.str();
}

}  // namespace sim
