// Network-partition schedules.
//
// The whole point of SHARD (paper abstract, section 1.2) is continued
// operation "in the face of communication failures, including network
// partitions". The reproduction makes partitions a first-class, scriptable
// input: a PartitionSchedule is a set of timed cuts, each splitting the node
// set into connectivity groups. The network consults the schedule at send
// time; messages that would cross a cut are lost (the reliable broadcast's
// anti-entropy recovers them after the heal, matching [GLBKSS]'s guarantee
// that "barring permanent communication failures, every node will eventually
// receive information about every transaction").
//
// NOTE: PartitionSchedule (like CrashSchedule) is the storage type behind
// sim::FaultPlan (sim/fault_plan.hpp), which owns seeding and cross-fault
// correlation (rack power loss = partition + simultaneous crashes) —
// compose fault schedules through the plan. The standalone convenience
// builders that once lived here were removed after their one-release
// deprecation window; add() remains for code that assembles cuts directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/delay.hpp"

namespace sim {

/// Identifies a node in the simulated cluster.
using NodeId = std::uint32_t;

/// One timed cut: during [start, end) the node set is split into `groups`;
/// two nodes communicate only if some group contains both. Nodes absent from
/// every group are isolated for the duration.
struct PartitionEvent {
  Time start = 0.0;
  Time end = 0.0;
  std::vector<std::vector<NodeId>> groups;
};

/// A scriptable schedule of partitions over the lifetime of a run.
///
/// Overlapping events compose conjunctively: a pair of nodes is connected at
/// time t iff *every* active event keeps them in a common group.
class PartitionSchedule {
 public:
  PartitionSchedule() = default;

  /// Add a cut. Returns *this for fluent construction.
  PartitionSchedule& add(PartitionEvent event);

  /// Are a and b connected at time t?
  bool connected(NodeId a, NodeId b, Time t) const;

  /// Is any cut active at time t?
  bool partitioned_at(Time t) const;

  /// Latest end time over all events (0 if none). After this, the network is
  /// whole again; used by harnesses to decide how long to run healing.
  Time last_heal_time() const;

  const std::vector<PartitionEvent>& events() const { return events_; }

  std::string describe() const;

 private:
  std::vector<PartitionEvent> events_;
};

}  // namespace sim
