#include "sim/delay.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace sim {
namespace {

class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Time d) : d_(d) {}
  Time sample(Rng&) const override { return d_; }
  Time upper_bound() const override { return d_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "constant(" << d_ << "s)";
    return os.str();
  }

 private:
  Time d_;
};

class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {}
  Time sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  Time upper_bound() const override { return hi_; }
  std::string describe() const override {
    std::ostringstream os;
    os << "uniform(" << lo_ << "s," << hi_ << "s)";
    return os.str();
  }

 private:
  Time lo_, hi_;
};

class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(Time base, Time tail_mean, Time cap)
      : base_(base), tail_mean_(tail_mean), cap_(cap) {}
  Time sample(Rng& rng) const override {
    Time d = base_ + rng.exponential(tail_mean_);
    if (cap_ > 0.0) d = std::min(d, cap_);
    return d;
  }
  Time upper_bound() const override {
    return cap_ > 0.0 ? cap_ : std::numeric_limits<Time>::infinity();
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "exp(base=" << base_ << "s,mean=" << tail_mean_ << "s";
    if (cap_ > 0.0) os << ",cap=" << cap_ << "s";
    os << ")";
    return os.str();
  }

 private:
  Time base_, tail_mean_, cap_;
};

class LognormalDelay final : public DelayModel {
 public:
  LognormalDelay(Time median, double sigma)
      : mu_(std::log(median)), sigma_(sigma), median_(median) {}
  Time sample(Rng& rng) const override { return rng.lognormal(mu_, sigma_); }
  Time upper_bound() const override {
    return std::numeric_limits<Time>::infinity();
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(median=" << median_ << "s,sigma=" << sigma_ << ")";
    return os.str();
  }

 private:
  double mu_, sigma_;
  Time median_;
};

class BimodalDelay final : public DelayModel {
 public:
  BimodalDelay(Delay fast, Delay slow, double p_slow)
      : fast_(std::move(fast)), slow_(std::move(slow)), p_slow_(p_slow) {}
  Time sample(Rng& rng) const override {
    return rng.bernoulli(p_slow_) ? slow_.sample(rng) : fast_.sample(rng);
  }
  Time upper_bound() const override {
    return std::max(fast_.upper_bound(), slow_.upper_bound());
  }
  std::string describe() const override {
    std::ostringstream os;
    os << "bimodal(fast=" << fast_.describe() << ",slow=" << slow_.describe()
       << ",p_slow=" << p_slow_ << ")";
    return os.str();
  }

 private:
  Delay fast_, slow_;
  double p_slow_;
};

}  // namespace

Delay Delay::constant(Time d) {
  return Delay(std::make_shared<ConstantDelay>(d));
}
Delay Delay::uniform(Time lo, Time hi) {
  return Delay(std::make_shared<UniformDelay>(lo, hi));
}
Delay Delay::exponential(Time base, Time tail_mean, Time cap) {
  return Delay(std::make_shared<ExponentialDelay>(base, tail_mean, cap));
}
Delay Delay::lognormal(Time median, double sigma) {
  return Delay(std::make_shared<LognormalDelay>(median, sigma));
}
Delay Delay::bimodal(Delay fast, Delay slow, double p_slow) {
  return Delay(
      std::make_shared<BimodalDelay>(std::move(fast), std::move(slow), p_slow));
}

}  // namespace sim
