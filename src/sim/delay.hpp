// Message-delay models for the simulated network.
//
// Section 1.3 of the paper splits its probabilistic claims into (1)
// conditional cost bounds parameterized by k and (2) "probability
// distribution information ... obtained by an independent analysis, using
// information such as delay characteristics of the message system". These
// delay models are that message system: the harness sweeps them to produce
// the empirical distribution of k used in experiment E9.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "sim/rng.hpp"

namespace sim {

/// Simulated time, in seconds.
using Time = double;

/// Interface for one-way message latency distributions.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Draw one latency sample. Must be nonnegative.
  virtual Time sample(Rng& rng) const = 0;
  /// A bound b such that samples never exceed b, or +inf if unbounded.
  /// Used by the t-bounded-delay condition of paper section 3.2.
  virtual Time upper_bound() const = 0;
  /// Human-readable description for experiment tables.
  virtual std::string describe() const = 0;
};

/// Value-semantic handle so configuration structs can hold delay models
/// without owning raw pointers.
class Delay {
 public:
  Delay() : Delay(constant(0.0)) {}
  explicit Delay(std::shared_ptr<const DelayModel> model)
      : model_(std::move(model)) {}

  Time sample(Rng& rng) const { return model_->sample(rng); }
  Time upper_bound() const { return model_->upper_bound(); }
  std::string describe() const { return model_->describe(); }

  /// Always exactly `d`.
  static Delay constant(Time d);
  /// Uniform in [lo, hi].
  static Delay uniform(Time lo, Time hi);
  /// `base` plus an exponential tail with the given mean, optionally
  /// truncated at `cap` (cap <= 0 means untruncated).
  static Delay exponential(Time base, Time tail_mean, Time cap = 0.0);
  /// Log-normal latency, the classic long-tailed WAN model; `median` is the
  /// distribution median and `sigma` the shape parameter.
  static Delay lognormal(Time median, double sigma);
  /// Mixture: with probability p_slow draw from `slow`, else from `fast`.
  /// Models a flaky path that intermittently degrades.
  static Delay bimodal(Delay fast, Delay slow, double p_slow);

 private:
  std::shared_ptr<const DelayModel> model_;
};

}  // namespace sim
