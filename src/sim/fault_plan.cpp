#include "sim/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sim {

FaultPlan::FaultPlan(std::uint64_t seed) : rng_(seed) {}

FaultPlan& FaultPlan::crash(NodeId node, Time start, Time end,
                            RecoveryMode mode) {
  crashes_.add(CrashEvent{node, start, end, mode, 1.0});
  return *this;
}

FaultPlan& FaultPlan::disk_failure(NodeId node, Time start, Time end) {
  // Draw the surviving fraction from the plan's stream: [0.1, 0.9) keeps
  // the failure interesting — some log survives, some is lost.
  return disk_failure(node, start, end, rng_.uniform(0.1, 0.9));
}

FaultPlan& FaultPlan::disk_failure(NodeId node, Time start, Time end,
                                   double keep_fraction) {
  if (keep_fraction < 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("FaultPlan: keep_fraction outside [0, 1]");
  }
  crashes_.add(
      CrashEvent{node, start, end, RecoveryMode::kStaleDisk, keep_fraction});
  return *this;
}

FaultPlan& FaultPlan::crash_mid_broadcast(NodeId node,
                                          std::uint64_t broadcast_seq,
                                          Time down_for, RecoveryMode mode,
                                          double keep_fraction) {
  if (broadcast_seq == 0) {
    throw std::invalid_argument("FaultPlan: broadcast_seq is 1-based");
  }
  if (!(down_for > 0.0)) {
    throw std::invalid_argument("FaultPlan: mid-broadcast down_for <= 0");
  }
  if (keep_fraction < 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("FaultPlan: keep_fraction outside [0, 1]");
  }
  for (const MidBroadcastCrash& mb : mid_) {
    if (mb.node == node && mb.broadcast_seq == broadcast_seq) {
      throw std::invalid_argument(
          "FaultPlan: duplicate mid-broadcast crash for one (node, seq)");
    }
  }
  mid_.push_back(
      MidBroadcastCrash{node, broadcast_seq, down_for, mode, keep_fraction});
  return *this;
}

FaultPlan& FaultPlan::partition(PartitionEvent event) {
  partitions_.add(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::cut(std::vector<std::vector<NodeId>> groups, Time start,
                          Time end) {
  PartitionEvent ev;
  ev.start = start;
  ev.end = end;
  ev.groups = std::move(groups);
  return partition(std::move(ev));
}

FaultPlan& FaultPlan::split_halves(NodeId n, NodeId m, Time start, Time end) {
  std::vector<NodeId> left, right;
  for (NodeId i = 0; i < m; ++i) left.push_back(i);
  for (NodeId i = m; i < n; ++i) right.push_back(i);
  return cut({std::move(left), std::move(right)}, start, end);
}

FaultPlan& FaultPlan::isolate(NodeId node, NodeId cluster_size, Time start,
                              Time end) {
  std::vector<NodeId> rest;
  for (NodeId i = 0; i < cluster_size; ++i) {
    if (i != node) rest.push_back(i);
  }
  return cut({{node}, std::move(rest)}, start, end);
}

FaultPlan& FaultPlan::rack_power_loss(const std::vector<NodeId>& rack,
                                      NodeId cluster_size, Time start,
                                      Time end, RecoveryMode mode) {
  if (rack.empty()) {
    throw std::invalid_argument("FaultPlan: empty rack");
  }
  std::vector<NodeId> rest;
  for (NodeId i = 0; i < cluster_size; ++i) {
    if (std::find(rack.begin(), rack.end(), i) == rack.end()) {
      rest.push_back(i);
    }
  }
  cut({rack, std::move(rest)}, start, end);
  for (NodeId node : rack) {
    crashes_.add(CrashEvent{node, start, end, mode, 1.0});
  }
  return *this;
}

FaultPlan& FaultPlan::rolling_restart(NodeId cluster_size, Time start,
                                      Time down_for, Time gap,
                                      RecoveryMode mode) {
  if (!(down_for > 0.0) || gap < 0.0) {
    throw std::invalid_argument("FaultPlan: bad rolling-restart window");
  }
  for (NodeId i = 0; i < cluster_size; ++i) {
    const Time s = start + static_cast<Time>(i) * (down_for + gap);
    crashes_.add(CrashEvent{i, s, s + down_for, mode, 1.0});
  }
  return *this;
}

FaultPlan& FaultPlan::random_partitions(std::size_t nodes, Time horizon,
                                        int events) {
  for (int e = 0; e < events; ++e) {
    const Time start = rng_.uniform(0.0, horizon);
    const Time len = rng_.uniform(horizon / 10.0, horizon / 3.0);
    // A random nonempty proper subset vs the rest.
    std::vector<NodeId> left, right;
    for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
      (rng_.bernoulli(0.5) ? left : right).push_back(n);
    }
    if (left.empty()) left.push_back(right.back()), right.pop_back();
    if (right.empty()) right.push_back(left.back()), left.pop_back();
    cut({std::move(left), std::move(right)}, start, start + len);
  }
  return *this;
}

FaultPlan& FaultPlan::random_crashes(std::size_t nodes, Time horizon,
                                     int events, Time min_down, Time max_down,
                                     double amnesia_probability,
                                     double disk_failure_probability) {
  for (int e = 0; e < events; ++e) {
    CrashEvent ev;
    ev.node = static_cast<NodeId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    ev.start = rng_.uniform(0.0, horizon);
    ev.end = ev.start + rng_.uniform(min_down, max_down);
    // Fixed draw count per event regardless of the mode chosen, so the
    // stream stays aligned across parameterizations.
    const bool disk = rng_.bernoulli(disk_failure_probability);
    const bool amnesia = rng_.bernoulli(amnesia_probability);
    const double keep = rng_.uniform(0.1, 0.9);
    if (disk) {
      ev.mode = RecoveryMode::kStaleDisk;
      ev.keep_fraction = keep;
    } else {
      ev.mode = amnesia ? RecoveryMode::kAmnesia : RecoveryMode::kDurable;
    }
    const auto& prior_events = crashes_.events();
    const bool overlaps = std::any_of(
        prior_events.begin(), prior_events.end(),
        [&ev](const CrashEvent& prior) {
          return prior.node == ev.node && ev.start < prior.end &&
                 prior.start < ev.end;
        });
    if (!overlaps) crashes_.add(ev);
  }
  return *this;
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, std::size_t nodes, Time horizon,
                           const ChaosOptions& opt) {
  FaultPlan plan(seed);
  // Partitions first; some become correlated rack losses: every node of the
  // cut's smaller side also loses power for the window (skipped if one of
  // those nodes already has an overlapping crash window).
  for (int e = 0; e < opt.partition_events; ++e) {
    plan.random_partitions(nodes, horizon, 1);
    if (!plan.rng_.bernoulli(opt.rack_loss_probability)) continue;
    const PartitionEvent& cut = plan.partitions_.events().back();
    const std::vector<NodeId>& rack = cut.groups[0].size() <=
                                              cut.groups[1].size()
                                          ? cut.groups[0]
                                          : cut.groups[1];
    const auto& prior = plan.crashes_.events();
    const bool overlaps = std::any_of(
        prior.begin(), prior.end(), [&](const CrashEvent& ev) {
          return cut.start < ev.end && ev.start < cut.end &&
                 std::find(rack.begin(), rack.end(), ev.node) != rack.end();
        });
    if (overlaps) continue;
    for (NodeId node : rack) {
      plan.crashes_.add(
          CrashEvent{node, cut.start, cut.end, RecoveryMode::kDurable, 1.0});
    }
  }
  plan.random_crashes(nodes, horizon, opt.crash_events, opt.min_down,
                      opt.max_down, opt.amnesia_probability,
                      opt.disk_failure_probability);
  return plan;
}

FaultPlan& FaultPlan::byzantine_payload(double corrupt_probability,
                                        double duplicate_probability,
                                        double reorder_probability,
                                        Time start, Time end) {
  for (const double p :
       {corrupt_probability, duplicate_probability, reorder_probability}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(
          "FaultPlan: byzantine probability outside [0, 1]");
    }
  }
  if (!(start < end)) {
    throw std::invalid_argument("FaultPlan: empty byzantine window");
  }
  byzantine_.enabled = true;
  byzantine_.corrupt_probability = corrupt_probability;
  byzantine_.duplicate_probability = duplicate_probability;
  byzantine_.reorder_probability = reorder_probability;
  byzantine_.start = start;
  byzantine_.end = end;
  // The adversary's seed comes from the plan's stream: same plan seed and
  // call sequence -> identical tampering, different plan seeds -> different.
  byzantine_.seed = rng_.next_u64();
  return *this;
}

Time FaultPlan::all_clear_time() const {
  return std::max(partitions_.last_heal_time(), crashes_.last_restart_time());
}

bool FaultPlan::empty() const {
  return crashes_.empty() && partitions_.events().empty() && mid_.empty() &&
         !byzantine_.enabled;
}

std::string FaultPlan::describe() const {
  if (empty()) return "no faults";
  std::ostringstream os;
  os << crashes_.describe() << "; " << partitions_.describe();
  if (!mid_.empty()) {
    os << "; " << mid_.size() << " mid-broadcast crash(es):";
    for (const MidBroadcastCrash& mb : mid_) {
      os << " node " << mb.node << "@seq " << mb.broadcast_seq << " ("
         << to_string(mb.mode) << ")";
    }
  }
  if (byzantine_.enabled) {
    os << "; byzantine payload adversary (corrupt="
       << byzantine_.corrupt_probability
       << ", dup=" << byzantine_.duplicate_probability
       << ", reorder=" << byzantine_.reorder_probability << ") over ["
       << byzantine_.start << "," << byzantine_.end << ")";
  }
  return os.str();
}

}  // namespace sim
