// Counters for the reliable-broadcast layer (non-template part).
#pragma once

#include <cstdint>
#include <string>

namespace obs {
class MetricsRegistry;
}

namespace net {

/// Observability for the [GLBKSS]-style broadcast. Used by the availability
/// and thrashing experiments (E8, E12) and by the protocol tests.
struct BroadcastStats {
  std::uint64_t originated = 0;        ///< Payloads broadcast by this node.
  std::uint64_t delivered = 0;         ///< Payloads delivered upward.
  std::uint64_t duplicates_dropped = 0;///< Re-received payloads ignored.
  std::uint64_t causally_buffered = 0; ///< Arrivals parked awaiting deps.
  std::uint64_t anti_entropy_rounds = 0;   ///< Digests sent.
  std::uint64_t anti_entropy_repairs = 0;  ///< Payloads resent to peers.
  std::uint64_t repairs_truncated = 0;     ///< Repair replies capped by
                                           ///< max_repairs_per_message.
  std::uint64_t continuation_digests = 0;  ///< Digests sent immediately on
                                           ///< receiving a truncated batch.
  std::uint64_t store_pruned = 0;          ///< Repair-store entries dropped
                                           ///< because every peer holds them.
  std::uint64_t rounds_skipped_down = 0;   ///< Gossip ticks while crashed.
  std::uint64_t amnesia_resets = 0;        ///< Volatile-state wipes (restarts).
  std::uint64_t outbox_replays = 0;        ///< Own stable payloads re-accepted
                                           ///< after an amnesia or stale-disk
                                           ///< restart.
  std::uint64_t stale_resets = 0;          ///< Stale-disk rewinds (restarts
                                           ///< from a stale checkpoint).
  std::uint64_t mid_broadcast_crashes = 0; ///< Crashes injected between the
                                           ///< stable-outbox append and the
                                           ///< first flood send.
  std::uint64_t byz_corrupted = 0;         ///< Updates substituted by the
                                           ///< Byzantine adversary on receive.
  std::uint64_t byz_corrupt_noops = 0;     ///< Corruption draws whose donor
                                           ///< equaled the original (provably
                                           ///< masked — nothing changed).
  std::uint64_t byz_duplicated = 0;        ///< Wires re-injected into accept.
  std::uint64_t byz_reordered = 0;         ///< Wires held back one packet.
  std::uint64_t flood_batches = 0;         ///< Coalesced flood packets sent
                                           ///< (>= 2 wires each).
  std::uint64_t flood_batched_wires = 0;   ///< Wires carried by those packets.
  std::uint64_t outbox_commits = 0;        ///< Stable-outbox sync operations
                                           ///< (group commit amortizes these
                                           ///< across a submit burst).
  std::uint64_t outbox_records_synced = 0; ///< Intention records covered by
                                           ///< those syncs (== originated).

  std::string summary() const;

  /// Fold every counter into `reg` under the canonical broadcast.* names
  /// (obs/metric_names.hpp); adds, so calling once per node aggregates
  /// cluster-wide.
  void export_to(obs::MetricsRegistry& reg) const;
};

}  // namespace net
