// Reliable broadcast with optional causal delivery and anti-entropy repair.
//
// Paper section 1.2: "information about the transaction is broadcast
// reliably to all the other nodes ... The broadcast algorithm [GLBKSS]
// ensures that, barring permanent communication failures, every node will
// eventually receive information about every transaction." [GLBKSS] is an
// unpublished CCA technical report; we build the natural protocol with the
// same guarantee (see DESIGN.md substitutions):
//
//   * flooding — the origin sends each payload to every peer immediately;
//   * anti-entropy — each node periodically sends a digest of what it holds
//     to a peer, which responds with everything the digest lacks. This is
//     what recovers messages lost to partitions and random drops.
//
// Causal mode implements the paper's section 3.3 remark that "an appropriate
// distributed communication protocol could guarantee transitivity, perhaps
// by piggybacking information about known transactions on messages": every
// payload carries the origin's delivery vector clock, and delivery is held
// until those dependencies are satisfied. With causal delivery, the set of
// transactions a node has merged is causally closed, so the induced
// execution is transitive (checked by analysis::is_transitive and the
// protocol tests).
#pragma once

#include <algorithm>
#include <any>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include <optional>

#include "core/prefix.hpp"
#include "net/broadcast_stats.hpp"
#include "obs/tracer.hpp"
#include "runtime/api.hpp"
#include "runtime/sim_backend.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"

namespace net {

struct BroadcastOptions {
  /// Send to all peers at origination. Disabling leaves anti-entropy as the
  /// only propagation path (pure gossip mode).
  bool flood = true;
  /// Hold deliveries until causal dependencies are satisfied. This is what
  /// gives transitive executions. Non-causal mode delivers in arrival order
  /// (still at-most-once), producing possibly non-transitive executions —
  /// useful for the paper's section 3.2 counterexample discussions.
  bool causal = true;
  /// Period of anti-entropy digests; 0 disables anti-entropy.
  sim::Time anti_entropy_interval = 0.5;
  /// Uniform jitter added to each period so nodes don't gossip in lockstep.
  sim::Time anti_entropy_jitter = 0.1;
  /// Cap on wire payloads per repair reply; 0 = unlimited. A capped reply
  /// is flagged truncated and the requester immediately re-digests, so
  /// repair after a long partition proceeds in bounded batches instead of
  /// one giant burst. Every batch extends the requester's contiguous
  /// prefix, so the continuation chain terminates; a lost batch falls back
  /// to the periodic digest.
  std::size_t max_repairs_per_message = 0;
  /// Drop repair-store entries every live peer is known (via received
  /// digests) to already hold — the store then tracks the repair *window*
  /// instead of all history. Incompatible with amnesia recovery, which
  /// relies on peers retaining everything an amnesiac node may re-request
  /// and on the node's own complete stable outbox (Cluster validates).
  bool prune_repair_store = false;
  /// Byzantine receive-path adversary (sim::ByzantineOptions): seeded
  /// corruption / duplication / reordering of incoming wires, applied
  /// before accept(). Disabled by default; an unarmed endpoint draws no
  /// adversary randomness, so unarmed runs are byte-identical to builds
  /// that predate the adversary.
  sim::ByzantineOptions byzantine;
  /// Batched floods + group commit: broadcasts staged within one scheduler
  /// dispatch are flushed together at its end (Scheduler::defer) — one
  /// stable-outbox sync for the burst, and flood wires coalesced into batch
  /// packets of up to `max_batch` wires each (so a burst of k submissions
  /// costs ceil(k/max_batch) packets per peer instead of k). 0 disables
  /// both: every broadcast syncs and floods immediately, the legacy shape
  /// (and the E25 ablation baseline). A flush holding a single wire always
  /// takes the legacy packet/trace path, so batched configs are
  /// byte-identical to unbatched ones whenever bursts never actually form.
  std::size_t max_batch = 0;
};

/// One endpoint of the cluster-wide broadcast. `Payload` is the application
/// update envelope; it must be copyable.
template <class Payload>
class ReliableBroadcast {
 public:
  /// What travels on the wire and is handed to the delivery callback.
  struct Wire {
    sim::NodeId origin = 0;
    /// 1-based sequence number among `origin`'s own broadcasts.
    std::uint64_t origin_seq = 0;
    /// Origin's delivery vector clock at broadcast time: deps[n] payloads
    /// from node n had been delivered at the origin. Causal mode delays
    /// delivery until the local clock dominates this.
    std::vector<std::uint64_t> deps;
    Payload payload;
  };

  using DeliverFn = std::function<void(const Wire&)>;
  /// Mixed-mode hook (paper section 3.3 / 6): announcements carry the
  /// sender's *promise timestamp* T and issued-count, promising "every
  /// future transaction of mine has timestamp >= T" — where T accounts for
  /// timestamps the sender has already RESERVED for pending serializable
  /// transactions (otherwise a reservation made before the announcement
  /// would break the promise). PromiseFn supplies (T.logical, T.node);
  /// AnnounceFn receives peers' announcements.
  using PromiseFn = std::function<std::pair<std::uint64_t, sim::NodeId>()>;
  using AnnounceFn = std::function<void(sim::NodeId src,
                                        std::uint64_t promise_logical,
                                        sim::NodeId promise_node,
                                        std::uint64_t issued)>;
  /// Fault-injection probe at the write-ahead intention-log boundary: called
  /// with the origin sequence number after the stable-outbox append (and
  /// local delivery) but before the first flood send. Returning true means
  /// "the node just crashed": the broadcast suppresses the flood — the wire
  /// reaches peers only through post-restart anti-entropy, which is exactly
  /// the guarantee under test (sim::MidBroadcastCrash).
  using MidBroadcastCrashFn = std::function<bool(std::uint64_t origin_seq)>;
  /// Byzantine corruption hook: substitute the application part of `target`
  /// using `donor` (a previously seen payload) while PRESERVING target's
  /// identity/timestamp fields — only the owner of the Payload type knows
  /// which fields are which, so the Node installs this. Must return false
  /// (leaving target untouched) when the substitution would be a no-op;
  /// those draws count as provably masked (byz_corrupt_noops).
  using CorruptFn = std::function<bool(Payload& target, const Payload& donor)>;

  /// The endpoint runs against the redesigned execution API: an Executor
  /// for time/timers/deferred flushes and a Transport for datagrams — any
  /// backend (deterministic simulator or the threaded runtime) works.
  ReliableBroadcast(runtime::Executor& executor, runtime::Transport& transport,
                    sim::NodeId self, std::size_t cluster_size,
                    BroadcastOptions options, std::uint64_t seed,
                    DeliverFn deliver)
      : exec_(&executor),
        net_(&transport),
        self_(self),
        options_(options),
        rng_(seed),
        deliver_(std::move(deliver)),
        delivered_count_(cluster_size, 0),
        store_(cluster_size),
        seen_extra_(cluster_size) {
    net_->register_node(self_,
                        [this](const sim::Message& m) { on_message(m); });
  }

  /// One-release adapter for the pre-runtime constructor: wraps the
  /// concrete simulator objects in owned SimBackend adapters. Behaviorally
  /// identical to constructing against network.scheduler()/network through
  /// the runtime API (the adapters forward 1:1).
  [[deprecated(
      "construct with (runtime::Executor&, runtime::Transport&) — the "
      "sim::Network& form is a one-release adapter")]]
  ReliableBroadcast(sim::Network& network, sim::NodeId self,
                    std::size_t cluster_size, BroadcastOptions options,
                    std::uint64_t seed, DeliverFn deliver)
      : owned_exec_(std::make_unique<runtime::SimExecutor>(
            network.scheduler())),
        owned_net_(std::make_unique<runtime::SimTransport>(network)),
        exec_(owned_exec_.get()),
        net_(owned_net_.get()),
        self_(self),
        options_(options),
        rng_(seed),
        deliver_(std::move(deliver)),
        delivered_count_(cluster_size, 0),
        store_(cluster_size),
        seen_extra_(cluster_size) {
    net_->register_node(self_,
                        [this](const sim::Message& m) { on_message(m); });
  }

  ReliableBroadcast(const ReliableBroadcast&) = delete;
  ReliableBroadcast& operator=(const ReliableBroadcast&) = delete;

  /// Arm the periodic anti-entropy timer (if enabled).
  void start() {
    if (options_.anti_entropy_interval > 0.0) schedule_anti_entropy();
  }

  /// Broadcast `payload`; delivers it locally (synchronously) first so the
  /// origin's own state always reflects its own transactions. Returns the
  /// origin sequence number.
  std::uint64_t broadcast(Payload payload) {
    assert(!down_ && "a crashed node cannot broadcast");
    Wire w;
    w.origin = self_;
    w.origin_seq = ++own_seq_;
    w.deps = delivered_count_;
    w.payload = std::move(payload);
    ++stats_.originated;
    accept(w);  // local delivery; also places it in the store for repair
    if (options_.max_batch > 0) {
      // Group-commit path: the outbox append above is write-ahead as always,
      // but the sync and the flood are deferred to the end of the current
      // scheduler dispatch so a submit burst shares one commit and its
      // wires coalesce into batch packets (flush_flood).
      staged_floods_.push_back(w.origin_seq);
      if (!flush_scheduled_) {
        flush_scheduled_ = true;
        exec_->defer([this] { flush_flood(); });
      }
      return w.origin_seq;
    }
    // Immediate path: this broadcast is its own commit group.
    ++stats_.outbox_commits;
    ++stats_.outbox_records_synced;
    // The intention record is now stable (outbox append + sync above); a
    // crash injected here leaves the update durable-but-unsent, the boundary
    // the write-ahead intention log must survive.
    if (mid_crash_hook_ && mid_crash_hook_(w.origin_seq)) {
      ++stats_.mid_broadcast_crashes;
      return w.origin_seq;
    }
    if (options_.flood) {
      const std::size_t peers = net_->send_to_all(self_, make_packet(w));
      if (tracer_) {
        tracer_->record(obs::EventType::kBroadcastSend,
                        exec_->now(), self_, 0, 0, w.origin_seq,
                        peers);
      }
    }
    return w.origin_seq;
  }

  /// Delivery vector clock: how many payloads from each origin have been
  /// delivered here. In causal mode these are contiguous prefixes.
  const std::vector<std::uint64_t>& delivered_vector() const {
    return delivered_count_;
  }

  /// Per-origin counts of the contiguously MERGED prefix: seqs 1..k of each
  /// origin have been delivered to the application here. In causal mode the
  /// delivery vector is exactly that; in non-causal mode delivery can outrun
  /// sequence order (delivered_count_ may count {1,2,5}), so the contiguous
  /// received prefix is the honest bound. The stability machinery
  /// (compaction, serializable promises) must use THIS, not
  /// delivered_vector(): "I merged everything m issued" is a statement about
  /// the contiguous prefix, and using a mere count lets a low-timestamp
  /// straggler arrive below a compaction cut.
  const std::vector<std::uint64_t>& merged_prefix() const {
    return options_.causal ? delivered_count_ : contiguous_have_;
  }

  /// The delivered set as an interned prefix reference (core/prefix.hpp),
  /// produced in O(#nodes). Causal mode delivers per-origin contiguously,
  /// so the delivery vector IS the set; non-causal mode delivers every
  /// accepted wire immediately, so the set is the contiguous received
  /// prefix plus the out-of-order extras.
  core::PrefixRef delivered_prefix() const {
    core::PrefixRef p;
    if (options_.causal) {
      p.contiguous = delivered_count_;
    } else {
      p.contiguous = contiguous_have_;
      for (std::size_t o = 0; o < seen_extra_.size(); ++o) {
        for (const std::uint64_t seq : seen_extra_[o]) {
          p.extras.emplace_back(static_cast<sim::NodeId>(o), seq);
        }
      }
      std::sort(p.extras.begin(), p.extras.end());
    }
    return p;
  }

  /// Wire messages currently retained in the repair store (all origins) —
  /// the E20 memory proxy that pruning keeps O(window).
  std::size_t store_retained() const {
    std::size_t n = 0;
    for (const auto& s : store_) n += s.size();
    return n;
  }

  /// Total payloads delivered to the application at this node.
  std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (auto c : delivered_count_) n += c;
    return n;
  }

  const BroadcastStats& stats() const { return stats_; }
  sim::NodeId self() const { return self_; }
  std::uint64_t own_issued() const { return own_seq_; }

  /// Arm the announcement protocol: each anti-entropy round also sends
  /// (promise, issued) to every peer. Announcements drive the section 3.3
  /// waiting protocol for serializable transactions.
  void set_announce_hooks(PromiseFn promise, AnnounceFn on_announce) {
    promise_fn_ = std::move(promise);
    announce_fn_ = std::move(on_announce);
  }

  /// Crash/restart the endpoint. While down, anti-entropy ticks no-op (the
  /// timer keeps running so restarts need no re-arming) and the network
  /// additionally refuses sends/deliveries for this node. Mirrors the down
  /// state into the network so both layers agree.
  void set_down(bool down) {
    down_ = down;
    // Staged-but-unflushed floods are volatile; their intention records are
    // durable in the outbox, so after a restart they reach peers through
    // outbox replay announcements and anti-entropy, never a stale flood.
    if (down) staged_floods_.clear();
    net_->set_node_down(self_, down);
  }
  bool down() const { return down_; }

  /// Attach the execution tracer (nullptr disables; the off path is one
  /// branch per potential event).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Arm the mid-broadcast crash probe (see MidBroadcastCrashFn).
  void set_mid_broadcast_crash_hook(MidBroadcastCrashFn hook) {
    mid_crash_hook_ = std::move(hook);
  }

  /// Install the Byzantine corruption hook (see CorruptFn). Without one,
  /// an armed adversary still duplicates and reorders but cannot corrupt.
  void set_corrupt_hook(CorruptFn hook) { corrupt_fn_ = std::move(hook); }

  /// Amnesia restart: all volatile broadcast state — delivery vectors,
  /// repair store of *other* nodes' payloads, causal holding buffer — is
  /// lost. What survives is the stable outbox: this node's own wire
  /// messages, written to stable storage before their external actions
  /// fired (see sim/crash.hpp). They are re-accepted below, rebuilding the
  /// node's knowledge of its own transactions; everything else is
  /// re-learned from peers through the ordinary digest/repair path (the
  /// node's first post-restart digest is all-zeros, so peers resend
  /// everything they hold).
  void restart_amnesia() {
    // Amnesia recovery needs the complete stable outbox; a pruned store
    // would have discarded part of it. Cluster config validation rejects
    // the combination before any node exists.
    assert(!options_.prune_repair_store);
    std::vector<Wire> outbox = std::move(store_[self_]);
    for (auto& s : store_) s.clear();
    for (auto& e : seen_extra_) e.clear();
    std::fill(delivered_count_.begin(), delivered_count_.end(), 0);
    std::fill(contiguous_have_.begin(), contiguous_have_.end(), 0);
    pending_.clear();
    held_.reset();  // a wire the adversary held back is volatile state
    ++stats_.amnesia_resets;
    set_down(false);
    for (const Wire& w : outbox) {
      ++stats_.outbox_replays;
      accept(w);
    }
  }

  /// Stale-disk restart (sim::RecoveryMode::kStaleDisk): stable storage
  /// survived the crash but lost its recent suffix — the node resumes from
  /// a stale checkpoint whose per-origin delivered counts are `keep`.
  /// Delivery knowledge, the repair store of other nodes' payloads, and the
  /// causal buffer all rewind to that point; the truncated tail is
  /// re-learned from peers through the ordinary digest/repair path. The one
  /// exception is the node's own outbox: intention records are written (and
  /// synced) before external actions fire, so the outbox is complete even
  /// when the merged log is not — own wires past the stale point are
  /// re-accepted below, re-announcing them to the cluster, and the complete
  /// outbox stays available for peer repair.
  void restart_stale(const std::vector<std::uint64_t>& keep) {
    // Like amnesia, stale-disk recovery may re-request anything above the
    // stale point, so the repair stores must be complete (Cluster validates
    // the prune_repair_store combination up front).
    assert(!options_.prune_repair_store);
    assert(keep.size() == delivered_count_.size());
    std::vector<Wire> outbox = std::move(store_[self_]);
    store_[self_].clear();
    for (std::size_t o = 0; o < store_.size(); ++o) {
      if (o == self_) continue;
      auto& s = store_[o];
      if (s.size() > keep[o]) {
        s.erase(s.begin() + static_cast<std::ptrdiff_t>(keep[o]), s.end());
      }
    }
    delivered_count_ = keep;
    contiguous_have_ = keep;
    for (auto& e : seen_extra_) e.clear();
    pending_.clear();
    held_.reset();  // a wire the adversary held back is volatile state
    ++stats_.stale_resets;
    set_down(false);
    for (std::size_t i = keep[self_]; i < outbox.size(); ++i) {
      ++stats_.outbox_replays;
      accept(outbox[i]);
    }
    // accept() rebuilt only the replayed tail slots of the own-origin store;
    // restore the complete stable outbox so any peer can still be repaired
    // from any point.
    store_[self_] = std::move(outbox);
  }

 private:
  enum class PacketType { kWire, kDigest, kRepair, kAnnounce, kWireBatch };
  struct Packet {
    PacketType type = PacketType::kWire;
    Wire wire;                 // kWire
    std::vector<std::uint64_t> digest;  // kDigest: sender's contiguous counts
    std::vector<Wire> repairs;          // kRepair
    bool repair_truncated = false;      // kRepair: capped; more available
    std::uint64_t announce_clock = 0;   // kAnnounce: promise logical
    sim::NodeId announce_node = 0;      // kAnnounce: promise tiebreak
    std::uint64_t announce_issued = 0;  // kAnnounce
    std::vector<Wire> batch;            // kWireBatch: coalesced flood wires
  };

  static std::any make_packet(Wire w) {
    Packet p;
    p.type = PacketType::kWire;
    p.wire = std::move(w);
    return std::any(std::move(p));
  }

  /// End-of-dispatch flush of the staged broadcast burst (max_batch > 0).
  /// One group commit covers every staged record — each was appended to the
  /// stable outbox inside its broadcast(), write-ahead of any flood — and
  /// the sync lands here, before the first flood send, so the intention-log
  /// boundary guarantee holds per batch exactly as it held per record.
  void flush_flood() {
    flush_scheduled_ = false;
    std::vector<std::uint64_t> staged = std::move(staged_floods_);
    staged_floods_.clear();
    if (staged.empty() || down_) return;
    ++stats_.outbox_commits;
    stats_.outbox_records_synced += staged.size();
    std::vector<Wire> chunk;
    for (std::size_t i = 0; i < staged.size(); ++i) {
      // The batch is durable; a crash injected at any wire's boundary
      // suppresses the rest of the flood (those records reach peers only
      // through post-restart anti-entropy — the guarantee under test).
      if (mid_crash_hook_ && mid_crash_hook_(staged[i])) {
        ++stats_.mid_broadcast_crashes;
        return;
      }
      if (!options_.flood) continue;
      chunk.push_back(store_[self_][staged[i] - 1 - store_base_[self_]]);
      if (chunk.size() == options_.max_batch || i + 1 == staged.size()) {
        send_flood_chunk(std::move(chunk));
        chunk.clear();
      }
    }
  }

  /// Flood one coalesced chunk to all peers. A single-wire chunk takes the
  /// legacy kWire packet and trace shape — so a batched config whose bursts
  /// never coalesce is byte-identical (packets, RNG draws, trace stream) to
  /// max_batch == 0.
  void send_flood_chunk(std::vector<Wire> chunk) {
    const sim::Time now = exec_->now();
    if (chunk.size() == 1) {
      const std::uint64_t seq = chunk.front().origin_seq;
      const std::size_t peers =
          net_->send_to_all(self_, make_packet(std::move(chunk.front())));
      if (tracer_) {
        tracer_->record(obs::EventType::kBroadcastSend, now, self_, 0, 0, seq,
                        peers);
      }
      return;
    }
    ++stats_.flood_batches;
    stats_.flood_batched_wires += chunk.size();
    Packet p;
    p.type = PacketType::kWireBatch;
    p.batch = std::move(chunk);
    const std::size_t wires = p.batch.size();
    std::vector<std::uint64_t> seqs;
    if (tracer_) {
      seqs.reserve(wires);
      for (const Wire& w : p.batch) seqs.push_back(w.origin_seq);
    }
    const std::size_t peers = net_->send_to_all(self_, std::any(std::move(p)));
    if (tracer_) {
      // Per-wire send events keep the causal/lifecycle derivations working
      // unchanged; the batch event on top carries the coalescing itself.
      for (const std::uint64_t seq : seqs) {
        tracer_->record(obs::EventType::kBroadcastSend, now, self_, 0, 0, seq,
                        peers);
      }
      tracer_->record(obs::EventType::kBroadcastBatchSend, now, self_, 0, 0,
                      wires, peers);
    }
  }

  void on_message(const sim::Message& m) {
    if (down_) return;  // defensive: the network drops these before us
    // A wire the adversary held back is released after the NEXT packet is
    // processed — note the hold now so a hold created below isn't flushed
    // by its own message.
    const bool flush_held = held_.has_value();
    const auto& p = std::any_cast<const Packet&>(m.payload);
    switch (p.type) {
      case PacketType::kWire:
        ingest_wire(p.wire);
        break;
      case PacketType::kWireBatch:
        for (const Wire& w : p.batch) ingest_wire(w);
        break;
      case PacketType::kDigest:
        answer_digest(m.src, p.digest);
        break;
      case PacketType::kRepair:
        for (const Wire& w : p.repairs) ingest_wire(w);
        // A truncated batch means the sender holds more than the cap let
        // through; re-digest immediately (with the just-advanced counts)
        // instead of waiting out the anti-entropy period.
        if (p.repair_truncated) {
          ++stats_.continuation_digests;
          send_digest_to(m.src);
        }
        break;
      case PacketType::kAnnounce:
        if (announce_fn_) {
          announce_fn_(m.src, p.announce_clock, p.announce_node,
                       p.announce_issued);
        }
        break;
    }
    if (flush_held && held_) {
      Wire w = std::move(*held_);
      held_.reset();
      accept(w);
    }
  }

  /// Receive-path ingestion: the Byzantine adversary (when armed for the
  /// current simulated time) gets one chance to reorder, corrupt and/or
  /// duplicate each incoming wire before accept(). An unarmed endpoint
  /// takes the straight accept() path and draws no adversary randomness.
  void ingest_wire(const Wire& wire) {
    const sim::ByzantineOptions& byz = options_.byzantine;
    if (!byz.enabled) {
      accept(wire);
      return;
    }
    // The donor stash fills whenever the adversary exists (even outside its
    // window), so corruption at window entry has authentic donors.
    stash_payload(wire.payload);
    const sim::Time now = exec_->now();
    if (now < byz.start || now >= byz.end) {
      accept(wire);
      return;
    }
    if (!held_ && byz_rng_.bernoulli(byz.reorder_probability)) {
      ++stats_.byz_reordered;
      if (tracer_) {
        tracer_->record(obs::EventType::kByzantineReorder, now, self_, 0, 0,
                        wire.origin, wire.origin_seq);
      }
      held_ = wire;
      return;
    }
    Wire w = wire;
    if (corrupt_fn_ && byz_rng_.bernoulli(byz.corrupt_probability) &&
        !stash_.empty()) {
      const Payload& donor = stash_[byz_rng_.uniform_int(
          0, static_cast<std::int64_t>(stash_.size()) - 1)];
      if (corrupt_fn_(w.payload, donor)) {
        ++stats_.byz_corrupted;
        if (tracer_) {
          tracer_->record(obs::EventType::kByzantineCorrupt, now, self_, 0, 0,
                          w.origin, w.origin_seq);
        }
      } else {
        // Donor matched the original: nothing changed, provably masked.
        ++stats_.byz_corrupt_noops;
      }
    }
    const bool duplicate = byz_rng_.bernoulli(byz.duplicate_probability);
    accept(w);
    if (duplicate) {
      ++stats_.byz_duplicated;
      if (tracer_) {
        tracer_->record(obs::EventType::kByzantineDuplicate, now, self_, 0, 0,
                        w.origin, w.origin_seq);
      }
      accept(w);  // dedup (already_have) must swallow this
    }
  }

  /// Bounded ring of previously seen payloads, the corruption donor pool.
  void stash_payload(const Payload& payload) {
    const std::size_t cap =
        options_.byzantine.stash_capacity == 0
            ? 1
            : options_.byzantine.stash_capacity;
    if (stash_.size() < cap) {
      stash_.push_back(payload);
    } else {
      stash_[stash_next_ % cap] = payload;
    }
    ++stash_next_;
  }

  /// Idempotent ingestion of a wire message; routes through causal buffering
  /// when enabled.
  void accept(const Wire& w) {
    if (already_have(w.origin, w.origin_seq)) {
      ++stats_.duplicates_dropped;
      if (tracer_) {
        tracer_->record(obs::EventType::kBroadcastDuplicate,
                        exec_->now(), self_, 0, 0, w.origin,
                        w.origin_seq);
      }
      return;
    }
    remember(w);
    if (!options_.causal) {
      deliver_now(w);
      return;
    }
    pending_.push_back(w);
    ++stats_.causally_buffered;
    drain_pending();
  }

  bool already_have(sim::NodeId origin, std::uint64_t seq) const {
    const auto& extras = seen_extra_[origin];
    return seq <= contiguous_have_[origin] || extras.contains(seq);
  }

  /// Record the wire message in the repair store and advance the contiguous
  /// "have" summary (which is what digests exchange). The store is indexed
  /// relative to store_base_ (seqs at or below it were pruned because every
  /// peer already holds them — nobody can ever re-request those).
  void remember(const Wire& w) {
    const std::uint64_t base = store_base_[w.origin];
    if (w.origin_seq > base) {
      auto& store = store_[w.origin];
      if (w.origin_seq - base > store.size()) store.resize(w.origin_seq - base);
      store[w.origin_seq - 1 - base] = w;
    }
    auto& extras = seen_extra_[w.origin];
    extras.insert(w.origin_seq);
    while (extras.contains(contiguous_have_[w.origin] + 1)) {
      ++contiguous_have_[w.origin];
      extras.erase(contiguous_have_[w.origin]);
    }
  }

  void deliver_now(const Wire& w) {
    ++delivered_count_[w.origin];
    ++stats_.delivered;
    if (tracer_) {
      tracer_->record(obs::EventType::kBroadcastDeliver,
                      exec_->now(), self_, 0, 0, w.origin,
                      w.origin_seq);
    }
    deliver_(w);
  }

  /// Causal drain: deliver any buffered message whose dependencies are met,
  /// repeating until a fixed point. Delivery order among concurrently ready
  /// messages follows buffer order (deterministic).
  void drain_pending() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (!deliverable(*it)) continue;
        Wire w = std::move(*it);
        pending_.erase(it);
        deliver_now(w);
        progressed = true;
        break;  // iterator invalidated; rescan
      }
    }
  }

  bool deliverable(const Wire& w) const {
    if (w.origin_seq != delivered_count_[w.origin] + 1) return false;
    for (sim::NodeId n = 0; n < delivered_count_.size(); ++n) {
      if (n == w.origin) continue;
      if (w.deps[n] > delivered_count_[n]) return false;
    }
    return true;
  }

  void schedule_anti_entropy() {
    const sim::Time dt = options_.anti_entropy_interval +
                         rng_.uniform(0.0, options_.anti_entropy_jitter);
    exec_->schedule_after(dt, [this] {
      run_anti_entropy_round();
      schedule_anti_entropy();
    });
  }

  void run_anti_entropy_round() {
    // The timer stays armed through a crash; ticks while down do nothing,
    // so restarting needs no timer re-arming and the event sequence stays a
    // pure function of (seed, configuration, crash schedule).
    if (down_) {
      ++stats_.rounds_skipped_down;
      return;
    }
    const std::size_t n = net_->node_count();
    if (n < 2) return;
    if (promise_fn_) {
      Packet a;
      a.type = PacketType::kAnnounce;
      const auto [logical, node] = promise_fn_();
      a.announce_clock = logical;
      a.announce_node = node;
      a.announce_issued = own_seq_;
      net_->send_to_all(self_, std::any(std::move(a)));
    }
    // Random peer each round; randomness is seeded, so runs stay
    // reproducible.
    sim::NodeId peer =
        static_cast<sim::NodeId>(rng_.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (peer >= self_) ++peer;
    ++stats_.anti_entropy_rounds;
    send_digest_to(peer);
  }

  void answer_digest(sim::NodeId requester,
                     const std::vector<std::uint64_t>& have) {
    if (options_.prune_repair_store) note_peer_have(requester, have);
    Packet reply;
    reply.type = PacketType::kRepair;
    const std::size_t cap = options_.max_repairs_per_message;
    for (sim::NodeId origin = 0;
         origin < store_.size() && !reply.repair_truncated; ++origin) {
      const std::uint64_t their = origin < have.size() ? have[origin] : 0;
      // Send everything we hold above the requester's contiguous prefix.
      // (They may hold some of it as extras; duplicates are dropped. An
      // out-of-date digest may ask below our pruned base — by the pruning
      // invariant the requester already has those, so start at the base.)
      for (std::uint64_t seq = std::max(their, store_base_[origin]) + 1;
           seq <= contiguous_have_[origin]; ++seq) {
        if (cap != 0 && reply.repairs.size() >= cap) {
          reply.repair_truncated = true;
          ++stats_.repairs_truncated;
          break;
        }
        reply.repairs.push_back(store_[origin][seq - 1 - store_base_[origin]]);
      }
    }
    if (reply.repairs.empty()) return;
    stats_.anti_entropy_repairs += reply.repairs.size();
    if (tracer_) {
      tracer_->record(obs::EventType::kAntiEntropyRepair,
                      exec_->now(), self_, 0, 0, requester,
                      reply.repairs.size());
    }
    net_->send(self_, requester, std::any(std::move(reply)));
  }

  /// One digest to one peer (periodic rounds and repair continuations).
  void send_digest_to(sim::NodeId peer) {
    Packet p;
    p.type = PacketType::kDigest;
    p.digest = contiguous_have_;
    if (tracer_) {
      tracer_->record(obs::EventType::kAntiEntropyDigest,
                      exec_->now(), self_, 0, 0, peer);
    }
    net_->send(self_, peer, std::any(std::move(p)));
  }

  /// Pruning bookkeeping: fold a received digest into the per-peer floor
  /// (element-wise max — digests can arrive out of order) and discard every
  /// store entry at or below min over live floors. Whatever is pruned, every
  /// peer has acknowledged holding, so no future digest can request it.
  void note_peer_have(sim::NodeId peer, const std::vector<std::uint64_t>& have) {
    auto& floor = peer_have_[peer];
    if (floor.size() < have.size()) floor.resize(have.size(), 0);
    for (std::size_t o = 0; o < have.size(); ++o) {
      floor[o] = std::max(floor[o], have[o]);
    }
    for (std::size_t origin = 0; origin < store_.size(); ++origin) {
      std::uint64_t keep_from = contiguous_have_[origin];
      for (sim::NodeId p = 0; p < peer_have_.size(); ++p) {
        if (p == self_) continue;
        const auto& ph = peer_have_[p];
        keep_from = std::min(keep_from, origin < ph.size() ? ph[origin] : 0);
      }
      if (keep_from > store_base_[origin]) {
        const std::uint64_t drop = keep_from - store_base_[origin];
        auto& store = store_[origin];
        store.erase(store.begin(),
                    store.begin() + static_cast<std::ptrdiff_t>(
                                        std::min<std::uint64_t>(drop, store.size())));
        store_base_[origin] = keep_from;
        stats_.store_pruned += drop;
      }
    }
  }

  /// Owned backend adapters for the deprecated sim::Network& constructor;
  /// null when the caller supplied the runtime interfaces directly.
  std::unique_ptr<runtime::SimExecutor> owned_exec_;
  std::unique_ptr<runtime::SimTransport> owned_net_;
  runtime::Executor* exec_;
  runtime::Transport* net_;
  sim::NodeId self_;
  BroadcastOptions options_;
  sim::Rng rng_;
  DeliverFn deliver_;
  PromiseFn promise_fn_;
  AnnounceFn announce_fn_;
  MidBroadcastCrashFn mid_crash_hook_;
  obs::Tracer* tracer_ = nullptr;  ///< optional; nullptr = tracing off
  bool down_ = false;  ///< crashed: no gossip, no sends (see set_down)

  std::uint64_t own_seq_ = 0;
  /// Group-commit staging (options_.max_batch > 0): origin seqs broadcast
  /// during the current scheduler dispatch, awaiting the end-of-dispatch
  /// flush. Volatile — a crash drops it (the records are in the outbox).
  std::vector<std::uint64_t> staged_floods_;
  bool flush_scheduled_ = false;
  /// Delivered-to-application counts per origin (vector clock).
  std::vector<std::uint64_t> delivered_count_;
  /// Contiguous received prefix per origin (>= delivered in causal mode
  /// where they coincide; in non-causal mode delivery may outrun it).
  std::vector<std::uint64_t> contiguous_have_ =
      std::vector<std::uint64_t>(delivered_count_.size(), 0);
  /// Repair store: wire messages received, per origin; store_[o][i] holds
  /// seq store_base_[o] + i + 1 (the base is 0 unless pruning is on).
  std::vector<std::vector<Wire>> store_;
  /// Seqs pruned from the front of each origin's store (every peer holds
  /// them). Only advances when options_.prune_repair_store is set.
  std::vector<std::uint64_t> store_base_ =
      std::vector<std::uint64_t>(store_.size(), 0);
  /// Per-peer pruning floors: the largest contiguous counts each peer has
  /// ever digested to us (element-wise max; monotone).
  std::vector<std::vector<std::uint64_t>> peer_have_ =
      std::vector<std::vector<std::uint64_t>>(store_.size());
  /// Received-but-not-contiguous sequence numbers per origin.
  std::vector<std::unordered_set<std::uint64_t>> seen_extra_;
  /// Causal-mode holding buffer.
  std::deque<Wire> pending_;

  // Byzantine adversary state — inert unless options_.byzantine.enabled.
  // Its RNG is separate from rng_ (anti-entropy peer choice) and seeded
  // from the adversary's own config, so arming it never shifts the
  // protocol's draw stream, and an unarmed run draws nothing at all.
  CorruptFn corrupt_fn_;
  sim::Rng byz_rng_{options_.byzantine.seed ^
                    (0x9E3779B97F4A7C15ull * (self_ + 1))};
  std::vector<Payload> stash_;   ///< Donor pool (bounded ring).
  std::size_t stash_next_ = 0;
  std::optional<Wire> held_;     ///< The one wire held back by a reorder.

  BroadcastStats stats_;
};

}  // namespace net
