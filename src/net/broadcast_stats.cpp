#include "net/broadcast_stats.hpp"

#include <sstream>

namespace net {

std::string BroadcastStats::summary() const {
  std::ostringstream os;
  os << "broadcast: originated=" << originated << " delivered=" << delivered
     << " dup=" << duplicates_dropped << " buffered=" << causally_buffered
     << " ae_rounds=" << anti_entropy_rounds
     << " ae_repairs=" << anti_entropy_repairs;
  if (rounds_skipped_down > 0 || amnesia_resets > 0) {
    os << " down_rounds=" << rounds_skipped_down
       << " amnesia_resets=" << amnesia_resets
       << " outbox_replays=" << outbox_replays;
  }
  return os.str();
}

}  // namespace net
