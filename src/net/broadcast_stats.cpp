#include "net/broadcast_stats.hpp"

#include <sstream>

namespace net {

std::string BroadcastStats::summary() const {
  std::ostringstream os;
  os << "broadcast: originated=" << originated << " delivered=" << delivered
     << " dup=" << duplicates_dropped << " buffered=" << causally_buffered
     << " ae_rounds=" << anti_entropy_rounds
     << " ae_repairs=" << anti_entropy_repairs;
  return os.str();
}

}  // namespace net
