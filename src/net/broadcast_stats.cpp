#include "net/broadcast_stats.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace net {

std::string BroadcastStats::summary() const {
  std::ostringstream os;
  os << "broadcast: originated=" << originated << " delivered=" << delivered
     << " dup=" << duplicates_dropped << " buffered=" << causally_buffered
     << " ae_rounds=" << anti_entropy_rounds
     << " ae_repairs=" << anti_entropy_repairs;
  if (repairs_truncated > 0 || store_pruned > 0) {
    os << " truncated=" << repairs_truncated
       << " continuations=" << continuation_digests
       << " pruned=" << store_pruned;
  }
  if (rounds_skipped_down > 0 || amnesia_resets > 0 || stale_resets > 0 ||
      mid_broadcast_crashes > 0) {
    os << " down_rounds=" << rounds_skipped_down
       << " amnesia_resets=" << amnesia_resets
       << " stale_resets=" << stale_resets
       << " mid_broadcast_crashes=" << mid_broadcast_crashes
       << " outbox_replays=" << outbox_replays;
  }
  if (byz_corrupted > 0 || byz_corrupt_noops > 0 || byz_duplicated > 0 ||
      byz_reordered > 0) {
    os << " byz_corrupted=" << byz_corrupted
       << " byz_corrupt_noops=" << byz_corrupt_noops
       << " byz_duplicated=" << byz_duplicated
       << " byz_reordered=" << byz_reordered;
  }
  if (flood_batches > 0 || outbox_commits > 0) {
    os << " flood_batches=" << flood_batches
       << " flood_batched_wires=" << flood_batched_wires
       << " outbox_commits=" << outbox_commits
       << " outbox_records_synced=" << outbox_records_synced;
  }
  return os.str();
}

void BroadcastStats::export_to(obs::MetricsRegistry& reg,
                               const std::string& prefix) const {
  reg.add_counter(prefix + ".originated", originated);
  reg.add_counter(prefix + ".delivered", delivered);
  reg.add_counter(prefix + ".duplicates_dropped", duplicates_dropped);
  reg.add_counter(prefix + ".causally_buffered", causally_buffered);
  reg.add_counter(prefix + ".anti_entropy_rounds", anti_entropy_rounds);
  reg.add_counter(prefix + ".anti_entropy_repairs", anti_entropy_repairs);
  reg.add_counter(prefix + ".repairs_truncated", repairs_truncated);
  reg.add_counter(prefix + ".continuation_digests", continuation_digests);
  reg.add_counter(prefix + ".store_pruned", store_pruned);
  reg.add_counter(prefix + ".rounds_skipped_down", rounds_skipped_down);
  reg.add_counter(prefix + ".amnesia_resets", amnesia_resets);
  reg.add_counter(prefix + ".outbox_replays", outbox_replays);
  reg.add_counter(prefix + ".stale_resets", stale_resets);
  reg.add_counter(prefix + ".mid_broadcast_crashes", mid_broadcast_crashes);
  reg.add_counter(prefix + ".byz_corrupted", byz_corrupted);
  reg.add_counter(prefix + ".byz_corrupt_noops", byz_corrupt_noops);
  reg.add_counter(prefix + ".byz_duplicated", byz_duplicated);
  reg.add_counter(prefix + ".byz_reordered", byz_reordered);
  reg.add_counter(prefix + ".flood_batches", flood_batches);
  reg.add_counter(prefix + ".flood_batched_wires", flood_batched_wires);
  reg.add_counter(prefix + ".outbox_commits", outbox_commits);
  reg.add_counter(prefix + ".outbox_records_synced", outbox_records_synced);
}

}  // namespace net
