#include "net/broadcast_stats.hpp"

#include <sstream>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace net {

std::string BroadcastStats::summary() const {
  std::ostringstream os;
  os << "broadcast: originated=" << originated << " delivered=" << delivered
     << " dup=" << duplicates_dropped << " buffered=" << causally_buffered
     << " ae_rounds=" << anti_entropy_rounds
     << " ae_repairs=" << anti_entropy_repairs;
  if (repairs_truncated > 0 || store_pruned > 0) {
    os << " truncated=" << repairs_truncated
       << " continuations=" << continuation_digests
       << " pruned=" << store_pruned;
  }
  if (rounds_skipped_down > 0 || amnesia_resets > 0 || stale_resets > 0 ||
      mid_broadcast_crashes > 0) {
    os << " down_rounds=" << rounds_skipped_down
       << " amnesia_resets=" << amnesia_resets
       << " stale_resets=" << stale_resets
       << " mid_broadcast_crashes=" << mid_broadcast_crashes
       << " outbox_replays=" << outbox_replays;
  }
  if (byz_corrupted > 0 || byz_corrupt_noops > 0 || byz_duplicated > 0 ||
      byz_reordered > 0) {
    os << " byz_corrupted=" << byz_corrupted
       << " byz_corrupt_noops=" << byz_corrupt_noops
       << " byz_duplicated=" << byz_duplicated
       << " byz_reordered=" << byz_reordered;
  }
  if (flood_batches > 0 || outbox_commits > 0) {
    os << " flood_batches=" << flood_batches
       << " flood_batched_wires=" << flood_batched_wires
       << " outbox_commits=" << outbox_commits
       << " outbox_records_synced=" << outbox_records_synced;
  }
  return os.str();
}

void BroadcastStats::export_to(obs::MetricsRegistry& reg) const {
  namespace mn = obs::metric_names;
  reg.add_counter(mn::kBroadcastOriginated, originated);
  reg.add_counter(mn::kBroadcastDelivered, delivered);
  reg.add_counter(mn::kBroadcastDuplicatesDropped, duplicates_dropped);
  reg.add_counter(mn::kBroadcastCausallyBuffered, causally_buffered);
  reg.add_counter(mn::kBroadcastAntiEntropyRounds, anti_entropy_rounds);
  reg.add_counter(mn::kBroadcastAntiEntropyRepairs, anti_entropy_repairs);
  reg.add_counter(mn::kBroadcastRepairsTruncated, repairs_truncated);
  reg.add_counter(mn::kBroadcastContinuationDigests, continuation_digests);
  reg.add_counter(mn::kBroadcastStorePruned, store_pruned);
  reg.add_counter(mn::kBroadcastRoundsSkippedDown, rounds_skipped_down);
  reg.add_counter(mn::kBroadcastAmnesiaResets, amnesia_resets);
  reg.add_counter(mn::kBroadcastOutboxReplays, outbox_replays);
  reg.add_counter(mn::kBroadcastStaleResets, stale_resets);
  reg.add_counter(mn::kBroadcastMidBroadcastCrashes, mid_broadcast_crashes);
  reg.add_counter(mn::kBroadcastByzCorrupted, byz_corrupted);
  reg.add_counter(mn::kBroadcastByzCorruptNoops, byz_corrupt_noops);
  reg.add_counter(mn::kBroadcastByzDuplicated, byz_duplicated);
  reg.add_counter(mn::kBroadcastByzReordered, byz_reordered);
  reg.add_counter(mn::kBroadcastFloodBatches, flood_batches);
  reg.add_counter(mn::kBroadcastFloodBatchedWires, flood_batched_wires);
  reg.add_counter(mn::kBroadcastOutboxCommits, outbox_commits);
  reg.add_counter(mn::kBroadcastOutboxRecordsSynced, outbox_records_synced);
}

}  // namespace net
