// Fixed-width experiment tables.
//
// Every bench binary prints its results through this, so EXPERIMENTS.md can
// quote outputs verbatim and the tables stay visually consistent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace harness {

/// A simple right-padded text table with a title, a header row, and data
/// rows. Numeric formatting is the caller's business (pass strings).
class Table {
 public:
  Table(std::string title, std::vector<std::string> header)
      : title_(std::move(title)), header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);
  static std::string num(long long v);
  static std::string pct(double fraction, int precision = 1);

  /// Render with box-drawing-free ASCII (pipes and dashes).
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harness
