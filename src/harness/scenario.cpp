#include "harness/scenario.hpp"

namespace harness {

Scenario lan(std::size_t num_nodes) {
  Scenario s;
  s.name = "lan";
  s.num_nodes = num_nodes;
  s.delay = sim::Delay::uniform(0.001, 0.005);
  s.drop_probability = 0.0;
  s.anti_entropy_interval = 0.25;
  return s;
}

Scenario wan(std::size_t num_nodes) {
  Scenario s;
  s.name = "wan";
  s.num_nodes = num_nodes;
  s.delay = sim::Delay::exponential(0.05, 0.15, 5.0);
  s.drop_probability = 0.05;
  s.anti_entropy_interval = 0.5;
  return s;
}

Scenario partitioned_wan(std::size_t num_nodes, double t0, double t1) {
  Scenario s = wan(num_nodes);
  s.name = "partitioned-wan";
  s.faults.split_halves(static_cast<sim::NodeId>(num_nodes),
                        static_cast<sim::NodeId>(num_nodes / 2), t0, t1);
  return s;
}

Scenario flaky_node(std::size_t num_nodes, double t0, double t1) {
  Scenario s = wan(num_nodes);
  s.name = "flaky-node";
  s.faults.isolate(static_cast<sim::NodeId>(num_nodes - 1),
                   static_cast<sim::NodeId>(num_nodes), t0, t1);
  return s;
}

Scenario crashy_node(std::size_t num_nodes, double t0, double t1,
                     sim::RecoveryMode mode) {
  Scenario s = wan(num_nodes);
  s.name = "crashy-node";
  s.faults.crash(static_cast<sim::NodeId>(num_nodes - 1), t0, t1, mode);
  return s;
}

Scenario rolling_restart(std::size_t num_nodes, double t0, double down_for,
                         double gap, sim::RecoveryMode mode) {
  Scenario s = wan(num_nodes);
  s.name = "rolling-restart";
  s.faults.rolling_restart(static_cast<sim::NodeId>(num_nodes), t0, down_for,
                           gap, mode);
  return s;
}

}  // namespace harness
