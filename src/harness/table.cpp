#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace harness {

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }
std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace harness
