// Canned cluster scenarios: network conditions used across tests, examples
// and bench experiments, so "a 5-node WAN with a 20-second partition" means
// the same thing everywhere.
#pragma once

#include <cstdint>
#include <string>

#include "net/broadcast.hpp"
#include "obs/tracer.hpp"
#include "shard/cluster.hpp"
#include "sim/delay.hpp"
#include "sim/fault_plan.hpp"

namespace harness {

/// Named network/cluster profiles.
struct Scenario {
  std::string name;
  std::size_t num_nodes = 3;
  sim::Delay delay = sim::Delay::constant(0.01);
  double drop_probability = 0.0;
  /// Every injected fault — partitions, crashes (durable / amnesia /
  /// stale-disk), correlated rack losses, rolling restarts, mid-broadcast
  /// crashes — as one composable, seeded plan (sim/fault_plan.hpp).
  sim::FaultPlan faults;
  bool causal_broadcast = true;
  double anti_entropy_interval = 0.5;
  /// Bounded anti-entropy repair: cap on wire payloads per repair reply
  /// (0 = unlimited; see net::BroadcastOptions::max_repairs_per_message).
  std::size_t max_repairs_per_message = 0;
  /// Prune repair-store entries every peer already holds (O(window) store;
  /// incompatible with amnesia crash schedules — Cluster validates).
  bool prune_repair_store = false;
  std::size_t checkpoint_interval = 32;
  /// Geometric checkpoint bound per node (0 = keep every snapshot).
  std::size_t max_checkpoints = 0;
  /// Fold cluster-stable log prefixes into the base state ([SL]).
  bool compaction = false;
  /// Structured event tracing (obs/); disabled by default so existing
  /// scenarios run with the null-tracer fast path.
  obs::TraceOptions trace;
  /// Per-fault-boundary metrics snapshots (shard::Cluster::metrics_series).
  bool metrics_series = false;

  /// Materialize as a cluster config with the given seed.
  template <class App>
  typename shard::Cluster<App>::Config cluster_config(
      std::uint64_t seed) const {
    typename shard::Cluster<App>::Config cfg;
    cfg.num_nodes = num_nodes;
    cfg.network.delay = delay;
    cfg.network.drop_probability = drop_probability;
    cfg.faults = faults;
    cfg.broadcast.causal = causal_broadcast;
    cfg.broadcast.anti_entropy_interval = anti_entropy_interval;
    cfg.broadcast.max_repairs_per_message = max_repairs_per_message;
    cfg.broadcast.prune_repair_store = prune_repair_store;
    cfg.checkpoint_interval = checkpoint_interval;
    cfg.max_checkpoints = max_checkpoints;
    cfg.compaction = compaction;
    cfg.trace = trace;
    cfg.metrics_series = metrics_series;
    cfg.seed = seed;
    return cfg;
  }
};

/// A well-connected LAN: low constant delay, no loss. Transactions are
/// near-complete (k ~ 0) — the serializable-looking end of the spectrum.
Scenario lan(std::size_t num_nodes = 3);

/// A lossy WAN: long-tailed delays and random drops — moderate k.
Scenario wan(std::size_t num_nodes = 5);

/// WAN plus a hard partition of [t0, t1) splitting the cluster in half —
/// the paper's headline failure mode; k grows with the partition length.
Scenario partitioned_wan(std::size_t num_nodes = 4, double t0 = 10.0,
                         double t1 = 30.0);

/// A flaky node: node `num_nodes - 1` is isolated during [t0, t1).
Scenario flaky_node(std::size_t num_nodes = 4, double t0 = 5.0,
                    double t1 = 25.0);

/// A crashing node: WAN conditions, node `num_nodes - 1` crashes during
/// [t0, t1) and restarts with the given recovery mode — the crash analogue
/// of flaky_node (which merely cuts links).
Scenario crashy_node(std::size_t num_nodes = 4, double t0 = 5.0,
                     double t1 = 25.0,
                     sim::RecoveryMode mode = sim::RecoveryMode::kDurable);

/// Upgrade simulation: WAN conditions with the whole cluster restarted one
/// node at a time — node i is down during [t0 + i*(down_for+gap),
/// +down_for). The cluster keeps serving throughout; each node catches up
/// on what it missed via anti-entropy before the next goes down.
Scenario rolling_restart(std::size_t num_nodes = 5, double t0 = 5.0,
                         double down_for = 3.0, double gap = 1.0,
                         sim::RecoveryMode mode = sim::RecoveryMode::kDurable);

}  // namespace harness
