// The section 1.3 probabilistic layer.
//
// "We believe that results of this form are most conveniently proved in two
// parts: (1) conditional results of the form 'If certain conditions hold,
// then the cost remains at most c.', and (2) probability distribution
// information describing the probability that the conditions hold ... It
// should be relatively easy to combine the information in (1) and (2) to
// get probabilistic statements of the kind we want. In this paper, we do
// not carry out the probabilistic analysis required in (2)."
//
// We do carry it out: the simulator measures the empirical distribution of
// k (missing-prefix sizes) induced by given delay/partition parameters, and
// `probabilistic_cost_bound` composes it with a conditional bound f to
// produce statements "with probability >= p, every relevant transaction was
// K-complete, hence cost <= f(K)" (experiment E9).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

namespace harness {

/// Empirical distribution of missing-prefix sizes.
class KDistribution {
 public:
  void observe(std::size_t k) {
    ++counts_[k];
    ++total_;
  }
  void observe_all(const std::vector<std::size_t>& ks) {
    for (std::size_t k : ks) observe(k);
  }

  std::size_t total() const { return total_; }
  std::size_t max_k() const {
    return counts_.empty() ? 0 : counts_.rbegin()->first;
  }
  double mean() const {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (const auto& [k, c] : counts_) {
      sum += static_cast<double>(k) * static_cast<double>(c);
    }
    return sum / static_cast<double>(total_);
  }

  /// P(k <= K): fraction of observations at or below K.
  double cdf(std::size_t K) const {
    if (total_ == 0) return 1.0;
    std::size_t at_or_below = 0;
    for (const auto& [k, c] : counts_) {
      if (k <= K) at_or_below += c;
    }
    return static_cast<double>(at_or_below) / static_cast<double>(total_);
  }

  /// Smallest K with P(k <= K) >= q.
  std::size_t quantile(double q) const {
    if (total_ == 0) return 0;
    std::size_t cum = 0;
    for (const auto& [k, c] : counts_) {
      cum += c;
      if (static_cast<double>(cum) >=
          q * static_cast<double>(total_) - 1e-12) {
        return k;
      }
    }
    return max_k();
  }

  const std::map<std::size_t, std::size_t>& counts() const { return counts_; }

 private:
  std::map<std::size_t, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// A probabilistic statement composed from (1) a conditional bound and (2)
/// the measured distribution: with probability `probability` (per
/// transaction, empirically), k <= K, so the conditional theorem yields
/// cost <= `cost_bound`.
struct ProbabilisticBound {
  std::size_t K = 0;
  double probability = 0.0;
  double cost_bound = 0.0;
};

template <class FBound>
ProbabilisticBound probabilistic_cost_bound(const KDistribution& dist,
                                            int constraint, FBound&& f,
                                            double target_probability) {
  ProbabilisticBound out;
  out.K = dist.quantile(target_probability);
  out.probability = dist.cdf(out.K);
  out.cost_bound = f(constraint, out.K);
  return out;
}

}  // namespace harness
