#include "harness/workload.hpp"

namespace harness {

std::vector<Submission<apps::banking::Request>> drive_banking(
    shard::Cluster<apps::banking::Banking>& cluster, const BankingWorkload& w,
    std::uint64_t seed) {
  namespace bk = apps::banking;
  sim::Rng rng(seed);
  const std::size_t n = cluster.num_nodes();
  std::vector<Submission<bk::Request>> schedule;
  const auto pick_node = [&](bool audit_like) -> core::NodeId {
    if (w.routing == Routing::kCentralizeAll) return 0;
    if (w.routing == Routing::kCentralizeMovers && audit_like) return 0;
    return static_cast<core::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  };
  const auto rand_account = [&]() -> bk::AccountId {
    return static_cast<bk::AccountId>(
        rng.uniform_int(0, static_cast<std::int64_t>(w.num_accounts) - 1));
  };
  const auto rand_amount = [&]() -> bk::Amount {
    return rng.uniform_int(1, w.max_amount);
  };
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / w.tx_rate);
    if (t >= w.duration) break;
    const double roll = rng.uniform01();
    bk::Request req = bk::Request::audit();
    bool audit_like = false;
    if (roll < w.deposit_fraction) {
      req = bk::Request::deposit(rand_account(), rand_amount());
    } else if (roll < w.deposit_fraction + w.withdraw_fraction) {
      req = bk::Request::withdraw(rand_account(), rand_amount());
    } else if (roll <
               w.deposit_fraction + w.withdraw_fraction + w.transfer_fraction) {
      bk::AccountId from = rand_account();
      bk::AccountId to = rand_account();
      if (to == from) to = (to + 1) % w.num_accounts;
      req = bk::Request::transfer(from, to, rand_amount());
    } else if (roll < w.deposit_fraction + w.withdraw_fraction +
                          w.transfer_fraction + w.cover_fraction) {
      req = bk::Request::cover();
      audit_like = true;
    } else {
      req = bk::Request::audit();
      audit_like = true;
    }
    const core::NodeId node = pick_node(audit_like);
    cluster.submit_at(t, node, req);
    schedule.push_back({t, node, req});
  }
  return schedule;
}

std::vector<Submission<apps::inventory::Request>> drive_inventory(
    shard::Cluster<apps::inventory::Inventory>& cluster,
    const InventoryWorkload& w, std::uint64_t seed) {
  namespace inv = apps::inventory;
  sim::Rng rng(seed);
  const std::size_t n = cluster.num_nodes();
  std::vector<Submission<inv::Request>> schedule;
  const auto pick_node = [&](bool is_mover) -> core::NodeId {
    if (w.routing == Routing::kCentralizeAll) return 0;
    if (w.routing == Routing::kCentralizeMovers && is_mover) return 0;
    return static_cast<core::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  };
  const auto emit = [&](double time, bool is_mover, inv::Request req) {
    const core::NodeId node = pick_node(is_mover);
    cluster.submit_at(time, node, req);
    schedule.push_back({time, node, req});
  };
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / w.order_rate);
    if (t >= w.duration) break;
    emit(t, false, inv::Request::order(rng.uniform_int(1, w.max_order)));
  }
  t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / w.fulfill_rate);
    if (t >= w.duration) break;
    if (rng.bernoulli(w.release_fraction)) {
      emit(t, true, inv::Request::release());
    } else {
      emit(t, true, inv::Request::fulfill(w.fulfill_cap));
    }
  }
  t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / w.restock_rate);
    if (t >= w.duration) break;
    emit(t, false, inv::Request::restock(w.restock_size));
  }
  return schedule;
}

}  // namespace harness
