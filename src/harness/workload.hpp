// Workload generators.
//
// Produce stochastic request schedules for the apps, with configurable
// rates and *routing policies*. Routing is how the section 3.2/3.3
// restrictions are realized: "It is possible to force all the transactions
// in G to run at the same node of a distributed system" — centralizing a
// group means pinning its requests to one node, at an availability cost the
// experiments measure.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "apps/airline/airline.hpp"
#include "apps/airline/timestamped.hpp"
#include "apps/banking/banking.hpp"
#include "apps/inventory/inventory.hpp"
#include "shard/cluster.hpp"
#include "sim/rng.hpp"

namespace harness {

/// Where a request class runs.
enum class Routing {
  kAnyNode,           ///< uniformly random origin (max availability)
  kCentralizeMovers,  ///< movers pinned to node 0; rest random
  kCentralizeAll,     ///< everything at node 0 (fully serial agent)
};

/// Parameters of the standard airline workload.
struct AirlineWorkload {
  double duration = 60.0;          ///< seconds of request generation
  double request_rate = 4.0;       ///< REQUESTs per second (Poisson)
  double cancel_fraction = 0.15;   ///< fraction of requesters who cancel
  double mover_rate = 4.0;         ///< MOVE-UP/DOWN attempts per second
  double move_down_fraction = 0.3; ///< share of mover slots that MOVE-DOWN
  std::uint32_t max_persons = 400; ///< distinct persons
  double duplicate_request_fraction = 0.0;  ///< re-REQUEST probability
  Routing routing = Routing::kAnyNode;
};

/// One scheduled submission (kept for analysis / replay).
template <class Req>
struct Submission {
  double time = 0.0;
  core::NodeId node = 0;
  Req request;
};

// Request construction customization points: the same generator drives both
// the basic and the timestamped airline; the timestamped variant stamps
// REQUESTs with the submission's microsecond tick (section 5.5).
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::Request>
typename Air::Request make_request(apps::airline::Person p, double) {
  return apps::airline::Request::request(p);
}
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::Request>
typename Air::Request make_cancel(apps::airline::Person p) {
  return apps::airline::Request::cancel(p);
}
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::Request>
typename Air::Request make_move_up() {
  return apps::airline::Request::move_up();
}
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::Request>
typename Air::Request make_move_down() {
  return apps::airline::Request::move_down();
}

template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::TsRequest>
typename Air::Request make_request(apps::airline::Person p, double t) {
  return apps::airline::TsRequest::request(
      p, static_cast<std::uint64_t>(t * 1e6));
}
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::TsRequest>
typename Air::Request make_cancel(apps::airline::Person p) {
  return apps::airline::TsRequest::cancel(p);
}
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::TsRequest>
typename Air::Request make_move_up() {
  return apps::airline::TsRequest::move_up();
}
template <class Air>
  requires std::same_as<typename Air::Request, apps::airline::TsRequest>
typename Air::Request make_move_down() {
  return apps::airline::TsRequest::move_down();
}

/// Generate the airline schedule and feed it into the cluster. Returns the
/// schedule for inspection/replay.
template <class Air>
std::vector<Submission<typename Air::Request>> drive_airline(
    shard::Cluster<Air>& cluster, const AirlineWorkload& w,
    std::uint64_t seed) {
  namespace al = apps::airline;
  sim::Rng rng(seed);
  const std::size_t n = cluster.num_nodes();
  std::vector<Submission<typename Air::Request>> schedule;

  const auto pick_node = [&](bool is_mover) -> core::NodeId {
    switch (w.routing) {
      case Routing::kCentralizeAll:
        return 0;
      case Routing::kCentralizeMovers:
        if (is_mover) return 0;
        [[fallthrough]];
      case Routing::kAnyNode:
      default:
        return static_cast<core::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
  };

  // REQUEST / CANCEL stream (Poisson arrivals).
  std::uint32_t next_person = 1;
  double t = 0.0;
  std::vector<al::Person> active;
  while (true) {
    t += rng.exponential(1.0 / w.request_rate);
    if (t >= w.duration) break;
    al::Person p;
    if (!active.empty() && rng.bernoulli(w.duplicate_request_fraction)) {
      p = active[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(active.size()) - 1))];
    } else {
      if (next_person > w.max_persons) break;
      p = next_person++;
      active.push_back(p);
    }
    typename Air::Request req = make_request<Air>(p, t);
    const core::NodeId node = pick_node(false);
    cluster.submit_at(t, node, req);
    schedule.push_back({t, node, req});
    if (rng.bernoulli(w.cancel_fraction)) {
      const double tc = t + rng.exponential(2.0);
      if (tc < w.duration) {
        typename Air::Request creq = make_cancel<Air>(p);
        const core::NodeId cnode = pick_node(false);
        cluster.submit_at(tc, cnode, creq);
        schedule.push_back({tc, cnode, creq});
      }
    }
  }

  // Mover stream: periodic MOVE-UP / MOVE-DOWN attempts — the paper's
  // conceptual seating "agent", possibly distributed across nodes.
  t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / w.mover_rate);
    if (t >= w.duration) break;
    const bool down = rng.bernoulli(w.move_down_fraction);
    typename Air::Request req =
        down ? make_move_down<Air>() : make_move_up<Air>();
    const core::NodeId node = pick_node(true);
    cluster.submit_at(t, node, req);
    schedule.push_back({t, node, req});
  }
  return schedule;
}

/// Parameters of the banking workload (experiment E11).
struct BankingWorkload {
  double duration = 60.0;
  double tx_rate = 8.0;              ///< operations per second
  std::uint32_t num_accounts = 20;
  apps::banking::Amount max_amount = 100;
  double deposit_fraction = 0.45;
  double withdraw_fraction = 0.35;
  double transfer_fraction = 0.10;
  double cover_fraction = 0.07;      ///< compensating sweeps
  /// remainder = audits
  Routing routing = Routing::kAnyNode;
};

std::vector<Submission<apps::banking::Request>> drive_banking(
    shard::Cluster<apps::banking::Banking>& cluster, const BankingWorkload& w,
    std::uint64_t seed);

/// Parameters of the inventory workload (experiment E11).
struct InventoryWorkload {
  double duration = 60.0;
  double order_rate = 6.0;
  double fulfill_rate = 5.0;
  double restock_rate = 0.5;
  apps::inventory::Units restock_size = 50;
  apps::inventory::Units max_order = 8;
  apps::inventory::Units fulfill_cap = 10;
  double release_fraction = 0.2;  ///< share of fulfill slots that RELEASE
  Routing routing = Routing::kAnyNode;
};

std::vector<Submission<apps::inventory::Request>> drive_inventory(
    shard::Cluster<apps::inventory::Inventory>& cluster,
    const InventoryWorkload& w, std::uint64_t seed);

}  // namespace harness
