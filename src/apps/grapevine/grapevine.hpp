// A Grapevine-style registration service in the SHARD framework.
//
// Paper section 6: "it has been claimed that name servers such as Grapevine
// [B] have interesting but nonserializable behavior; it seems likely that
// they can be described within our framework." Grapevine (Birrell, Levin,
// Needham, Schroeder 1982) kept a replicated registration database of
// *individuals* (with a mailbox site) and *groups* (member name lists),
// updated at any replica and propagated lazily — exactly SHARD's shape.
//
// Transactions (decision/update split, as always):
//  * REGISTER(name, site)    — decision TRUE; adds/updates an individual.
//  * DEREGISTER(name)        — decision TRUE; removes the individual.
//    Group memberships naming it now DANGLE — the integrity violation.
//  * ADD-MEMBER(g, m)        — decision checks m is registered in the
//    OBSERVED state and refuses (external warning, no update) if not; run
//    against other states its update can still add a member that was
//    deregistered meanwhile — staleness, not policy, creates dangling.
//  * REMOVE-MEMBER(g, m)     — decision TRUE.
//  * RESOLVE(g)              — pure decision: reports the member->site
//    expansion the local replica can see (an external action).
//  * SCRUB                   — compensating transaction: the decision
//    collects the dangling (group, member) pairs it observes and the
//    update removes exactly those memberships.
//
// Integrity constraint 0 (referential integrity): every group member is a
// registered individual. cost(s, 0) = kDanglingCost per dangling pair.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace apps::grapevine {

using Name = std::uint32_t;  ///< registry names, dense ids ("R<n>")

std::string display_name(Name n);

/// One dangling membership, as carried by a SCRUB update.
struct Membership {
  Name group = 0;
  Name member = 0;
  friend auto operator<=>(const Membership&, const Membership&) = default;
};

struct Update {
  enum class Kind : std::uint8_t {
    kNoop = 0,
    kRegister,      ///< individuals[name] = site
    kDeregister,    ///< erase individual (memberships untouched!)
    kAddMember,     ///< groups[group] += member (idempotent)
    kRemoveMember,  ///< groups[group] -= member
    kScrub,         ///< remove the listed memberships
  };
  Kind kind = Kind::kNoop;
  Name name = 0;    ///< individual, or group for member ops
  Name member = 0;  ///< member for member ops
  std::string site;
  std::vector<Membership> scrub;  ///< kScrub only

  friend auto operator<=>(const Update&, const Update&) = default;
  std::string to_string() const;
};

struct Request {
  enum class Kind : std::uint8_t {
    kRegister,
    kDeregister,
    kAddMember,
    kRemoveMember,
    kResolve,
    kScrub,
  };
  Kind kind = Kind::kRegister;
  Name name = 0;
  Name member = 0;
  std::string site;

  static Request register_individual(Name n, std::string site) {
    return {Kind::kRegister, n, 0, std::move(site)};
  }
  static Request deregister(Name n) { return {Kind::kDeregister, n, 0, {}}; }
  static Request add_member(Name group, Name member) {
    return {Kind::kAddMember, group, member, {}};
  }
  static Request remove_member(Name group, Name member) {
    return {Kind::kRemoveMember, group, member, {}};
  }
  static Request resolve(Name group) { return {Kind::kResolve, group, 0, {}}; }
  static Request scrub() { return {Kind::kScrub, 0, 0, {}}; }

  friend auto operator<=>(const Request&, const Request&) = default;
  std::string to_string() const;
};

struct State {
  /// Registered individuals: name -> mailbox site.
  std::map<Name, std::string> individuals;
  /// Groups: name -> sorted, duplicate-free member list.
  std::map<Name, std::vector<Name>> groups;

  friend bool operator==(const State&, const State&) = default;

  bool is_registered(Name n) const { return individuals.contains(n); }
  bool is_member(Name group, Name member) const {
    const auto it = groups.find(group);
    if (it == groups.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), member);
  }
  /// All (group, member) pairs whose member is not registered.
  std::vector<Membership> dangling() const {
    std::vector<Membership> out;
    for (const auto& [g, members] : groups) {
      for (Name m : members) {
        if (!individuals.contains(m)) out.push_back({g, m});
      }
    }
    return out;
  }
  std::string to_string() const;
};

struct Grapevine {
  using State = grapevine::State;
  using Update = grapevine::Update;
  using Request = grapevine::Request;

  static constexpr int kNumConstraints = 1;
  static constexpr int kReferentialIntegrity = 0;
  static constexpr double kDanglingCost = 10.0;

  static std::string name() { return "grapevine"; }
  static State initial() { return State{}; }

  /// Representation invariants: member lists sorted and duplicate-free.
  static bool well_formed(const State& s) {
    for (const auto& [g, members] : s.groups) {
      for (std::size_t i = 1; i < members.size(); ++i) {
        if (!(members[i - 1] < members[i])) return false;
      }
    }
    return true;
  }

  static void apply(const Update& u, State& s);

  static core::DecisionResult<Update> decide(const Request& req,
                                             const State& s);

  static double cost(const State& s, int constraint) {
    if (constraint == kReferentialIntegrity) {
      return kDanglingCost * static_cast<double>(s.dangling().size());
    }
    return 0.0;
  }

  /// Classification in the section 4.1 style. Dangling pairs are created by
  /// DEREGISTER (leaving members behind) and ADD-MEMBER (adding a member
  /// that is gone); everything else is safe; SCRUB compensates.
  struct Theory {
    static bool safe_for(const Request& r, int /*constraint*/) {
      return r.kind != Request::Kind::kDeregister &&
             r.kind != Request::Kind::kAddMember;
    }
    static Request compensator(int /*constraint*/) { return Request::scrub(); }
  };
};

}  // namespace apps::grapevine
