#include "apps/grapevine/grapevine.hpp"

#include <sstream>

namespace apps::grapevine {

std::string display_name(Name n) { return "R" + std::to_string(n); }

void Grapevine::apply(const Update& u, State& s) {
  switch (u.kind) {
    case Update::Kind::kNoop:
      break;
    case Update::Kind::kRegister:
      s.individuals[u.name] = u.site;
      break;
    case Update::Kind::kDeregister:
      // Memberships deliberately left behind: Grapevine removed entries
      // lazily, and this is exactly what makes referential integrity an
      // integrity CONSTRAINT rather than an invariant.
      s.individuals.erase(u.name);
      break;
    case Update::Kind::kAddMember: {
      auto& members = s.groups[u.name];
      const auto it =
          std::lower_bound(members.begin(), members.end(), u.member);
      if (it == members.end() || *it != u.member) members.insert(it, u.member);
      break;
    }
    case Update::Kind::kRemoveMember: {
      const auto git = s.groups.find(u.name);
      if (git == s.groups.end()) break;
      auto& members = git->second;
      const auto it =
          std::lower_bound(members.begin(), members.end(), u.member);
      if (it != members.end() && *it == u.member) members.erase(it);
      if (members.empty()) s.groups.erase(git);
      break;
    }
    case Update::Kind::kScrub:
      for (const Membership& mship : u.scrub) {
        // Remove only if STILL dangling at apply time: a re-registered
        // member keeps its membership (the scrub's belief was stale).
        if (s.is_registered(mship.member)) continue;
        const auto git = s.groups.find(mship.group);
        if (git == s.groups.end()) continue;
        auto& members = git->second;
        const auto it =
            std::lower_bound(members.begin(), members.end(), mship.member);
        if (it != members.end() && *it == mship.member) members.erase(it);
        if (members.empty()) s.groups.erase(git);
      }
      break;
  }
}

core::DecisionResult<Update> Grapevine::decide(const Request& req,
                                               const State& s) {
  core::DecisionResult<Update> out;
  switch (req.kind) {
    case Request::Kind::kRegister:
      out.update = Update{Update::Kind::kRegister, req.name, 0, req.site, {}};
      break;
    case Request::Kind::kDeregister:
      out.update = Update{Update::Kind::kDeregister, req.name, 0, {}, {}};
      break;
    case Request::Kind::kAddMember:
      // The decision checks the OBSERVED registry: visibly unknown members
      // are refused (external warning, no update). Dangling references can
      // therefore only arise from STALE views — an add whose member was
      // deregistered elsewhere, or a deregister blind to a concurrent add
      // — which is exactly the k-bounded damage shape of the framework.
      if (!s.is_registered(req.member)) {
        out.external_actions.push_back(
            {"membership-refused", display_name(req.member)});
      } else {
        out.update =
            Update{Update::Kind::kAddMember, req.name, req.member, {}, {}};
      }
      break;
    case Request::Kind::kRemoveMember:
      out.update =
          Update{Update::Kind::kRemoveMember, req.name, req.member, {}, {}};
      break;
    case Request::Kind::kResolve: {
      // Pure decision: expand the group against the observed state.
      std::ostringstream os;
      os << display_name(req.name) << "={";
      const auto git = s.groups.find(req.name);
      bool first = true;
      if (git != s.groups.end()) {
        for (Name m : git->second) {
          if (!first) os << ",";
          first = false;
          const auto iit = s.individuals.find(m);
          os << display_name(m) << ":"
             << (iit != s.individuals.end() ? iit->second : "<dangling>");
        }
      }
      os << "}";
      out.external_actions.push_back({"resolution", os.str()});
      break;
    }
    case Request::Kind::kScrub: {
      const std::vector<Membership> dangling = s.dangling();
      if (!dangling.empty()) {
        out.update = Update{Update::Kind::kScrub, 0, 0, {}, dangling};
        out.external_actions.push_back(
            {"scrubbed", std::to_string(dangling.size()) + " memberships"});
      }
      break;
    }
  }
  return out;
}

std::string Update::to_string() const {
  switch (kind) {
    case Kind::kNoop:
      return "noop";
    case Kind::kRegister:
      return "register(" + display_name(name) + "@" + site + ")";
    case Kind::kDeregister:
      return "deregister(" + display_name(name) + ")";
    case Kind::kAddMember:
      return "add-member(" + display_name(name) + "," + display_name(member) +
             ")";
    case Kind::kRemoveMember:
      return "remove-member(" + display_name(name) + "," +
             display_name(member) + ")";
    case Kind::kScrub:
      return "scrub(" + std::to_string(scrub.size()) + ")";
  }
  return "?";
}

std::string Request::to_string() const {
  switch (kind) {
    case Kind::kRegister:
      return "REGISTER(" + display_name(name) + "@" + site + ")";
    case Kind::kDeregister:
      return "DEREGISTER(" + display_name(name) + ")";
    case Kind::kAddMember:
      return "ADD-MEMBER(" + display_name(name) + "," + display_name(member) +
             ")";
    case Kind::kRemoveMember:
      return "REMOVE-MEMBER(" + display_name(name) + "," +
             display_name(member) + ")";
    case Kind::kResolve:
      return "RESOLVE(" + display_name(name) + ")";
    case Kind::kScrub:
      return "SCRUB";
  }
  return "?";
}

std::string State::to_string() const {
  std::ostringstream os;
  os << "individuals={";
  bool first = true;
  for (const auto& [n, site] : individuals) {
    if (!first) os << ",";
    first = false;
    os << display_name(n) << "@" << site;
  }
  os << "} groups={";
  first = true;
  for (const auto& [g, members] : groups) {
    if (!first) os << ",";
    first = false;
    os << display_name(g) << ":[";
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) os << ",";
      os << display_name(members[i]);
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace apps::grapevine
