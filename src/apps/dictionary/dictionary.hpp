// The Fischer–Michael highly available replicated dictionary, recast in the
// SHARD framework.
//
// Paper section 6: "The highly-available distributed dictionary studied in
// [FM] is one example that fits the SHARD framework, and there should be
// others." [FM] = Fischer & Michael, "Sacrificing Serializability to Attain
// High Availability of Data in an Unreliable Network" (PODS 1982): a
// replicated set of (key, value) entries where inserts and deletes commute
// well enough that replicas converge without global synchronization.
//
// In SHARD terms: INSERT and DELETE have trivial decision parts (always the
// same update), LOOKUP is a pure decision that reports the locally observed
// value as an external action. Because updates are merged in the global
// timestamp order at every node, the last-writer-wins resolution of
// concurrent inserts is automatic, and mutual consistency is exactly the
// cluster convergence property. The app declares zero integrity
// constraints — its interesting properties are convergence and the
// prefix-subsequence semantics of LOOKUP results, both covered by tests.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace apps::dictionary {

using Key = std::uint32_t;

struct Entry {
  Key key = 0;
  std::string value;

  friend auto operator<=>(const Entry&, const Entry&) = default;
};

struct Update {
  enum class Kind : std::uint8_t { kNoop = 0, kInsert, kErase };
  Kind kind = Kind::kNoop;
  Key key = 0;
  std::string value;

  friend auto operator<=>(const Update&, const Update&) = default;
  std::string to_string() const;
};

struct Request {
  enum class Kind : std::uint8_t { kInsert, kErase, kLookup };
  Kind kind = Kind::kInsert;
  Key key = 0;
  std::string value;

  static Request insert(Key k, std::string v) {
    return {Kind::kInsert, k, std::move(v)};
  }
  static Request erase(Key k) { return {Kind::kErase, k, {}}; }
  static Request lookup(Key k) { return {Kind::kLookup, k, {}}; }

  friend auto operator<=>(const Request&, const Request&) = default;
};

/// Key-sorted entry vector: deterministic representation, cheap equality.
struct State {
  std::vector<Entry> entries;

  friend bool operator==(const State&, const State&) = default;

  const Entry* find(Key k) const {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), k,
        [](const Entry& e, Key key) { return e.key < key; });
    return (it != entries.end() && it->key == k) ? &*it : nullptr;
  }
  std::string to_string() const;
};

struct Dictionary {
  using State = dictionary::State;
  using Update = dictionary::Update;
  using Request = dictionary::Request;

  static constexpr int kNumConstraints = 0;

  static std::string name() { return "fm-dictionary"; }
  static State initial() { return State{}; }
  static bool well_formed(const State& s) {
    return std::is_sorted(
        s.entries.begin(), s.entries.end(),
        [](const Entry& a, const Entry& b) { return a.key < b.key; });
  }

  static void apply(const Update& u, State& s) {
    switch (u.kind) {
      case Update::Kind::kNoop:
        break;
      case Update::Kind::kInsert: {
        const auto it = std::lower_bound(
            s.entries.begin(), s.entries.end(), u.key,
            [](const Entry& e, Key k) { return e.key < k; });
        if (it != s.entries.end() && it->key == u.key) {
          it->value = u.value;  // later timestamp wins by merge order
        } else {
          s.entries.insert(it, Entry{u.key, u.value});
        }
        break;
      }
      case Update::Kind::kErase:
        std::erase_if(s.entries,
                      [&](const Entry& e) { return e.key == u.key; });
        break;
    }
  }

  static core::DecisionResult<Update> decide(const Request& req,
                                             const State& s) {
    core::DecisionResult<Update> out;
    switch (req.kind) {
      case Request::Kind::kInsert:
        out.update = Update{Update::Kind::kInsert, req.key, req.value};
        break;
      case Request::Kind::kErase:
        out.update = Update{Update::Kind::kErase, req.key, {}};
        break;
      case Request::Kind::kLookup: {
        const Entry* e = s.find(req.key);
        out.external_actions.push_back(
            {"lookup-result", std::to_string(req.key) + "=" +
                                  (e != nullptr ? e->value : "<absent>")});
        break;
      }
    }
    return out;
  }

  static double cost(const State&, int) { return 0.0; }
};

}  // namespace apps::dictionary
