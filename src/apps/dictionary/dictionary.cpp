#include "apps/dictionary/dictionary.hpp"

#include <sstream>

namespace apps::dictionary {

std::string Update::to_string() const {
  switch (kind) {
    case Kind::kNoop:
      return "noop";
    case Kind::kInsert:
      return "insert(" + std::to_string(key) + "=" + value + ")";
    case Kind::kErase:
      return "erase(" + std::to_string(key) + ")";
  }
  return "?";
}

std::string State::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) os << ",";
    os << entries[i].key << "=" << entries[i].value;
  }
  os << "}";
  return os.str();
}

}  // namespace apps::dictionary
