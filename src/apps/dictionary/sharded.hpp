// Partially replicated FM dictionary: keys hashed into groups.
//
// The single-group case of the section 6 partial-replication extension:
// every request touches exactly one group (key % num_groups), so routing
// never fails while any replica of that group is addressable, and each
// group independently enjoys the full-replication guarantees.
#pragma once

#include <string>
#include <vector>

#include "apps/dictionary/dictionary.hpp"
#include "shard/partial.hpp"

namespace apps::dictionary {

/// PartialApplication wrapper; NumGroups is a compile-time shard count.
template <std::uint32_t NumGroups = 8>
struct ShardedDictionary {
  using GroupState = dictionary::State;
  using Update = dictionary::Update;
  using Request = dictionary::Request;

  static constexpr int kNumConstraints = 0;
  static constexpr std::uint32_t kNumGroups = NumGroups;

  static std::string name() {
    return "sharded-fm-dictionary(" + std::to_string(NumGroups) + ")";
  }
  static GroupState group_initial() { return {}; }
  static bool group_well_formed(const GroupState& s) {
    return Dictionary::well_formed(s);
  }
  static void apply(const Update& u, GroupState& s) {
    Dictionary::apply(u, s);
  }

  static shard::GroupId group_of_key(Key k) { return k % NumGroups; }

  static std::vector<shard::GroupId> groups_of(const Request& r) {
    return {group_of_key(r.key)};
  }

  static shard::PartialDecision<ShardedDictionary> decide(
      const Request& r, const shard::GroupView<ShardedDictionary>& view) {
    shard::PartialDecision<ShardedDictionary> out;
    const core::DecisionResult<Update> base =
        Dictionary::decide(r, view(group_of_key(r.key)));
    out.external_actions = base.external_actions;
    if (base.update.kind != Update::Kind::kNoop) {
      out.writes.push_back({group_of_key(r.key), base.update});
    }
    return out;
  }

  static double cost(const GroupState&, int) { return 0.0; }
};

}  // namespace apps::dictionary
