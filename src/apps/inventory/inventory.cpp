#include "apps/inventory/inventory.hpp"

#include <sstream>

namespace apps::inventory {

std::string Update::to_string() const {
  switch (kind) {
    case Kind::kNoop:
      return "noop";
    case Kind::kOrder:
      return "order(" + std::to_string(n) + ")";
    case Kind::kCancel:
      return "cancel(" + std::to_string(n) + ")";
    case Kind::kRestock:
      return "restock(" + std::to_string(n) + ")";
    case Kind::kCommit:
      return "commit(" + std::to_string(n) + ")";
    case Kind::kRelease:
      return "release(" + std::to_string(n) + ")";
  }
  return "?";
}

std::string Request::to_string() const {
  switch (kind) {
    case Kind::kOrder:
      return "ORDER(" + std::to_string(n) + ")";
    case Kind::kCancel:
      return "CANCEL(" + std::to_string(n) + ")";
    case Kind::kRestock:
      return "RESTOCK(" + std::to_string(n) + ")";
    case Kind::kFulfill:
      return "FULFILL(cap=" + std::to_string(n) + ")";
    case Kind::kRelease:
      return "RELEASE";
  }
  return "?";
}

std::string State::to_string() const {
  std::ostringstream os;
  os << "{stock=" << stock << ",committed=" << committed
     << ",demand=" << demand << "}";
  return os.str();
}

}  // namespace apps::inventory
