// An inventory-control application in the SHARD framework.
//
// The paper names inventory control as one of the motivating application
// classes ("airline reservation systems, banking systems and inventory
// control systems", section 1.1) and conjectures in section 6 that its cost
// bound and fairness results carry over. This module is a counts-based
// resource allocator with the same two-constraint shape as the airline:
//
//   State: stock (units on hand), committed (units promised), demand
//          (outstanding requested units).
//   ORDER(n)   — demand += n (decision TRUE).
//   CANCEL(n)  — demand -= min(n, demand) (decision TRUE).
//   RESTOCK(n) — stock += n (decision TRUE).
//   FULFILL    — decision: if the observed state has free stock and demand,
//                promise m = min(free, demand, batch cap) units (external
//                action: the customer is told "shipped") and commit them.
//                Racing FULFILLs overcommit — constraint 0.
//   RELEASE    — compensator: if the observed state is overcommitted,
//                un-promise the excess (external action: apology).
//
// Constraint 0 (overcommit):  committed <= stock,
//     cost(s,0) = kOvercommitPenalty * (committed -. stock).
// Constraint 1 (idle stock):  stock <= committed or demand == 0,
//     cost(s,1) = kHoldingCost * min(stock -. committed, demand).
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>

#include "core/model.hpp"
#include "core/monus.hpp"

namespace apps::inventory {

using Units = std::int64_t;

struct Update {
  enum class Kind : std::uint8_t {
    kNoop = 0,
    kOrder,    ///< demand += n
    kCancel,   ///< demand -= min(n, demand)
    kRestock,  ///< stock += n
    kCommit,   ///< committed += n; demand -= min(n, demand)
    kRelease,  ///< committed -= min(n, committed); demand += released
  };
  Kind kind = Kind::kNoop;
  Units n = 0;

  friend auto operator<=>(const Update&, const Update&) = default;
  std::string to_string() const;
};

struct Request {
  enum class Kind : std::uint8_t {
    kOrder,
    kCancel,
    kRestock,
    kFulfill,
    kRelease,
  };
  Kind kind = Kind::kOrder;
  Units n = 0;  ///< order/cancel/restock size; fulfill batch cap

  static Request order(Units n) { return {Kind::kOrder, n}; }
  static Request cancel(Units n) { return {Kind::kCancel, n}; }
  static Request restock(Units n) { return {Kind::kRestock, n}; }
  /// Promise at most `batch_cap` units per FULFILL decision.
  static Request fulfill(Units batch_cap) { return {Kind::kFulfill, batch_cap}; }
  static Request release() { return {Kind::kRelease, 0}; }

  friend auto operator<=>(const Request&, const Request&) = default;
  std::string to_string() const;
};

struct State {
  Units stock = 0;
  Units committed = 0;
  Units demand = 0;

  friend bool operator==(const State&, const State&) = default;
  std::string to_string() const;
};

template <int OvercommitPenalty = 50, int HoldingCost = 5>
struct InventoryT {
  using State = inventory::State;
  using Update = inventory::Update;
  using Request = inventory::Request;

  static constexpr int kNumConstraints = 2;
  static constexpr int kOvercommit = 0;
  static constexpr int kIdleStock = 1;
  static constexpr int kOvercommitPenalty = OvercommitPenalty;
  static constexpr int kHoldingCost = HoldingCost;

  static std::string name() { return "inventory"; }
  static State initial() { return State{}; }

  static bool well_formed(const State& s) {
    return s.stock >= 0 && s.committed >= 0 && s.demand >= 0;
  }

  static void apply(const Update& u, State& s) {
    switch (u.kind) {
      case Update::Kind::kNoop:
        break;
      case Update::Kind::kOrder:
        s.demand += u.n;
        break;
      case Update::Kind::kCancel:
        s.demand -= std::min(u.n, s.demand);
        break;
      case Update::Kind::kRestock:
        s.stock += u.n;
        break;
      case Update::Kind::kCommit: {
        s.committed += u.n;
        s.demand -= std::min(u.n, s.demand);
        break;
      }
      case Update::Kind::kRelease: {
        const Units released = std::min(u.n, s.committed);
        s.committed -= released;
        s.demand += released;
        break;
      }
    }
  }

  static core::DecisionResult<Update> decide(const Request& req,
                                             const State& s) {
    core::DecisionResult<Update> out;
    switch (req.kind) {
      case Request::Kind::kOrder:
        out.update = Update{Update::Kind::kOrder, req.n};
        break;
      case Request::Kind::kCancel:
        out.update = Update{Update::Kind::kCancel, req.n};
        break;
      case Request::Kind::kRestock:
        out.update = Update{Update::Kind::kRestock, req.n};
        break;
      case Request::Kind::kFulfill: {
        const Units free = core::monus<Units>(s.stock, s.committed);
        const Units m = std::min({free, s.demand, req.n});
        if (m > 0) {
          out.update = Update{Update::Kind::kCommit, m};
          out.external_actions.push_back({"promise-shipment",
                                          std::to_string(m) + " units"});
        }
        break;
      }
      case Request::Kind::kRelease: {
        const Units excess = core::monus<Units>(s.committed, s.stock);
        if (excess > 0) {
          out.update = Update{Update::Kind::kRelease, excess};
          out.external_actions.push_back(
              {"apologize", std::to_string(excess) + " units"});
        }
        break;
      }
    }
    return out;
  }

  static double cost(const State& s, int constraint) {
    switch (constraint) {
      case kOvercommit:
        return static_cast<double>(OvercommitPenalty) *
               static_cast<double>(core::monus<Units>(s.committed, s.stock));
      case kIdleStock:
        return static_cast<double>(HoldingCost) *
               static_cast<double>(
                   std::min(core::monus<Units>(s.stock, s.committed),
                            s.demand));
      default:
        return 0.0;
    }
  }

  /// Same classification shape as the airline's (section 5.2 analogue):
  /// FULFILL is the only transaction unsafe for overcommit, and it is safe
  /// for idle-stock; the bound scales with the FULFILL batch cap.
  struct Theory {
    static bool safe_for(const Request& r, int constraint) {
      if (constraint == kOvercommit)
        return r.kind != Request::Kind::kFulfill;
      return r.kind == Request::Kind::kFulfill;
    }
    static bool preserves_cost(const Request& r, int constraint) {
      if (constraint == kOvercommit) {
        // FULFILL only commits what it believes is free, so the believed
        // post-state has zero overcommit cost; everything else is safe.
        return true;
      }
      return r.kind == Request::Kind::kFulfill ||
             r.kind == Request::Kind::kRelease;
    }
    /// k missed transactions, each moving at most `max_chunk` units, cost
    /// at most penalty * max_chunk * k.
    static double f_bound_units(int constraint, Units max_chunk,
                                std::size_t k) {
      const double unit = constraint == kOvercommit
                              ? static_cast<double>(OvercommitPenalty)
                              : static_cast<double>(HoldingCost);
      return unit * static_cast<double>(max_chunk) * static_cast<double>(k);
    }
    static Request compensator(int constraint) {
      return constraint == kOvercommit ? Request::release()
                                       : Request::fulfill(1'000'000);
    }
  };
};

using Inventory = InventoryT<50, 5>;

}  // namespace apps::inventory
