#include "apps/banking/banking.hpp"

#include <sstream>

namespace apps::banking {

std::string account_name(AccountId a) { return "A" + std::to_string(a); }

std::string Update::to_string() const {
  switch (kind) {
    case Kind::kNoop:
      return "noop";
    case Kind::kDeposit:
      return "deposit(" + account_name(a) + "," + std::to_string(amount) + ")";
    case Kind::kWithdraw:
      return "withdraw(" + account_name(a) + "," + std::to_string(amount) +
             ")";
    case Kind::kTransfer:
      return "transfer(" + account_name(a) + "->" + account_name(b) + "," +
             std::to_string(amount) + ")";
    case Kind::kCover:
      return "cover(" + account_name(a) + ")";
  }
  return "?";
}

std::string Request::to_string() const {
  switch (kind) {
    case Kind::kDeposit:
      return "DEPOSIT(" + account_name(a) + "," + std::to_string(amount) + ")";
    case Kind::kWithdraw:
      return "WITHDRAW(" + account_name(a) + "," + std::to_string(amount) +
             ")";
    case Kind::kTransfer:
      return "TRANSFER(" + account_name(a) + "->" + account_name(b) + "," +
             std::to_string(amount) + ")";
    case Kind::kAudit:
      return "AUDIT";
    case Kind::kCover:
      return "COVER";
  }
  return "?";
}

std::string State::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < balances.size(); ++i) {
    if (i) os << ",";
    os << account_name(static_cast<AccountId>(i)) << "=" << balances[i];
  }
  os << "}";
  return os.str();
}

}  // namespace apps::banking
