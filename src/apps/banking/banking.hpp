// A high-availability banking application in the SHARD framework.
//
// The paper repeatedly reaches for banking ("it might be desirable for
// audits to see the effects of all the preceding deposit, withdrawal and
// transfer transactions", section 3.2; "additional resource allocation
// examples should be examined, such as examples from banking", section 6).
// This module is that example, built to the same decision/update discipline:
//
//  * DEPOSIT(a, amt)   — decision TRUE; update adds amt.
//  * WITHDRAW(a, amt)  — decision checks the *observed* balance; if
//    sufficient it dispenses cash (external action — irreversible!) and
//    issues an unconditional debit update. Run against a staler/other state
//    the debit can drive the account negative: the integrity violation.
//  * TRANSFER(a→b,amt) — decision checks observed source balance; update
//    moves the funds unconditionally.
//  * AUDIT             — pure decision: reports the observed bank total as
//    an external action; no-op update. The natural "run with a complete
//    prefix" candidate of section 3.2.
//  * COVER(a)          — compensating transaction: the decision picks an
//    overdrawn account, notifies it, and the update forgives the overdraft
//    (clamps the balance at zero), reducing the constraint cost.
//
// Integrity constraint 0: no overdrafts. cost(s,0) = total overdraft across
// accounts (in currency units). As in the airline app, the cost increase a
// single transaction can cause is bounded — here by the maximum withdrawal
// amount the workload permits, which is what Theory::f_bound encodes.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/monus.hpp"

namespace apps::banking {

using AccountId = std::uint32_t;
using Amount = std::int64_t;  ///< currency minor units (cents)

std::string account_name(AccountId a);

struct Update {
  enum class Kind : std::uint8_t {
    kNoop = 0,
    kDeposit,   ///< balance[a] += amount
    kWithdraw,  ///< balance[a] -= amount (unconditional: cash already left)
    kTransfer,  ///< balance[a] -= amount; balance[b] += amount
    kCover,     ///< balance[a] = max(balance[a], 0)
  };
  Kind kind = Kind::kNoop;
  AccountId a = 0;
  AccountId b = 0;
  Amount amount = 0;

  friend auto operator<=>(const Update&, const Update&) = default;
  std::string to_string() const;
};

struct Request {
  enum class Kind : std::uint8_t {
    kDeposit,
    kWithdraw,
    kTransfer,
    kAudit,
    kCover,
  };
  Kind kind = Kind::kDeposit;
  AccountId a = 0;
  AccountId b = 0;
  Amount amount = 0;

  static Request deposit(AccountId a, Amount amt) {
    return {Kind::kDeposit, a, 0, amt};
  }
  static Request withdraw(AccountId a, Amount amt) {
    return {Kind::kWithdraw, a, 0, amt};
  }
  static Request transfer(AccountId from, AccountId to, Amount amt) {
    return {Kind::kTransfer, from, to, amt};
  }
  static Request audit() { return {Kind::kAudit, 0, 0, 0}; }
  static Request cover() { return {Kind::kCover, 0, 0, 0}; }

  friend auto operator<=>(const Request&, const Request&) = default;
  std::string to_string() const;
};

/// Balances for a fixed universe of accounts (ids 0..n-1).
struct State {
  std::vector<Amount> balances;

  friend bool operator==(const State&, const State&) = default;

  Amount balance(AccountId a) const {
    return a < balances.size() ? balances[a] : 0;
  }
  Amount& slot(AccountId a) {
    if (a >= balances.size()) balances.resize(a + 1, 0);
    return balances[a];
  }
  Amount total() const {
    Amount t = 0;
    for (Amount b : balances) t += b;
    return t;
  }
  /// Sum of overdraft magnitudes.
  Amount total_overdraft() const {
    Amount t = 0;
    for (Amount b : balances) t += core::monus<Amount>(0, b);
    return t;
  }
  std::string to_string() const;
};

struct Banking {
  using State = banking::State;
  using Update = banking::Update;
  using Request = banking::Request;

  static constexpr int kNumConstraints = 1;
  static constexpr int kNoOverdraft = 0;

  static std::string name() { return "banking"; }
  static State initial() { return State{}; }

  /// All balance vectors are well-formed; the model has no fundamental
  /// consistency condition beyond the representation itself.
  static bool well_formed(const State&) { return true; }

  static void apply(const Update& u, State& s) {
    switch (u.kind) {
      case Update::Kind::kNoop:
        break;
      case Update::Kind::kDeposit:
        s.slot(u.a) += u.amount;
        break;
      case Update::Kind::kWithdraw:
        s.slot(u.a) -= u.amount;
        break;
      case Update::Kind::kTransfer:
        s.slot(u.a) -= u.amount;
        s.slot(u.b) += u.amount;
        break;
      case Update::Kind::kCover: {
        Amount& bal = s.slot(u.a);
        bal = std::max<Amount>(bal, 0);
        break;
      }
    }
  }

  static core::DecisionResult<Update> decide(const Request& req,
                                             const State& s) {
    core::DecisionResult<Update> out;
    switch (req.kind) {
      case Request::Kind::kDeposit:
        out.update = Update{Update::Kind::kDeposit, req.a, 0, req.amount};
        break;
      case Request::Kind::kWithdraw:
        if (s.balance(req.a) >= req.amount) {
          out.update = Update{Update::Kind::kWithdraw, req.a, 0, req.amount};
          out.external_actions.push_back(
              {"dispense-cash",
               account_name(req.a) + ":" + std::to_string(req.amount)});
        } else {
          out.external_actions.push_back({"decline", account_name(req.a)});
        }
        break;
      case Request::Kind::kTransfer:
        if (s.balance(req.a) >= req.amount) {
          out.update =
              Update{Update::Kind::kTransfer, req.a, req.b, req.amount};
          out.external_actions.push_back(
              {"transfer-confirm", account_name(req.a) + "->" +
                                       account_name(req.b) + ":" +
                                       std::to_string(req.amount)});
        } else {
          out.external_actions.push_back({"decline", account_name(req.a)});
        }
        break;
      case Request::Kind::kAudit:
        out.external_actions.push_back(
            {"audit-report", std::to_string(s.total())});
        break;
      case Request::Kind::kCover: {
        // Pick the most overdrawn account (lowest id on ties).
        AccountId worst = 0;
        Amount worst_bal = 0;
        for (AccountId a = 0; a < s.balances.size(); ++a) {
          if (s.balances[a] < worst_bal) {
            worst_bal = s.balances[a];
            worst = a;
          }
        }
        if (worst_bal < 0) {
          out.update = Update{Update::Kind::kCover, worst, 0, 0};
          out.external_actions.push_back(
              {"overdraft-forgiven", account_name(worst)});
        }
        break;
      }
    }
    return out;
  }

  static double cost(const State& s, int constraint) {
    if (constraint == kNoOverdraft)
      return static_cast<double>(s.total_overdraft());
    return 0.0;
  }

  /// Workload-level classification (paper section 4.1 shape). `f_bound` is
  /// parameterized by the max withdrawal/transfer amount the workload uses.
  struct Theory {
    static bool safe_for(const Request& r, int /*constraint*/) {
      // Only debits can create overdrafts.
      return r.kind != Request::Kind::kWithdraw &&
             r.kind != Request::Kind::kTransfer;
    }
    static bool preserves_cost(const Request& r, int /*constraint*/) {
      // A debit's decision only checks ITS account; another account may
      // already be overdrawn, so the strong section 4.1 property fails for
      // debits against the bank-wide cost. (Contrast with the airline,
      // where the single flight makes the property global.)
      return safe_for(r, 0);
    }
    /// With every debit bounded by `max_amount`, k missed transactions can
    /// add at most k * max_amount of overdraft.
    static double f_bound_amount(Amount max_amount, std::size_t k) {
      return static_cast<double>(max_amount) * static_cast<double>(k);
    }
    static Request compensator(int /*constraint*/) { return Request::cover(); }
  };
};

}  // namespace apps::banking
