// Partially replicated banking: one group per account.
//
// The exercise of the paper's section 6 extension on the application whose
// transactions genuinely span groups: DEPOSIT/WITHDRAW/COVER touch one
// account-group; TRANSFER touches two, so the router must find a node
// hosting BOTH — with small replication factors, some transfers are
// unroutable (the availability price partial replication introduces, which
// bench/e13 measures).
#pragma once

#include <string>
#include <vector>

#include "apps/banking/banking.hpp"
#include "core/model.hpp"
#include "core/monus.hpp"
#include "shard/partial.hpp"

namespace apps::banking {

/// One account's replicated state.
struct AccountState {
  Amount balance = 0;
  friend bool operator==(const AccountState&, const AccountState&) = default;
};

/// Group-scoped update (the account is implied by the group it is merged
/// into).
struct ShardedUpdate {
  enum class Kind : std::uint8_t { kNoop = 0, kCredit, kDebit, kForgive };
  Kind kind = Kind::kNoop;
  Amount amount = 0;

  friend auto operator<=>(const ShardedUpdate&, const ShardedUpdate&) = default;
};

struct ShardedRequest {
  enum class Kind : std::uint8_t { kDeposit, kWithdraw, kTransfer, kCover };
  Kind kind = Kind::kDeposit;
  AccountId a = 0;
  AccountId b = 0;
  Amount amount = 0;

  static ShardedRequest deposit(AccountId a, Amount amt) {
    return {Kind::kDeposit, a, 0, amt};
  }
  static ShardedRequest withdraw(AccountId a, Amount amt) {
    return {Kind::kWithdraw, a, 0, amt};
  }
  static ShardedRequest transfer(AccountId from, AccountId to, Amount amt) {
    return {Kind::kTransfer, from, to, amt};
  }
  static ShardedRequest cover(AccountId a) { return {Kind::kCover, a, 0, 0}; }

  friend auto operator<=>(const ShardedRequest&,
                          const ShardedRequest&) = default;
};

/// PartialApplication: account a <-> group a.
struct ShardedBanking {
  using GroupState = AccountState;
  using Update = ShardedUpdate;
  using Request = ShardedRequest;

  static constexpr int kNumConstraints = 1;
  static constexpr int kNoOverdraft = 0;

  static std::string name() { return "sharded-banking"; }
  static GroupState group_initial() { return {}; }
  static bool group_well_formed(const GroupState&) { return true; }

  static void apply(const Update& u, GroupState& s) {
    switch (u.kind) {
      case Update::Kind::kNoop:
        break;
      case Update::Kind::kCredit:
        s.balance += u.amount;
        break;
      case Update::Kind::kDebit:
        s.balance -= u.amount;
        break;
      case Update::Kind::kForgive:
        s.balance = std::max<Amount>(s.balance, 0);
        break;
    }
  }

  static std::vector<shard::GroupId> groups_of(const Request& r) {
    switch (r.kind) {
      case Request::Kind::kTransfer:
        return {r.a, r.b};
      default:
        return {r.a};
    }
  }

  static shard::PartialDecision<ShardedBanking> decide(
      const Request& r, const shard::GroupView<ShardedBanking>& view) {
    shard::PartialDecision<ShardedBanking> out;
    switch (r.kind) {
      case Request::Kind::kDeposit:
        out.writes.push_back({r.a, {Update::Kind::kCredit, r.amount}});
        break;
      case Request::Kind::kWithdraw:
        if (view(r.a).balance >= r.amount) {
          out.writes.push_back({r.a, {Update::Kind::kDebit, r.amount}});
          out.external_actions.push_back(
              {"dispense-cash",
               account_name(r.a) + ":" + std::to_string(r.amount)});
        } else {
          out.external_actions.push_back({"decline", account_name(r.a)});
        }
        break;
      case Request::Kind::kTransfer:
        // The decision reads BOTH groups at the co-hosting node — exactly
        // the data-locality the paper's "judicious assignment" provides.
        if (view(r.a).balance >= r.amount) {
          out.writes.push_back({r.a, {Update::Kind::kDebit, r.amount}});
          out.writes.push_back({r.b, {Update::Kind::kCredit, r.amount}});
          out.external_actions.push_back(
              {"transfer-confirm", account_name(r.a) + "->" +
                                       account_name(r.b) + ":" +
                                       std::to_string(r.amount)});
        } else {
          out.external_actions.push_back({"decline", account_name(r.a)});
        }
        break;
      case Request::Kind::kCover:
        if (view(r.a).balance < 0) {
          out.writes.push_back({r.a, {Update::Kind::kForgive, 0}});
          out.external_actions.push_back(
              {"overdraft-forgiven", account_name(r.a)});
        }
        break;
    }
    return out;
  }

  static double cost(const GroupState& s, int constraint) {
    if (constraint == kNoOverdraft) {
      return static_cast<double>(core::monus<Amount>(0, s.balance));
    }
    return 0.0;
  }
};

}  // namespace apps::banking
