// The section 5.5 redesign: request timestamps stored in the database.
//
// "It is possible to redesign the application to respect the original
// request order ... It suffices to include request timestamps explicitly in
// the database. Each of the two lists would always be kept sorted according
// to timestamp order. Thus, when the request(P) becomes known to the agent,
// he would insert P ahead of Q on the waiting list. (More precisely, when
// the move-down(Q) is run from a state in which P is on the waiting list, Q
// is not placed at the head of the waiting list, but rather is inserted in
// timestamp order, after P.)"
//
// The request timestamp is supplied by the client with the REQUEST (in the
// harness: the submission's simulated real time as an integer tick), rides
// inside the request(P) update, and is stored with the person on both
// lists. Every insertion keeps both lists stamp-sorted, so relative request
// order is respected no matter how late an old request surfaces — the
// fairness anomaly of the section 5.5 example disappears (experiment E7b).
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/monus.hpp"

#include "apps/airline/airline.hpp"  // Person, person_name

namespace apps::airline {

/// A list entry carrying the person's original request timestamp.
/// Ordered by (stamp, person): both lists are kept sorted in this order.
struct TsEntry {
  Person person = 0;
  std::uint64_t stamp = 0;

  friend auto operator<=>(const TsEntry& a, const TsEntry& b) {
    if (auto c = a.stamp <=> b.stamp; c != 0) return c;
    return a.person <=> b.person;
  }
  friend bool operator==(const TsEntry&, const TsEntry&) = default;
};

struct TsState {
  std::vector<TsEntry> assigned;  ///< stamp-sorted ASSIGNED-LIST
  std::vector<TsEntry> waiting;   ///< stamp-sorted WAIT-LIST

  friend bool operator==(const TsState&, const TsState&) = default;

  const TsEntry* find_assigned(Person p) const;
  const TsEntry* find_waiting(Person p) const;
  bool is_known(Person p) const {
    return find_assigned(p) != nullptr || find_waiting(p) != nullptr;
  }
  std::int64_t al() const { return static_cast<std::int64_t>(assigned.size()); }
  std::int64_t wl() const { return static_cast<std::int64_t>(waiting.size()); }
  std::string to_string() const;
};

struct TsUpdate {
  using Kind = Update::Kind;
  Kind kind = Kind::kNoop;
  Person person = 0;
  std::uint64_t stamp = 0;  ///< request timestamp (kRequest only)

  friend auto operator<=>(const TsUpdate&, const TsUpdate&) = default;
};

struct TsRequest {
  using Kind = Request::Kind;
  Kind kind = Kind::kRequest;
  Person person = 0;
  std::uint64_t stamp = 0;  ///< client-supplied request timestamp

  static TsRequest request(Person p, std::uint64_t stamp) {
    return {Kind::kRequest, p, stamp};
  }
  static TsRequest cancel(Person p) { return {Kind::kCancel, p, 0}; }
  static TsRequest move_up() { return {Kind::kMoveUp, 0, 0}; }
  static TsRequest move_down() { return {Kind::kMoveDown, 0, 0}; }

  friend auto operator<=>(const TsRequest&, const TsRequest&) = default;
};

/// Stamp-sorted insertion; (stamp, person) breaks ties deterministically.
void insert_sorted(std::vector<TsEntry>& list, TsEntry e);

template <int Capacity = 100, int OverbookCost = 900, int UnderbookCost = 300>
struct TimestampedAirlineT {
  using State = TsState;
  using Update = TsUpdate;
  using Request = TsRequest;

  static constexpr int kCapacity = Capacity;
  static constexpr int kNumConstraints = 2;
  static constexpr int kOverbooking = 0;
  static constexpr int kUnderbooking = 1;

  static std::string name() {
    return "fly-by-night-ts(" + std::to_string(Capacity) + ")";
  }

  static State initial() { return State{}; }

  static bool well_formed(const State& s) {
    const auto dup_free_sorted = [](const std::vector<TsEntry>& v) {
      for (std::size_t i = 1; i < v.size(); ++i) {
        if (!(v[i - 1] < v[i])) return false;  // sorted, strictly
      }
      return true;
    };
    if (!dup_free_sorted(s.assigned) || !dup_free_sorted(s.waiting))
      return false;
    for (const TsEntry& e : s.assigned) {
      if (s.find_waiting(e.person) != nullptr) return false;
    }
    return true;
  }

  static void apply(const Update& u, State& s) {
    switch (u.kind) {
      case Update::Kind::kNoop:
        break;
      case Update::Kind::kRequest:
        if (!s.is_known(u.person))
          insert_sorted(s.waiting, TsEntry{u.person, u.stamp});
        break;
      case Update::Kind::kCancel:
        std::erase_if(s.waiting,
                      [&](const TsEntry& e) { return e.person == u.person; });
        std::erase_if(s.assigned,
                      [&](const TsEntry& e) { return e.person == u.person; });
        break;
      case Update::Kind::kMoveUp: {
        const TsEntry* e = s.find_waiting(u.person);
        if (e != nullptr) {
          TsEntry moved = *e;
          std::erase_if(s.waiting, [&](const TsEntry& x) {
            return x.person == u.person;
          });
          insert_sorted(s.assigned, moved);
        }
        break;
      }
      case Update::Kind::kMoveDown: {
        const TsEntry* e = s.find_assigned(u.person);
        if (e != nullptr) {
          TsEntry moved = *e;
          std::erase_if(s.assigned, [&](const TsEntry& x) {
            return x.person == u.person;
          });
          // The section 5.5 fix: timestamp order, not head-of-list.
          insert_sorted(s.waiting, moved);
        }
        break;
      }
    }
  }

  static core::DecisionResult<Update> decide(const Request& req,
                                             const State& s) {
    core::DecisionResult<Update> out;
    switch (req.kind) {
      case Request::Kind::kRequest:
        out.update = Update{Update::Kind::kRequest, req.person, req.stamp};
        break;
      case Request::Kind::kCancel:
        out.update = Update{Update::Kind::kCancel, req.person, 0};
        break;
      case Request::Kind::kMoveUp:
        if (s.al() < Capacity && s.wl() > 0) {
          const TsEntry& e = s.waiting.front();  // earliest request
          out.update = Update{Update::Kind::kMoveUp, e.person, e.stamp};
          out.external_actions.push_back(
              {"grant-seat", person_name(e.person)});
        }
        break;
      case Request::Kind::kMoveDown:
        if (s.al() > Capacity) {
          const TsEntry& e = s.assigned.back();  // latest request loses
          out.update = Update{Update::Kind::kMoveDown, e.person, e.stamp};
          out.external_actions.push_back(
              {"rescind-seat", person_name(e.person)});
        }
        break;
    }
    return out;
  }

  static double cost(const State& s, int constraint) {
    switch (constraint) {
      case kOverbooking:
        return static_cast<double>(OverbookCost) *
               static_cast<double>(core::monus<std::int64_t>(s.al(), Capacity));
      case kUnderbooking:
        return static_cast<double>(UnderbookCost) *
               static_cast<double>(
                   std::min(core::monus<std::int64_t>(Capacity, s.al()),
                            s.wl()));
      default:
        return 0.0;
    }
  }

  /// The section 4.1/5.2 classification carries over verbatim: the cost
  /// functions are identical and the decision parts differ only in WHICH
  /// person they select, not in WHEN they act — so safety, cost
  /// preservation, compensation, and the 900k/300k f-bounds hold by the
  /// same proofs (re-verified by property tests on this variant).
  struct Theory {
    static bool safe_for(const Request& r, int constraint) {
      if (constraint == kOverbooking) return r.kind != Request::Kind::kMoveUp;
      return r.kind == Request::Kind::kMoveUp;
    }
    static bool preserves_cost(const Request& r, int constraint) {
      if (constraint == kOverbooking) return true;
      return r.kind == Request::Kind::kMoveUp ||
             r.kind == Request::Kind::kMoveDown;
    }
    static double f_bound(int constraint, std::size_t k) {
      const double unit = constraint == kOverbooking
                              ? static_cast<double>(OverbookCost)
                              : static_cast<double>(UnderbookCost);
      return unit * static_cast<double>(k);
    }
    static Request compensator(int constraint) {
      return constraint == kOverbooking ? Request::move_down()
                                        : Request::move_up();
    }
  };

  /// Priority here is request-timestamp order within each list, with
  /// assigned outranking waiting — identical shape to the basic app, but
  /// now the list order always agrees with the request order.
  struct Priority {
    using Entity = Person;

    static std::vector<Entity> known(const State& s) {
      std::vector<Entity> out;
      for (const TsEntry& e : s.assigned) out.push_back(e.person);
      for (const TsEntry& e : s.waiting) out.push_back(e.person);
      return out;
    }

    static bool precedes(const State& s, Person p, Person q) {
      const TsEntry* pa = s.find_assigned(p);
      const TsEntry* qa = s.find_assigned(q);
      const TsEntry* pw = s.find_waiting(p);
      const TsEntry* qw = s.find_waiting(q);
      if (pa && qa) return *pa < *qa;
      if (pw && qw) return *pw < *qw;
      return pa != nullptr && qw != nullptr;
    }
  };
};

using TimestampedAirline = TimestampedAirlineT<100, 900, 300>;
using SmallTimestampedAirline = TimestampedAirlineT<5, 900, 300>;

}  // namespace apps::airline
