#include "apps/airline/airline.hpp"

#include <sstream>

namespace apps::airline {

std::string person_name(Person p) { return "P" + std::to_string(p); }

std::string Update::to_string() const {
  switch (kind) {
    case Kind::kNoop:
      return "noop";
    case Kind::kRequest:
      return "request(" + person_name(person) + ")";
    case Kind::kCancel:
      return "cancel(" + person_name(person) + ")";
    case Kind::kMoveUp:
      return "move-up(" + person_name(person) + ")";
    case Kind::kMoveDown:
      return "move-down(" + person_name(person) + ")";
  }
  return "?";
}

std::string Request::to_string() const {
  switch (kind) {
    case Kind::kRequest:
      return "REQUEST(" + person_name(person) + ")";
    case Kind::kCancel:
      return "CANCEL(" + person_name(person) + ")";
    case Kind::kMoveUp:
      return "MOVE-UP";
    case Kind::kMoveDown:
      return "MOVE-DOWN";
  }
  return "?";
}

std::string State::to_string() const {
  std::ostringstream os;
  os << "AL=[";
  for (std::size_t i = 0; i < assigned.size(); ++i) {
    if (i) os << ",";
    os << person_name(assigned[i]);
  }
  os << "] WL=[";
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    if (i) os << ",";
    os << person_name(waiting[i]);
  }
  os << "]";
  return os.str();
}

}  // namespace apps::airline
