// Witness machinery of paper section 5.3.
//
// "Let A be a sequence of updates (of the Fly-by-Night airline system) and P
// a person. An assignment witness for P in A is an ordered pair of updates
// (A, B) from A, satisfying: (a) A is a request(P) update, B is a move-up(P)
// update, and A precedes B; (b) there are no cancel(P) updates after A; (c)
// there are no move-down(P) updates after B."
//
// Witnesses characterize list membership purely syntactically (Lemma 14):
//   (a) P is known in the resulting state  iff  some request(P) is not
//       followed by a cancel(P);
//   (b) P is assigned  iff  an assignment witness for P exists;
//   (c) P is waiting   iff  a waiting witness for P exists.
//
// The refined cost bounds (Theorems 20/21) count, per transaction, the
// people whose witnesses the transaction's prefix subsequence fails to
// contain — a much sharper "k" than the raw number of missing transactions.
// Lemmas 15–19 (witness monotonicity between a sequence and a subsequence)
// are exercised as property tests over random update sequences.
//
// IMPORTANT HYPOTHESIS (implicit in the paper): Lemma 14's witness
// characterization requires at most one request(P) per cancel-window. With
// duplicate requests it fails — in [request(P), move-up(P), request(P)] the
// trailing request is a no-op (section 5.1 policy), P is assigned, yet the
// literal form-1 waiting-witness conditions hold for it. This is the same
// duplicate-request pathology that the section 5.4 counterexample exploits
// and that Theorem 23 excludes by hypothesis. Worse, the subsequence lemmas
// (16/19) need the hypothesis to hold for the SUBSEQUENCE too, and a
// subsequence that drops a cancel(P) merges two cancel-windows — so the
// safe hypothesis, and the one every example in the paper satisfies, is
// "at most one REQUEST(P) per person in the whole sequence". We implement
// the paper's literal definitions; callers of the refined bounds
// (Theorems 20/21) must ensure their workloads respect the hypothesis, as
// the paper's do (tests/test_witness.cpp documents the counterexamples).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "apps/airline/airline.hpp"

namespace apps::airline {

/// Indices (into the update sequence) of the witnessing pair.
struct AssignmentWitness {
  std::size_t request_index = 0;
  std::size_t move_up_index = 0;
};

/// A waiting witness is either a lone request (form 1, move_down_index
/// empty) or a request followed by a move-down (form 2).
struct WaitingWitness {
  std::size_t request_index = 0;
  std::optional<std::size_t> move_down_index;
};

/// Lemma 14(a): P is known in the state resulting from `seq` iff there is a
/// request(P) update not followed by a cancel(P).
bool known_in(const std::vector<Update>& seq, Person p);

/// Find an assignment witness for P in `seq`, if one exists (Lemma 14(b):
/// exists iff P ends up on the ASSIGNED-LIST).
std::optional<AssignmentWitness> find_assignment_witness(
    const std::vector<Update>& seq, Person p);

/// Find a waiting witness for P in `seq`, if one exists (Lemma 14(c):
/// exists iff P ends up on the WAIT-LIST).
std::optional<WaitingWitness> find_waiting_witness(
    const std::vector<Update>& seq, Person p);

/// Index of the last update of `kind` concerning person `p`, if any.
std::optional<std::size_t> last_index_of(const std::vector<Update>& seq,
                                         Update::Kind kind, Person p);

/// All persons mentioned anywhere in `seq`.
std::vector<Person> persons_mentioned(const std::vector<Update>& seq);

}  // namespace apps::airline
