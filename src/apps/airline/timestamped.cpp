#include "apps/airline/timestamped.hpp"

#include <sstream>

namespace apps::airline {

const TsEntry* TsState::find_assigned(Person p) const {
  for (const TsEntry& e : assigned) {
    if (e.person == p) return &e;
  }
  return nullptr;
}

const TsEntry* TsState::find_waiting(Person p) const {
  for (const TsEntry& e : waiting) {
    if (e.person == p) return &e;
  }
  return nullptr;
}

std::string TsState::to_string() const {
  std::ostringstream os;
  const auto render = [&os](const std::vector<TsEntry>& v) {
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) os << ",";
      os << person_name(v[i].person) << "@" << v[i].stamp;
    }
    os << "]";
  };
  os << "AL=";
  render(assigned);
  os << " WL=";
  render(waiting);
  return os.str();
}

void insert_sorted(std::vector<TsEntry>& list, TsEntry e) {
  const auto it = std::lower_bound(list.begin(), list.end(), e);
  list.insert(it, e);
}

}  // namespace apps::airline
