#include "apps/airline/witness.hpp"

#include <algorithm>

namespace apps::airline {
namespace {

/// -1 when there is no such index; otherwise the largest matching index.
std::ptrdiff_t last_of(const std::vector<Update>& seq, Update::Kind kind,
                       Person p) {
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(seq.size()) - 1; i >= 0;
       --i) {
    const auto& u = seq[static_cast<std::size_t>(i)];
    if (u.kind == kind && u.person == p) return i;
  }
  return -1;
}

/// Smallest index of a request(P) strictly greater than `lo` and strictly
/// less than `hi`; -1 if none.
std::ptrdiff_t first_request_between(const std::vector<Update>& seq, Person p,
                                     std::ptrdiff_t lo, std::ptrdiff_t hi) {
  for (std::ptrdiff_t i = lo + 1; i < hi; ++i) {
    const auto& u = seq[static_cast<std::size_t>(i)];
    if (u.kind == Update::Kind::kRequest && u.person == p) return i;
  }
  return -1;
}

}  // namespace

std::optional<std::size_t> last_index_of(const std::vector<Update>& seq,
                                         Update::Kind kind, Person p) {
  const std::ptrdiff_t i = last_of(seq, kind, p);
  if (i < 0) return std::nullopt;
  return static_cast<std::size_t>(i);
}

bool known_in(const std::vector<Update>& seq, Person p) {
  const std::ptrdiff_t last_request = last_of(seq, Update::Kind::kRequest, p);
  if (last_request < 0) return false;
  const std::ptrdiff_t last_cancel = last_of(seq, Update::Kind::kCancel, p);
  // A request not followed by any cancel exists iff the LAST request is
  // after the last cancel.
  return last_request > last_cancel;
}

std::optional<AssignmentWitness> find_assignment_witness(
    const std::vector<Update>& seq, Person p) {
  // Condition (c) forces the move-up to come after every move-down(P);
  // condition (b) forces the request to come after every cancel(P). The
  // canonical candidate is therefore: B = last move-up(P), which must exceed
  // the last move-down(P); A = the earliest request(P) strictly between the
  // last cancel(P) and B.
  const std::ptrdiff_t b = last_of(seq, Update::Kind::kMoveUp, p);
  if (b < 0) return std::nullopt;
  if (last_of(seq, Update::Kind::kMoveDown, p) > b) return std::nullopt;
  const std::ptrdiff_t last_cancel = last_of(seq, Update::Kind::kCancel, p);
  const std::ptrdiff_t a = first_request_between(seq, p, last_cancel, b);
  if (a < 0) return std::nullopt;
  // (b) also requires no cancel AFTER a at all, incl. after b: since
  // last_cancel < a by construction, that holds.
  return AssignmentWitness{static_cast<std::size_t>(a),
                           static_cast<std::size_t>(b)};
}

std::optional<WaitingWitness> find_waiting_witness(
    const std::vector<Update>& seq, Person p) {
  const std::ptrdiff_t last_cancel = last_of(seq, Update::Kind::kCancel, p);
  const std::ptrdiff_t last_move_up = last_of(seq, Update::Kind::kMoveUp, p);
  const std::ptrdiff_t last_request = last_of(seq, Update::Kind::kRequest, p);

  // Form 1: a request(P) with no cancel(P) or move-up(P) after it. The last
  // request is the only candidate that can clear both.
  if (last_request >= 0 && last_request > last_cancel &&
      last_request > last_move_up) {
    return WaitingWitness{static_cast<std::size_t>(last_request),
                          std::nullopt};
  }

  // Form 2: (request(P), move-down(P)) with no cancel(P) after the request
  // and no move-up(P) after the move-down. B = last move-down(P), which must
  // exceed the last move-up(P); A = earliest request between last cancel and
  // B.
  const std::ptrdiff_t b = last_of(seq, Update::Kind::kMoveDown, p);
  if (b < 0 || b < last_move_up) return std::nullopt;
  const std::ptrdiff_t a = first_request_between(seq, p, last_cancel, b);
  if (a < 0) return std::nullopt;
  return WaitingWitness{static_cast<std::size_t>(a),
                        static_cast<std::size_t>(b)};
}

std::vector<Person> persons_mentioned(const std::vector<Update>& seq) {
  std::vector<Person> out;
  for (const Update& u : seq) {
    if (u.kind == Update::Kind::kNoop) continue;
    out.push_back(u.person);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace apps::airline
