// The Fly-by-Night airline reservation system (paper section 2, examples).
//
// "Fly-by-Night Airlines is a little-known airline company which has exactly
// one scheduled flight, Flight 1 ... will take its lucky 100 passengers from
// Boston to an idyllic resort in the Caribbean."
//
// A database state consists of ASSIGNED-LIST (people notified they have
// seats) and WAIT-LIST (people who requested seats but have none); the
// well-formedness condition is that the two lists are disjoint. There are
// four transactions — REQUEST(P), CANCEL(P), MOVE-UP, MOVE-DOWN — each split
// into a decision part and an update exactly as in the paper, and two
// integrity constraints:
//
//   constraint 0 (overbooking):  AL <= Capacity,
//       cost(s,0) = OverCost * (AL(s) -. Capacity)          [paper: $900]
//   constraint 1 (underbooking): AL >= Capacity or WL == 0,
//       cost(s,1) = UnderCost * min(Capacity -. AL(s), WL(s)) [paper: $300]
//
// One deliberate interpretation note: the OCR of the MOVE-DOWN program reads
// "add P to end of WAIT-LIST", but the paper's own section 4.2 claim that
// *all* transactions preserve priority, and the section 5.5 example ("our
// definitions say that Q gets put at the head of the WAIT-LIST"), both
// require the moved-down person to be inserted at the FRONT of the wait
// list (they outrank every waiter: they were assigned, waiters were not).
// We implement front-insertion; tests/test_priority.cpp demonstrates that
// end-insertion would falsify the paper's preserves-priority example.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/monus.hpp"

namespace apps::airline {

/// Passengers are dense integer ids; person_name(p) renders the paper's
/// "P1", "P2", ... labels.
using Person = std::uint32_t;

std::string person_name(Person p);

/// What a transaction update does, as broadcast between nodes. A
/// default-constructed update is a no-op (required by core::Application).
struct Update {
  enum class Kind : std::uint8_t {
    kNoop = 0,
    kRequest,   ///< request(P):  P -> end of WAIT-LIST if on neither list
    kCancel,    ///< cancel(P):   remove P from whichever list holds it
    kMoveUp,    ///< move-up(P):  P from WAIT-LIST -> end of ASSIGNED-LIST
    kMoveDown,  ///< move-down(P):P from ASSIGNED-LIST -> front of WAIT-LIST
  };
  Kind kind = Kind::kNoop;
  Person person = 0;

  friend auto operator<=>(const Update&, const Update&) = default;
  std::string to_string() const;
};

/// What clients submit. MOVE-UP / MOVE-DOWN carry no person — their decision
/// parts *select* the person from the observed state (paper section 2.3).
struct Request {
  enum class Kind : std::uint8_t { kRequest, kCancel, kMoveUp, kMoveDown };
  Kind kind = Kind::kRequest;
  Person person = 0;  ///< Meaningful for kRequest / kCancel only.

  static Request request(Person p) { return {Kind::kRequest, p}; }
  static Request cancel(Person p) { return {Kind::kCancel, p}; }
  static Request move_up() { return {Kind::kMoveUp, 0}; }
  static Request move_down() { return {Kind::kMoveDown, 0}; }

  friend auto operator<=>(const Request&, const Request&) = default;
  std::string to_string() const;
};

/// Database state: the two ordered lists.
struct State {
  std::vector<Person> assigned;  ///< ASSIGNED-LIST, in notification order.
  std::vector<Person> waiting;   ///< WAIT-LIST, in priority order.

  friend bool operator==(const State&, const State&) = default;

  bool is_assigned(Person p) const {
    return std::find(assigned.begin(), assigned.end(), p) != assigned.end();
  }
  bool is_waiting(Person p) const {
    return std::find(waiting.begin(), waiting.end(), p) != waiting.end();
  }
  /// "A person is known in a given state s if he is either in
  /// ASSIGNED-LIST(s) or WAIT-LIST(s)."
  bool is_known(Person p) const { return is_assigned(p) || is_waiting(p); }

  /// AL(s) and WL(s) shorthands of section 2.1.
  std::int64_t al() const { return static_cast<std::int64_t>(assigned.size()); }
  std::int64_t wl() const { return static_cast<std::int64_t>(waiting.size()); }

  std::string to_string() const;
};

/// The application, parameterized so experiments can shrink the flight.
/// `Airline` below is the paper's instance (100 seats, $900 / $300).
template <int Capacity = 100, int OverbookCost = 900, int UnderbookCost = 300>
struct BasicAirline {
  using State = airline::State;
  using Update = airline::Update;
  using Request = airline::Request;

  static constexpr int kCapacity = Capacity;
  static constexpr int kOverbookCost = OverbookCost;
  static constexpr int kUnderbookCost = UnderbookCost;
  static constexpr int kNumConstraints = 2;
  static constexpr int kOverbooking = 0;
  static constexpr int kUnderbooking = 1;

  static std::string name() {
    return "fly-by-night(" + std::to_string(Capacity) + ")";
  }

  /// "The initial state has both lists empty."
  static State initial() { return State{}; }

  /// "ASSIGNED-LIST and WAIT-LIST must contain disjoint sets of people."
  /// (We additionally require each list to be duplicate-free, which every
  /// update preserves.)
  static bool well_formed(const State& s) {
    for (Person p : s.assigned) {
      if (std::count(s.assigned.begin(), s.assigned.end(), p) != 1) return false;
      if (s.is_waiting(p)) return false;
    }
    for (Person p : s.waiting) {
      if (std::count(s.waiting.begin(), s.waiting.end(), p) != 1) return false;
    }
    return true;
  }

  /// The update semantics of the four transaction programs (section 2.3).
  static void apply(const Update& u, State& s) {
    switch (u.kind) {
      case Update::Kind::kNoop:
        break;
      case Update::Kind::kRequest:
        // "adding P to the WAIT-LIST provided that P is not already on
        // either the WAIT-LIST or the ASSIGNED-LIST ... In case P is on
        // either list, A does nothing." (Policy of section 5.1: a duplicate
        // request does not change P's original priority.)
        if (!s.is_known(u.person)) s.waiting.push_back(u.person);
        break;
      case Update::Kind::kCancel:
        // "removes P from any list on which it happens to appear."
        std::erase(s.waiting, u.person);
        std::erase(s.assigned, u.person);
        break;
      case Update::Kind::kMoveUp:
        // "moves P from the waiting list to the end of the assigned list,
        // provided that P is actually on the waiting list in s'. Otherwise
        // (i.e. if P is already on the assigned list, or P is on neither
        // list), no change occurs." (Section 5.1 policy: a duplicate
        // move-up does not alter P's previous priority.)
        if (s.is_waiting(u.person)) {
          std::erase(s.waiting, u.person);
          s.assigned.push_back(u.person);
        }
        break;
      case Update::Kind::kMoveDown:
        // Symmetric; front-insertion into the wait list (see file header).
        if (s.is_assigned(u.person)) {
          std::erase(s.assigned, u.person);
          s.waiting.insert(s.waiting.begin(), u.person);
        }
        break;
    }
  }

  /// The decision parts (section 2.3). Decisions observe the state, may
  /// trigger external actions, and select the update — but never write.
  static core::DecisionResult<Update> decide(const Request& req,
                                             const State& s) {
    core::DecisionResult<Update> out;
    switch (req.kind) {
      case Request::Kind::kRequest:
        // "Decision: TRUE" — always the same update, no external actions.
        out.update = Update{Update::Kind::kRequest, req.person};
        break;
      case Request::Kind::kCancel:
        out.update = Update{Update::Kind::kCancel, req.person};
        break;
      case Request::Kind::kMoveUp:
        // "Decision: AL < 100 and WL > 0 and P is the first person on
        //  WAIT-LIST. External event: inform P that P is now assigned."
        if (s.al() < Capacity && s.wl() > 0) {
          const Person p = s.waiting.front();
          out.update = Update{Update::Kind::kMoveUp, p};
          out.external_actions.push_back({"grant-seat", person_name(p)});
        }
        break;
      case Request::Kind::kMoveDown:
        // "Decision: AL > 100 and P is the last person on ASSIGNED-LIST.
        //  External event: inform P that P is now waitlisted."
        if (s.al() > Capacity) {
          const Person p = s.assigned.back();
          out.update = Update{Update::Kind::kMoveDown, p};
          out.external_actions.push_back({"rescind-seat", person_name(p)});
        }
        break;
    }
    return out;
  }

  /// Integrity-constraint costs (section 2.2).
  static double cost(const State& s, int constraint) {
    switch (constraint) {
      case kOverbooking:
        return static_cast<double>(OverbookCost) *
               static_cast<double>(core::monus<std::int64_t>(s.al(), Capacity));
      case kUnderbooking:
        return static_cast<double>(UnderbookCost) *
               static_cast<double>(
                   std::min(core::monus<std::int64_t>(Capacity, s.al()),
                            s.wl()));
      default:
        return 0.0;
    }
  }

  /// Paper-proved classification of the transactions (sections 4.1, 5.2),
  /// consumed by the generic theorem checkers in analysis/. Property tests
  /// independently re-verify these claims on random states.
  struct Theory {
    /// Section 4.1 examples: "the other transactions are all safe for the
    /// overbooking constraint. However, the MOVE-UP transaction is unsafe
    /// ... the MOVE-UP transaction is safe for the underbooking constraint,
    /// but the other three transactions are all unsafe."
    static bool safe_for(const Request& r, int constraint) {
      if (constraint == kOverbooking) return r.kind != Request::Kind::kMoveUp;
      return r.kind == Request::Kind::kMoveUp;
    }

    /// Section 4.1: "all transactions preserve the cost of the overbooking
    /// constraint ... The MOVE-UP transaction ... and the MOVE-DOWN
    /// transaction preserve the cost of the underbooking constraint";
    /// REQUEST and CANCEL do not preserve underbooking.
    static bool preserves_cost(const Request& r, int constraint) {
      if (constraint == kOverbooking) return true;
      return r.kind == Request::Kind::kMoveUp ||
             r.kind == Request::Kind::kMoveDown;
    }

    /// Section 4.1: "900k bounds the cost increase for the overbooking
    /// constraint, while 300k bounds the cost increase for the
    /// underbooking constraint."
    static double f_bound(int constraint, std::size_t k) {
      const double unit = constraint == kOverbooking
                              ? static_cast<double>(OverbookCost)
                              : static_cast<double>(UnderbookCost);
      return unit * static_cast<double>(k);
    }

    /// Section 4.1: "the MOVE-UP transaction compensates for the
    /// underbooking constraint and the MOVE-DOWN transaction compensates
    /// for the overbooking constraint."
    static Request compensator(int constraint) {
      return constraint == kOverbooking ? Request::move_down()
                                        : Request::move_up();
    }
  };

  /// Fairness model (section 4.2): the competing entities are people; the
  /// known people in s are those on either list; priority P < Q iff P
  /// precedes Q on the WAIT-LIST, or P precedes Q on the ASSIGNED-LIST, or
  /// P is assigned and Q is waiting.
  struct Priority {
    using Entity = Person;

    static std::vector<Entity> known(const State& s) {
      std::vector<Entity> out = s.assigned;
      out.insert(out.end(), s.waiting.begin(), s.waiting.end());
      return out;
    }

    static bool precedes(const State& s, Person p, Person q) {
      const auto pos = [](const std::vector<Person>& v, Person x) {
        return std::find(v.begin(), v.end(), x) - v.begin();
      };
      const bool p_assigned = s.is_assigned(p);
      const bool q_assigned = s.is_assigned(q);
      if (p_assigned && q_assigned) {
        return pos(s.assigned, p) < pos(s.assigned, q);
      }
      if (!p_assigned && !q_assigned && s.is_waiting(p) && s.is_waiting(q)) {
        return pos(s.waiting, p) < pos(s.waiting, q);
      }
      return p_assigned && s.is_waiting(q);
    }
  };
};

/// The paper's instance: 100 seats, $900 per overbooked passenger, $300 per
/// avoidable empty seat.
using Airline = BasicAirline<100, 900, 300>;

/// A small instance used by randomized property tests and fast benches so
/// interesting (over/under-booked) states are reached quickly.
using SmallAirline = BasicAirline<5, 900, 300>;

}  // namespace apps::airline
