#include "obs/epoch.hpp"

#include <algorithm>
#include <sstream>

namespace obs {

namespace {

bool is_boundary(EventType t) {
  return t == EventType::kPartitionOpen || t == EventType::kPartitionHeal ||
         t == EventType::kCrash || t == EventType::kRestart;
}

void insert_sorted(std::vector<std::uint64_t>& v, std::uint64_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

void erase_sorted(std::vector<std::uint64_t>& v, std::uint64_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

void insert_sorted_node(std::vector<sim::NodeId>& v, sim::NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

void erase_sorted_node(std::vector<sim::NodeId>& v, sim::NodeId x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

}  // namespace

std::string Epoch::label() const {
  if (quiet()) return "quiet";
  std::ostringstream os;
  if (!active_cuts.empty()) {
    os << "cut{";
    for (std::size_t i = 0; i < active_cuts.size(); ++i) {
      if (i != 0) os << ',';
      os << active_cuts[i];
    }
    os << '}';
  }
  if (!down_nodes.empty()) {
    if (!active_cuts.empty()) os << '+';
    os << "down{";
    for (std::size_t i = 0; i < down_nodes.size(); ++i) {
      if (i != 0) os << ',';
      os << down_nodes[i];
    }
    os << '}';
  }
  return os.str();
}

EpochIndex EpochIndex::build(const std::vector<Event>& events) {
  EpochIndex idx;
  Epoch cur;  // the quiet epoch starting at the beginning of the stream
  cur.start = events.empty() ? 0.0 : events.front().time;
  cur.begin_event = 0;
  bool boundary_open = false;  // regime changed, next boundary may coalesce
  double boundary_time = 0.0;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (!is_boundary(e.type)) continue;
    ++idx.transitions_;
    if (boundary_open && e.time == boundary_time) {
      // Same-instant transition: fold into the already-opened epoch (rack
      // power loss, rolling-restart seams) instead of a zero-length one.
      ++idx.coalesced_;
    } else {
      // Close the running epoch at this instant and open the next one.
      cur.end = e.time;
      cur.end_event = i;
      idx.epochs_.push_back(cur);
      cur.begin_event = i;
      cur.start = e.time;
      boundary_open = true;
      boundary_time = e.time;
    }
    // Apply the transition to the running regime (shared by both paths:
    // a coalesced transition still changes the regime of the new epoch).
    switch (e.type) {
      case EventType::kPartitionOpen:
        insert_sorted(cur.active_cuts, e.a);
        break;
      case EventType::kPartitionHeal:
        erase_sorted(cur.active_cuts, e.a);
        break;
      case EventType::kCrash:
        insert_sorted_node(cur.down_nodes, e.node);
        break;
      case EventType::kRestart:
        erase_sorted_node(cur.down_nodes, e.node);
        break;
      default:
        break;
    }
  }
  // Final epoch runs to the end of the stream.
  cur.end = events.empty() ? cur.start : events.back().time;
  cur.end_event = events.size();
  idx.epochs_.push_back(cur);
  return idx;
}

std::size_t EpochIndex::epoch_of_event(std::size_t i) const {
  // Epochs partition [0, n) by begin_event; find the last with begin <= i.
  std::size_t lo = 0, hi = epochs_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (epochs_[mid].begin_event <= i) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t EpochIndex::epoch_at(double t) const {
  std::size_t lo = 0, hi = epochs_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (epochs_[mid].start <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace obs
