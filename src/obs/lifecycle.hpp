// Per-update lifecycle metrics derived from the event trace.
//
// A sink that follows every update from its originate event to its merge
// at each replica and derives what no end-of-run counter can express:
//
//   * replication latency — simulated time from originate to the moment the
//     LAST replica merges the update (the paper's "eventually receives
//     information about every transaction", measured);
//   * undo churn — how many already-merged updates each arrival displaced
//     (mid-insert cost attributed to the update that caused it);
//   * divergence — a live gauge: max over ordered node pairs (i, j) of the
//     number of updates node i has merged that node j has not. Zero exactly
//     when the cluster is mutually consistent in the knowledge sense.
//
// Merges are counted as monotone knowledge: a re-merge after an amnesia
// restart does not double-count (the node had "known" the update before the
// crash; its stable outbox / peers restore that knowledge).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace obs {

class LifecycleTracker : public Sink {
 public:
  explicit LifecycleTracker(std::size_t cluster_size)
      : cluster_size_(cluster_size), merged_(cluster_size) {}

  void on_event(const Event& e) override;

  /// Updates seen originating (== transactions recorded by any node).
  std::uint64_t originated() const { return originate_time_.size(); }
  /// Updates merged by every replica.
  std::uint64_t fully_replicated() const { return fully_replicated_; }
  /// Originate -> last-replica-merge latencies.
  const Histogram& replication_latency() const { return latency_; }
  /// Entries displaced per merged update (tail appends contribute 0).
  const Histogram& undo_churn() const { return churn_; }
  std::uint64_t total_undo_churn() const { return total_churn_; }

  /// Max over ordered node pairs (i, j) of |merged_i \ merged_j|, right
  /// now. O(nodes^2 * updates/64); computed on demand.
  std::uint64_t divergence() const;

  /// Fold everything into the registry under "lifecycle.*".
  void export_to(MetricsRegistry& reg) const;

 private:
  using TsKey = std::pair<std::uint64_t, sim::NodeId>;

  /// Dense index for an update's timestamp (assigned on first sighting).
  std::size_t index_of(const TsKey& key);
  void note_merge(const Event& e);

  std::size_t cluster_size_;
  std::map<TsKey, std::size_t> index_;       ///< ts -> dense update index.
  std::vector<double> originate_at_;         ///< by update index (-1 unseen).
  std::map<TsKey, double> originate_time_;   ///< also keyed by ts for stats.
  std::vector<std::uint64_t> merge_count_;   ///< distinct nodes merged, by idx.
  std::vector<std::vector<std::uint64_t>> merged_;  ///< per node: bitset by idx.
  std::uint64_t fully_replicated_ = 0;
  std::uint64_t total_churn_ = 0;
  Histogram latency_ = Histogram::latency();
  Histogram churn_ = Histogram::counts();
};

}  // namespace obs
