// Per-update lifecycle metrics derived from the event trace.
//
// A sink that follows every update from its originate event to its merge
// at each replica and derives what no end-of-run counter can express:
//
//   * replication latency — simulated time from originate to the moment the
//     LAST replica merges the update (the paper's "eventually receives
//     information about every transaction", measured);
//   * undo churn — how many already-merged updates each arrival displaced
//     (mid-insert cost attributed to the update that caused it);
//   * divergence — a live gauge: max over ordered node pairs (i, j) of the
//     number of updates node i has merged that node j has not. Zero exactly
//     when the cluster is mutually consistent in the knowledge sense.
//
// Merges are counted as monotone knowledge: a re-merge after an amnesia
// restart does not double-count (the node had "known" the update before the
// crash; its stable outbox / peers restore that knowledge).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace obs {

/// One update's replication history, replica by replica: when it
/// originated, how wide the flood fan-out was, and — per node — when the
/// broadcast first delivered it, when the log merged it, and how many
/// already-merged entries that merge displaced. Times are absolute
/// simulated time; negative means "not (yet) observed".
struct ProvenanceTimeline {
  std::uint64_t ts_logical = 0;
  sim::NodeId ts_node = 0;  ///< Also the originating node.
  double originate_at = -1.0;
  std::uint64_t fanout = 0;  ///< Datagrams sent by the origin's flood.

  struct Cell {
    double deliver = -1.0;  ///< First broadcast delivery at this node.
    double merge = -1.0;    ///< First merge into this node's log.
    std::uint64_t displaced = 0;  ///< Entries displaced by that merge.
  };
  std::vector<Cell> per_node;  ///< Indexed by node id.

  /// Human-readable table, one line per node, latencies relative to the
  /// originate time. What the checker dump prints as provenance.
  std::string render() const;
};

class LifecycleTracker : public Sink {
 public:
  explicit LifecycleTracker(std::size_t cluster_size)
      : cluster_size_(cluster_size),
        merged_(cluster_size),
        delivered_(cluster_size) {}

  void on_event(const Event& e) override;

  /// Updates seen originating (== transactions recorded by any node).
  std::uint64_t originated() const { return originate_time_.size(); }
  /// Updates merged by every replica.
  std::uint64_t fully_replicated() const { return fully_replicated_; }
  /// Originate -> last-replica-merge latencies.
  const Histogram& replication_latency() const { return latency_; }
  /// Entries displaced per merged update (tail appends contribute 0).
  const Histogram& undo_churn() const { return churn_; }
  std::uint64_t total_undo_churn() const { return total_churn_; }

  /// Max over ordered node pairs (i, j) of |merged_i \ merged_j|, right
  /// now. O(nodes^2 * updates/64); computed on demand.
  std::uint64_t divergence() const;

  /// Replication-path latency breakdowns (also exported as "causal.*"):
  /// originate -> first delivery at each replica (origin's local delivery
  /// contributes 0), originate -> first REMOTE delivery, originate -> last
  /// replica's delivery, and originate -> merge for out-of-order
  /// (mid-insert) merges — the tail the paper's reordering machinery pays.
  const Histogram& deliver_latency() const { return deliver_latency_; }
  const Histogram& first_deliver_latency() const { return first_deliver_; }
  const Histogram& last_deliver_latency() const { return last_deliver_; }
  const Histogram& mid_insert_latency() const { return mid_insert_latency_; }
  /// Datagrams per flood fan-out burst (broadcast.send's peer count).
  const Histogram& fanout_degree() const { return fanout_degree_; }

  /// Reconstruct the provenance timeline of one update. Returns false if
  /// the stream never mentioned it.
  bool timeline(std::uint64_t ts_logical, sim::NodeId ts_node,
                ProvenanceTimeline& out) const;

  /// Fold everything into the registry under "lifecycle.*" / "causal.*".
  void export_to(MetricsRegistry& reg) const;

 private:
  using TsKey = std::pair<std::uint64_t, sim::NodeId>;

  /// Dense index for an update's timestamp (assigned on first sighting).
  std::size_t index_of(const TsKey& key);
  void note_deliver(const Event& e);
  void note_merge(const Event& e);

  std::size_t cluster_size_;
  std::map<TsKey, std::size_t> index_;       ///< ts -> dense update index.
  /// (origin, origin_seq) -> dense index: broadcast.send/deliver events
  /// carry the sequence pair, not the timestamp, so this is the join key
  /// the delivery path uses.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> seq_index_;
  std::vector<double> originate_at_;         ///< by update index (-1 unseen).
  std::map<TsKey, double> originate_time_;   ///< also keyed by ts for stats.
  std::vector<std::uint64_t> merge_count_;   ///< distinct nodes merged, by idx.
  std::vector<std::uint64_t> deliver_count_; ///< distinct nodes delivered.
  std::vector<std::uint64_t> fanout_;        ///< flood datagrams, by idx.
  std::vector<char> remote_seen_;            ///< first remote deliver done.
  std::vector<std::vector<std::uint64_t>> merged_;  ///< per node: bitset by idx.
  std::vector<std::vector<std::uint64_t>> delivered_;  ///< same, deliveries.
  /// Per-(update, node) timeline cells, flat at idx * cluster_size + node.
  std::vector<ProvenanceTimeline::Cell> cells_;
  std::uint64_t fully_replicated_ = 0;
  std::uint64_t total_churn_ = 0;
  Histogram latency_ = Histogram::latency();
  Histogram churn_ = Histogram::counts();
  Histogram deliver_latency_ = Histogram::latency();
  Histogram first_deliver_ = Histogram::latency();
  Histogram last_deliver_ = Histogram::latency();
  Histogram mid_insert_latency_ = Histogram::latency();
  Histogram fanout_degree_ = Histogram::counts();
};

}  // namespace obs
