// Chrome/Perfetto trace_event JSON export.
//
// Any run with tracing enabled can be opened in ui.perfetto.dev (or
// chrome://tracing): one thread track per node plus a "control" track for
// cluster-scope events (scheduler dispatch, partition cuts). Most events
// render as instants; crash→restart windows render as duration slices so a
// node's downtime is visible as a solid block on its track; message fates
// with a live message id render as minimal slices carrying flow events, so
// every send→deliver pair draws as an arrow between node tracks (flow id =
// the network's unique message id, the same key the causal graph joins on).
//
// Times are exported in microseconds (trace_event's unit), i.e. simulated
// seconds * 1e6.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/event.hpp"
#include "obs/tracer.hpp"

namespace obs {

/// Write `events` (record order) as one complete trace_event JSON document.
void write_perfetto(const std::vector<Event>& events, std::ostream& os);

/// Convenience: export a trace source's retained events (merged across
/// shards when sharded).
std::string perfetto_json(const TraceSource& tracer);

/// A streaming sink producing the same document incrementally — the "JSON
/// sink" mode of the overhead bench: formatting cost is paid per event at
/// record time, nothing is buffered beyond the ostream. finish() closes the
/// document (also called by the destructor).
class PerfettoSink : public Sink {
 public:
  explicit PerfettoSink(std::ostream& os);
  ~PerfettoSink() override;

  void on_event(const Event& e) override;

  /// Close the JSON document; further events are ignored. Idempotent.
  void finish();

 private:
  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
};

}  // namespace obs
