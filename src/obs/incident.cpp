#include "obs/incident.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "obs/causal.hpp"

namespace obs {

namespace {

std::int64_t to_us(double seconds) {
  return std::llround(seconds * 1e6);
}

/// Shortest decimal that round-trips the double — same convention as the
/// flame/tracer exporters, so bundle bytes are exact.
void put_time(std::ostream& os, double t) {
  std::array<char, 32> buf;
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), t);
  os << std::string_view(buf.data(), static_cast<std::size_t>(end - buf.data()));
}

/// Minimal JSON string escaping. Messages and labels are ASCII by
/// construction; this keeps the bundle well-formed even if one ever is not.
void put_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf;
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          os << buf.data();
        } else {
          os << c;
        }
    }
  }
}

/// One event as its canonical serialize() line, trailing newline stripped.
std::string event_line(const Event& e) {
  std::string line = serialize({e});
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

void put_event_array(std::ostream& os, const std::vector<Event>& events) {
  os << '[';
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ',';
    os << '"';
    put_escaped(os, event_line(events[i]));
    os << '"';
  }
  os << ']';
}

void put_indented(std::ostream& os, const std::vector<Event>& events,
                  const char* indent) {
  for (const Event& e : events) {
    os << indent << event_line(e) << '\n';
  }
}

bool registry_empty(const MetricsRegistry& reg) {
  return reg.counters().empty() && reg.gauges().empty() &&
         reg.histograms().empty();
}

bool forensic_name(const std::string& name) {
  return name.rfind("checker.", 0) == 0 || name.rfind("epoch.", 0) == 0;
}

}  // namespace

IncidentReport IncidentReport::build(std::string title,
                                     const std::vector<Event>& events,
                                     const std::vector<IncidentSeed>& seeds,
                                     const std::vector<PinnedWindow>& pinned,
                                     const MetricsRegistry* metrics,
                                     std::size_t window_context) {
  IncidentReport report;
  report.title_ = std::move(title);
  report.epochs_ = EpochIndex::build(events);
  const CausalGraph graph = CausalGraph::build(events);
  const FlameProfile flame = FlameProfile::build(events, graph, report.epochs_);

  if (metrics != nullptr) {
    for (const auto& [name, v] : metrics->counters()) {
      if (forensic_name(name)) report.metrics_.set_counter(name, v);
    }
    for (const auto& [name, v] : metrics->gauges()) {
      if (forensic_name(name)) report.metrics_.set_gauge(name, v);
    }
    for (const auto& [name, h] : metrics->histograms()) {
      if (forensic_name(name)) {
        report.metrics_.histogram(name, Histogram(h.bounds())).merge_from(h);
      }
    }
  }

  report.incidents_.reserve(seeds.size());
  for (const IncidentSeed& seed : seeds) {
    Incident inc;
    inc.seed = seed;

    const std::vector<std::size_t> chain =
        graph.update_chain(seed.ts_logical, seed.ts_node);
    inc.in_stream = !chain.empty();
    std::size_t originate_idx = static_cast<std::size_t>(-1);
    for (const std::size_t i : chain) {
      if (events[i].type == EventType::kBroadcastOriginate) {
        originate_idx = i;
        break;
      }
    }
    // Attribution by ADMISSION: the epoch of the originate event. A chain
    // whose originate fell off the ring attributes to its earliest
    // retained event — still the best available lower bound on admission.
    const std::size_t anchor =
        originate_idx != static_cast<std::size_t>(-1) ? originate_idx
        : inc.in_stream                               ? chain.front()
                                                      : 0;
    if (inc.in_stream) {
      inc.admitted_epoch = report.epochs_.epoch_of_event(anchor);
      inc.admitted_label = report.epochs_.epoch(inc.admitted_epoch).label();
      inc.chain.reserve(chain.size());
      for (const std::size_t i : chain) inc.chain.push_back(events[i]);
    }
    if (seed.detected_at >= 0.0) {
      inc.detected_epoch = report.epochs_.epoch_at(seed.detected_at);
    } else if (inc.in_stream) {
      inc.detected_epoch = report.epochs_.epoch_of_event(chain.back());
    }

    for (const UpdateTiming& t : flame.timings()) {
      if (t.key.first == seed.ts_logical && t.key.second == seed.ts_node) {
        inc.timing = t;
        inc.timing_known = true;
        break;
      }
    }

    // Contributing updates: every distinct update in the causal ancestry
    // of the admission, each attributed to the epoch that admitted IT.
    if (inc.in_stream) {
      std::map<CausalGraph::UpdateKey, bool> keys;
      for (const std::size_t i : graph.ancestry(anchor)) {
        const Event& e = events[i];
        if (e.ts_logical == 0 && e.ts_node == 0) continue;
        if (e.ts_logical == seed.ts_logical && e.ts_node == seed.ts_node) {
          continue;
        }
        keys.emplace(CausalGraph::UpdateKey{e.ts_logical, e.ts_node}, true);
      }
      for (const auto& [key, unused] : keys) {
        IncidentContributor c;
        c.ts_logical = key.first;
        c.ts_node = key.second;
        std::size_t c_anchor = static_cast<std::size_t>(-1);
        for (const std::size_t i : graph.update_chain(key.first, key.second)) {
          c_anchor = i;
          if (events[i].type == EventType::kBroadcastOriginate) break;
        }
        if (c_anchor == static_cast<std::size_t>(-1)) continue;
        c.admitted_epoch = report.epochs_.epoch_of_event(c_anchor);
        c.epoch_label = report.epochs_.epoch(c.admitted_epoch).label();
        c.originate_us = to_us(events[c_anchor].time);
        inc.contributors.push_back(std::move(c));
      }
    }

    for (const PinnedWindow& w : pinned) {
      if (w.ts_logical == seed.ts_logical && w.ts_node == seed.ts_node) {
        inc.window = w.events;
        break;
      }
    }
    if (inc.window.empty()) {
      inc.window = slice_window(events, seed.ts_logical, seed.ts_node,
                                window_context);
    }
    report.incidents_.push_back(std::move(inc));
  }
  return report;
}

std::string IncidentReport::to_json() const {
  std::ostringstream os;
  os << "{\"title\":\"";
  put_escaped(os, title_);
  os << "\",\"epochs\":[";
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    const Epoch& e = epochs_.epoch(i);
    if (i > 0) os << ',';
    os << "{\"index\":" << i << ",\"label\":\"";
    put_escaped(os, e.label());
    os << "\",\"start\":";
    put_time(os, e.start);
    os << ",\"end\":";
    put_time(os, e.end);
    os << '}';
  }
  os << "],\"incidents\":[";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& inc = incidents_[i];
    if (i > 0) os << ',';
    os << "{\"message\":\"";
    put_escaped(os, inc.seed.message);
    os << '"';
    if (inc.seed.tx_index != static_cast<std::size_t>(-1)) {
      os << ",\"tx_index\":" << inc.seed.tx_index;
    }
    os << ",\"ts\":\"" << inc.seed.ts_logical << ':' << inc.seed.ts_node
       << '"';
    if (inc.seed.detected_at >= 0.0) {
      os << ",\"detected_at_us\":" << to_us(inc.seed.detected_at);
    }
    os << ",\"in_stream\":" << (inc.in_stream ? "true" : "false");
    if (inc.in_stream) {
      os << ",\"admitted_epoch\":" << inc.admitted_epoch
         << ",\"admitted_label\":\"";
      put_escaped(os, inc.admitted_label);
      os << "\",\"detected_epoch\":" << inc.detected_epoch;
    }
    if (inc.timing_known) {
      os << ",\"critical\":{\"flood_wait_us\":" << inc.timing.crit_flood_us
         << ",\"deliver_us\":" << inc.timing.crit_deliver_us
         << ",\"merge_us\":" << inc.timing.crit_merge_us
         << ",\"total_us\":" << inc.timing.critical_us()
         << ",\"replicas\":" << inc.timing.replicas
         << ",\"complete\":" << (inc.timing.complete ? "true" : "false")
         << ",\"dominant\":\"";
      put_escaped(os, inc.timing.dominant);
      os << "\"}";
    }
    os << ",\"contributors\":[";
    for (std::size_t c = 0; c < inc.contributors.size(); ++c) {
      const IncidentContributor& ic = inc.contributors[c];
      if (c > 0) os << ',';
      os << "{\"ts\":\"" << ic.ts_logical << ':' << ic.ts_node
         << "\",\"epoch\":" << ic.admitted_epoch << ",\"label\":\"";
      put_escaped(os, ic.epoch_label);
      os << "\",\"originate_us\":" << ic.originate_us << '}';
    }
    os << "],\"chain\":";
    put_event_array(os, inc.chain);
    os << ",\"window\":";
    put_event_array(os, inc.window);
    os << '}';
  }
  os << "],\"metrics\":";
  if (registry_empty(metrics_)) {
    os << "null";
  } else {
    os << metrics_.to_json();
  }
  os << "}\n";
  return os.str();
}

std::string IncidentReport::folded() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& inc = incidents_[i];
    if (!inc.timing_known) continue;
    const std::string prefix = "incident" + std::to_string(i) + ":epoch" +
                               std::to_string(inc.admitted_epoch) + ":" +
                               inc.admitted_label + ";";
    if (inc.timing.crit_flood_us > 0) {
      os << prefix << "flood_wait " << inc.timing.crit_flood_us << '\n';
    }
    if (inc.timing.crit_deliver_us > 0) {
      os << prefix << "deliver " << inc.timing.crit_deliver_us << '\n';
    }
    if (inc.timing.crit_merge_us > 0) {
      os << prefix << "merge " << inc.timing.crit_merge_us << '\n';
    }
  }
  return os.str();
}

std::string IncidentReport::render() const {
  std::ostringstream os;
  os << "incident report: " << (title_.empty() ? "check" : title_) << " — "
     << incidents_.size() << " incident(s)\n";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& inc = incidents_[i];
    os << "-- incident " << i << ": " << inc.seed.message << "\n";
    os << "   update ts=" << inc.seed.ts_logical << ':' << inc.seed.ts_node;
    if (inc.seed.tx_index != static_cast<std::size_t>(-1)) {
      os << " tx=" << inc.seed.tx_index;
    }
    os << '\n';
    if (!inc.in_stream) {
      os << "   (update not in the supplied stream; no epoch attribution)\n";
    } else {
      const Epoch& adm = epochs_.epoch(inc.admitted_epoch);
      os << "   admitted in epoch " << inc.admitted_epoch << " ["
         << inc.admitted_label << "] spanning [";
      put_time(os, adm.start);
      os << ", ";
      put_time(os, adm.end);
      os << "); detected in epoch " << inc.detected_epoch << " ["
         << epochs_.epoch(inc.detected_epoch).label() << "]\n";
    }
    if (inc.timing_known) {
      os << "   critical path: flood_wait=" << inc.timing.crit_flood_us
         << "us deliver=" << inc.timing.crit_deliver_us
         << "us merge=" << inc.timing.crit_merge_us
         << "us dominant=" << inc.timing.dominant
         << " replicas=" << inc.timing.replicas << '\n';
    }
    if (!inc.contributors.empty()) {
      os << "   contributing updates (" << inc.contributors.size() << "):\n";
      for (const IncidentContributor& c : inc.contributors) {
        os << "     ts=" << c.ts_logical << ':' << c.ts_node
           << " admitted in epoch " << c.admitted_epoch << " ["
           << c.epoch_label << "]\n";
      }
    }
    if (!inc.chain.empty()) {
      os << "   causal chain (" << inc.chain.size() << " events):\n";
      put_indented(os, inc.chain, "     ");
    }
    if (inc.window.empty()) {
      os << "   (no trace window available)\n";
    } else {
      os << "   trace window (" << inc.window.size() << " events):\n";
      put_indented(os, inc.window, "     ");
    }
  }
  return os.str();
}

}  // namespace obs
