#include "obs/metrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace obs {

namespace {

/// Doubles are emitted with max_digits10 so parsing recovers the exact
/// value — which is what makes from_json(to_json(r)) == r hold bitwise.
void emit_double(std::ostringstream& os, double v) {
  os << std::setprecision(17) << v << std::setprecision(6);
}

/// Minimal cursor parser for the exact grammar to_json() emits: an object
/// of three objects; leaf values are numbers or arrays of numbers.
struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(std::string("MetricsRegistry::from_json: ") +
                                what + " at offset " + std::to_string(i));
  }
  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool peek_is(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  void expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) fail("unexpected character");
    ++i;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') out.push_back(s[i++]);
    expect('"');
    return out;
  }
  double number() {
    skip_ws();
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected number");
    i += static_cast<std::size_t>(end - begin);
    return v;
  }
  std::vector<double> number_array() {
    std::vector<double> out;
    expect('[');
    if (!peek_is(']')) {
      out.push_back(number());
      while (peek_is(',')) {
        expect(',');
        out.push_back(number());
      }
    }
    expect(']');
    return out;
  }
};

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

Histogram Histogram::latency() {
  std::vector<double> b;
  double edge = 0.001;
  for (int i = 0; i < 20; ++i, edge *= 2.0) b.push_back(edge);
  return Histogram(std::move(b));
}

Histogram Histogram::counts() {
  std::vector<double> b{0.0};
  for (double edge = 1.0; edge <= 1024.0; edge *= 2.0) b.push_back(edge);
  return Histogram(std::move(b));
}

void Histogram::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge_from: bounds mismatch");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double Histogram::quantile_bound(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) return bounds_[i];
  }
  return max();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Histogram& proto) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, proto).first;
  return it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] += value;
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, Histogram(h.bounds())).merge_from(h);
  }
}

MetricsRegistry MetricsRegistry::delta_from(const MetricsRegistry& earlier) const {
  MetricsRegistry out;
  for (const auto& [name, v] : counters_) {
    const auto it = earlier.counters_.find(name);
    const std::uint64_t before = it == earlier.counters_.end() ? 0 : it->second;
    out.counters_[name] = v >= before ? v - before : 0;
  }
  for (const auto& [name, v] : gauges_) out.gauges_[name] = v;
  for (const auto& [name, h] : histograms_) {
    const auto it = earlier.histograms_.find(name);
    if (it == earlier.histograms_.end() || it->second.bounds_ != h.bounds_) {
      out.histograms_.emplace(name, h);
      continue;
    }
    const Histogram& before = it->second;
    Histogram d(h.bounds_);
    d.count_ = h.count_ >= before.count_ ? h.count_ - before.count_ : 0;
    d.sum_ = h.sum_ - before.sum_;
    d.min_ = h.min_;
    d.max_ = h.max_;
    for (std::size_t i = 0; i < d.counts_.size(); ++i) {
      d.counts_[i] = h.counts_[i] >= before.counts_[i]
                         ? h.counts_[i] - before.counts_[i]
                         : 0;
    }
    out.histograms_.emplace(name, std::move(d));
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    emit_double(os, v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\n";
    os << "      \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ", ";
      emit_double(os, h.bounds()[i]);
    }
    os << "],\n      \"bucket_counts\": [";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i) os << ", ";
      os << h.bucket_counts()[i];
    }
    os << "],\n      \"count\": " << h.count();
    os << ",\n      \"sum\": ";
    emit_double(os, h.sum());
    os << ",\n      \"min\": ";
    emit_double(os, h.min());
    os << ",\n      \"max\": ";
    emit_double(os, h.max());
    os << "\n    }";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

MetricsRegistry MetricsRegistry::from_json(const std::string& json) {
  MetricsRegistry reg;
  Cursor c{json};
  c.expect('{');

  const auto parse_section = [&](const char* want) {
    const std::string key = c.string();
    if (key != want) c.fail("unexpected section");
    c.expect(':');
    c.expect('{');
  };

  parse_section("counters");
  while (!c.peek_is('}')) {
    const std::string name = c.string();
    c.expect(':');
    reg.counters_[name] = static_cast<std::uint64_t>(c.number());
    if (c.peek_is(',')) c.expect(',');
  }
  c.expect('}');
  c.expect(',');

  parse_section("gauges");
  while (!c.peek_is('}')) {
    const std::string name = c.string();
    c.expect(':');
    reg.gauges_[name] = c.number();
    if (c.peek_is(',')) c.expect(',');
  }
  c.expect('}');
  c.expect(',');

  parse_section("histograms");
  while (!c.peek_is('}')) {
    const std::string name = c.string();
    c.expect(':');
    c.expect('{');
    Histogram h;
    std::uint64_t count = 0;
    double sum = 0.0, mn = 0.0, mx = 0.0;
    std::vector<double> bounds;
    std::vector<double> bucket_counts;
    while (!c.peek_is('}')) {
      const std::string field = c.string();
      c.expect(':');
      if (field == "bounds") {
        bounds = c.number_array();
      } else if (field == "bucket_counts") {
        bucket_counts = c.number_array();
      } else if (field == "count") {
        count = static_cast<std::uint64_t>(c.number());
      } else if (field == "sum") {
        sum = c.number();
      } else if (field == "min") {
        mn = c.number();
      } else if (field == "max") {
        mx = c.number();
      } else {
        c.fail("unknown histogram field");
      }
      if (c.peek_is(',')) c.expect(',');
    }
    c.expect('}');
    if (bucket_counts.size() != bounds.size() + 1) {
      c.fail("bucket_counts/bounds size mismatch");
    }
    h.bounds_ = std::move(bounds);
    h.counts_.clear();
    for (double bc : bucket_counts) {
      h.counts_.push_back(static_cast<std::uint64_t>(bc));
    }
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = mn;
    h.max_ = mx;
    reg.histograms_.emplace(name, std::move(h));
    if (c.peek_is(',')) c.expect(',');
  }
  c.expect('}');
  c.expect('}');
  return reg;
}

}  // namespace obs
