// Violation forensics: epoch-attributed incident bundles.
//
// When a checker flags a violation, the point finding ("tx 12 broke the
// bound") is the start of the investigation, not the end of it. This layer
// assembles everything the trace plane knows about one violating update
// into a single self-describing bundle — the incident:
//
//   * the update's causal chain and ancestry (CausalGraph), so the path
//     the bad information took is in the report, not in a rerun;
//   * EPOCH ATTRIBUTION: the EpochIndex epoch that ADMITTED each
//     contributing update — attribution by the originate event, which is
//     deliberately distinct from the epoch of detection. A divergence
//     detected after a heal was usually admitted while the cut was open;
//     blaming the detection epoch would point the operator at the healthy
//     regime that merely surfaced the damage;
//   * the update's critical-path flame slice (FlameProfile stage
//     decomposition), folded-stack exportable so one violating update can
//     be dropped straight onto a flame graph next to the run's profile;
//   * the pinned trace window captured at detection time (or a live slice
//     of the supplied stream when nothing was pinned);
//   * the checker.*/epoch.* metrics subset, so the bundle carries the
//     checker's own health counters alongside the counter-example.
//
// Bundles are byte-deterministic: all weights are integer microseconds,
// epoch boundary times use shortest-round-trip formatting, and every
// container iterates in a deterministic order — same (seed, config), same
// bytes, which is what lets the chaos tiers pin incident output and lets
// CI upload a bundle as a stable artifact.
//
// Checker wiring lives one layer up (analysis/incident.hpp): post-hoc
// reports and the streaming checker both reduce to IncidentSeed rows, and
// this layer never needs to know which checker fired.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/epoch.hpp"
#include "obs/event.hpp"
#include "obs/flame.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace obs {

/// One violation, as a checker hands it over: the message, the offending
/// update's timestamp, and (when known) the global transaction index and
/// detection time. `detected_at < 0` means post-hoc — the oracle replayed
/// the finished run and there is no meaningful detection instant.
struct IncidentSeed {
  std::string message;
  std::size_t tx_index = static_cast<std::size_t>(-1);
  std::uint64_t ts_logical = 0;
  sim::NodeId ts_node = 0;
  double detected_at = -1.0;
};

/// A contributing update: one distinct update appearing in the violating
/// update's causal ancestry, with the epoch that admitted it.
struct IncidentContributor {
  std::uint64_t ts_logical = 0;
  sim::NodeId ts_node = 0;
  std::size_t admitted_epoch = 0;
  std::string epoch_label;
  std::int64_t originate_us = 0;  ///< Originate time, integer microseconds.
};

/// One assembled incident. Epoch indices refer to the EpochIndex built
/// over the stream the report was assembled from (IncidentReport::epochs).
struct Incident {
  IncidentSeed seed;
  /// The violating update appears in the supplied stream (its chain is
  /// nonempty). When false, the epoch/flame fields below are defaulted and
  /// only the seed and any pinned window carry information.
  bool in_stream = false;
  std::size_t admitted_epoch = 0;  ///< Epoch of the originate event.
  std::string admitted_label;
  std::size_t detected_epoch = 0;  ///< epoch_at(detected_at), else last
                                   ///< chain event's epoch.
  UpdateTiming timing{};           ///< Critical-path stage decomposition.
  bool timing_known = false;       ///< A FlameProfile row existed for it.
  std::vector<IncidentContributor> contributors;  ///< Ascending (ts, node).
  std::vector<Event> chain;   ///< The update's causal chain, record order.
  std::vector<Event> window;  ///< Pinned window, else live slice_around.
};

class IncidentReport {
 public:
  /// Assemble one bundle: build EpochIndex/CausalGraph/FlameProfile over
  /// `events` and attribute every seed. `pinned` supplies detection-time
  /// windows (matched by update timestamp; a live slice of `events` is the
  /// fallback). `metrics`, when non-null, contributes its checker.* and
  /// epoch.* entries to the bundle.
  static IncidentReport build(std::string title,
                              const std::vector<Event>& events,
                              const std::vector<IncidentSeed>& seeds,
                              const std::vector<PinnedWindow>& pinned = {},
                              const MetricsRegistry* metrics = nullptr,
                              std::size_t window_context = 6);

  bool empty() const { return incidents_.empty(); }
  const std::string& title() const { return title_; }
  const std::vector<Incident>& incidents() const { return incidents_; }
  /// The epoch segmentation every attribution refers to.
  const EpochIndex& epochs() const { return epochs_; }
  /// The filtered checker.*/epoch.* subset (empty registry when no metrics
  /// were supplied).
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The complete bundle as one JSON document. Byte-deterministic: integer
  /// microseconds, shortest-round-trip epoch times, map-ordered fields.
  std::string to_json() const;

  /// flamegraph.pl-compatible folded stacks of every incident's critical
  /// path: "incident<i>:epoch<e>:<label>;<stage> <weight_us>", zero-weight
  /// stages skipped. Concatenates cleanly with FlameProfile::folded() for
  /// a violating-vs-overall flame comparison.
  std::string folded() const;

  /// Human-readable rendering (what analysis::trace_dump prints): one
  /// block per incident — attribution line, critical path, contributors,
  /// causal chain, trace window.
  std::string render() const;

 private:
  std::string title_;
  std::vector<Incident> incidents_;
  EpochIndex epochs_;
  MetricsRegistry metrics_;
};

}  // namespace obs
