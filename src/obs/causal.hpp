// Causal structure over the typed event stream: happens-before edges,
// per-update replication chains, and the trace-diff bisector.
//
// The paper's theorems are claims about *executions* — which updates a
// decision saw and how information propagated — and the tracer (tracer.hpp)
// records the raw material: every message fate carries its message id,
// every broadcast deliver carries its (origin, origin_seq), every merge
// carries the update's globally-unique timestamp. This layer joins those
// keys into the happens-before relation the checkers and debugging tools
// reason with:
//
//   * program order    — consecutive events at the same node (the control
//                        track counts as its own node);
//   * message order    — net.send -> net.deliver (or the delivery-time
//                        crash drop) joined via the unique message id;
//   * replication      — broadcast.originate -> broadcast.deliver of the
//                        same update, joined via (origin, origin_seq);
//   * merge            — broadcast.deliver -> the merge.* event it
//                        triggered at that node, joined via the update's
//                        timestamp.
//
// Record order is a topological order of this relation (delivery never
// precedes its send in a deterministic discrete-event run), which is how
// acyclicity is certified: validate() checks that every edge points
// forward. A backward edge, an orphan deliver (no matching send/originate
// in the stream), an orphan merge (no deliver that explains it), or a
// delivered-but-never-merged update each indicate either a truncated
// stream (ring eviction) or a protocol bug — the property tests assert all
// four are absent on complete streams from chaos and crash-chaos runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace obs {

/// Why one event happens-before another (see file comment).
enum class EdgeKind : std::uint8_t {
  kProgram,    ///< Same-node record order.
  kMessage,    ///< net.send -> net.deliver / delivery-time drop, by id.
  kReplicate,  ///< broadcast.originate -> broadcast.deliver, by (origin,seq).
  kMerge,      ///< broadcast.deliver -> merge.* it triggered, by update ts.
};

std::string_view edge_kind_name(EdgeKind k);

/// One happens-before edge between event indices of the source stream.
struct CausalEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  EdgeKind kind = EdgeKind::kProgram;
};

/// Everything validate() can complain about. On a complete trace of a
/// correct run all vectors are empty; on a ring-truncated window, orphans
/// are expected (their causes fell off the ring) and the graph stays
/// usable for ancestry queries.
struct CausalIssues {
  /// Edges whose target does not come after their source in record order —
  /// would make the happens-before relation cyclic. Impossible by
  /// construction; checked anyway so the invariant is *verified*, not
  /// assumed.
  std::vector<std::size_t> backward_edges;  ///< indices into edges()
  /// net.deliver / delivery-time crash-drop events whose message id has no
  /// preceding net.send in the stream.
  std::vector<std::size_t> orphan_net_delivers;
  /// broadcast.deliver events whose (origin, origin_seq) was never seen
  /// originating.
  std::vector<std::size_t> orphan_broadcast_delivers;
  /// merge.tail_append / merge.mid_insert events with no broadcast.deliver
  /// of that update at that node still awaiting its merge.
  std::vector<std::size_t> orphan_merges;
  /// broadcast.deliver events never followed by the merge they should have
  /// triggered at their node.
  std::vector<std::size_t> unmerged_delivers;

  bool ok() const {
    return backward_edges.empty() && orphan_net_delivers.empty() &&
           orphan_broadcast_delivers.empty() && orphan_merges.empty() &&
           unmerged_delivers.empty();
  }
  /// One line per issue class with counts and first offenders.
  std::string summary() const;
};

/// The happens-before graph of one event stream. Built in one pass over
/// the events; the graph stores edges and per-update chains but does NOT
/// own the events — pass the same vector to the query helpers that render
/// them.
class CausalGraph {
 public:
  /// Key identifying an update: its globally-unique (logical, node)
  /// timestamp, exactly as events carry it.
  using UpdateKey = std::pair<std::uint64_t, sim::NodeId>;

  static CausalGraph build(const std::vector<Event>& events);

  std::size_t num_events() const { return num_events_; }
  const std::vector<CausalEdge>& edges() const { return edges_; }
  /// Indices of edges ending at event `i`.
  std::vector<std::size_t> parent_edges(std::size_t i) const;

  /// Structural invariants (see CausalIssues). Computed during build;
  /// cheap to call repeatedly.
  const CausalIssues& validate() const { return issues_; }

  /// Every event attributable to the update with timestamp (logical,
  /// node): originate, flood fan-out, per-replica delivers and duplicate
  /// receipts, merges, and the undo/redo work the merges caused. Ascending
  /// record order; empty if the stream never mentions the update.
  std::vector<std::size_t> update_chain(std::uint64_t ts_logical,
                                        sim::NodeId ts_node) const;

  /// Keys of every update the stream mentions, ascending (logical, node) —
  /// the enumeration the flame profiler folds over.
  std::vector<UpdateKey> update_keys() const;

  /// Causal ancestry of event `i`: the closest `limit` events from which
  /// `i` is reachable along happens-before edges (backward BFS, nearest
  /// first in discovery, returned in ascending record order, `i` itself
  /// excluded).
  std::vector<std::size_t> ancestry(std::size_t i,
                                    std::size_t limit = 32) const;

  /// The replication path of update (ts_logical, ts_node) to `node`: its
  /// originate event plus every chain event recorded at `node`, ascending.
  /// The "how did this update reach that replica" question the checker
  /// dump answers.
  std::vector<std::size_t> path_to_node(std::uint64_t ts_logical,
                                        sim::NodeId ts_node,
                                        sim::NodeId node) const;

 private:
  /// One update's replication chain: every attributable event index plus
  /// the node it was recorded at (so path_to_node needs no event access),
  /// and the originate index when the stream contains it.
  struct Chain {
    std::vector<std::size_t> events;
    std::vector<sim::NodeId> nodes;  ///< parallel to events
    std::size_t originate = static_cast<std::size_t>(-1);
  };

  std::size_t num_events_ = 0;
  std::vector<CausalEdge> edges_;
  CausalIssues issues_;
  std::map<UpdateKey, Chain> chains_;
  /// CSR over edges_ sorted by target: parent_start_[i]..parent_start_[i+1)
  /// indexes parent_edge_ids_.
  std::vector<std::size_t> parent_start_;
  std::vector<std::size_t> parent_edge_ids_;
};

/// First divergence between two event streams (same (seed, config) =>
/// byte-identical streams, so any divergence pinpoints injected
/// nondeterminism — the bisection primitive the chaos tiers need).
struct TraceDivergence {
  bool diverged = false;
  /// First index at which the streams differ. If one stream is a strict
  /// prefix of the other, this is the shorter stream's size.
  std::size_t index = 0;
  std::size_t a_size = 0;
  std::size_t b_size = 0;
};

TraceDivergence trace_diff(const std::vector<Event>& a,
                           const std::vector<Event>& b);

/// Human-readable report: the diverging pair of events plus the causal
/// ancestry of the diverging event in each stream (each stream gets its
/// own graph — after the divergence point their histories differ).
/// `ancestry_limit` bounds the ancestry printed per stream.
std::string divergence_report(const TraceDivergence& d,
                              const std::vector<Event>& a,
                              const std::vector<Event>& b,
                              std::size_t ancestry_limit = 12);

}  // namespace obs
