// Epoch-by-epoch regression triage between two flame profiles.
//
// flame_report answers "where does stabilization time go in THIS run";
// this layer answers the follow-up a perf regression poses: "which stage,
// in which failure regime, moved between baseline and candidate". Both
// profiles are folded to their leaf stages per epoch (the same leaves
// folded() emits), matched by epoch index and stage path, and every
// changed weight becomes one StageDelta — ranked by absolute shift so the
// top row of the triage table is the prime suspect.
//
// Inherits the flame layer's determinism contract: weights are integer
// microseconds, orderings are total (|delta| desc, then epoch, then stage
// name), so two identical-seed runs diff to an empty delta list and the
// tools/flame_diff self-check can assert emptiness byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/flame.hpp"

namespace obs {

/// One leaf stage whose weight differs between the two runs. Absent-in-one
/// stages appear with the missing side's weight/samples at zero.
struct StageDelta {
  std::size_t epoch = 0;    ///< Epoch index (matched positionally).
  std::string label_a;      ///< Epoch regime label in run A ("" if absent).
  std::string label_b;      ///< ... in run B.
  std::string stage;        ///< Leaf path, e.g. "deliver;last".
  std::int64_t us_a = 0;    ///< Stage weight in run A, microseconds.
  std::int64_t us_b = 0;    ///< ... in run B.
  std::int64_t delta_us = 0;  ///< us_b - us_a.
  std::uint64_t samples_a = 0;
  std::uint64_t samples_b = 0;
};

/// The comparison: changed stages ranked most-suspect-first plus structural
/// notes (epoch count or regime-label mismatches, which make positional
/// stage matching itself suspect).
class FlameDiff {
 public:
  /// Diff candidate `b` against baseline `a`.
  static FlameDiff build(const FlameProfile& a, const FlameProfile& b);

  /// Anything moved at all (stage weights, sample counts, epoch structure).
  bool differs() const { return !deltas_.empty() || !notes_.empty(); }

  std::size_t epochs_a() const { return epochs_a_; }
  std::size_t epochs_b() const { return epochs_b_; }
  /// Ranked by |delta_us| descending, ties by (epoch, stage).
  const std::vector<StageDelta>& deltas() const { return deltas_; }
  /// Structural mismatches, human-readable, deterministic order.
  const std::vector<std::string>& notes() const { return notes_; }

  /// Deterministic JSON document: counts, notes, ranked deltas (integers
  /// only). Identical profiles => identical bytes with "differs": false.
  std::string to_json() const;

  /// Markdown triage table of the top `top` deltas (all when 0), preceded
  /// by the structural notes. Empty diff renders a one-line all-clear.
  std::string markdown(std::size_t top = 10) const;

 private:
  std::size_t epochs_a_ = 0;
  std::size_t epochs_b_ = 0;
  std::vector<StageDelta> deltas_;
  std::vector<std::string> notes_;
};

}  // namespace obs
