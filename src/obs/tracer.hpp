// Structured event tracing: bounded in-memory ring + pluggable sinks.
//
// Components hold an `obs::Tracer*` that defaults to nullptr; the disabled
// path is a single pointer test (`if (tracer_) tracer_->record(...)`), so
// tracing costs one predictable branch when off. When on, every event goes
// into a bounded ring (the always-available recent-history window used by
// the checker's counter-example dumps) and to every attached sink (metrics
// derivation, streaming JSON export, determinism capture).
//
// Recording never changes protocol behavior: the tracer draws no random
// numbers, schedules no events, and the components emit the same calls in
// the same order for a given (seed, configuration) — which is what makes
// the trace stream itself a determinism witness.
//
// Two shapes implement the read-side surface (TraceSource): the classic
// single global Tracer, and ShardedTracer (sharded_tracer.hpp) — one ring
// per node, merged on demand. Components always record through a concrete
// Tracer* (their own shard, in sharded mode); only consumers that *read*
// the stream (trace dumps, exporters, pinning) go through the interface.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace obs {

/// Receives every recorded event, in record order. Sinks are non-owning
/// observers; they must not re-enter the tracer.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// A sink that keeps every event (unbounded) — determinism regressions and
/// post-run exports that need more history than the ring retains.
class VectorSink : public Sink {
 public:
  void on_event(const Event& e) override { events_.push_back(e); }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

/// Cluster-level tracing configuration (wired through Cluster::Config and
/// harness::Scenario).
struct TraceOptions {
  bool enabled = false;
  /// Ring capacity in events; oldest events are overwritten when full. In
  /// sharded mode this is the capacity of EACH per-node ring (a node's
  /// recent history is never evicted by another node's chatter).
  std::size_t ring_capacity = 8192;
  /// Per-node trace shards (obs::ShardedTracer) with a deterministic merge
  /// into the global event order — the shape a real multi-node runtime
  /// needs. false falls back to the single global ring; both produce the
  /// same stream for the same (seed, configuration), sink-for-sink and
  /// byte-for-byte (the determinism tiers pin this).
  bool sharded = true;
};

/// A ring slice captured at the moment a violation was detected, keyed by
/// the offending update's timestamp. The streaming checkers pin these so a
/// later trace_dump does not depend on the ring still holding the window —
/// without pinning, a busy run can wrap the ring between violation and
/// dump and the counter-example window silently comes back empty.
struct PinnedWindow {
  std::uint64_t ts_logical = 0;
  sim::NodeId ts_node = 0;
  std::vector<Event> events;  ///< slice_around() output at pin time.
};

/// Read-side view of a trace: what the dump/export/pinning consumers need,
/// independent of whether events live in one global ring or per-node
/// shards. record() is NOT part of the interface — recording stays a
/// non-virtual call on a concrete Tracer (the hot path).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Attach a sink (non-owning; must outlive the source's last record). In
  /// sharded mode the sink observes the global interleaved record order —
  /// shard dispatch is synchronous, so order is preserved.
  virtual void add_sink(Sink* sink) = 0;

  /// Events recorded over the source's lifetime (>= ring_size()).
  virtual std::uint64_t recorded() const = 0;
  /// Events that fell off the ring(s) (recorded - retained).
  virtual std::uint64_t evicted() const = 0;
  /// Per-type lifetime counts, indexed by EventType.
  virtual std::vector<std::uint64_t> type_counts() const = 0;
  /// Events currently retained.
  virtual std::size_t ring_size() const = 0;
  /// Retained events in global record order (merged across shards when
  /// sharded).
  virtual std::vector<Event> ring() const = 0;
  /// Retained events involving update (ts_logical, ts_node), each with up
  /// to `context` neighboring events either side — the counter-example
  /// window the checker dump prints.
  virtual std::vector<Event> slice_around(std::uint64_t ts_logical,
                                          sim::NodeId ts_node,
                                          std::size_t context = 6) const = 0;
};

/// slice_around's windowing over an explicit event vector (shared by both
/// TraceSource implementations): every event of update (ts_logical,
/// ts_node) plus `context` neighbors either side, overlapping windows
/// coalesced, record order kept, each event appearing once.
std::vector<Event> slice_window(const std::vector<Event>& events,
                                std::uint64_t ts_logical, sim::NodeId ts_node,
                                std::size_t context);

class Tracer : public TraceSource {
 public:
  explicit Tracer(std::size_t ring_capacity = 8192);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one event: ring + all sinks. O(1) amortized. Non-virtual — the
  /// per-event hot path never pays vtable dispatch.
  void record(const Event& e);

  /// Convenience overload building the Event in place.
  void record(EventType type, double time, sim::NodeId node,
              std::uint64_t ts_logical = 0, sim::NodeId ts_node = 0,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    record(Event{type, time, node, ts_logical, ts_node, a, b});
  }

  void add_sink(Sink* sink) override { sinks_.push_back(sink); }

  std::uint64_t recorded() const override { return recorded_; }
  std::uint64_t evicted() const override {
    return recorded_ - static_cast<std::uint64_t>(ring_size());
  }
  std::vector<std::uint64_t> type_counts() const override {
    return type_counts_;
  }

  std::size_t ring_capacity() const { return capacity_; }
  std::size_t ring_size() const override { return full_ ? capacity_ : head_; }

  /// Ring contents, oldest first.
  std::vector<Event> ring() const override;

  std::vector<Event> slice_around(std::uint64_t ts_logical,
                                  sim::NodeId ts_node,
                                  std::size_t context = 6) const override;

  /// Arm sharded operation: every record also stamps `sequencer->fetch_add`
  /// into a ring parallel to the event ring. The counter is shared by all
  /// shards of one ShardedTracer, so the stamp is the event's position in
  /// the GLOBAL record order — what the deterministic merge sorts by. The
  /// counter is atomic (relaxed) so the threaded runtime's per-node shards
  /// can stamp concurrently — one writer per shard, one shared monotone
  /// counter; under the single-threaded simulator the values are exactly
  /// the sequence a plain increment produced.
  void set_sequencer(std::atomic<std::uint64_t>* sequencer);

  /// Global-order stamps parallel to ring(); empty when no sequencer set.
  std::vector<std::uint64_t> ring_seqs() const;

 private:
  std::size_t capacity_;
  std::vector<Event> buf_;
  std::vector<std::uint64_t> seq_buf_;  ///< parallel to buf_ (sharded mode)
  std::size_t head_ = 0;  ///< Next write position.
  bool full_ = false;
  std::uint64_t recorded_ = 0;
  std::vector<std::uint64_t> type_counts_;
  std::vector<Sink*> sinks_;
  std::atomic<std::uint64_t>* sequencer_ = nullptr;
};

/// Canonical line-oriented serialization of an event stream: one event per
/// line, "<name> t=<time> n=<node> ts=<logical>:<node> a=<a> b=<b>". Times
/// use shortest-round-trip formatting (std::to_chars), so the encoding is
/// exact: deserialize(serialize(x)) == x field-for-field. The determinism
/// regression compares these bytes across same-seed runs, and the
/// trace-diff tool exchanges streams through this format.
std::string serialize(const std::vector<Event>& events);

/// Inverse of event_type_name. Returns true and sets `out` on a known
/// name; returns false (out untouched) otherwise.
bool event_type_from_name(std::string_view name, EventType& out);

/// Parse a serialize()d stream. Returns true and appends the parsed events
/// to `out` on success; returns false at the first malformed line (events
/// parsed before it remain appended, `error` — if non-null — gets the
/// 0-based line number).
bool deserialize(std::string_view text, std::vector<Event>& out,
                 std::size_t* error = nullptr);

}  // namespace obs
