// Structured event tracing: bounded in-memory ring + pluggable sinks.
//
// Components hold an `obs::Tracer*` that defaults to nullptr; the disabled
// path is a single pointer test (`if (tracer_) tracer_->record(...)`), so
// tracing costs one predictable branch when off. When on, every event goes
// into a bounded ring (the always-available recent-history window used by
// the checker's counter-example dumps) and to every attached sink (metrics
// derivation, streaming JSON export, determinism capture).
//
// Recording never changes protocol behavior: the tracer draws no random
// numbers, schedules no events, and the components emit the same calls in
// the same order for a given (seed, configuration) — which is what makes
// the trace stream itself a determinism witness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace obs {

/// Receives every recorded event, in record order. Sinks are non-owning
/// observers; they must not re-enter the tracer.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// A sink that keeps every event (unbounded) — determinism regressions and
/// post-run exports that need more history than the ring retains.
class VectorSink : public Sink {
 public:
  void on_event(const Event& e) override { events_.push_back(e); }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

/// Cluster-level tracing configuration (wired through Cluster::Config and
/// harness::Scenario).
struct TraceOptions {
  bool enabled = false;
  /// Ring capacity in events; oldest events are overwritten when full.
  std::size_t ring_capacity = 8192;
};

/// A ring slice captured at the moment a violation was detected, keyed by
/// the offending update's timestamp. The streaming checkers pin these so a
/// later trace_dump does not depend on the ring still holding the window —
/// without pinning, a busy run can wrap the ring between violation and
/// dump and the counter-example window silently comes back empty.
struct PinnedWindow {
  std::uint64_t ts_logical = 0;
  sim::NodeId ts_node = 0;
  std::vector<Event> events;  ///< slice_around() output at pin time.
};

class Tracer {
 public:
  explicit Tracer(std::size_t ring_capacity = 8192);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one event: ring + all sinks. O(1) amortized.
  void record(const Event& e);

  /// Convenience overload building the Event in place.
  void record(EventType type, double time, sim::NodeId node,
              std::uint64_t ts_logical = 0, sim::NodeId ts_node = 0,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    record(Event{type, time, node, ts_logical, ts_node, a, b});
  }

  /// Attach a sink (non-owning; must outlive the tracer's last record).
  void add_sink(Sink* sink) { sinks_.push_back(sink); }

  /// Events recorded over the tracer's lifetime (>= ring().size()).
  std::uint64_t recorded() const { return recorded_; }
  /// Events that fell off the ring (recorded - retained).
  std::uint64_t evicted() const {
    return recorded_ - static_cast<std::uint64_t>(ring_size());
  }
  /// Per-type lifetime counts, indexed by EventType.
  const std::vector<std::uint64_t>& type_counts() const { return type_counts_; }

  std::size_t ring_capacity() const { return capacity_; }
  std::size_t ring_size() const { return full_ ? capacity_ : head_; }

  /// Ring contents, oldest first.
  std::vector<Event> ring() const;

  /// Ring events involving update (ts_logical, ts_node), each with up to
  /// `context` neighboring events either side — the counter-example window
  /// the checker dump prints. Overlapping windows are coalesced; events stay
  /// in record order and appear once.
  std::vector<Event> slice_around(std::uint64_t ts_logical,
                                  sim::NodeId ts_node,
                                  std::size_t context = 6) const;

 private:
  std::size_t capacity_;
  std::vector<Event> buf_;
  std::size_t head_ = 0;  ///< Next write position.
  bool full_ = false;
  std::uint64_t recorded_ = 0;
  std::vector<std::uint64_t> type_counts_;
  std::vector<Sink*> sinks_;
};

/// Canonical line-oriented serialization of an event stream: one event per
/// line, "<name> t=<time> n=<node> ts=<logical>:<node> a=<a> b=<b>". Times
/// use shortest-round-trip formatting (std::to_chars), so the encoding is
/// exact: deserialize(serialize(x)) == x field-for-field. The determinism
/// regression compares these bytes across same-seed runs, and the
/// trace-diff tool exchanges streams through this format.
std::string serialize(const std::vector<Event>& events);

/// Inverse of event_type_name. Returns true and sets `out` on a known
/// name; returns false (out untouched) otherwise.
bool event_type_from_name(std::string_view name, EventType& out);

/// Parse a serialize()d stream. Returns true and appends the parsed events
/// to `out` on success; returns false at the first malformed line (events
/// parsed before it remain appended, `error` — if non-null — gets the
/// 0-based line number).
bool deserialize(std::string_view text, std::vector<Event>& out,
                 std::size_t* error = nullptr);

}  // namespace obs
