#include "obs/causal.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "obs/tracer.hpp"

namespace obs {

namespace {

/// Pair hash for the (origin, seq) / (node, update) join maps.
struct PairHash {
  std::size_t operator()(
      const std::pair<std::uint64_t, std::uint64_t>& p) const {
    return std::hash<std::uint64_t>{}(p.first * 0x9E3779B97F4A7C15ull ^
                                      p.second);
  }
};

}  // namespace

std::string_view edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kProgram:   return "program";
    case EdgeKind::kMessage:   return "message";
    case EdgeKind::kReplicate: return "replicate";
    case EdgeKind::kMerge:     return "merge";
  }
  return "unknown";
}

std::string CausalIssues::summary() const {
  const auto line = [](std::ostringstream& os, const char* what,
                       const std::vector<std::size_t>& v) {
    if (v.empty()) return;
    os << what << ": " << v.size() << " (first at ";
    for (std::size_t i = 0; i < std::min<std::size_t>(v.size(), 4); ++i) {
      os << (i ? ", " : "") << v[i];
    }
    os << ")\n";
  };
  std::ostringstream os;
  line(os, "backward edges", backward_edges);
  line(os, "net delivers without a send", orphan_net_delivers);
  line(os, "broadcast delivers without an originate",
       orphan_broadcast_delivers);
  line(os, "merges without a deliver", orphan_merges);
  line(os, "delivers never merged", unmerged_delivers);
  if (os.str().empty()) return "no causal issues\n";
  return os.str();
}

CausalGraph CausalGraph::build(const std::vector<Event>& events) {
  CausalGraph g;
  g.num_events_ = events.size();
  g.edges_.reserve(events.size() * 2);

  // Per-track last event (program order). kControlNode is its own track.
  std::unordered_map<std::uint64_t, std::size_t> last_at;
  // Message id -> net.send index (ids are unique per send, so 1:1).
  std::unordered_map<std::uint64_t, std::size_t> send_by_id;
  // (origin, seq) -> originate index; also yields the update's timestamp.
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::size_t,
                     PairHash>
      originate_by_seq;
  // (node, originate index) -> deliver index awaiting its merge.
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::size_t,
                     PairHash>
      pending_merge;
  // (ts_logical, ts_node) -> originate index, for merge-event joins.
  std::map<UpdateKey, std::size_t> originate_by_ts;

  const auto chain_push = [&g](const UpdateKey& key, std::size_t idx,
                               sim::NodeId node) -> Chain& {
    Chain& c = g.chains_[key];
    c.events.push_back(idx);
    c.nodes.push_back(node);
    return c;
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];

    // Program order on every track.
    const auto [it, fresh] =
        last_at.emplace(static_cast<std::uint64_t>(e.node), i);
    if (!fresh) {
      g.edges_.push_back({it->second, i, EdgeKind::kProgram});
      it->second = i;
    }

    switch (e.type) {
      case EventType::kNetSend:
        // a = destination, b = message id (unique per accepted send).
        if (e.b != 0) send_by_id.emplace(e.b, i);
        break;
      case EventType::kNetDeliver:
      case EventType::kNetDropCrashed: {
        // net.deliver: a = source, b = id. A crash drop with b != 0 is the
        // delivery-time variant (the datagram travelled, then found its
        // destination down); b == 0 means it was swallowed at send time —
        // no message ever existed, so no edge.
        if (e.b == 0) break;
        const auto sit = send_by_id.find(e.b);
        if (sit == send_by_id.end()) {
          g.issues_.orphan_net_delivers.push_back(i);
          break;
        }
        g.edges_.push_back({sit->second, i, EdgeKind::kMessage});
        send_by_id.erase(sit);
        break;
      }
      case EventType::kBroadcastOriginate: {
        // node = origin, ts set, a = origin_seq.
        originate_by_seq.emplace(
            std::make_pair(static_cast<std::uint64_t>(e.node), e.a), i);
        const UpdateKey key{e.ts_logical, e.ts_node};
        originate_by_ts.emplace(key, i);
        chain_push(key, i, e.node).originate = i;
        break;
      }
      case EventType::kBroadcastSend: {
        // Flood fan-out at the origin: a = origin_seq, b = peers.
        const auto oit = originate_by_seq.find(
            std::make_pair(static_cast<std::uint64_t>(e.node), e.a));
        if (oit != originate_by_seq.end()) {
          const Event& origin = events[oit->second];
          chain_push({origin.ts_logical, origin.ts_node}, i, e.node);
        }
        break;
      }
      case EventType::kBroadcastDeliver:
      case EventType::kBroadcastDuplicate: {
        // node = deliverer, a = origin, b = origin_seq.
        const auto oit = originate_by_seq.find(std::make_pair(e.a, e.b));
        if (oit == originate_by_seq.end()) {
          if (e.type == EventType::kBroadcastDeliver) {
            g.issues_.orphan_broadcast_delivers.push_back(i);
          }
          break;
        }
        const Event& origin = events[oit->second];
        chain_push({origin.ts_logical, origin.ts_node}, i, e.node);
        if (e.type == EventType::kBroadcastDuplicate) break;
        g.edges_.push_back({oit->second, i, EdgeKind::kReplicate});
        // The merge this deliver triggers carries the update's timestamp;
        // key the expectation by (deliverer, originate index).
        pending_merge[std::make_pair(
            static_cast<std::uint64_t>(e.node),
            static_cast<std::uint64_t>(oit->second))] = i;
        break;
      }
      case EventType::kMergeTailAppend:
      case EventType::kMergeMidInsert: {
        const UpdateKey key{e.ts_logical, e.ts_node};
        chain_push(key, i, e.node);
        const auto tit = originate_by_ts.find(key);
        if (tit == originate_by_ts.end()) {
          g.issues_.orphan_merges.push_back(i);
          break;
        }
        const auto pit = pending_merge.find(std::make_pair(
            static_cast<std::uint64_t>(e.node),
            static_cast<std::uint64_t>(tit->second)));
        if (pit == pending_merge.end()) {
          g.issues_.orphan_merges.push_back(i);
          break;
        }
        g.edges_.push_back({pit->second, i, EdgeKind::kMerge});
        pending_merge.erase(pit);
        break;
      }
      case EventType::kMergeUndo:
      case EventType::kMergeRedo:
        // Undo/redo churn is attributed to the update whose arrival caused
        // it (same ts as the mid-insert); program order already links it.
        chain_push({e.ts_logical, e.ts_node}, i, e.node);
        break;
      default:
        break;
    }
  }

  // Delivers whose merge never arrived: a deliver MUST synchronously merge
  // (the broadcast hands every delivered payload straight to the engine),
  // so any leftover means a truncated stream or a protocol bug.
  for (const auto& [key, idx] : pending_merge) {
    g.issues_.unmerged_delivers.push_back(idx);
  }
  std::sort(g.issues_.unmerged_delivers.begin(),
            g.issues_.unmerged_delivers.end());

  // Certify the topological embedding: every edge must point forward in
  // record order (this is what makes the relation provably acyclic).
  for (std::size_t k = 0; k < g.edges_.size(); ++k) {
    if (g.edges_[k].to <= g.edges_[k].from) {
      g.issues_.backward_edges.push_back(k);
    }
  }

  // Parent CSR: edges grouped by target event.
  g.parent_start_.assign(g.num_events_ + 1, 0);
  for (const CausalEdge& e : g.edges_) ++g.parent_start_[e.to + 1];
  for (std::size_t i = 1; i <= g.num_events_; ++i) {
    g.parent_start_[i] += g.parent_start_[i - 1];
  }
  g.parent_edge_ids_.resize(g.edges_.size());
  std::vector<std::size_t> fill = g.parent_start_;
  for (std::size_t k = 0; k < g.edges_.size(); ++k) {
    g.parent_edge_ids_[fill[g.edges_[k].to]++] = k;
  }
  return g;
}

std::vector<std::size_t> CausalGraph::parent_edges(std::size_t i) const {
  if (i >= num_events_) return {};
  return {parent_edge_ids_.begin() +
              static_cast<std::ptrdiff_t>(parent_start_[i]),
          parent_edge_ids_.begin() +
              static_cast<std::ptrdiff_t>(parent_start_[i + 1])};
}

std::vector<std::size_t> CausalGraph::update_chain(std::uint64_t ts_logical,
                                                   sim::NodeId ts_node) const {
  const auto it = chains_.find({ts_logical, ts_node});
  if (it == chains_.end()) return {};
  return it->second.events;  // appended in stream order, already ascending
}

std::vector<CausalGraph::UpdateKey> CausalGraph::update_keys() const {
  std::vector<UpdateKey> out;
  out.reserve(chains_.size());
  for (const auto& [key, chain] : chains_) out.push_back(key);
  return out;  // std::map iteration => ascending (logical, node)
}

std::vector<std::size_t> CausalGraph::ancestry(std::size_t i,
                                               std::size_t limit) const {
  std::vector<std::size_t> out;
  if (i >= num_events_ || limit == 0) return out;
  std::vector<char> seen(i + 1, 0);
  std::deque<std::size_t> frontier{i};
  seen[i] = 1;
  while (!frontier.empty() && out.size() < limit) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (std::size_t p = parent_start_[cur]; p < parent_start_[cur + 1];
         ++p) {
      const std::size_t from = edges_[parent_edge_ids_[p]].from;
      if (seen[from]) continue;
      seen[from] = 1;
      out.push_back(from);
      if (out.size() >= limit) break;
      frontier.push_back(from);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> CausalGraph::path_to_node(std::uint64_t ts_logical,
                                                   sim::NodeId ts_node,
                                                   sim::NodeId node) const {
  const auto it = chains_.find({ts_logical, ts_node});
  if (it == chains_.end()) return {};
  const Chain& c = it->second;
  std::vector<std::size_t> out;
  if (c.originate != static_cast<std::size_t>(-1)) {
    out.push_back(c.originate);
  }
  for (std::size_t k = 0; k < c.events.size(); ++k) {
    if (c.nodes[k] == node && c.events[k] != c.originate) {
      out.push_back(c.events[k]);
    }
  }
  return out;
}

TraceDivergence trace_diff(const std::vector<Event>& a,
                           const std::vector<Event>& b) {
  TraceDivergence d;
  d.a_size = a.size();
  d.b_size = b.size();
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      d.diverged = true;
      d.index = i;
      return d;
    }
  }
  if (a.size() != b.size()) {
    d.diverged = true;
    d.index = n;
  }
  return d;
}

std::string divergence_report(const TraceDivergence& d,
                              const std::vector<Event>& a,
                              const std::vector<Event>& b,
                              std::size_t ancestry_limit) {
  std::ostringstream os;
  if (!d.diverged) {
    os << "streams identical (" << d.a_size << " events)\n";
    return os.str();
  }
  os << "first divergence at index " << d.index << " (stream a: " << d.a_size
     << " events, stream b: " << d.b_size << " events)\n";
  const auto side = [&](const char* name, const std::vector<Event>& ev) {
    os << name << ": ";
    if (d.index >= ev.size()) {
      os << "(stream ended)\n";
      return;
    }
    os << serialize({ev[d.index]});
    const CausalGraph g = CausalGraph::build(ev);
    const std::vector<std::size_t> anc = g.ancestry(d.index, ancestry_limit);
    if (anc.empty()) {
      os << "  (no causal ancestors in stream)\n";
      return;
    }
    os << "  causal ancestry (nearest " << anc.size() << "):\n";
    for (std::size_t idx : anc) {
      os << "  [" << idx << "] " << serialize({ev[idx]});
    }
  };
  side("a", a);
  side("b", b);
  return os.str();
}

}  // namespace obs
