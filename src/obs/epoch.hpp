// Partition-epoch segmentation of an event stream.
//
// The paper's availability story is regime-dependent: how fast updates
// propagate and stabilize depends on which cuts are open and which nodes
// are down RIGHT NOW, and an aggregate over a whole chaotic run averages
// healthy operation against partition survival until neither is visible.
// An *epoch* is a maximal interval during which that failure regime is
// constant — the unit the flame profiler (flame.hpp) attributes latency to.
//
// Boundaries come from the trace's control events: partition.open /
// partition.heal (a = cut index into the run's partition schedule) and
// node.crash / node.restart. Every boundary starts a new epoch, with one
// deliberate exception: transitions at the SAME simulated time coalesce
// into a single boundary. Correlated faults make this matter — a rack
// power loss records one partition.open plus a crash per rack node at the
// same instant, and a rolling restart's back-to-back windows can land a
// restart and the next crash on one tick; without coalescing each would
// manufacture a zero-length epoch between two same-time control events.
// By construction, then, no epoch is zero-length and the regime sets are
// exactly right from the first non-control event onward. (Non-control
// events recorded at the boundary instant but before its control event
// land in the outgoing epoch; attribution at a shared tick follows record
// order, which is deterministic.)
//
// The index works on any stream — complete captures or a ring-truncated
// window. On a truncated stream a cut that opened before the window simply
// never shows in active_cuts; epoch boundaries are inferred only from
// retained control events (per-node shards help here: control events live
// in their own ring and are never evicted by node chatter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace obs {

/// One maximal constant-regime interval of the stream.
struct Epoch {
  double start = 0.0;  ///< [start, end) in simulated time.
  double end = 0.0;
  std::size_t begin_event = 0;  ///< [begin_event, end_event) in the stream.
  std::size_t end_event = 0;
  /// Cut indices (partition.open's `a`) open during this epoch, ascending.
  std::vector<std::uint64_t> active_cuts;
  /// Nodes down during this epoch, ascending.
  std::vector<sim::NodeId> down_nodes;

  /// No cuts open, no nodes down — the healthy regime.
  bool quiet() const { return active_cuts.empty() && down_nodes.empty(); }
  /// Stable machine-readable regime label: "quiet", "cut{0}",
  /// "cut{0,2}+down{1}", "down{3}". Equal regimes => equal labels.
  std::string label() const;
};

class EpochIndex {
 public:
  /// Segment `events` (record order). An empty stream yields one empty
  /// quiet epoch covering [0, 0).
  static EpochIndex build(const std::vector<Event>& events);

  const std::vector<Epoch>& epochs() const { return epochs_; }
  std::size_t size() const { return epochs_.size(); }
  const Epoch& epoch(std::size_t i) const { return epochs_[i]; }

  /// Index of the epoch containing event `i` (by record position — exact
  /// even when several epochs share a boundary instant). Out-of-range `i`
  /// maps to the last epoch.
  std::size_t epoch_of_event(std::size_t i) const;

  /// Index of the last epoch whose start <= t (a boundary instant belongs
  /// to the incoming epoch); t before the first epoch maps to 0.
  std::size_t epoch_at(double t) const;

  /// Raw control transitions seen (each partition.open/heal, crash,
  /// restart counts once).
  std::uint64_t transitions() const { return transitions_; }
  /// Transitions folded into an earlier same-time boundary — each is a
  /// zero-length epoch that coalescing avoided.
  std::uint64_t coalesced() const { return coalesced_; }

 private:
  std::vector<Epoch> epochs_;
  std::uint64_t transitions_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace obs
