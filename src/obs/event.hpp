// Typed execution-trace events.
//
// The paper's theorems are statements about *executions* — which updates a
// decision saw, when information propagated, how merges reordered the log.
// End-of-run counters (EngineStats, BroadcastStats) cannot answer "what
// happened around timestamp 17:2 on node 3?"; this event taxonomy can. One
// Event is one observable step of the substrate, stamped with simulated
// time, the node it happened at, and (where applicable) the globally unique
// timestamp of the update involved — the same (logical, node) pair
// core::Timestamp carries, stored raw here so the obs layer sits below
// core in the dependency order.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/delay.hpp"
#include "sim/partition.hpp"

namespace obs {

/// Sentinel for events not tied to any one node (partition cuts, scheduler
/// dispatch): rendered on a synthetic "control" track by the exporters.
inline constexpr sim::NodeId kControlNode = 0xffffffffu;

/// Everything the substrate can report. Names group by subsystem; the
/// exporters render them as "<group>.<what>" (see event_type_name).
enum class EventType : std::uint8_t {
  // sim/scheduler — one per dispatched event (a = scheduler EventId).
  kSchedulerDispatch,
  // sim/network — message fates. Send-side events (send and send-time
  // drops) are recorded at the source: node = src, a = dst. Delivery-side
  // events (deliver, and the delivery-time crash drop) are recorded at the
  // destination: node = dst, a = src — so each node's program order
  // contains the deliveries it observed. b = message id for every fate of
  // a message the network accepted (unique per send, joins send→deliver);
  // b = 0 for send-time drops, where no message ever entered the network.
  kNetSend,
  kNetDeliver,
  kNetDropPartition,
  kNetDropRandom,
  kNetDropCrashed,
  // net/broadcast — payload lifecycle at one endpoint.
  kBroadcastOriginate,   ///< Node submitted; ts set, a = origin_seq.
  kBroadcastSend,        ///< Flood fan-out; a = peers sent to.
  kBroadcastDeliver,     ///< Delivered upward; a = origin, b = origin_seq.
  kBroadcastDuplicate,   ///< Re-received payload dropped; a/b as deliver.
  kAntiEntropyDigest,    ///< Digest sent; a = chosen peer.
  kAntiEntropyRepair,    ///< Repair batch sent; a = requester, b = payloads.
  // shard/update_log — merge machinery (ts = update merged).
  kMergeTailAppend,      ///< In-order arrival applied at the tail.
  kMergeMidInsert,       ///< Out-of-order arrival; a = entries displaced.
  kMergeUndo,            ///< a = updates undone by a mid-insert.
  kMergeRedo,            ///< a = updates re-applied during recompute.
  kCheckpointTake,       ///< a = checkpoint index.
  kCheckpointInvalidate, ///< a = checkpoints dropped.
  // shard/node + sim/crash — fault injection.
  kCrash,                ///< Node went down.
  kRestart,              ///< Node came back; a = RecoveryMode.
  // sim/partition — cut lifecycle (control track; a = event index).
  kPartitionOpen,
  kPartitionHeal,
  // net/broadcast Byzantine adversary — receive-path payload tampering
  // (node = victim; a = origin, b = origin_seq, as for kBroadcastDeliver).
  kByzantineCorrupt,     ///< Update field substituted before accept.
  kByzantineDuplicate,   ///< Wire re-injected into accept (dedup target).
  kByzantineReorder,     ///< Wire held back until the next packet.
  // net/broadcast batched floods (appended: existing raw values are part of
  // serialized traces). Recorded once per COALESCED flush — a flush of one
  // wire takes the legacy kBroadcastSend path only, so unbatched-shaped
  // traffic under a batched config stays byte-identical to the legacy mode.
  kBroadcastBatchSend,   ///< a = wires coalesced, b = peers sent to.
};

/// Total number of event types (array-sizing helper for per-type counts).
inline constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kBroadcastBatchSend) + 1;

/// Stable machine-readable name, e.g. "merge.mid_insert". Used by both
/// exporters and the determinism regression (byte-identical streams).
std::string_view event_type_name(EventType t);

/// One trace event. POD; 48 bytes, so the ring stays cache-friendly.
struct Event {
  EventType type = EventType::kSchedulerDispatch;
  double time = 0.0;           ///< Simulated time of occurrence.
  sim::NodeId node = 0;        ///< Where it happened (kControlNode if none).
  std::uint64_t ts_logical = 0;  ///< Update timestamp (0,0 if n/a).
  sim::NodeId ts_node = 0;
  std::uint64_t a = 0;  ///< Type-specific detail (see EventType comments).
  std::uint64_t b = 0;  ///< Second detail slot.

  /// Field-wise equality — what the trace-diff bisector compares.
  friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace obs
