// Per-node trace shards with a deterministic merge into the global order.
//
// One global tracer is the wrong shape for a real deployment: every node
// funnels events through a single ring, one chatty node evicts everyone
// else's recent history, and a future multi-threaded runtime would need a
// lock around record(). ShardedTracer gives each node its own bounded ring
// (plus one "control" shard for cluster-scope events: scheduler dispatch,
// partition cut markers), so tracing is per-node by construction — a node
// records only into its shard, and nothing shared sits on the record path
// except one monotone sequence counter.
//
// That counter is the merge key. Every record is stamped with the next
// global sequence number, so merging the shard rings by (time, seq) —
// sequence breaks ties within one simulated instant — reconstructs exactly
// the interleaved global record order. In the deterministic single-threaded
// simulator the stamp IS the record index, which is what makes the merged
// stream byte-identical to the legacy global tracer's for the same (seed,
// configuration); the determinism tiers pin this on every chaos and
// crash-chaos seed. On a real runtime the same merge works off a hybrid
// logical clock in place of the counter.
//
// Sinks attached through the TraceSource surface are fanned out to every
// shard; shard dispatch is synchronous, so a global sink still observes
// events in the exact global record order (the lifecycle tracker and the
// determinism captures rely on this).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "obs/tracer.hpp"

namespace obs {

class ShardedTracer : public TraceSource {
 public:
  /// One shard per node plus the trailing control shard; each ring holds
  /// `ring_capacity` events.
  ShardedTracer(std::size_t num_nodes, std::size_t ring_capacity = 8192);

  ShardedTracer(const ShardedTracer&) = delete;
  ShardedTracer& operator=(const ShardedTracer&) = delete;

  /// The shard a component at `node` records into. Any id outside
  /// [0, num_nodes) — kControlNode in particular — maps to the control
  /// shard. The returned Tracer is recorded into directly (non-virtual
  /// hot path), exactly like a standalone global tracer.
  Tracer& shard(sim::NodeId node) {
    const std::size_t i = static_cast<std::size_t>(node);
    return *shards_[i < shards_.size() - 1 ? i : shards_.size() - 1];
  }
  const Tracer& shard(sim::NodeId node) const {
    const std::size_t i = static_cast<std::size_t>(node);
    return *shards_[i < shards_.size() - 1 ? i : shards_.size() - 1];
  }
  Tracer& control_shard() { return *shards_.back(); }

  /// num_nodes + 1 (the control shard).
  std::size_t num_shards() const { return shards_.size(); }
  /// The next global sequence stamp (== events recorded so far).
  std::uint64_t next_seq() const {
    return seq_.load(std::memory_order_relaxed);
  }

  // --- TraceSource ------------------------------------------------------

  void add_sink(Sink* sink) override;
  std::uint64_t recorded() const override;
  std::uint64_t evicted() const override;
  std::vector<std::uint64_t> type_counts() const override;
  std::size_t ring_size() const override;
  /// K-way merge of the shard rings by global stamp — the retained events
  /// in exact global record order. With no eviction anywhere this is the
  /// full stream; after eviction it is the interleave of each shard's
  /// retained suffix (per-node recent history, which is the point).
  std::vector<Event> ring() const override;
  std::vector<Event> slice_around(std::uint64_t ts_logical,
                                  sim::NodeId ts_node,
                                  std::size_t context = 6) const override;

 private:
  /// Shared by all shards via set_sequencer. Atomic so the threaded
  /// runtime's per-node shards can stamp concurrently (each shard still has
  /// exactly one writer; only the merge key is shared).
  std::atomic<std::uint64_t> seq_{0};
  std::vector<std::unique_ptr<Tracer>> shards_;
};

}  // namespace obs
