#include "obs/tracer.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <sstream>
#include <string>

namespace obs {

namespace {

/// One entry per EventType, in declaration order. The static_assert below
/// is the drift guard: adding an EventType without a name (or vice versa)
/// fails to compile instead of silently rendering "unknown" — and the
/// round-trip unit test in test_obs pins that every name parses back.
constexpr std::array<std::string_view, kNumEventTypes> kEventTypeNames = {
    "sched.dispatch",        // kSchedulerDispatch
    "net.send",              // kNetSend
    "net.deliver",           // kNetDeliver
    "net.drop_partition",    // kNetDropPartition
    "net.drop_random",       // kNetDropRandom
    "net.drop_crashed",      // kNetDropCrashed
    "broadcast.originate",   // kBroadcastOriginate
    "broadcast.send",        // kBroadcastSend
    "broadcast.deliver",     // kBroadcastDeliver
    "broadcast.duplicate",   // kBroadcastDuplicate
    "anti_entropy.digest",   // kAntiEntropyDigest
    "anti_entropy.repair",   // kAntiEntropyRepair
    "merge.tail_append",     // kMergeTailAppend
    "merge.mid_insert",      // kMergeMidInsert
    "merge.undo",            // kMergeUndo
    "merge.redo",            // kMergeRedo
    "checkpoint.take",       // kCheckpointTake
    "checkpoint.invalidate", // kCheckpointInvalidate
    "node.crash",            // kCrash
    "node.restart",          // kRestart
    "partition.open",        // kPartitionOpen
    "partition.heal",        // kPartitionHeal
    "byzantine.corrupt",     // kByzantineCorrupt
    "byzantine.duplicate",   // kByzantineDuplicate
    "byzantine.reorder",     // kByzantineReorder
    "broadcast.batch_send",  // kBroadcastBatchSend
};
static_assert(kEventTypeNames.size() == kNumEventTypes,
              "event name table out of sync with EventType — add the new "
              "type's name at its declaration position");
static_assert(static_cast<std::size_t>(EventType::kBroadcastBatchSend) ==
                  kNumEventTypes - 1,
              "kNumEventTypes must be derived from the LAST EventType "
              "enumerator — update it when appending types");

}  // namespace

std::string_view event_type_name(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  if (i >= kNumEventTypes) return "unknown";
  return kEventTypeNames[i];
}

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      type_counts_(kNumEventTypes, 0) {
  buf_.reserve(capacity_);
}

void Tracer::set_sequencer(std::atomic<std::uint64_t>* sequencer) {
  sequencer_ = sequencer;
  if (sequencer_ != nullptr) seq_buf_.reserve(capacity_);
}

void Tracer::record(const Event& e) {
  ++recorded_;
  ++type_counts_[static_cast<std::size_t>(e.type)];
  const std::uint64_t seq =
      sequencer_ != nullptr
          ? sequencer_->fetch_add(1, std::memory_order_relaxed)
          : 0;
  if (buf_.size() < capacity_) {
    buf_.push_back(e);
    if (sequencer_ != nullptr) seq_buf_.push_back(seq);
    head_ = buf_.size() % capacity_;
    full_ = buf_.size() == capacity_ && head_ == 0;
  } else {
    buf_[head_] = e;
    if (sequencer_ != nullptr) {
      seq_buf_.resize(buf_.size());
      seq_buf_[head_] = seq;
    }
    head_ = (head_ + 1) % capacity_;
    full_ = true;
  }
  for (Sink* s : sinks_) s->on_event(e);
}

std::vector<Event> Tracer::ring() const {
  std::vector<Event> out;
  out.reserve(ring_size());
  if (!full_) {
    out.assign(buf_.begin(), buf_.begin() + head_);
    return out;
  }
  out.insert(out.end(), buf_.begin() + head_, buf_.end());
  out.insert(out.end(), buf_.begin(), buf_.begin() + head_);
  return out;
}

std::vector<std::uint64_t> Tracer::ring_seqs() const {
  std::vector<std::uint64_t> out;
  if (sequencer_ == nullptr) return out;
  out.reserve(ring_size());
  if (!full_) {
    out.assign(seq_buf_.begin(), seq_buf_.begin() + head_);
    return out;
  }
  out.insert(out.end(), seq_buf_.begin() + head_, seq_buf_.end());
  out.insert(out.end(), seq_buf_.begin(), seq_buf_.begin() + head_);
  return out;
}

std::vector<Event> slice_window(const std::vector<Event>& events,
                                std::uint64_t ts_logical, sim::NodeId ts_node,
                                std::size_t context) {
  std::vector<char> keep(events.size(), 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].ts_logical != ts_logical || events[i].ts_node != ts_node ||
        (ts_logical == 0 && events[i].ts_logical == 0)) {
      continue;
    }
    const std::size_t lo = i >= context ? i - context : 0;
    const std::size_t hi = std::min(events.size(), i + context + 1);
    for (std::size_t j = lo; j < hi; ++j) keep[j] = 1;
  }
  std::vector<Event> out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (keep[i]) out.push_back(events[i]);
  }
  return out;
}

std::vector<Event> Tracer::slice_around(std::uint64_t ts_logical,
                                        sim::NodeId ts_node,
                                        std::size_t context) const {
  return slice_window(ring(), ts_logical, ts_node, context);
}

std::string serialize(const std::vector<Event>& events) {
  std::ostringstream os;
  std::array<char, 32> tbuf;
  for (const Event& e : events) {
    // Shortest decimal that round-trips the exact double — readable AND
    // lossless, so serialized streams are faithful trace-diff inputs.
    const auto [end, ec] =
        std::to_chars(tbuf.data(), tbuf.data() + tbuf.size(), e.time);
    os << event_type_name(e.type) << " t="
       << std::string_view(tbuf.data(),
                           static_cast<std::size_t>(end - tbuf.data()))
       << " n=" << e.node << " ts=" << e.ts_logical << ':' << e.ts_node
       << " a=" << e.a << " b=" << e.b << '\n';
  }
  return os.str();
}

bool event_type_from_name(std::string_view name, EventType& out) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    if (kEventTypeNames[i] == name) {
      out = static_cast<EventType>(i);
      return true;
    }
  }
  return false;
}

namespace {

/// Consume "<prefix><number>" from the front of `s`; true on success.
template <typename T>
bool eat_field(std::string_view& s, std::string_view prefix, T& out) {
  if (s.substr(0, prefix.size()) != prefix) return false;
  s.remove_prefix(prefix.size());
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{}) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return true;
}

bool parse_line(std::string_view line, Event& e) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return false;
  if (!event_type_from_name(line.substr(0, sp), e.type)) return false;
  std::string_view rest = line.substr(sp);
  return eat_field(rest, " t=", e.time) && eat_field(rest, " n=", e.node) &&
         eat_field(rest, " ts=", e.ts_logical) &&
         eat_field(rest, ":", e.ts_node) && eat_field(rest, " a=", e.a) &&
         eat_field(rest, " b=", e.b) && rest.empty();
}

}  // namespace

bool deserialize(std::string_view text, std::vector<Event>& out,
                 std::size_t* error) {
  std::size_t line_no = 0;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (line.empty()) {  // trailing newline / blank line
      ++line_no;
      continue;
    }
    Event e;
    if (!parse_line(line, e)) {
      if (error != nullptr) *error = line_no;
      return false;
    }
    out.push_back(e);
    ++line_no;
  }
  return true;
}

}  // namespace obs
