#include "obs/tracer.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <sstream>
#include <string>

namespace obs {

std::string_view event_type_name(EventType t) {
  switch (t) {
    case EventType::kSchedulerDispatch:   return "sched.dispatch";
    case EventType::kNetSend:             return "net.send";
    case EventType::kNetDeliver:          return "net.deliver";
    case EventType::kNetDropPartition:    return "net.drop_partition";
    case EventType::kNetDropRandom:       return "net.drop_random";
    case EventType::kNetDropCrashed:      return "net.drop_crashed";
    case EventType::kBroadcastOriginate:  return "broadcast.originate";
    case EventType::kBroadcastSend:       return "broadcast.send";
    case EventType::kBroadcastDeliver:    return "broadcast.deliver";
    case EventType::kBroadcastDuplicate:  return "broadcast.duplicate";
    case EventType::kAntiEntropyDigest:   return "anti_entropy.digest";
    case EventType::kAntiEntropyRepair:   return "anti_entropy.repair";
    case EventType::kMergeTailAppend:     return "merge.tail_append";
    case EventType::kMergeMidInsert:      return "merge.mid_insert";
    case EventType::kMergeUndo:           return "merge.undo";
    case EventType::kMergeRedo:           return "merge.redo";
    case EventType::kCheckpointTake:      return "checkpoint.take";
    case EventType::kCheckpointInvalidate:return "checkpoint.invalidate";
    case EventType::kCrash:               return "node.crash";
    case EventType::kRestart:             return "node.restart";
    case EventType::kPartitionOpen:       return "partition.open";
    case EventType::kPartitionHeal:       return "partition.heal";
    case EventType::kByzantineCorrupt:    return "byzantine.corrupt";
    case EventType::kByzantineDuplicate:  return "byzantine.duplicate";
    case EventType::kByzantineReorder:    return "byzantine.reorder";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      type_counts_(kNumEventTypes, 0) {
  buf_.reserve(capacity_);
}

void Tracer::record(const Event& e) {
  ++recorded_;
  ++type_counts_[static_cast<std::size_t>(e.type)];
  if (buf_.size() < capacity_) {
    buf_.push_back(e);
    head_ = buf_.size() % capacity_;
    full_ = buf_.size() == capacity_ && head_ == 0;
  } else {
    buf_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    full_ = true;
  }
  for (Sink* s : sinks_) s->on_event(e);
}

std::vector<Event> Tracer::ring() const {
  std::vector<Event> out;
  out.reserve(ring_size());
  if (!full_) {
    out.assign(buf_.begin(), buf_.begin() + head_);
    return out;
  }
  out.insert(out.end(), buf_.begin() + head_, buf_.end());
  out.insert(out.end(), buf_.begin(), buf_.begin() + head_);
  return out;
}

std::vector<Event> Tracer::slice_around(std::uint64_t ts_logical,
                                        sim::NodeId ts_node,
                                        std::size_t context) const {
  const std::vector<Event> all = ring();
  std::vector<char> keep(all.size(), 0);
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].ts_logical != ts_logical || all[i].ts_node != ts_node ||
        (ts_logical == 0 && all[i].ts_logical == 0)) {
      continue;
    }
    const std::size_t lo = i >= context ? i - context : 0;
    const std::size_t hi = std::min(all.size(), i + context + 1);
    for (std::size_t j = lo; j < hi; ++j) keep[j] = 1;
  }
  std::vector<Event> out;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (keep[i]) out.push_back(all[i]);
  }
  return out;
}

std::string serialize(const std::vector<Event>& events) {
  std::ostringstream os;
  std::array<char, 32> tbuf;
  for (const Event& e : events) {
    // Shortest decimal that round-trips the exact double — readable AND
    // lossless, so serialized streams are faithful trace-diff inputs.
    const auto [end, ec] =
        std::to_chars(tbuf.data(), tbuf.data() + tbuf.size(), e.time);
    os << event_type_name(e.type) << " t="
       << std::string_view(tbuf.data(),
                           static_cast<std::size_t>(end - tbuf.data()))
       << " n=" << e.node << " ts=" << e.ts_logical << ':' << e.ts_node
       << " a=" << e.a << " b=" << e.b << '\n';
  }
  return os.str();
}

bool event_type_from_name(std::string_view name, EventType& out) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    const auto t = static_cast<EventType>(i);
    if (event_type_name(t) == name) {
      out = t;
      return true;
    }
  }
  return false;
}

namespace {

/// Consume "<prefix><number>" from the front of `s`; true on success.
template <typename T>
bool eat_field(std::string_view& s, std::string_view prefix, T& out) {
  if (s.substr(0, prefix.size()) != prefix) return false;
  s.remove_prefix(prefix.size());
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{}) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return true;
}

bool parse_line(std::string_view line, Event& e) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return false;
  if (!event_type_from_name(line.substr(0, sp), e.type)) return false;
  std::string_view rest = line.substr(sp);
  return eat_field(rest, " t=", e.time) && eat_field(rest, " n=", e.node) &&
         eat_field(rest, " ts=", e.ts_logical) &&
         eat_field(rest, ":", e.ts_node) && eat_field(rest, " a=", e.a) &&
         eat_field(rest, " b=", e.b) && rest.empty();
}

}  // namespace

bool deserialize(std::string_view text, std::vector<Event>& out,
                 std::size_t* error) {
  std::size_t line_no = 0;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (line.empty()) {  // trailing newline / blank line
      ++line_no;
      continue;
    }
    Event e;
    if (!parse_line(line, e)) {
      if (error != nullptr) *error = line_no;
      return false;
    }
    out.push_back(e);
    ++line_no;
  }
  return true;
}

}  // namespace obs
